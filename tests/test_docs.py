"""Docs-consistency gate (companion of the ruff gate in test_tooling).

Documentation drifts when commands and paths it quotes stop existing, so
this suite re-derives them from the docs themselves: every
``python -m repro`` command inside a code fence of README.md / docs/*.md
must parse against the real CLI, every path named by a quoted pytest or
example invocation must exist, every relative markdown link must
resolve, and every ``json`` fence must be valid JSON.
"""

import json
import re
import shlex
from pathlib import Path

import pytest

from repro.experiments.cli import parse_cli

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fenced_blocks(text: str) -> list[tuple[str, list[str]]]:
    """``(language, lines)`` for every fenced code block."""
    blocks: list[tuple[str, list[str]]] = []
    lang = None
    lines: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("```"):
            if lang is None:
                lang = stripped[3:].strip()
            else:
                blocks.append((lang, lines))
                lang, lines = None, []
            continue
        if lang is not None:
            lines.append(line)
    return blocks


def command_lines() -> list[tuple[Path, str]]:
    out = []
    for doc in DOC_FILES:
        for lang, lines in fenced_blocks(doc.read_text()):
            if lang == "json":
                continue
            for line in lines:
                line = line.strip()
                if line and not line.startswith("#"):
                    out.append((doc, line))
    return out


def test_doc_files_exist():
    assert (REPO_ROOT / "README.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert (REPO_ROOT / "docs" / "experiments.md").exists()
    assert (REPO_ROOT / "docs" / "baselines.md").exists()


def test_repro_cli_commands_parse():
    """Every quoted ``python -m repro ...`` must parse against the CLI."""
    checked = 0
    for doc, line in command_lines():
        if "python -m repro" not in line:
            continue
        argv = shlex.split(line.split("python -m repro", 1)[1])
        try:
            parse_cli(argv)
        except SystemExit:
            pytest.fail(f"{doc.name}: command does not parse: {line}")
        checked += 1
    assert checked >= 4  # README + docs quickstarts stay non-trivial


def test_pytest_commands_reference_real_paths():
    checked = 0
    for doc, line in command_lines():
        if "python -m pytest" not in line and not line.startswith("pytest"):
            continue
        marker = "pytest"
        args = shlex.split(line.split(marker, 1)[1])
        for arg in args:
            if arg.startswith("-"):
                continue
            target = (REPO_ROOT / arg.split("::")[0])
            assert target.exists(), f"{doc.name}: pytest path missing: {arg}"
        checked += 1
    assert checked >= 1


def test_example_invocations_reference_real_scripts():
    checked = 0
    for doc, line in command_lines():
        for token in shlex.split(line) if "python " in line else []:
            if token.endswith(".py") and "/" in token and not token.startswith("-"):
                assert (REPO_ROOT / token).exists(), (
                    f"{doc.name}: script missing: {token}"
                )
                checked += 1
    assert checked >= 1


def test_relative_links_resolve():
    checked = 0
    for doc in DOC_FILES:
        for target in LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (doc.parent / target.split("#", 1)[0]).resolve()
            assert path.exists(), f"{doc.name}: broken link: {target}"
            checked += 1
    assert checked >= 10  # the docs are meant to be densely cross-linked


def test_json_fences_are_valid_json():
    checked = 0
    for doc in DOC_FILES:
        for lang, lines in fenced_blocks(doc.read_text()):
            if lang != "json":
                continue
            text = "\n".join(lines)
            try:
                json.loads(text)
            except json.JSONDecodeError as exc:
                pytest.fail(f"{doc.name}: invalid json fence: {exc}")
            checked += 1
    assert checked >= 1


def test_protocol_tables_match_registry():
    """Protocol names quoted in the README comparison table and the
    baselines guide must match the registered protocol registry — both
    directions: no table entry outside the registry, no registered
    protocol missing from the docs."""
    from repro.core.protocol import PROTOCOL_NAMES

    readme = (REPO_ROOT / "README.md").read_text()
    baselines = (REPO_ROOT / "docs" / "baselines.md").read_text()

    # every registered protocol is documented in both places
    for name in PROTOCOL_NAMES:
        assert f"`{name}`" in readme, f"README table misses protocol {name}"
        assert f"`{name}`" in baselines, f"baselines.md misses protocol {name}"

    # every backticked name in a README table row that looks like a
    # protocol (first column, before the source-paper column) is real
    table_rows = [
        line for line in readme.splitlines()
        if line.startswith("|") and "`" in line and "---" not in line
    ]
    assert table_rows, "README protocol table disappeared"
    quoted = {
        token
        for row in table_rows
        for token in re.findall(r"`([a-z0-9+-]+)`", row.split("|")[1])
    }
    unknown = quoted - set(PROTOCOL_NAMES)
    assert not unknown, f"README table names unregistered protocols: {unknown}"


def test_churn_scenario_documented_and_registered():
    """The churn campaign quickstarts must target a scenario that exists,
    sweeping protocols that exist."""
    from repro.core.protocol import PROTOCOL_NAMES
    from repro.experiments.scenarios import (
        CHURN_SWEEP_PROTOCOLS,
        SCENARIO_CONFIGS,
    )

    assert "churn" in SCENARIO_CONFIGS
    assert set(CHURN_SWEEP_PROTOCOLS) <= set(PROTOCOL_NAMES)
    readme = (REPO_ROOT / "README.md").read_text()
    assert "--scenarios churn" in readme


def test_store_docstring_points_at_real_doc():
    """The reference that motivated this file: store.py cites the
    experiments workflow doc — keep it pointing at a file that exists."""
    import repro.experiments.store as store

    assert "docs/experiments.md" in (store.__doc__ or "")
    assert (REPO_ROOT / "docs" / "experiments.md").exists()
