"""Cross-seed reproducibility of the paper's headline orderings.

These run micro-populations (fast) across several seeds and require the
orderings to hold in most seed pairings — guarding against the reproduction
resting on one lucky seed.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.multiseed import ordering_confidence, run_seeds

SEEDS = [11, 22, 33]


def replicate(protocol: str, demand_ratio: float):
    cfg = ExperimentConfig(
        n_nodes=100,
        duration=7200.0,
        demand_ratio=demand_ratio,
        protocol=protocol,
    )
    return run_seeds(cfg, SEEDS)


@pytest.fixture(scope="module")
def hid_025():
    return replicate("hid-can", 0.25)


@pytest.fixture(scope="module")
def newscast_025():
    return replicate("newscast", 0.25)


def test_hid_beats_newscast_on_failures_across_seeds(hid_025, newscast_025):
    """Fig. 7(b)'s order-of-magnitude failed-task gap must hold in (almost)
    every seed pairing, not on average only."""
    confidence = ordering_confidence(hid_025, newscast_025, "f_ratio", "less")
    assert confidence >= 0.85
    # and the magnitude is large, not marginal
    assert hid_025.metric("f_ratio").mean < newscast_025.metric("f_ratio").mean / 2


def test_newscast_throughput_competitive_at_light_demands(hid_025, newscast_025):
    """Fig. 7(a): Newscast's raw T-Ratio is at least comparable at λ=0.25."""
    hid_t = hid_025.metric("t_ratio").mean
    news_t = newscast_025.metric("t_ratio").mean
    assert news_t > hid_t * 0.8


def test_seed_variance_is_moderate(hid_025):
    """The simulation is stable: seed-to-seed F-Ratio varies within a
    small absolute band at this scale."""
    stats = hid_025.metric("f_ratio")
    assert stats.std < 0.1
    lo, hi = stats.ci95()
    assert hi - lo < 0.25
