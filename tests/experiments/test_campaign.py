"""Tests for parallel campaign grids: spec round-trip, cell identity,
process-pool execution, skip/resume semantics and document aggregation."""

import json

import pytest

from repro.experiments.campaign import (
    SPEC_FILENAME,
    CampaignSpec,
    campaign_status,
    campaign_summary,
    load_campaign_cells,
    run_campaign,
)
from repro.experiments.config import config_from_dict
from repro.experiments.scenarios import FIG4_PROTOCOLS
from repro.experiments.store import SCHEMA_VERSION, load_cell_doc, save_cell_doc

#: Shrinks every cell far below the named scales so the grid runs in
#: seconds while still exercising the full simulation stack.
FAST = {"n_nodes": 25, "duration": 2500.0, "sample_period": 1000.0}


def small_spec(**kw) -> CampaignSpec:
    doc = dict(
        name="testcamp",
        scenarios=["fig4a"],
        scales=["tiny"],
        seeds=[1, 2],
        overrides=dict(FAST),
    )
    doc.update(kw)
    return CampaignSpec.from_dict(doc)


# ----------------------------------------------------------------------
# spec
# ----------------------------------------------------------------------
def test_spec_dict_roundtrip():
    spec = small_spec(protocols=["newscast", "sid-can"])
    assert CampaignSpec.from_dict(spec.to_dict()) == spec
    # and through actual JSON text
    assert CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


def test_spec_validation():
    with pytest.raises(ValueError, match="unknown scenarios"):
        small_spec(scenarios=["fig99"])
    with pytest.raises(ValueError, match="unknown scales"):
        small_spec(scales=["galactic"])
    with pytest.raises(ValueError, match="non-empty"):
        small_spec(seeds=[])
    with pytest.raises(ValueError, match="unknown campaign spec fields"):
        CampaignSpec.from_dict({"scenarioz": ["fig5"]})


def test_spec_from_json(tmp_path):
    spec = small_spec()
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec.to_dict()))
    assert CampaignSpec.from_json(path) == spec


# ----------------------------------------------------------------------
# cells
# ----------------------------------------------------------------------
def test_cells_cover_the_grid():
    spec = small_spec(seeds=[1, 2, 3])
    cells = spec.cells()
    assert len(cells) == len(FIG4_PROTOCOLS) * 3  # protocols × seeds
    assert {c.seed for c in cells} == {1, 2, 3}
    assert {c.label for c in cells} == set(FIG4_PROTOCOLS)
    # overrides reached every config
    assert all(c.config.n_nodes == 25 for c in cells)
    assert all(c.config.seed == c.seed for c in cells)


def test_protocol_filter():
    cells = small_spec(protocols=["newscast"]).cells()
    assert {c.config.protocol for c in cells} == {"newscast"}
    assert len(cells) == 2  # one per seed


def test_cell_ids_stable_and_unique():
    a = small_spec().cells()
    b = small_spec().cells()
    ids = [c.cell_id for c in a]
    assert ids == [c.cell_id for c in b]  # content-hash, not object identity
    assert len(set(ids)) == len(ids)
    # different grid coordinates or config → different id
    changed = small_spec(overrides={**FAST, "n_nodes": 30}).cells()
    assert set(ids).isdisjoint(c.cell_id for c in changed)


# ----------------------------------------------------------------------
# execution + resume (one real campaign, shared by the tests below)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("campaign")
    spec = small_spec()
    report = run_campaign(spec, directory, max_workers=2)
    return directory, spec, report


def test_run_writes_one_doc_per_cell(campaign_dir):
    directory, spec, report = campaign_dir
    cells = spec.cells()
    assert sorted(report.ran) == sorted(c.cell_id for c in cells)
    assert report.skipped == ()
    files = sorted((directory / "cells").glob("*.json"))
    assert len(files) == len(cells)
    assert (directory / SPEC_FILENAME).exists()


def test_run_used_multiple_workers(campaign_dir):
    _, _, report = campaign_dir
    assert len(report.worker_pids) >= 2  # observable parallelism


def test_cell_documents_are_complete(campaign_dir):
    directory, spec, _ = campaign_dir
    by_id = {c.cell_id: c for c in spec.cells()}
    for path in (directory / "cells").glob("*.json"):
        doc = load_cell_doc(path)
        cell = by_id[doc["cell"]["id"]]
        assert doc["cell"]["scenario"] == "fig4a"
        assert doc["cell"]["label"] == cell.label
        assert doc["cell"]["worker_pid"] > 0
        # the persisted config round-trips to the exact cell config
        assert config_from_dict(doc["run"]["config"]) == cell.config
        assert doc["run"]["metrics"]["generated"] > 0


def test_second_run_skips_every_completed_cell(campaign_dir):
    directory, spec, _ = campaign_dir
    again = run_campaign(spec, directory, max_workers=2)
    assert again.ran == ()
    assert sorted(again.skipped) == sorted(c.cell_id for c in spec.cells())
    assert again.worker_pids == ()


def test_resume_runs_only_missing_cells(campaign_dir):
    directory, spec, _ = campaign_dir
    victim = spec.cells()[0]
    (directory / "cells" / victim.filename).unlink()
    resumed = run_campaign(spec, directory, max_workers=1)
    assert resumed.ran == (victim.cell_id,)
    assert len(resumed.skipped) == len(spec.cells()) - 1
    assert (directory / "cells" / victim.filename).exists()


def test_corrupt_cell_is_rerun(campaign_dir):
    directory, spec, _ = campaign_dir
    victim = spec.cells()[1]
    (directory / "cells" / victim.filename).write_text("{ truncated")
    resumed = run_campaign(spec, directory, max_workers=1)
    assert resumed.ran == (victim.cell_id,)
    load_cell_doc(directory / "cells" / victim.filename)  # valid again


def test_growing_the_grid_runs_only_new_seeds(campaign_dir):
    directory, spec, _ = campaign_dir
    grown = small_spec(seeds=[1, 2, 3])
    report = run_campaign(grown, directory, max_workers=2)
    assert len(report.ran) == len(FIG4_PROTOCOLS)  # the seed-3 cells only
    assert all(c.seed == 3 for c in grown.cells() if c.cell_id in report.ran)


def test_status_reflects_disk(campaign_dir):
    directory, spec, _ = campaign_dir
    status = campaign_status(directory)  # spec loaded from campaign.json
    assert status.spec.name == spec.name
    assert status.complete or not status.missing


def test_prepopulated_cell_is_skipped_and_aggregated(tmp_path):
    spec = small_spec(seeds=[5, 6])
    cells = spec.cells()
    planted = cells[0]
    cells_dir = tmp_path / "cells"
    cells_dir.mkdir()
    fake_metrics = {
        "t_ratio": 0.777, "f_ratio": 0.1, "fairness": 0.9,
        "per_node_msg_cost": 3.0, "generated": 10, "finished": 7, "failed": 1,
    }
    save_cell_doc(
        cells_dir / planted.filename,
        planted.meta(),
        {"schema": SCHEMA_VERSION, "metrics": fake_metrics, "series": {}},
    )
    report = run_campaign(spec, tmp_path, max_workers=2)
    assert planted.cell_id not in report.ran
    assert planted.cell_id in report.skipped
    summary = campaign_summary(load_campaign_cells(tmp_path))
    stats = summary[("fig4a", "tiny")][planted.label]["t_ratio"]
    assert 0.777 in stats.values
    assert len(stats.values) == 2  # the planted seed plus the simulated one


# ----------------------------------------------------------------------
# aggregation (persisted documents only)
# ----------------------------------------------------------------------
def test_summary_needs_no_simulation(campaign_dir, monkeypatch):
    directory, _, _ = campaign_dir
    # report/summary must work from the documents alone
    monkeypatch.setattr(
        "repro.experiments.campaign.run_config",
        lambda *_: (_ for _ in ()).throw(AssertionError("re-simulated!")),
    )
    summary = campaign_summary(load_campaign_cells(directory))
    stats_by_label = summary[("fig4a", "tiny")]
    assert set(stats_by_label) == set(FIG4_PROTOCOLS)
    for stats in stats_by_label.values():
        ts = stats["t_ratio"]
        assert len(ts.values) == 3  # seeds 1, 2 and the grown seed 3
        lo, hi = ts.ci95()
        assert lo <= ts.mean <= hi


def test_summary_renders(campaign_dir):
    from repro.experiments.reporting import render_campaign

    directory, _, _ = campaign_dir
    text = render_campaign(campaign_summary(load_campaign_cells(directory)))
    assert "fig4a @ tiny" in text
    assert "±" in text
    assert "newscast" in text


def test_load_campaign_cells_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_campaign_cells(tmp_path / "nope")
    with pytest.raises(FileNotFoundError):
        campaign_status(tmp_path)


# ----------------------------------------------------------------------
# override semantics
# ----------------------------------------------------------------------
def test_overrides_may_change_the_scenario_regime():
    # demand-ratio ablation of a protocol grid: override wins
    cells = small_spec(overrides={**FAST, "demand_ratio": 0.33}).cells()
    assert all(c.config.demand_ratio == 0.33 for c in cells)


def test_override_of_a_swept_field_is_rejected_not_ignored():
    with pytest.raises(ValueError, match="fig8 sweeps churn_degree"):
        CampaignSpec(
            scenarios=["fig8"], scales=["tiny"], seeds=[1],
            overrides={**FAST, "churn_degree": 0.1},
        )


def test_n_nodes_override_rebases_the_table3_sweep():
    spec = CampaignSpec(
        scenarios=["table3"], scales=["tiny"], seeds=[1],
        overrides={"n_nodes": 10, "duration": 2000.0},
    )
    populations = sorted(c.config.n_nodes for c in spec.cells())
    assert populations == [10, 20, 30, 40, 50, 60]  # 1x..6x of the override


def test_grid_reserved_overrides_rejected():
    with pytest.raises(ValueError, match="'seeds' spec field"):
        small_spec(overrides={**FAST, "seed": 3})
    with pytest.raises(ValueError, match="'protocols' spec field"):
        small_spec(overrides={**FAST, "protocol": "hid-can"})


def test_bad_override_values_fail_at_spec_construction():
    with pytest.raises(ValueError, match="at least 2 nodes"):
        small_spec(overrides={**FAST, "n_nodes": 1})


# ----------------------------------------------------------------------
# failure isolation
# ----------------------------------------------------------------------
def _run_cell_explode_newscast(config_doc):
    """Worker stand-in: fails one curve, runs the rest for real."""
    if config_doc["protocol"] == "newscast":
        raise RuntimeError("injected failure")
    import os

    from repro.experiments.config import config_from_dict
    from repro.experiments.runner import run_config
    from repro.experiments.store import result_to_dict

    return result_to_dict(run_config(config_from_dict(config_doc))), os.getpid()


def test_failed_cell_does_not_discard_completed_cells(tmp_path, monkeypatch):
    import repro.experiments.campaign as campaign_mod

    monkeypatch.setattr(campaign_mod, "_run_cell", _run_cell_explode_newscast)
    spec = small_spec(seeds=[11])
    report = run_campaign(spec, tmp_path, max_workers=2)
    assert len(report.failed) == 1
    failed_id, error = report.failed[0]
    assert "injected failure" in error
    assert len(report.ran) == len(FIG4_PROTOCOLS) - 1  # others persisted
    assert len(list((tmp_path / "cells").glob("*.json"))) == len(report.ran)
    # resume (with the failure gone) retries exactly the failed cell
    monkeypatch.undo()
    resumed = run_campaign(spec, tmp_path, max_workers=1)
    assert resumed.ran == (failed_id,)
    assert resumed.failed == ()


# ----------------------------------------------------------------------
# stale-cell exclusion
# ----------------------------------------------------------------------
def test_spec_filter_excludes_stale_cells(tmp_path):
    spec_a = small_spec(seeds=[1], protocols=["newscast"])
    spec_b = small_spec(
        seeds=[1], protocols=["newscast"], overrides={**FAST, "n_nodes": 30}
    )
    run_campaign(spec_a, tmp_path, max_workers=1)
    run_campaign(spec_b, tmp_path, max_workers=1)
    assert len(load_campaign_cells(tmp_path)) == 2  # both generations on disk
    filtered = load_campaign_cells(tmp_path, spec_b)
    assert len(filtered) == 1
    assert filtered[0]["run"]["config"]["n_nodes"] == 30
