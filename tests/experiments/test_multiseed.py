"""Tests for multi-seed replication and ordering confidence."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.multiseed import (
    MetricStats,
    ordering_confidence,
    run_seeds,
)

MICRO = ExperimentConfig(
    n_nodes=30, duration=2500.0, demand_ratio=0.4, protocol="hid-can"
)


@pytest.fixture(scope="module")
def replicas():
    return run_seeds(MICRO, seeds=[1, 2, 3])


def test_run_seeds_produces_one_result_per_seed(replicas):
    assert len(replicas.results) == 3
    # distinct seeds → (almost surely) distinct workloads
    gens = {r.generated for r in replicas.results}
    assert len(gens) >= 2


def test_empty_seed_list_rejected():
    with pytest.raises(ValueError):
        run_seeds(MICRO, seeds=[])


def test_metric_stats_aggregation(replicas):
    stats = replicas.metric("t_ratio")
    assert len(stats.values) == 3
    assert min(stats.values) <= stats.mean <= max(stats.values)
    lo, hi = stats.ci95()
    assert lo <= stats.mean <= hi


def test_unknown_metric_rejected(replicas):
    with pytest.raises(ValueError):
        replicas.metric("latency_p99")


def test_summary_covers_headline_metrics(replicas):
    summary = replicas.summary()
    assert set(summary) == {
        "t_ratio", "f_ratio", "fairness", "msg_per_node", "query_timeouts",
        "messages_per_query", "cache_hit_ratio",
    }


def test_metric_stats_single_value():
    stats = MetricStats("x", (0.5,))
    assert stats.std == 0.0
    assert stats.ci95() == (0.5, 0.5)


def test_ordering_confidence_bounds():
    a = MetricStats("x", (1.0, 2.0))
    b = MetricStats("x", (3.0, 4.0))

    class Fake:
        def __init__(self, stats):
            self._stats = stats

        def metric(self, name):
            return self._stats

    assert ordering_confidence(Fake(a), Fake(b), "x", "less") == 1.0
    assert ordering_confidence(Fake(a), Fake(b), "x", "greater") == 0.0
    with pytest.raises(ValueError):
        ordering_confidence(Fake(a), Fake(b), "x", "equal")
