"""Integration tests: full SOC simulations at micro scale.

These exercise the complete task lifecycle — query, best-fit selection,
placement, PSM execution, completion — for every protocol, plus churn,
admission policies and determinism.
"""

import numpy as np
import pytest

from repro.cloud.resources import dominates
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation

MICRO = dict(n_nodes=40, duration=4000.0, demand_ratio=0.4, seed=11)


def run(**overrides):
    cfg = ExperimentConfig(**{**MICRO, **overrides})
    return SOCSimulation(cfg).run()


@pytest.mark.parametrize(
    "protocol",
    ["hid-can", "sid-can", "hid-can+sos", "sid-can+vd", "newscast",
     "khdn-can", "randomwalk-can", "mercury", "inscan-rq"],
)
def test_every_protocol_completes_a_run(protocol):
    res = run(protocol=protocol)
    assert res.generated > 0
    assert res.finished + res.failed <= res.generated
    assert 0.0 <= res.t_ratio <= 1.0
    assert 0.0 <= res.f_ratio <= 1.0
    assert res.traffic_total > 0
    assert res.per_node_msg_cost > 0


def test_pid_can_places_and_finishes_tasks():
    res = run(protocol="hid-can")
    assert res.placed > 0
    assert res.finished > 0
    assert res.efficiencies  # finished tasks produced efficiency samples
    assert all(e > 0 for e in res.efficiencies)


def test_determinism_same_seed_same_result():
    a = run(protocol="hid-can")
    b = run(protocol="hid-can")
    assert a.generated == b.generated
    assert a.finished == b.finished
    assert a.failed == b.failed
    assert a.traffic_total == b.traffic_total
    assert a.series["t_ratio"].values == b.series["t_ratio"].values


def test_different_seeds_differ():
    a = run(protocol="hid-can", seed=1)
    b = run(protocol="hid-can", seed=2)
    assert (
        a.traffic_total != b.traffic_total or a.finished != b.finished
    )


def test_series_sampled_on_period():
    res = run(protocol="hid-can", sample_period=1000.0)
    assert res.series["t_ratio"].times == [1000.0, 2000.0, 3000.0, 4000.0]
    assert len(res.series["f_ratio"]) == 4
    assert len(res.series["fairness"]) == 4


def test_t_plus_f_ratio_bounded():
    res = run(protocol="hid-can")
    for t, f in zip(res.series["t_ratio"].values, res.series["f_ratio"].values):
        assert t + f <= 1.0 + 1e-9


def test_strict_admission_never_oversubscribes():
    placements = []

    class Checked(SOCSimulation):
        def _admit(self, task, target):
            placements.append(
                dominates(self.engine.availability(target), task.expectation)
            )
            super()._admit(task, target)

    cfg = ExperimentConfig(**{**MICRO, "admission": "strict"})
    Checked(cfg).run()
    assert placements, "no tasks placed"
    assert all(placements)


def test_lenient_admission_allows_contention():
    # With admission="none" and a high demand ratio, some placements land
    # on nodes that no longer dominate the demand — the §I contention mode.
    violations = []

    class Checked(SOCSimulation):
        def _admit(self, task, target):
            violations.append(
                not dominates(self.engine.availability(target), task.expectation)
            )
            super()._admit(task, target)

    cfg = ExperimentConfig(
        n_nodes=30, duration=6000.0, demand_ratio=0.8, seed=5,
        admission="none", protocol="hid-can",
    )
    Checked(cfg).run()
    assert any(violations)


def test_local_first_executes_locally_when_possible():
    res_local = run(protocol="hid-can", local_first=True)
    res_remote = run(protocol="hid-can", local_first=False)
    # local-first short-circuits queries, so query traffic shrinks
    local_q = res_local.traffic_by_kind.get("duty-query", 0)
    remote_q = res_remote.traffic_by_kind.get("duty-query", 0)
    assert local_q < remote_q


def test_churn_keeps_population_and_repairs_overlay():
    cfg = ExperimentConfig(
        **{**MICRO, "churn_degree": 0.4, "protocol": "hid-can"}
    )
    sim = SOCSimulation(cfg)
    res = sim.run()
    assert len(sim._alive) == cfg.n_nodes  # departures matched by joins
    sim.protocol.overlay.check_invariants()
    assert res.generated > 0
    assert res.peak_population >= cfg.n_nodes


def test_churn_kills_tasks_ablation():
    cfg = ExperimentConfig(
        **{**MICRO, "churn_degree": 0.5, "churn_kills_tasks": True}
    )
    res = SOCSimulation(cfg).run()
    assert res.evicted > 0


def test_gossip_cmax_mode_runs():
    res = run(protocol="hid-can", cmax_mode="gossip")
    assert res.traffic_by_kind.get("aggregation", 0) > 0
    assert res.generated > 0


def test_summary_shape():
    res = run(protocol="hid-can")
    summary = res.summary()
    assert set(summary) >= {
        "t_ratio", "f_ratio", "fairness", "per_node_msg_cost", "query_timeouts"
    }


@pytest.mark.parametrize("protocol", ["randomwalk-can", "khdn-can", "mercury"])
def test_baselines_survive_churn_with_timeout_accounting(protocol):
    """The ROADMAP hang repro at runner level: the once-timeout-less
    baselines must finish a churn run, with every timed-out query counted
    once (the failed/finished invariant stays intact)."""
    res = run(protocol=protocol, churn_degree=0.75)
    assert res.generated > 0
    assert res.finished + res.failed <= res.generated
    assert res.query_timeouts >= 0
    # expired queries can't outnumber the queries submitted
    assert res.query_timeouts <= res.generated


def test_failsafe_prevents_task_leaks():
    # Every generated task must resolve to finished/failed/placed-running.
    res = run(protocol="hid-can")
    resolved = res.finished + res.failed
    still_running = res.placed - res.finished
    assert resolved + still_running == pytest.approx(res.generated, abs=res.generated)
    assert res.failed + res.placed >= res.generated * 0.9  # few in flight at end


# ----------------------------------------------------------------------
# host-engine equivalence at scenario level
# ----------------------------------------------------------------------
def _cross_check(cfg):
    """Run one config on both execution substrates; they must be
    indistinguishable (identical completion ordering makes every metric
    identical, so compare the full metric surface)."""
    from repro.testing import ReferenceHostEngine

    vec = SOCSimulation(cfg).run()
    ref = SOCSimulation(cfg, engine=ReferenceHostEngine()).run()
    assert vec.summary() == pytest.approx(ref.summary(), abs=1e-9, nan_ok=True)
    assert vec.generated == ref.generated
    assert vec.placed == ref.placed
    assert vec.evicted == ref.evicted
    assert vec.traffic_by_kind == ref.traffic_by_kind
    assert vec.balance == ref.balance
    for key in vec.series:
        assert vec.series[key].times == ref.series[key].times
        assert vec.series[key].values == pytest.approx(
            ref.series[key].values, abs=1e-9, nan_ok=True
        )
    assert vec.efficiencies == pytest.approx(ref.efficiencies, abs=1e-9)
    return vec


def test_engine_matches_reference_on_tiny_scenario_cell():
    """Tier-1 cross-check: a real fig4a cell at `tiny` scale runs bit-for-
    bit identically on HostEngine and the scalar reference substrate."""
    from repro.experiments.scenarios import scenario_configs

    cfg = scenario_configs("fig4a", scale="tiny", seed=7)["sid-can"]
    res = _cross_check(cfg)
    assert res.generated > 0 and res.placed > 0


def test_engine_matches_reference_under_churn_eviction():
    """The eviction/recovery path (bulk evict_all + checkpoint restarts)
    must also be substrate-independent."""
    cfg = ExperimentConfig(
        **{**MICRO, "churn_degree": 0.5, "churn_kills_tasks": True,
           "checkpoint_enabled": True, "checkpoint_period": 500.0}
    )
    res = _cross_check(cfg)
    assert res.evicted > 0


# ----------------------------------------------------------------------
# CAN-overlay equivalence at scenario level
# ----------------------------------------------------------------------
def _cross_check_overlay(cfg):
    """Run one config on the vectorized and the scalar CAN substrates;
    identical routing paths make every downstream event (and so every
    metric) identical."""
    from repro.testing import ReferenceCANOverlay

    vec = SOCSimulation(cfg).run()
    ref = SOCSimulation(cfg, overlay_cls=ReferenceCANOverlay).run()
    assert vec.summary() == pytest.approx(ref.summary(), abs=1e-9, nan_ok=True)
    assert vec.generated == ref.generated
    assert vec.placed == ref.placed
    assert vec.traffic_by_kind == ref.traffic_by_kind
    for key in vec.series:
        assert vec.series[key].times == ref.series[key].times
        assert vec.series[key].values == pytest.approx(
            ref.series[key].values, abs=1e-9, nan_ok=True
        )
    return vec


@pytest.mark.parametrize("protocol", ["hid-can", "inscan-rq"])
def test_overlay_matches_reference_on_micro_run(protocol):
    """Tier-1 cross-check of the ZoneStore tentpole: a micro run is
    bit-for-bit identical on the vectorized overlay and the verbatim
    scalar reference overlay, for both the PID-CAN query chain and a
    routing-heavy flooding baseline."""
    cfg = ExperimentConfig(**{**MICRO, "protocol": protocol})
    res = _cross_check_overlay(cfg)
    assert res.generated > 0


def test_overlay_matches_reference_under_churn():
    """Join/leave repair (takeover, rebinds, direction caches) must keep
    the substrates aligned while routes and tables refresh mid-churn."""
    cfg = ExperimentConfig(
        **{**MICRO, "protocol": "sid-can", "churn_degree": 0.5}
    )
    _cross_check_overlay(cfg)
