"""Tests for the command-line interface."""

import pytest

from repro.experiments import cli


def test_parser_accepts_known_scenarios():
    parser = cli.build_parser()
    args = parser.parse_args(["fig5", "--scale", "tiny", "--seed", "7"])
    assert args.scenario == "fig5"
    assert args.scale == "tiny"
    assert args.seed == 7


def test_parser_rejects_unknown_scenario():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_parser_rejects_unknown_scale():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig5", "--scale", "galactic"])


def test_parser_accepts_burst_scenario_and_factor():
    parser = cli.build_parser()
    args = parser.parse_args(["burst", "--scale", "tiny", "--burst-factor", "4"])
    assert args.scenario == "burst"
    assert args.burst_factor == 4.0


def test_burst_factor_rejected_for_other_scenarios(capsys):
    rc = cli.main(["fig5", "--burst-factor", "4"])
    assert rc == 2
    assert "burst" in capsys.readouterr().err


def test_main_forwards_burst_factor(monkeypatch, capsys):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    seen = {}

    def stub_run_scenario(name, scale, seed, **kwargs):
        seen.update(name=name, **kwargs)
        cfg = ExperimentConfig(
            n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=seed,
            sample_period=1000.0,
        )
        return {"hid-can": SOCSimulation(cfg).run()}

    monkeypatch.setattr("repro.experiments.cli.run_scenario", stub_run_scenario)
    rc = cli.main(["burst", "--scale", "tiny", "--burst-factor", "3"])
    captured = capsys.readouterr()
    assert rc == 0
    assert seen == {"name": "burst", "burst_factor": 3.0}
    assert "query delay" in captured.out  # burst renders the latency table


def test_main_renders_scenario(monkeypatch, capsys):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    def stub_scenario(scale="small", seed=42):
        cfg = ExperimentConfig(
            n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=seed,
            sample_period=1000.0,
        )
        return {"hid-can": SOCSimulation(cfg).run()}

    monkeypatch.setitem(cli.SCENARIOS, "fig5", stub_scenario)
    monkeypatch.setattr(
        "repro.experiments.cli.run_scenario",
        lambda name, scale, seed: cli.SCENARIOS[name](scale=scale, seed=seed),
    )
    rc = cli.main(["fig5", "--scale", "tiny", "--seed", "1"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "throughput ratio" in captured.out
    assert "wall clock" in captured.out


# ----------------------------------------------------------------------
# campaign subcommand
# ----------------------------------------------------------------------
def test_parse_cli_dispatches_both_families():
    args = cli.parse_cli(["fig5", "--scale", "tiny"])
    assert args.scenario == "fig5"
    args = cli.parse_cli(
        ["campaign", "run", "--scenarios", "fig4a", "--seeds", "1", "2"]
    )
    assert args.command == "run"
    assert args.scenarios == ["fig4a"]
    assert args.seeds == [1, 2]


def test_campaign_parser_rejects_bad_input():
    with pytest.raises(SystemExit):
        cli.parse_cli(["campaign"])  # subcommand required
    with pytest.raises(SystemExit):
        cli.parse_cli(["campaign", "run", "--scenarios", "fig99"])
    with pytest.raises(SystemExit):
        cli.parse_cli(["campaign", "report"])  # --dir required


def test_parse_overrides():
    assert cli._parse_overrides(["n_nodes=60", "duration=3600", "protocol=hid-can"]) \
        == {"n_nodes": 60, "duration": 3600, "protocol": "hid-can"}
    with pytest.raises(ValueError):
        cli._parse_overrides(["n_nodes"])


def test_campaign_run_status_report_end_to_end(tmp_path, capsys):
    directory = str(tmp_path / "camp")
    run_args = [
        "campaign", "run", "--scenarios", "fig4a", "--scales", "tiny",
        "--seeds", "1", "--protocols", "newscast", "sid-can",
        "--override", "n_nodes=25", "duration=2500", "sample_period=1000",
        "--dir", directory, "--workers", "2",
    ]
    assert cli.main(run_args) == 0
    out = capsys.readouterr().out
    assert "2 cell(s) run" in out

    # a second identical invocation re-runs zero cells
    assert cli.main(run_args) == 0
    assert "0 cell(s) run, 2 skipped" in capsys.readouterr().out

    assert cli.main(["campaign", "status", "--dir", directory]) == 0
    assert "2/2 complete" in capsys.readouterr().out

    assert cli.main(["campaign", "report", "--dir", directory, "--chart"]) == 0
    out = capsys.readouterr().out
    assert "fig4a @ tiny" in out and "±" in out and "newscast" in out


def test_campaign_run_rejects_bad_spec(tmp_path, capsys):
    rc = cli.main([
        "campaign", "run", "--scenarios", "fig4a",
        "--override", "nonsense_field=1", "--dir", str(tmp_path / "x"),
    ])
    assert rc == 2
    assert "invalid campaign spec" in capsys.readouterr().err
    # bad override *values* are caught at spec time too, not mid-campaign
    rc = cli.main([
        "campaign", "run", "--scenarios", "fig4a",
        "--override", "n_nodes=1", "--dir", str(tmp_path / "x"),
    ])
    assert rc == 2
    assert "invalid campaign spec" in capsys.readouterr().err


def test_campaign_report_missing_dir(tmp_path, capsys):
    rc = cli.main(["campaign", "report", "--dir", str(tmp_path / "nothing")])
    assert rc == 2
    assert "cells" in capsys.readouterr().err
