"""Tests for the command-line interface."""

import pytest

from repro.experiments import cli


def test_parser_accepts_known_scenarios():
    parser = cli.build_parser()
    args = parser.parse_args(["fig5", "--scale", "tiny", "--seed", "7"])
    assert args.scenario == "fig5"
    assert args.scale == "tiny"
    assert args.seed == 7


def test_parser_rejects_unknown_scenario():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_parser_rejects_unknown_scale():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig5", "--scale", "galactic"])


def test_parser_accepts_burst_scenario_and_factor():
    parser = cli.build_parser()
    args = parser.parse_args(["burst", "--scale", "tiny", "--burst-factor", "4"])
    assert args.scenario == "burst"
    assert args.burst_factor == 4.0


def test_burst_factor_rejected_for_other_scenarios(capsys):
    rc = cli.main(["fig5", "--burst-factor", "4"])
    assert rc == 2
    assert "burst" in capsys.readouterr().err


def test_main_forwards_burst_factor(monkeypatch, capsys):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    seen = {}

    def stub_run_scenario(name, scale, seed, **kwargs):
        seen.update(name=name, **kwargs)
        cfg = ExperimentConfig(
            n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=seed,
            sample_period=1000.0,
        )
        return {"hid-can": SOCSimulation(cfg).run()}

    monkeypatch.setattr("repro.experiments.cli.run_scenario", stub_run_scenario)
    rc = cli.main(["burst", "--scale", "tiny", "--burst-factor", "3"])
    captured = capsys.readouterr()
    assert rc == 0
    assert seen == {"name": "burst", "burst_factor": 3.0}
    assert "query delay" in captured.out  # burst renders the latency table


def test_main_renders_scenario(monkeypatch, capsys):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    def stub_scenario(scale="small", seed=42):
        cfg = ExperimentConfig(
            n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=seed,
            sample_period=1000.0,
        )
        return {"hid-can": SOCSimulation(cfg).run()}

    monkeypatch.setitem(cli.SCENARIOS, "fig5", stub_scenario)
    monkeypatch.setattr(
        "repro.experiments.cli.run_scenario",
        lambda name, scale, seed: cli.SCENARIOS[name](scale=scale, seed=seed),
    )
    rc = cli.main(["fig5", "--scale", "tiny", "--seed", "1"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "throughput ratio" in captured.out
    assert "wall clock" in captured.out
