"""Tests for the command-line interface."""

import pytest

from repro.experiments import cli


def test_parser_accepts_known_scenarios():
    parser = cli.build_parser()
    args = parser.parse_args(["fig5", "--scale", "tiny", "--seed", "7"])
    assert args.scenario == "fig5"
    assert args.scale == "tiny"
    assert args.seed == 7


def test_parser_rejects_unknown_scenario():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig99"])


def test_parser_rejects_unknown_scale():
    parser = cli.build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["fig5", "--scale", "galactic"])


def test_main_renders_scenario(monkeypatch, capsys):
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    def stub_scenario(scale="small", seed=42):
        cfg = ExperimentConfig(
            n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=seed,
            sample_period=1000.0,
        )
        return {"hid-can": SOCSimulation(cfg).run()}

    monkeypatch.setitem(cli.SCENARIOS, "fig5", stub_scenario)
    monkeypatch.setattr(
        "repro.experiments.cli.run_scenario",
        lambda name, scale, seed: cli.SCENARIOS[name](scale=scale, seed=seed),
    )
    rc = cli.main(["fig5", "--scale", "tiny", "--seed", "1"])
    captured = capsys.readouterr()
    assert rc == 0
    assert "throughput ratio" in captured.out
    assert "wall clock" in captured.out
