"""End-to-end tests for the hot-range caching scenario (docs/caching.md).

Two contracts are pinned here.  First, the opt-in contract: with
``cache_policy=None`` (the default) a run is *bit-identical* to the
pre-cache protocol — :func:`repro.testing.assert_cache_off_equivalent`
checks that from both ends by also swapping the RangeCache-backed PIList
for the verbatim seed scalar.  Second, the cache-on path: the hotrange
grid runs, produces cache metrics, stays deterministic, and the metrics
survive the multi-seed / persistence aggregation seams.
"""

from dataclasses import replace

from repro.core.protocol import PIDCANParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.multiseed import run_seeds, stats_from_metric_docs
from repro.experiments.reporting import summary_table
from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import (
    HOTRANGE_POLICIES,
    SCENARIO_CONFIGS,
    SCENARIOS,
    hotrange_configs,
)
from repro.experiments.store import result_to_dict
from repro.testing import assert_cache_off_equivalent


def _cell(**overrides) -> ExperimentConfig:
    params = {
        "protocol": "hid-can",
        "demand_ratio": 0.5,
        "zipf_s": 1.0,
        **overrides,
    }
    return ExperimentConfig(**params)


def _hot(policy, **overrides) -> ExperimentConfig:
    params = {
        "cache_policy": policy,
        "n_nodes": 150,
        "duration": 1500.0,
        "sample_period": 500.0,
        "burst_factor": 4.0,
        **overrides,
    }
    return _cell(**params)


def _run(config: ExperimentConfig):
    return SOCSimulation(config).run()


# ----------------------------------------------------------------------
# cache-off identity (the opt-in contract)
# ----------------------------------------------------------------------
def test_cache_off_identical_at_paper_scale():
    """The acceptance cell: a paper-population (2000 node) HID-CAN run
    with the cache left off is metric- and series-identical whether the
    PIList is the RangeCache TTL policy or the verbatim seed scalar."""
    stock, _ = assert_cache_off_equivalent(
        _cell(n_nodes=2000, duration=1200.0, sample_period=400.0, seed=11)
    )
    assert stock.generated > 0
    assert stock.finished > 0
    assert stock.cache_lookups == 0  # no cache code ran at all


def test_cache_off_identical_under_churn():
    """Churn exercises PIList discard/purge under node death — the
    sequences most likely to betray a divergent eviction order."""
    stock, _ = assert_cache_off_equivalent(
        _cell(
            n_nodes=100,
            duration=4000.0,
            sample_period=1000.0,
            seed=7,
            churn_degree=0.25,
            churn_lifetime=1500.0,
        )
    )
    assert stock.generated > 0


def test_cache_off_identical_with_skew_only():
    """Zipf demand skew alone (no cache) must not disturb the protocol
    either — the workload factory is the only changed draw source."""
    stock, _ = assert_cache_off_equivalent(
        _cell(n_nodes=80, duration=3000.0, sample_period=1000.0, seed=3)
    )
    assert stock.generated > 0


# ----------------------------------------------------------------------
# cache-on behaviour
# ----------------------------------------------------------------------
def test_cache_on_reduces_messages_per_query():
    off = _run(_hot(None))
    lru = _run(_hot("lru"))
    assert lru.cache_lookups > 0
    assert 0.0 < lru.cache_hit_ratio <= 1.0
    assert lru.messages_per_query < off.messages_per_query
    assert off.cache_hit_ratio != off.cache_hit_ratio  # NaN when off


def test_replication_triggers_and_counts():
    repl = _run(_hot("lru", cache_replication=True,
                     replication_threshold=4, replication_window=400.0))
    assert repl.replications > 0
    assert "index-replica" in repl.traffic_by_kind
    assert repl.traffic_by_kind["index-replica"] > 0


def test_cache_on_runs_are_deterministic():
    config = _hot("adaptive", cache_replication=True)
    a, b = _run(config), _run(config)
    assert a.t_ratio == b.t_ratio
    assert a.traffic_by_kind == b.traffic_by_kind
    assert a.cache_hits == b.cache_hits
    assert a.cache_lookups == b.cache_lookups
    assert a.replications == b.replications
    assert a.query_latency == b.query_latency


def test_policies_are_distinct_configs():
    # Tiny caches force evictions; policies must at least be accepted and
    # produce a full metric set each.
    for policy in HOTRANGE_POLICIES:
        res = _run(_hot(policy, cache_size=4, n_nodes=80, duration=900.0,
                        sample_period=300.0))
        assert res.cache_lookups > 0, policy


# ----------------------------------------------------------------------
# scenario grid + metric seams
# ----------------------------------------------------------------------
def test_hotrange_grid_shape():
    grid = hotrange_configs(scale="small", seed=42)
    assert set(grid) == {"off"} | {
        p + suffix for p in HOTRANGE_POLICIES for suffix in ("", "+repl")
    }
    assert grid["off"].cache_policy is None
    for policy in HOTRANGE_POLICIES:
        assert grid[policy].cache_policy == policy
        assert not grid[policy].cache_replication
        assert grid[policy + "+repl"].cache_replication
    for config in grid.values():
        assert config.zipf_s == 1.0
        assert config.protocol == "hid-can"
    assert "hotrange" in SCENARIOS and "hotrange" in SCENARIO_CONFIGS


def test_cache_metrics_survive_store_and_summary():
    res = _run(_hot("lfu", n_nodes=80, duration=900.0, sample_period=300.0))
    doc = result_to_dict(res)["metrics"]
    for key in ("messages_per_query", "cache_hit_ratio", "cache_regret",
                "cache_hits", "cache_lookups", "replications"):
        assert key in doc
    assert doc["cache_hit_ratio"] == res.cache_hit_ratio
    summary = res.summary()
    assert summary["messages_per_query"] == res.messages_per_query
    assert summary["cache_hit_ratio"] == res.cache_hit_ratio
    table = summary_table({"lfu": res})
    assert "msgs/q" in table and "hit%" in table


def test_cache_metrics_survive_multiseed_aggregation():
    config = _hot("ttl", n_nodes=80, duration=900.0, sample_period=300.0)
    multi = run_seeds(config, seeds=(1, 2))
    summary = multi.summary()
    assert len(summary["messages_per_query"].values) == 2
    assert all(v > 0 for v in summary["messages_per_query"].values)
    assert all(0 <= v <= 1 for v in summary["cache_hit_ratio"].values)
    docs = [result_to_dict(r)["metrics"] for r in multi.results]
    stats = stats_from_metric_docs(docs)
    assert stats["messages_per_query"].mean == summary["messages_per_query"].mean
    assert stats["cache_hit_ratio"].mean == summary["cache_hit_ratio"].mean
    # Pre-cache documents lack the new names: they are skipped, not fatal.
    legacy = [{k: v for k, v in doc.items() if not k.startswith("cache")}
              for doc in docs]
    assert "cache_hit_ratio" not in stats_from_metric_docs(legacy)


def test_compact_dtypes_compose_with_cache():
    config = _hot("lru", n_nodes=80, duration=900.0, sample_period=300.0,
                  compact_dtypes=True,
                  pidcan=PIDCANParams(tick_mode="cohort", phase_buckets=16))
    res = _run(config)
    assert res.cache_lookups > 0


def test_hotrange_overrides_win():
    grid = hotrange_configs(scale="small", seed=1, n_nodes=64, cache_size=16)
    assert all(c.n_nodes == 64 for c in grid.values())
    assert all(c.cache_size == 16 for c in grid.values())
    assert {c.seed for c in grid.values()} == {1}


def test_cache_off_grid_cell_has_nan_metrics():
    grid = hotrange_configs(scale="small", seed=2)
    off = replace(grid["off"], n_nodes=80, duration=600.0,
                  sample_period=300.0)
    res = _run(off)
    assert res.cache_lookups == 0
    assert res.cache_hit_ratio != res.cache_hit_ratio
    assert res.cache_regret != res.cache_regret
    assert res.messages_per_query == res.query_latency.mean_messages
