"""Tests for experiment configuration and presets."""

import pytest

from repro.experiments.config import SCALES, ExperimentConfig, env_scale


def test_scale_presets():
    paper = ExperimentConfig.at_scale("paper")
    assert (paper.n_nodes, paper.duration) == (2000, 86400.0)
    tiny = ExperimentConfig.at_scale("tiny")
    assert tiny.n_nodes < paper.n_nodes
    assert set(SCALES) == {"paper", "small", "tiny"}


def test_at_scale_applies_overrides():
    cfg = ExperimentConfig.at_scale("tiny", protocol="newscast", demand_ratio=0.25)
    assert cfg.protocol == "newscast"
    assert cfg.demand_ratio == 0.25


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        ExperimentConfig.at_scale("huge")


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(n_nodes=1)
    with pytest.raises(ValueError):
        ExperimentConfig(admission="maybe")
    with pytest.raises(ValueError):
        ExperimentConfig(cmax_mode="oracle")
    with pytest.raises(ValueError):
        ExperimentConfig(churn_degree=1.0)


def test_with_protocol_merges_kwargs():
    cfg = ExperimentConfig().with_protocol("khdn-can", k_hops=3)
    assert cfg.protocol == "khdn-can"
    assert cfg.protocol_kwargs == {"k_hops": 3}


def test_describe_mentions_key_facts():
    cfg = ExperimentConfig.at_scale("tiny", demand_ratio=0.5, churn_degree=0.25)
    text = cfg.describe()
    assert "0.5" in text and "churn" in text


def test_env_scale(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert env_scale("tiny") == "tiny"
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert env_scale() == "paper"
    monkeypatch.setenv("REPRO_SCALE", "galactic")
    with pytest.raises(ValueError):
        env_scale()


def test_burst_factor_scales_effective_interarrival():
    cfg = ExperimentConfig(mean_interarrival=3000.0, burst_factor=8.0)
    assert cfg.effective_interarrival == pytest.approx(375.0)
    assert ExperimentConfig().effective_interarrival == pytest.approx(3000.0)
    assert "burst=8x" in cfg.describe()
    assert "burst" not in ExperimentConfig().describe()


def test_burst_factor_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(burst_factor=0.5)
    with pytest.raises(ValueError):
        ExperimentConfig(mean_interarrival=0.0)
