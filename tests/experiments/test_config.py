"""Tests for experiment configuration, presets and JSON round-trip."""

import dataclasses
import json

import pytest

from repro.core.protocol import PIDCANParams
from repro.experiments.config import (
    SCALES,
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
    env_scale,
)
from repro.sim.network import NetworkParams


def test_scale_presets():
    paper = ExperimentConfig.at_scale("paper")
    assert (paper.n_nodes, paper.duration) == (2000, 86400.0)
    tiny = ExperimentConfig.at_scale("tiny")
    assert tiny.n_nodes < paper.n_nodes
    assert set(SCALES) == {"paper", "small", "tiny"}


def test_at_scale_applies_overrides():
    cfg = ExperimentConfig.at_scale("tiny", protocol="newscast", demand_ratio=0.25)
    assert cfg.protocol == "newscast"
    assert cfg.demand_ratio == 0.25


def test_unknown_scale_rejected():
    with pytest.raises(ValueError, match="unknown scale"):
        ExperimentConfig.at_scale("huge")


def test_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(n_nodes=1)
    with pytest.raises(ValueError):
        ExperimentConfig(admission="maybe")
    with pytest.raises(ValueError):
        ExperimentConfig(cmax_mode="oracle")
    with pytest.raises(ValueError):
        ExperimentConfig(churn_degree=1.0)


def test_with_protocol_merges_kwargs():
    cfg = ExperimentConfig().with_protocol("khdn-can", k_hops=3)
    assert cfg.protocol == "khdn-can"
    assert cfg.protocol_kwargs == {"k_hops": 3}


def test_describe_mentions_key_facts():
    cfg = ExperimentConfig.at_scale("tiny", demand_ratio=0.5, churn_degree=0.25)
    text = cfg.describe()
    assert "0.5" in text and "churn" in text


def test_env_scale(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert env_scale("tiny") == "tiny"
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert env_scale() == "paper"
    monkeypatch.setenv("REPRO_SCALE", "galactic")
    with pytest.raises(ValueError):
        env_scale()


def test_burst_factor_scales_effective_interarrival():
    cfg = ExperimentConfig(mean_interarrival=3000.0, burst_factor=8.0)
    assert cfg.effective_interarrival == pytest.approx(375.0)
    assert ExperimentConfig().effective_interarrival == pytest.approx(3000.0)
    assert "burst=8x" in cfg.describe()
    assert "burst" not in ExperimentConfig().describe()


def test_burst_factor_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(burst_factor=0.5)
    with pytest.raises(ValueError):
        ExperimentConfig(mean_interarrival=0.0)


# ----------------------------------------------------------------------
# JSON round-trip (campaign persistence relies on this being exact)
# ----------------------------------------------------------------------
def test_config_roundtrip_default():
    cfg = ExperimentConfig()
    assert config_from_dict(config_to_dict(cfg)) == cfg


def test_config_roundtrip_nontrivial():
    cfg = ExperimentConfig.at_scale(
        "tiny",
        protocol="khdn-can",
        demand_ratio=0.25,
        seed=9,
        burst_factor=4.0,
        churn_degree=0.5,
        admission="strict",
        local_first=True,
        protocol_kwargs={"k_hops": 3},
        pidcan=dataclasses.replace(PIDCANParams(), sos=True, delta=5),
        network=dataclasses.replace(NetworkParams(), lan_size=10),
    )
    rebuilt = config_from_dict(config_to_dict(cfg))
    assert rebuilt == cfg
    assert rebuilt.pidcan.sos is True
    assert rebuilt.network.lan_size == 10
    assert rebuilt.protocol_kwargs == {"k_hops": 3}


def test_config_roundtrip_survives_disk_json(tmp_path):
    cfg = ExperimentConfig.at_scale("tiny", protocol="newscast", seed=3)
    path = tmp_path / "config.json"
    path.write_text(json.dumps(config_to_dict(cfg)))
    assert config_from_dict(json.loads(path.read_text())) == cfg


def test_config_from_dict_rejects_unknown_fields():
    doc = config_to_dict(ExperimentConfig())
    doc["warp_speed"] = 11
    with pytest.raises(ValueError, match="unknown config fields"):
        config_from_dict(doc)
