"""Tests for scenario builders and reporting."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import (
    render_scenario,
    scalability_table,
    series_table,
    summary_table,
)
from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import (
    BURST_PROTOCOLS,
    CHURN_DEGREES,
    FIG4_PROTOCOLS,
    FIG567_PROTOCOLS,
    SCENARIOS,
    run_protocol,
    run_scenario,
    scalability_populations,
)


def test_scenario_registry_covers_every_figure_and_table():
    assert set(SCENARIOS) == {
        "fig4a", "fig4b", "fig5", "fig6", "fig7", "fig8", "churn", "burst",
        "table3", "mega", "mega2", "hotrange",
    }


def test_protocol_lists_match_paper():
    assert set(FIG4_PROTOCOLS) == {"newscast", "sid-can", "khdn-can"}
    assert set(FIG567_PROTOCOLS) == {
        "sid-can", "hid-can", "sid-can+sos", "hid-can+sos", "sid-can+vd",
        "newscast",
    }
    assert CHURN_DEGREES == (0.0, 0.25, 0.50, 0.75, 0.95)


def test_scalability_populations_scale_with_preset():
    pops = scalability_populations("paper")
    assert pops == [2000, 4000, 6000, 8000, 10000, 12000]
    assert len(scalability_populations("tiny")) == 6


def test_run_protocol_returns_result():
    res = run_protocol("hid-can", scale="tiny", demand_ratio=0.5, seed=1,
                       n_nodes=40, duration=3000.0)
    assert res.generated > 0


def test_mega_configs_enable_every_coalescing_lever():
    from repro.experiments.scenarios import MEGA_POPULATIONS, mega_configs

    cfg = mega_configs(scale="tiny", seed=7)["hid-can"]
    assert cfg.n_nodes == MEGA_POPULATIONS["tiny"]
    assert cfg.protocol == "hid-can"
    assert cfg.pidcan.tick_mode == "cohort"
    assert cfg.pidcan.phase_buckets == 16
    assert cfg.coalesce_arrivals
    assert cfg.arrival_quantum == 1.0
    assert cfg.memory_budget_mb == 768.0
    shrunk = mega_configs(scale="tiny", seed=7, n_nodes=64, duration=600.0)
    assert shrunk["hid-can"].n_nodes == 64
    assert shrunk["hid-can"].duration == 600.0
    assert cfg.coalesce_deliveries
    assert cfg.delivery_quantum == 0.1
    assert not cfg.compact_dtypes
    with pytest.raises(ValueError, match="unknown scale"):
        mega_configs(scale="huge")


def test_mega2_configs_add_compact_dtypes():
    from repro.experiments.scenarios import MEGA2_POPULATIONS, mega2_configs

    cfg = mega2_configs(scale="tiny", seed=7)["hid-can"]
    assert cfg.n_nodes == MEGA2_POPULATIONS["tiny"]
    assert cfg.compact_dtypes
    assert cfg.coalesce_deliveries and cfg.coalesce_arrivals
    assert cfg.pidcan.tick_mode == "cohort"
    shrunk = mega2_configs(scale="tiny", seed=7, n_nodes=96, duration=600.0)
    assert shrunk["hid-can"].n_nodes == 96
    with pytest.raises(ValueError, match="unknown scale"):
        mega2_configs(scale="huge")


def test_run_scenario_unknown_name():
    with pytest.raises(ValueError, match="unknown scenario"):
        run_scenario("fig99")


def test_burst_scenario_multiplies_arrivals():
    """The burst curves generate ~burst_factor times more tasks than the
    same protocol at the Table II arrival rate."""
    from repro.experiments.scenarios import burst

    assert set(BURST_PROTOCOLS) == {"hid-can", "sid-can", "khdn-can", "newscast"}
    baseline = run_protocol(
        "hid-can", demand_ratio=0.5, seed=3, n_nodes=30, duration=3000.0
    )
    burst_run = run_protocol(
        "hid-can", demand_ratio=0.5, seed=3, n_nodes=30, duration=3000.0,
        burst_factor=6.0,
    )
    assert burst_run.generated > 3 * baseline.generated
    import inspect

    assert "burst_factor" in inspect.signature(burst).parameters


def test_churn_grid_covers_full_protocol_axis():
    """The churn scenario sweeps (protocol × dynamic degree) across every
    protocol family — including the once-timeout-less baselines."""
    from repro.core.protocol import PROTOCOL_NAMES
    from repro.experiments.scenarios import (
        CHURN_SWEEP_DEGREES,
        CHURN_SWEEP_PROTOCOLS,
        churn_configs,
    )

    assert set(CHURN_SWEEP_PROTOCOLS) <= set(PROTOCOL_NAMES)
    for must_have in ("randomwalk-can", "khdn-can", "mercury", "inscan-rq"):
        assert must_have in CHURN_SWEEP_PROTOCOLS
    grid = churn_configs("tiny")
    assert len(grid) == len(CHURN_SWEEP_PROTOCOLS) * len(CHURN_SWEEP_DEGREES)
    assert {cfg.protocol for cfg in grid.values()} == set(CHURN_SWEEP_PROTOCOLS)
    assert {cfg.churn_degree for cfg in grid.values()} == set(CHURN_SWEEP_DEGREES)
    with pytest.raises(ValueError, match="churn_degree"):
        churn_configs("tiny", churn_degree=0.5)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def micro_results():
    out = {}
    for label, protocol in [("hid-can", "hid-can"), ("newscast", "newscast")]:
        cfg = ExperimentConfig(
            n_nodes=30, duration=3000.0, demand_ratio=0.4, seed=2,
            protocol=protocol, sample_period=1000.0,
        )
        out[label] = SOCSimulation(cfg).run()
    return out


def test_series_table_renders_all_labels(micro_results):
    text = series_table(micro_results, "t_ratio", title="throughput")
    assert "throughput" in text
    assert "hid-can" in text and "newscast" in text
    assert text.count("\n") >= 4  # header + rule + 3 samples


def test_summary_table_renders(micro_results):
    text = summary_table(micro_results, title="summary")
    assert "T-Ratio" in text and "msg/node" in text
    assert "hid-can" in text


def test_scalability_table_layout(micro_results):
    renamed = {"100": micro_results["hid-can"], "200": micro_results["newscast"]}
    text = scalability_table(renamed)
    assert "throughput ratio" in text
    assert "msg delivery cost" in text
    assert "100" in text and "200" in text


def test_render_scenario_fig_and_table(micro_results):
    fig = render_scenario("fig5", micro_results)
    assert "failed task ratio" in fig and "end-of-run summary" in fig
    fig4 = render_scenario("fig4a", micro_results)
    assert "throughput" in fig4
    table = render_scenario("table3", micro_results)
    assert "fairness index" in table


def test_series_table_empty():
    assert "no results" in series_table({}, "t_ratio")
