"""End-to-end identity tests for cohort event coalescing.

The contract (docs/coalescing.md): with quantized phases
(``phase_buckets >= 1``), flipping ``PIDCANParams.tick_mode`` between
``per-node`` and ``cohort`` is a pure event-batching transform — every
metric and every series sample is *exactly* equal, at paper scale and
under churn.  Arrival coalescing makes the same promise for
``coalesce_arrivals``.  These tests pin the promise; the throughput win
is asserted separately in ``benchmarks/test_bench_coalescing.py``.
"""

from dataclasses import replace

import numpy as np

from repro.core.protocol import PIDCANParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import mega2_configs, mega_configs
from repro.testing import (
    assert_delivery_modes_equivalent,
    assert_tick_modes_equivalent,
)


def _quantized(**overrides) -> ExperimentConfig:
    params = {
        "protocol": "hid-can",
        "demand_ratio": 0.5,
        "pidcan": PIDCANParams(phase_buckets=16),
        **overrides,
    }
    return ExperimentConfig(**params)


def test_cohort_ticking_identical_at_paper_scale():
    """The acceptance cell: a paper-population (2000 node) HID-CAN run
    under cohort coalescing is metric- and series-identical to the
    per-node tick path."""
    per_node, _ = assert_tick_modes_equivalent(
        _quantized(n_nodes=2000, duration=1200.0, sample_period=400.0, seed=11)
    )
    assert per_node.generated > 0
    assert per_node.finished > 0


def test_cohort_ticking_identical_on_small_cell():
    per_node, cohort = assert_tick_modes_equivalent(
        _quantized(n_nodes=120, duration=4000.0, sample_period=1000.0, seed=3)
    )
    assert per_node.generated > 0


def test_cohort_ticking_identical_under_churn():
    """Join/leave churn exercises the straggler rule: nodes arming
    mid-round must interleave identically in both tick modes."""
    per_node, _ = assert_tick_modes_equivalent(
        _quantized(
            n_nodes=100,
            duration=4000.0,
            sample_period=1000.0,
            seed=7,
            churn_degree=0.25,
            churn_lifetime=1500.0,
        )
    )
    assert per_node.generated > 0


def test_cohort_ticking_identical_for_state_baseline():
    """CANStateBaseline protocols share the cohort plumbing (sid-can
    consumes the same PIDCANParams tick knobs)."""
    per_node, _ = assert_tick_modes_equivalent(
        _quantized(
            protocol="sid-can", n_nodes=80, duration=4000.0,
            sample_period=1000.0, seed=5,
        )
    )
    assert per_node.generated > 0


def _run(config: ExperimentConfig):
    return SOCSimulation(config).run()


def _assert_results_identical(a, b) -> None:
    assert a.generated == b.generated
    assert a.finished == b.finished
    assert a.failed == b.failed
    assert a.placed == b.placed
    assert a.evicted == b.evicted
    assert a.query_timeouts == b.query_timeouts
    assert a.traffic_by_kind == b.traffic_by_kind
    assert a.balance == b.balance
    assert a.query_latency == b.query_latency
    assert a.efficiencies == b.efficiencies
    assert set(a.series) == set(b.series)
    for name, series in a.series.items():
        assert series.times == b.series[name].times
        # Exact, but NaN == NaN (fairness is NaN before the first finish).
        assert np.array_equal(
            np.asarray(series.values),
            np.asarray(b.series[name].values),
            equal_nan=True,
        ), f"{name} sample values diverge"


def test_arrival_coalescing_is_identical():
    """Buffering same-instant arrivals into one submit_bulk batch changes
    nothing observable — with or without a quantum making real batches."""
    base = _quantized(n_nodes=80, duration=4000.0, sample_period=1000.0,
                      seed=9, arrival_quantum=5.0)
    plain = _run(replace(base, coalesce_arrivals=False))
    coalesced = _run(replace(base, coalesce_arrivals=True))
    _assert_results_identical(plain, coalesced)


def test_memory_budget_sweep_is_identical():
    """Footprint trims are semantics-preserving: an aggressively small
    budget (trim every sweep) changes no metric."""
    base = _quantized(n_nodes=80, duration=4000.0, sample_period=1000.0, seed=13)
    plain = _run(base)
    trimmed = _run(replace(base, memory_budget_mb=0.001,
                           memory_sweep_period=500.0))
    _assert_results_identical(plain, trimmed)


def test_mega_runs_are_deterministic():
    """Two same-seed mega cells (all coalescing levers on) are
    bit-identical."""
    grid = mega_configs(scale="tiny", seed=5, n_nodes=300, duration=900.0)
    config = grid["hid-can"]
    _assert_results_identical(_run(config), _run(config))


def test_delivery_coalescing_is_identical():
    """Batching same-instant message deliveries into one flush event
    (quantum 0) changes nothing observable."""
    per_message, _ = assert_delivery_modes_equivalent(
        _quantized(n_nodes=80, duration=4000.0, sample_period=1000.0, seed=9)
    )
    assert per_message.generated > 0


def test_delivery_coalescing_identical_under_churn():
    """Dead-target drops and failsafe-resolved chains must coalesce the
    same way they schedule per-message."""
    per_message, _ = assert_delivery_modes_equivalent(
        _quantized(
            n_nodes=100, duration=4000.0, sample_period=1000.0, seed=7,
            churn_degree=0.25, churn_lifetime=1500.0,
        )
    )
    assert per_message.generated > 0


def test_delivery_coalescing_identical_at_paper_scale():
    """The acceptance cell: a paper-population (2000 node) HID-CAN run
    with delivery coalescing on is metric- and series-identical to the
    per-message reference path."""
    per_message, _ = assert_delivery_modes_equivalent(
        _quantized(n_nodes=2000, duration=1200.0, sample_period=400.0, seed=11)
    )
    assert per_message.generated > 0
    assert per_message.finished > 0


def test_compact_dtypes_off_is_identical_to_legacy():
    """``compact_dtypes=False`` (the default) is byte-for-byte today's
    float64 path: flipping the flag off explicitly changes nothing."""
    base = _quantized(n_nodes=80, duration=4000.0, sample_period=1000.0, seed=21)
    _assert_results_identical(
        _run(base), _run(replace(base, compact_dtypes=False))
    )


def test_compact_dtypes_run_is_sane_and_deterministic():
    """The float32/int32 arrays are approximate by design, so no identity
    claim — but the run must complete work and be self-deterministic."""
    cfg = replace(
        _quantized(n_nodes=120, duration=4000.0, sample_period=1000.0, seed=17),
        compact_dtypes=True,
    )
    a, b = _run(cfg), _run(cfg)
    _assert_results_identical(a, b)
    assert a.generated > 0
    assert a.finished > 0


def test_mega2_runs_are_deterministic():
    """Two same-seed mega2 cells (delivery coalescing + compact dtypes on
    top of every mega lever) are bit-identical."""
    grid = mega2_configs(scale="tiny", seed=5, n_nodes=300, duration=900.0)
    config = grid["hid-can"]
    assert config.compact_dtypes and config.coalesce_deliveries
    _assert_results_identical(_run(config), _run(config))
