"""Tests for experiment result persistence."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation
from repro.experiments.store import (
    diff_results,
    load_results,
    result_to_dict,
    save_results,
)


@pytest.fixture(scope="module")
def result():
    cfg = ExperimentConfig(
        n_nodes=30, duration=2500.0, demand_ratio=0.4, seed=6,
        sample_period=1000.0,
    )
    return SOCSimulation(cfg).run()


def test_result_to_dict_shape(result):
    doc = result_to_dict(result)
    assert doc["metrics"]["generated"] == result.generated
    assert doc["config"]["n_nodes"] == 30
    assert "t_ratio" in doc["series"]
    assert len(doc["series"]["t_ratio"]["times"]) == 2
    assert doc["balance"]["placements"] == result.balance.placements
    # timeout-failure accounting reaches the persisted document (and via
    # SUMMARY_METRICS the campaign report)
    assert doc["metrics"]["query_timeouts"] == result.query_timeouts
    from repro.experiments.campaign import SUMMARY_METRICS

    assert "query_timeouts" in SUMMARY_METRICS


def test_roundtrip(tmp_path, result):
    path = save_results({"hid-can": result}, tmp_path / "runs.json")
    loaded = load_results(path)
    assert set(loaded) == {"hid-can"}
    assert loaded["hid-can"]["metrics"]["finished"] == result.finished
    # the document is plain JSON
    json.loads(path.read_text())


def test_schema_version_checked(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": 99, "runs": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_results(path)


def test_diff_identical_is_empty(tmp_path, result):
    path = save_results({"a": result}, tmp_path / "runs.json")
    runs = load_results(path)
    assert diff_results(runs, runs) == []


def test_diff_detects_metric_change(tmp_path, result):
    path = save_results({"a": result}, tmp_path / "runs.json")
    old = load_results(path)
    new = json.loads(json.dumps(old))
    new["a"]["metrics"]["t_ratio"] += 0.1
    lines = diff_results(old, new)
    assert any("a.t_ratio" in line for line in lines)
    # within tolerance → silent
    assert diff_results(old, new, tolerance=0.2) == []


def test_diff_detects_missing_labels(tmp_path, result):
    path = save_results({"a": result}, tmp_path / "runs.json")
    runs = load_results(path)
    lines = diff_results(runs, {})
    assert lines == ["a: only in old"]
    lines = diff_results({}, runs)
    assert lines == ["a: only in new"]


def test_result_doc_config_roundtrips_to_identical_config(result):
    from repro.experiments.config import config_from_dict

    doc = result_to_dict(result)
    assert config_from_dict(doc["config"]) == result.config


def test_cell_doc_roundtrip(tmp_path, result):
    from repro.experiments.store import load_cell_doc, save_cell_doc

    cell = {"id": "abc123", "scenario": "fig5", "scale": "tiny", "seed": 6,
            "label": "hid-can", "worker_pid": 4242}
    path = save_cell_doc(tmp_path / "cell.json", cell, result_to_dict(result))
    doc = load_cell_doc(path)
    assert doc["cell"] == cell
    assert doc["run"]["metrics"]["generated"] == result.generated
    # atomic write leaves no temp file behind
    assert list(tmp_path.iterdir()) == [path]


def test_cell_doc_schema_and_shape_checked(tmp_path):
    from repro.experiments.store import SCHEMA_VERSION, load_cell_doc

    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 99, "cell": {}, "run": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_cell_doc(bad)
    bad.write_text(json.dumps({"schema": SCHEMA_VERSION, "cell": {}}))
    with pytest.raises(ValueError, match="malformed"):
        load_cell_doc(bad)
