"""Tests for the ASCII chart renderer."""

from repro.experiments.plots import ascii_chart, scenario_charts


def test_single_curve_renders_glyphs():
    chart = ascii_chart({"a": ([0, 1, 2], [0.0, 0.5, 1.0])}, width=20, height=8)
    assert "*" in chart
    assert "*=a" in chart  # legend
    assert "1.00" in chart and "0.00" in chart  # y labels


def test_multiple_curves_distinct_glyphs():
    chart = ascii_chart(
        {
            "a": ([0, 1], [0.1, 0.2]),
            "b": ([0, 1], [0.8, 0.9]),
        },
        width=20,
        height=8,
    )
    assert "*" in chart and "o" in chart
    assert "*=a" in chart and "o=b" in chart


def test_empty_input():
    assert ascii_chart({}) == "(no curves)"
    assert "empty" in ascii_chart({"a": ([], [])})


def test_nan_values_skipped():
    chart = ascii_chart({"a": ([0, 1, 2], [0.5, float("nan"), 0.7])})
    assert "*" in chart  # the non-NaN points still plot


def test_flat_curve_does_not_crash():
    chart = ascii_chart({"a": ([0, 1, 2], [0.5, 0.5, 0.5])})
    assert "*" in chart


def test_scenario_charts_over_simulation_results():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    cfg = ExperimentConfig(
        n_nodes=25, duration=2000.0, demand_ratio=0.4, seed=4,
        sample_period=500.0,
    )
    res = SOCSimulation(cfg).run()
    text = scenario_charts({"hid-can": res})
    assert "throughput ratio" in text
    assert "failed task ratio" in text
    assert "fairness index" in text
