"""Property tests for Jain's fairness index (Eq. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.fairness import jain_index

efficiencies = st.lists(
    st.floats(min_value=1e-6, max_value=1e3), min_size=1, max_size=50
)


def test_equal_efficiencies_give_one():
    assert jain_index([0.5] * 10) == pytest.approx(1.0)


def test_single_sample_is_one():
    assert jain_index([0.3]) == pytest.approx(1.0)


def test_extreme_inequality_approaches_1_over_n():
    # one active task among n: index → 1/n
    values = [1.0] + [1e-12] * 9
    assert jain_index(values) == pytest.approx(0.1, rel=1e-3)


def test_empty_is_nan():
    assert np.isnan(jain_index([]))


def test_negative_rejected():
    with pytest.raises(ValueError):
        jain_index([1.0, -0.1])


@settings(max_examples=50, deadline=None)
@given(efficiencies)
def test_bounded_between_1_over_n_and_1(values):
    phi = jain_index(values)
    n = len(values)
    assert 1.0 / n - 1e-9 <= phi <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(efficiencies, st.floats(min_value=0.1, max_value=100.0))
def test_scale_invariance(values, scale):
    a = jain_index(values)
    b = jain_index([v * scale for v in values])
    assert a == pytest.approx(b, rel=1e-6)


def test_paper_usage_shape():
    # more skewed completions → lower fairness, matching Fig. 5-7 readings
    even = jain_index([0.5, 0.55, 0.45, 0.5])
    skewed = jain_index([0.9, 0.1, 0.05, 0.95])
    assert even > skewed
