"""Tests for the T-Ratio / F-Ratio trackers."""

import pytest

from repro.metrics.ratios import RatioTracker


def test_initial_ratios_zero():
    r = RatioTracker()
    assert r.t_ratio() == 0.0
    assert r.f_ratio() == 0.0
    r.check()


def test_ratios_track_counts():
    r = RatioTracker()
    for _ in range(10):
        r.on_generated()
    for _ in range(4):
        r.on_finished()
    for _ in range(3):
        r.on_failed()
    r.on_placed()
    r.on_evicted()
    assert r.t_ratio() == pytest.approx(0.4)
    assert r.f_ratio() == pytest.approx(0.3)
    r.check()


def test_check_catches_overcounting():
    r = RatioTracker()
    r.on_generated()
    r.on_finished()
    r.on_failed()  # finished + failed > generated
    with pytest.raises(AssertionError):
        r.check()
