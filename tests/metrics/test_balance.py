"""Tests for placement-balance metrics."""

import math

import pytest

from repro.metrics.balance import PlacementBalance


def test_empty_report_is_nan():
    report = PlacementBalance().report(population=10)
    assert report.placements == 0
    assert math.isnan(report.placement_fairness)
    assert report.peak_concurrency == 0


def test_population_validation():
    with pytest.raises(ValueError):
        PlacementBalance().report(0)


def test_perfectly_balanced_placements():
    b = PlacementBalance()
    for node in range(10):
        b.on_place(node)
    report = b.report(population=10)
    assert report.placement_fairness == pytest.approx(1.0)
    assert report.hosts_used == 10
    assert report.peak_concurrency == 1


def test_single_hotspot():
    b = PlacementBalance()
    for _ in range(20):
        b.on_place(0)
    report = b.report(population=20)
    assert report.placement_fairness == pytest.approx(1 / 20, rel=1e-3)
    assert report.hotspot_share == pytest.approx(1.0)
    assert report.peak_concurrency == 20


def test_unused_hosts_penalize_fairness():
    b = PlacementBalance()
    for node in range(5):
        b.on_place(node)
    dense = b.report(population=5).placement_fairness
    sparse = b.report(population=50).placement_fairness
    assert sparse < dense


def test_peak_concurrency_tracks_residency():
    b = PlacementBalance()
    b.on_place(1)
    b.on_place(1)
    b.on_remove(1)
    b.on_place(1)  # back to 2 resident, peak stays 2
    assert b.report(10).peak_concurrency == 2


def test_remove_without_place_rejected():
    b = PlacementBalance()
    with pytest.raises(ValueError):
        b.on_remove(3)


def test_hotspot_share_top5pct():
    b = PlacementBalance()
    # 100 hosts: one host takes 50 placements, 50 hosts take 1 each
    for _ in range(50):
        b.on_place(0)
    for node in range(1, 51):
        b.on_place(node)
    report = b.report(population=100)
    # top 5% = 5 hosts → the hotspot plus four singles = 54/100
    assert report.hotspot_share == pytest.approx(0.54)
