"""Tests for message-cost accounting."""

import pytest

from repro.metrics.traffic import TrafficMeter


def test_charge_accumulates_by_kind_and_node():
    m = TrafficMeter()
    m.charge("state-update", 1)
    m.charge("state-update", 1)
    m.charge("duty-query", 2, n=3)
    assert m.by_kind == {"state-update": 2, "duty-query": 3}
    assert m.by_node[1] == 2
    assert m.by_node[2] == 3
    assert m.total() == 5


def test_negative_charge_rejected():
    m = TrafficMeter()
    with pytest.raises(ValueError):
        m.charge("x", 0, n=-1)


def test_per_node_cost():
    m = TrafficMeter()
    for node in range(4):
        m.charge("gossip", node, n=10)
    assert m.per_node_cost(4) == 10.0
    with pytest.raises(ValueError):
        m.per_node_cost(0)


def test_kind_snapshot_sorted():
    m = TrafficMeter()
    m.charge("zz", 0)
    m.charge("aa", 0)
    assert list(m.kind_snapshot()) == ["aa", "zz"]
