"""Tests for the periodic metric collector."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.ratios import RatioTracker
from repro.sim.engine import Simulator


def test_collector_samples_on_period():
    sim = Simulator()
    ratios = RatioTracker()
    effs = []
    collector = MetricsCollector(sim, ratios, lambda: effs, period=100.0)
    collector.start()

    def work():
        ratios.on_generated()
        ratios.on_finished()
        effs.append(0.5)

    sim.schedule(50.0, work)
    sim.run(until=350.0)
    series = collector.series()
    assert series["t_ratio"].times == [100.0, 200.0, 300.0]
    assert series["t_ratio"].values == [1.0, 1.0, 1.0]
    assert series["fairness"].values[0] == pytest.approx(1.0)


def test_fairness_nan_before_completions():
    import math

    sim = Simulator()
    collector = MetricsCollector(sim, RatioTracker(), lambda: [], period=10.0)
    collector.start()
    sim.run(until=10.0)
    assert math.isnan(collector.fairness.values[0])


def test_manual_sample():
    sim = Simulator()
    ratios = RatioTracker()
    collector = MetricsCollector(sim, ratios, lambda: [1.0])
    collector.sample()
    assert len(collector.t_ratio) == 1
