"""Greedy-routing correctness, including the boundary-target perimeter walk."""

import numpy as np
import pytest

from repro.can.routing import RoutingError, greedy_path
from tests.conftest import make_overlay


def test_routes_reach_owner_from_every_start():
    overlay = make_overlay(32, 2, seed=1)
    rng = np.random.default_rng(2)
    for start in overlay.node_ids():
        p = rng.uniform(0, 1, 2)
        path = greedy_path(overlay, start, p)
        assert path[0] == start
        assert overlay.nodes[path[-1]].zone.contains(p)


def test_route_to_own_zone_is_trivial():
    overlay = make_overlay(16, 2, seed=1)
    node = overlay.nodes[3]
    path = greedy_path(overlay, 3, node.zone.center)
    assert path == [3]


def test_path_has_no_repeated_nodes():
    overlay = make_overlay(64, 3, seed=4)
    rng = np.random.default_rng(5)
    for _ in range(100):
        start = int(rng.integers(64))
        p = rng.uniform(0, 1, 3)
        path = greedy_path(overlay, start, p)
        assert len(path) == len(set(path))


def test_consecutive_path_nodes_are_neighbors_or_perimeter():
    overlay = make_overlay(32, 2, seed=1)
    rng = np.random.default_rng(3)
    for _ in range(50):
        start = int(rng.integers(32))
        p = rng.uniform(0, 1, 2)
        path = greedy_path(overlay, start, p)
        for a, b in zip(path[:-1], path[1:]):
            assert b in overlay.nodes[a].neighbors


def test_boundary_targets_resolve():
    # Dyadic coordinates land exactly on zone boundaries (real case: a
    # 12.8/25.6-capacity node reports availability 0.5).
    overlay = make_overlay(64, 2, seed=7)
    targets = [
        np.array([0.5, 0.5]),
        np.array([0.25, 0.75]),
        np.array([0.5, 0.0]),
        np.array([1.0, 0.5]),
        np.array([1.0, 1.0]),
        np.array([0.0, 0.0]),
    ]
    for start in (0, 17, 40):
        for p in targets:
            path = greedy_path(overlay, start, p)
            assert overlay.nodes[path[-1]].zone.contains(p)


def test_boundary_targets_resolve_5d():
    overlay = make_overlay(64, 5, seed=7)
    p = np.array([0.5, 0.5, 0.5, 0.5, 0.5])
    for start in overlay.node_ids()[:10]:
        path = greedy_path(overlay, start, p)
        assert overlay.nodes[path[-1]].zone.contains(p)


def test_hop_count_scales_as_root_n():
    # O(d·n^(1/d)) for plain CAN: 2-D path lengths grow roughly like √n.
    rng = np.random.default_rng(0)

    def mean_hops(n):
        overlay = make_overlay(n, 2, seed=13)
        hops = []
        for _ in range(150):
            start = int(rng.integers(n))
            p = rng.uniform(0, 1, 2)
            hops.append(len(greedy_path(overlay, start, p)) - 1)
        return np.mean(hops)

    small, large = mean_hops(16), mean_hops(256)
    assert large > small  # more nodes, longer routes
    assert large < small * 8  # but sublinear (16× nodes ≤ ~4× hops + slack)


def test_max_hops_enforced():
    overlay = make_overlay(64, 2, seed=1)
    with pytest.raises(RoutingError):
        greedy_path(overlay, 0, np.array([0.99, 0.99]), max_hops=1)


def test_extra_links_keep_routing_correct():
    # Arbitrary extra links (even a single global hub) may detour greedy
    # routing but must never break termination or correctness.
    overlay = make_overlay(128, 2, seed=3)
    hub = overlay.node_ids()[0]

    def extra(node_id):
        return [hub]

    rng = np.random.default_rng(8)
    for _ in range(30):
        start = int(rng.integers(128))
        p = rng.uniform(0, 1, 2)
        linked = greedy_path(overlay, start, p, extra_links=extra)
        assert overlay.nodes[linked[-1]].zone.contains(p)


def test_stale_extra_links_skipped():
    overlay = make_overlay(32, 2, seed=3)

    def extra(node_id):
        return [99999]  # dead id — must be ignored, not crash

    p = np.array([0.9, 0.9])
    path = greedy_path(overlay, 0, p, extra_links=extra)
    assert overlay.nodes[path[-1]].zone.contains(p)
