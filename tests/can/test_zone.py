"""Unit tests for zone geometry and the §III-A adjacency definitions."""

import numpy as np
import pytest

from repro.can.zone import Zone, adjacency_direction, is_negative_direction_of


def zone(lo, hi):
    return Zone(np.array(lo, dtype=float), np.array(hi, dtype=float))


def test_degenerate_zone_rejected():
    with pytest.raises(ValueError):
        zone([0.0, 0.0], [0.0, 1.0])


def test_contains_is_half_open():
    z = zone([0.0, 0.0], [0.5, 0.5])
    assert z.contains(np.array([0.0, 0.0]))
    assert z.contains(np.array([0.49, 0.25]))
    assert not z.contains(np.array([0.5, 0.25]))  # hi face excluded
    assert not z.contains(np.array([0.25, 0.5]))


def test_unit_top_faces_are_closed():
    z = zone([0.5, 0.5], [1.0, 1.0])
    assert z.contains(np.array([1.0, 1.0]))
    assert z.contains(np.array([0.5, 1.0]))


def test_every_point_has_exactly_one_owner_among_split_halves():
    parent = Zone.unit(2)
    low, high = parent.split(0)
    for p in np.random.default_rng(0).uniform(0, 1, size=(200, 2)):
        assert low.contains(p) != high.contains(p)
    boundary = np.array([0.5, 0.3])
    assert high.contains(boundary) and not low.contains(boundary)


def test_split_halves_tile_parent():
    z = zone([0.25, 0.5], [0.5, 1.0])
    low, high = z.split(1)
    assert low.volume + high.volume == pytest.approx(z.volume)
    assert low.merged_with(high) == z
    assert high.merged_with(low) == z


def test_merge_rejects_non_siblings():
    a = zone([0.0, 0.0], [0.5, 0.5])
    b = zone([0.5, 0.5], [1.0, 1.0])
    with pytest.raises(ValueError):
        a.merged_with(b)


def test_distance_to_point():
    z = zone([0.0, 0.0], [0.5, 0.5])
    assert z.distance_to_point(np.array([0.25, 0.25])) == 0.0
    assert z.distance_to_point(np.array([1.0, 0.25])) == pytest.approx(0.5)
    assert z.distance_to_point(np.array([1.0, 1.0])) == pytest.approx(
        np.sqrt(0.5**2 + 0.5**2)
    )
    # boundary contact counts as distance zero (closed-box distance)
    assert z.distance_to_point(np.array([0.5, 0.25])) == 0.0


def test_face_adjacency_positive_and_negative():
    left = zone([0.0, 0.0], [0.5, 1.0])
    right = zone([0.5, 0.0], [1.0, 1.0])
    assert adjacency_direction(left, right) == (0, +1)  # right is positive
    assert adjacency_direction(right, left) == (0, -1)
    assert left.is_adjacent(right)


def test_partial_face_overlap_is_adjacent():
    a = zone([0.0, 0.0], [0.5, 1.0])
    b = zone([0.5, 0.25], [1.0, 0.75])
    assert adjacency_direction(a, b) == (0, +1)


def test_corner_contact_is_not_adjacent():
    a = zone([0.0, 0.0], [0.5, 0.5])
    b = zone([0.5, 0.5], [1.0, 1.0])
    assert adjacency_direction(a, b) is None
    assert not a.is_adjacent(b)


def test_touching_edges_without_overlap_not_adjacent():
    # abut on dim 0 but ranges on dim 1 merely touch (no open overlap)
    a = zone([0.0, 0.0], [0.5, 0.5])
    b = zone([0.5, 0.5], [1.0, 0.75])
    assert adjacency_direction(a, b) is None


def test_disjoint_zones_not_adjacent():
    a = zone([0.0, 0.0], [0.25, 0.25])
    b = zone([0.75, 0.75], [1.0, 1.0])
    assert adjacency_direction(a, b) is None


def test_overlapping_zones_not_adjacent():
    a = zone([0.0, 0.0], [0.6, 1.0])
    b = zone([0.4, 0.0], [1.0, 1.0])
    assert adjacency_direction(a, b) is None


def test_negative_direction_definition():
    # §III-A example: Node 22 is Node 13's negative-direction node.
    upper = zone([0.5, 0.5], [1.0, 1.0])
    lower = zone([0.0, 0.0], [0.25, 0.25])
    overlap_low = zone([0.25, 0.0], [0.75, 0.5])
    assert is_negative_direction_of(lower, upper)
    assert not is_negative_direction_of(upper, lower)
    assert is_negative_direction_of(overlap_low, upper)


def test_negative_direction_includes_overlapping_ranges():
    a = zone([0.0, 0.0], [1.0, 1.0])
    b = zone([0.25, 0.25], [0.75, 0.75])
    assert is_negative_direction_of(a, b)
    assert is_negative_direction_of(b, a)


def test_overlaps_box():
    z = zone([0.25, 0.25], [0.5, 0.5])
    assert z.overlaps_box(np.array([0.0, 0.0]), np.array([0.3, 0.3]))
    assert not z.overlaps_box(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
    assert not z.overlaps_box(np.array([0.0, 0.6]), np.array([1.0, 1.0]))


def test_overlaps_box_accepts_plain_sequences():
    # Regression: both operands are normalized — the original coerced
    # ``lo`` but compared the raw ``hi`` argument.
    z = zone([0.25, 0.25], [0.5, 0.5])
    assert z.overlaps_box([0.0, 0.0], [0.3, 0.3])
    assert not z.overlaps_box([0.5, 0.5], [1.0, 1.0])
    assert not z.overlaps_box((0.0, 0.6), (1.0, 1.0))
    assert z.overlaps_box([0, 0], [1, 1])  # integer entries coerce too


def test_center_volume_side():
    z = zone([0.0, 0.5], [0.5, 1.0])
    assert np.allclose(z.center, [0.25, 0.75])
    assert z.volume == pytest.approx(0.25)
    assert z.side(0) == pytest.approx(0.5)


def test_zone_equality_and_hash():
    a = zone([0.0, 0.0], [0.5, 1.0])
    b = zone([0.0, 0.0], [0.5, 1.0])
    c = zone([0.0, 0.0], [0.25, 1.0])
    assert a == b and hash(a) == hash(b)
    assert a != c
