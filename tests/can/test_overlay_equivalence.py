"""Scalar-vs-vectorized overlay equivalence under randomized schedules.

The vectorized :class:`CANOverlay` (SoA ZoneStore, cached edge
directions, batched routing) and the verbatim seed oracle
(:class:`repro.testing.ReferenceCANOverlay` + ``reference_greedy_path``)
must stay indistinguishable: identical adjacency, identical routing
paths hop for hop (not just owners), identical diffusion recipients.
"""

import numpy as np
import pytest

from repro.can.inscan import build_index_table, inscan_path, inscan_paths
from repro.can.routing import RoutingError, greedy_path, greedy_paths
from repro.testing import (
    ReferenceCANOverlay,
    assert_overlays_equivalent,
    reference_greedy_path,
    reference_inscan_path,
)
from tests.conftest import make_overlay


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_schedules_stay_equivalent(seed):
    stats = assert_overlays_equivalent(seed=seed, n=24, dims=3, steps=40)
    assert stats["routes"] > 0 and stats["diffusions"] > 0
    assert stats["joined"] > 0 and stats["left"] > 0


def test_randomized_schedule_5d_paper_dims():
    stats = assert_overlays_equivalent(seed=7, n=32, dims=5, steps=25)
    assert stats["boundary_routes"] > 0


def make_reference_overlay(n, dims, seed=0):
    overlay = ReferenceCANOverlay(dims, np.random.default_rng(seed))
    overlay.bootstrap(range(n))
    return overlay


def test_paths_bit_identical_on_static_overlay():
    """Paths — not just final owners — must match hop for hop, including
    exact-boundary targets that trigger the perimeter walk."""
    vec = make_overlay(96, 3, seed=5)
    ref = make_reference_overlay(96, 3, seed=5)
    rng = np.random.default_rng(6)
    points = rng.uniform(0, 1, (60, 3))
    points[:10] = np.round(points[:10] * 8) / 8  # boundary-exact targets
    starts = rng.integers(0, 96, 60)
    for s, p in zip(starts, points):
        assert greedy_path(vec, int(s), p) == reference_greedy_path(
            ref, int(s), p
        )


def test_inscan_paths_bit_identical_with_twin_tables():
    vec = make_overlay(128, 2, seed=8)
    ref = make_reference_overlay(128, 2, seed=8)
    vec_tables = {
        i: build_index_table(vec, i, np.random.default_rng(100 + i))
        for i in vec.node_ids()
    }
    ref_tables = {
        i: build_index_table(ref, i, np.random.default_rng(100 + i))
        for i in ref.node_ids()
    }
    for i in vec.node_ids():
        assert vec_tables[i].links == ref_tables[i].links
        assert vec_tables[i].build_messages == ref_tables[i].build_messages
    rng = np.random.default_rng(9)
    for _ in range(60):
        s = int(rng.integers(128))
        p = rng.uniform(0, 1, 2)
        assert inscan_path(vec, vec_tables, s, p) == reference_inscan_path(
            ref, ref_tables, s, p
        )


def test_batched_routing_equals_single_route():
    overlay = make_overlay(64, 3, seed=10)
    tables = {
        i: build_index_table(overlay, i, np.random.default_rng(i))
        for i in overlay.node_ids()
    }
    rng = np.random.default_rng(11)
    points = rng.uniform(0, 1, (40, 3))
    points[:6] = np.round(points[:6] * 4) / 4
    starts = [int(s) for s in rng.integers(0, 64, 40)]
    assert greedy_paths(overlay, starts, points) == [
        greedy_path(overlay, s, p) for s, p in zip(starts, points)
    ]
    assert inscan_paths(overlay, tables, starts, points) == [
        inscan_path(overlay, tables, s, p) for s, p in zip(starts, points)
    ]


def test_batched_routing_after_churn_matches_single():
    overlay = make_overlay(48, 2, seed=12)
    rng = np.random.default_rng(13)
    for step in range(20):
        ids = overlay.node_ids()
        overlay.leave(ids[int(rng.integers(len(ids)))])
        overlay.join(2000 + step)
    points = rng.uniform(0, 1, (30, 2))
    ids = overlay.node_ids()
    starts = [ids[int(rng.integers(len(ids)))] for _ in range(30)]
    assert greedy_paths(overlay, starts, points) == [
        greedy_path(overlay, s, p) for s, p in zip(starts, points)
    ]


def test_batched_routing_error_modes():
    overlay = make_overlay(32, 2, seed=14)
    good = overlay.node_ids()[0]
    points = np.array([[0.9, 0.9], [0.1, 0.1]])
    with pytest.raises(KeyError):
        greedy_paths(overlay, [good, 99999], points)
    paths = greedy_paths(overlay, [good, 99999], points, on_error="none")
    assert paths[1] is None
    assert paths[0] == greedy_path(overlay, good, points[0])
    with pytest.raises(RoutingError):
        greedy_paths(overlay, [good], points[:1], max_hops=1)
    assert greedy_paths(
        overlay, [good], points[:1], max_hops=1, on_error="none"
    ) == [None]
    with pytest.raises(ValueError):
        greedy_paths(overlay, [good], points[:1], on_error="bogus")
    assert greedy_paths(overlay, [], np.empty((0, 2))) == []


def test_batched_routing_survives_mid_pass_pool_reset():
    """Replacing every pointer table forces the candidate pool to refill
    per node; the accumulated waste trips a pool reset in the middle of a
    batched lookup pass, which must re-resolve (not corrupt) the blocks
    already gathered for that hop front."""
    overlay = make_overlay(60, 2, seed=17)
    tables = {
        i: build_index_table(overlay, i, np.random.default_rng(400 + i))
        for i in overlay.node_ids()
    }
    rng = np.random.default_rng(18)
    points = rng.uniform(0, 1, (60, 2))
    starts = [int(s) for s in rng.integers(0, 60, 60)]
    first = inscan_paths(overlay, tables, starts, points)  # fill the pool
    # identical links, fresh objects: every block is now stale by identity
    for i in overlay.node_ids():
        tables[i] = build_index_table(overlay, i, np.random.default_rng(400 + i))
    pool = overlay._route_pools[id(tables)]
    generation = pool.generation
    again = inscan_paths(overlay, tables, starts, points)
    assert pool.generation > generation, "expected a waste-driven reset"
    assert again == first
    assert again == [
        reference_inscan_path(overlay, tables, s, p)
        for s, p in zip(starts, points)
    ]


def test_pow_space_near_tie_matches_seed_selection():
    """The square root merges accumulators one ulp apart into exact ties
    (lowest id must then win, as in the seed's ``(dist, id)`` scan);
    pure squared-space comparison would pick the strictly-smaller
    accumulator instead.  This fires on real workloads — structured
    availability coordinates produce such pairs at ~1e-4 per route."""
    from repro.can.routing import _pow_space_best

    lo_acc = float.fromhex("0x1.1bbd2db962545p-2")
    hi_acc = float.fromhex("0x1.1bbd2db962546p-2")
    assert lo_acc < hi_acc and lo_acc ** 0.5 == hi_acc ** 0.5

    def seed_scan(accs, ids):
        best_id, best_dist = -1, np.inf
        for cand_id, acc in zip(ids, accs):
            d = acc ** 0.5
            if d < best_dist or (d == best_dist and cand_id < best_id):
                best_dist, best_id = d, cand_id
        return best_dist, best_id

    cases = [
        # merged tie, lower id on the strictly-larger accumulator
        ([hi_acc, lo_acc, 0.9], [3, 7, 1]),
        ([lo_acc, hi_acc, 0.9], [7, 3, 1]),
        # exact tie
        ([0.25, 0.25, 0.5], [9, 2, 1]),
        # no tie at all
        ([0.3, 0.2, 0.9], [1, 5, 2]),
        # zero distance present
        ([0.0, lo_acc], [4, 2]),
    ]
    for accs, ids in cases:
        got = _pow_space_best(np.asarray(accs), ids)
        want = seed_scan(accs, ids)
        assert got == want, f"{accs} {ids}: {got} != {want}"


def test_single_node_overlay_routes_trivially():
    overlay = make_overlay(1, 2, seed=0)
    p = np.array([0.3, 0.7])
    assert greedy_path(overlay, 0, p) == [0]
    assert greedy_paths(overlay, [0], p[None, :]) == [[0]]


def test_directional_neighbors_match_reference_after_churn():
    vec = make_overlay(40, 3, seed=15)
    ref = make_reference_overlay(40, 3, seed=15)
    rng = np.random.default_rng(16)
    join_points = rng.uniform(0, 1, (15, 3))
    victims = []
    for step in range(15):
        ids = sorted(vec.nodes)
        victim = ids[int(rng.integers(len(ids)))]
        victims.append(victim)
        vec.leave(victim)
        ref.leave(victim)
        vec.join(3000 + step, join_points[step])
        ref.join(3000 + step, join_points[step])
    for node_id in vec.nodes:
        assert vec.nodes[node_id].neighbors == ref.nodes[node_id].neighbors
        for dim in range(3):
            for sign in (+1, -1):
                assert vec.directional_neighbors(
                    node_id, dim, sign
                ) == ref.directional_neighbors(node_id, dim, sign)
    vec.check_invariants()  # includes the direction-cache cross-check
