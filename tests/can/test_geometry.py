"""ZoneStore: SoA bookkeeping, compaction, and bit-exact equivalence of
every batched predicate against the verbatim scalar oracles in
``repro.testing``."""

import numpy as np
import pytest

from repro.can.geometry import ZoneStore
from repro.can.zone import Zone, adjacency_direction, is_negative_direction_of
from repro.testing import (
    ReferenceZone,
    reference_adjacency_direction,
    reference_distance_to_point,
    reference_is_negative_direction_of,
)
from tests.conftest import make_overlay


def random_boxes(rng, count, dims, dyadic_every=3):
    """A mix of arbitrary-float and exactly-dyadic boxes."""
    out = []
    for i in range(count):
        lo = rng.uniform(0.0, 0.6, dims)
        hi = lo + rng.uniform(0.05, 0.4, dims)
        if i % dyadic_every == 0:
            lo = np.floor(lo * 8) / 8
            hi = lo + np.maximum(np.ceil((hi - lo) * 8), 1) / 8
        out.append(Zone(lo, hi))
    return out


def store_from(zones):
    store = ZoneStore(zones[0].dims)
    for i, z in enumerate(zones):
        store.add(i, z)
    return store


# ----------------------------------------------------------------------
# distances
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dims", [1, 2, 3, 5, 6])
def test_squared_distances_bit_identical_to_scalar(dims):
    rng = np.random.default_rng(dims)
    zones = random_boxes(rng, 40, dims)
    store = store_from(zones)
    ids = list(range(len(zones)))
    for trial in range(30):
        p = rng.uniform(-0.2, 1.2, dims)
        if trial % 3 == 0:
            # exact boundary coordinate: the tie-heavy regime
            z = zones[int(rng.integers(len(zones)))]
            k = int(rng.integers(dims))
            p[k] = z.lo[k] if rng.random() < 0.5 else z.hi[k]
        acc, present = store.squared_distances(p, ids)
        assert present.all()
        pt = tuple(float(x) for x in p)
        for i, z in enumerate(zones):
            ref = ReferenceZone(z.lo, z.hi)
            d = reference_distance_to_point(ref, pt)
            assert (float(acc[i]) == 0.0) == (d == 0.0)
            # the decisive property: squared accumulators match the
            # scalar gap loop term for term (routing screens on these
            # and resolves near-ties in the seed's ``** 0.5`` space —
            # np.sqrt may differ from Python pow by an ulp on some libms)
            scalar_acc = 0.0
            for k in range(dims):
                v = pt[k]
                if v < ref._lo[k]:
                    gap = ref._lo[k] - v
                elif v > ref._hi[k]:
                    gap = v - ref._hi[k]
                else:
                    continue
                scalar_acc += gap * gap
            assert float(acc[i]) == scalar_acc


def test_distances_and_absent_ids():
    rng = np.random.default_rng(0)
    zones = random_boxes(rng, 10, 3)
    store = store_from(zones)
    p = rng.uniform(0, 1, 3)
    acc, present = store.squared_distances(p, [0, 99999, 5, -3])
    assert present.tolist() == [True, False, True, False]
    assert np.isinf(acc[1]) and np.isinf(acc[3])
    dist, present2 = store.distances(p, [0, 99999, 5])
    assert present2.tolist() == [True, False, True]
    assert dist[0] == np.sqrt(acc[0])


def test_contains_mask_matches_zone_contains():
    overlay = make_overlay(32, 3, seed=2)
    store = overlay.geometry
    ids = overlay.node_ids()
    rng = np.random.default_rng(3)
    points = rng.uniform(0, 1, (20, 3)).tolist()
    points += [[0.5, 0.5, 0.5], [1.0, 1.0, 1.0], [0.0, 0.0, 1.0]]
    for p in points:
        p = np.asarray(p)
        mask = store.contains_mask(p, ids)
        for node_id, got in zip(ids, mask.tolist()):
            assert got == overlay.nodes[node_id].zone.contains(p)
        assert mask.sum() == 1  # zones tile the cube: unique owner


def test_touching_mask_is_zero_distance():
    overlay = make_overlay(64, 2, seed=4)
    store = overlay.geometry
    ids = overlay.node_ids()
    p = np.array([0.5, 0.5])
    mask = store.touching_mask(p, ids)
    for node_id, got in zip(ids, mask.tolist()):
        want = overlay.nodes[node_id].zone.distance_to_point(p) == 0.0
        assert got == want
    assert mask.sum() >= 2  # an interior corner touches several zones


# ----------------------------------------------------------------------
# adjacency / negative direction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dims", [2, 3, 5])
def test_adjacency_matches_scalar_on_real_overlay(dims):
    overlay = make_overlay(48, dims, seed=dims)
    store = overlay.geometry
    ids = overlay.node_ids()
    for a in ids[:16]:
        mask, dims_arr, signs = store.adjacency(a, ids)
        za = overlay.nodes[a].zone
        for b, ok, dim, sign in zip(
            ids, mask.tolist(), dims_arr.tolist(), signs.tolist()
        ):
            want = adjacency_direction(za, overlay.nodes[b].zone)
            ref = reference_adjacency_direction(za, overlay.nodes[b].zone)
            assert want == ref  # production predicate vs verbatim oracle
            if b == a:
                assert want is None
            if want is None:
                assert not ok
            else:
                assert ok and (dim, sign) == want


def test_adjacency_handles_absent_and_corner_contact():
    # two unit-quarter zones touching only at a corner are NOT neighbors
    z00 = Zone(np.array([0.0, 0.0]), np.array([0.5, 0.5]))
    z11 = Zone(np.array([0.5, 0.5]), np.array([1.0, 1.0]))
    z10 = Zone(np.array([0.5, 0.0]), np.array([1.0, 0.5]))
    store = ZoneStore(2)
    store.add(0, z00)
    store.add(1, z11)
    store.add(2, z10)
    mask, dims_arr, signs = store.adjacency(0, [1, 2, 777])
    assert mask.tolist() == [False, True, False]
    assert (dims_arr[1], signs[1]) == (0, 1)
    mask2, d2, s2 = store.adjacency(2, [0, 1])
    assert mask2.tolist() == [True, True]
    assert (d2[0], s2[0]) == (0, -1)
    assert (d2[1], s2[1]) == (1, 1)


def test_negative_direction_mask_matches_scalar():
    overlay = make_overlay(40, 3, seed=9)
    store = overlay.geometry
    ids = overlay.node_ids()
    for a in ids[:12]:
        mask = store.negative_direction_mask(a, ids + [12345])
        za = overlay.nodes[a].zone
        for b, got in zip(ids, mask.tolist()):
            zb = overlay.nodes[b].zone
            assert got == is_negative_direction_of(zb, za)
            assert got == reference_is_negative_direction_of(zb, za)
        assert not mask[-1]  # absent id


# ----------------------------------------------------------------------
# mutation, compaction, id map
# ----------------------------------------------------------------------
def test_add_update_remove_and_epoch():
    store = ZoneStore(2)
    z = Zone(np.array([0.0, 0.0]), np.array([0.5, 1.0]))
    e0 = store.epoch
    store.add(7, z)
    assert store.epoch > e0 and 7 in store and len(store) == 1
    lo, hi = store.bounds_of(7)
    assert lo.tolist() == [0.0, 0.0] and hi.tolist() == [0.5, 1.0]
    with pytest.raises(ValueError):
        store.add(7, z)
    z2 = Zone(np.array([0.5, 0.0]), np.array([1.0, 1.0]))
    e1 = store.epoch
    store.update(7, z2)
    assert store.epoch > e1
    assert store.bounds_of(7)[0].tolist() == [0.5, 0.0]
    store.remove(7)
    assert 7 not in store and len(store) == 0
    assert store.rows_of([7]).tolist() == [-1]
    with pytest.raises(KeyError):
        store.remove(7)


def test_large_ids_grow_the_dense_map():
    store = ZoneStore(2)
    z = Zone(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
    store.add(100_000, z)
    assert store.rows_of([100_000, 5]).tolist() == [0, -1]
    acc, present = store.squared_distances(np.array([2.0, 0.5]), [100_000])
    assert present.tolist() == [True]
    assert acc[0] == 1.0


def test_compaction_preserves_semantics():
    rng = np.random.default_rng(11)
    store = ZoneStore(2)
    zones = {}
    for i in range(120):
        lo = rng.uniform(0, 0.5, 2)
        z = Zone(lo, lo + 0.25)
        store.add(i, z)
        zones[i] = z
    # kill enough rows to force a compaction
    for i in range(0, 120, 2):
        store.remove(i)
        del zones[i]
    store.check_invariants(zones)
    assert len(store) == 60
    p = np.array([0.9, 0.9])
    ids = sorted(zones)
    acc, present = store.squared_distances(p, ids)
    assert present.all()
    for node_id, a in zip(ids, acc.tolist()):
        d = zones[node_id].distance_to_point(p)
        assert np.sqrt(a) == pytest.approx(d, rel=1e-15, abs=0.0)
    # rows are reusable after compaction
    z = Zone(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
    store.add(500, z)
    store.check_invariants({**zones, 500: z})


def test_from_zones_roundtrip():
    overlay = make_overlay(16, 2, seed=1)
    store = ZoneStore.from_zones(
        2, ((i, n.zone) for i, n in overlay.nodes.items())
    )
    store.check_invariants({i: n.zone for i, n in overlay.nodes.items()})
