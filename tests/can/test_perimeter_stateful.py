"""Stateful property test for the perimeter (corner-stall) walk.

``greedy_paths`` finishes boundary-landing routes with
``_perimeter_hops`` — a BFS across the zero-distance cluster of zones
incident to the target point.  This machine grows and shrinks an overlay
while firing boundary points (zone corners, edges and faces, where many
zones touch the point at distance exactly 0) and asserts the vectorized
walk hop-for-hop against the seed's scalar reference walk, plus the
batched/memoized routing path against per-route calls.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, rule

from repro.can.overlay import CANOverlay
from repro.can.routing import _perimeter_hops, greedy_path, greedy_paths
from repro.testing import _reference_perimeter_hops

DIMS = 3
START_N = 8


class PerimeterLockstepMachine(RuleBasedStateMachine):
    """Random join/leave interleavings + boundary-point perimeter walks."""

    @initialize()
    def setup(self) -> None:
        self.overlay = CANOverlay(DIMS, np.random.default_rng(7))
        self.overlay.bootstrap(range(START_N))
        self.next_id = START_N

    # ------------------------------------------------------------------
    # membership churn reshapes the zero-distance clusters
    # ------------------------------------------------------------------
    @rule(coords=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=DIMS, max_size=DIMS,
    ))
    def join(self, coords):
        self.overlay.join(self.next_id, np.asarray(coords))
        self.next_id += 1

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def leave(self, pick):
        if len(self.overlay) <= 2:
            return
        ids = sorted(self.overlay.nodes)
        self.overlay.leave(ids[pick % len(ids)])

    # ------------------------------------------------------------------
    # the walks under test
    # ------------------------------------------------------------------
    def _boundary_point(self, pick: int, faces: list[int]) -> tuple[int, np.ndarray]:
        """A start node plus a point on its zone boundary: per dimension
        either the lo face, the hi face, or the zone midpoint — corners
        when every dim picks a face, which is where the most zones meet
        at distance exactly 0 (the stall the walk exists for)."""
        ids = sorted(self.overlay.nodes)
        start = ids[pick % len(ids)]
        zone = self.overlay.nodes[start].zone
        point = np.empty(DIMS)
        for d, face in enumerate(faces):
            if face == 0:
                point[d] = zone.lo[d]
            elif face == 1:
                point[d] = zone.hi[d]
            else:
                point[d] = 0.5 * (zone.lo[d] + zone.hi[d])
        return start, point

    @rule(
        pick=st.integers(min_value=0, max_value=10_000),
        faces=st.lists(
            st.integers(min_value=0, max_value=2), min_size=DIMS, max_size=DIMS
        ),
    )
    def perimeter_walk_matches_reference(self, pick, faces):
        start, point = self._boundary_point(pick, faces)
        got = _perimeter_hops(self.overlay, start, point)
        want = _reference_perimeter_hops(self.overlay, start, point)
        assert got == want
        if got:  # walk ends at the point's owner
            assert got[-1] == self.overlay.owner_of(point)

    @rule(
        picks=st.lists(
            st.integers(min_value=0, max_value=10_000), min_size=2, max_size=5
        ),
        pick=st.integers(min_value=0, max_value=10_000),
        faces=st.lists(
            st.integers(min_value=0, max_value=2), min_size=DIMS, max_size=DIMS
        ),
    )
    def batched_routes_match_per_route(self, picks, pick, faces):
        """Lockstep queries to one boundary point: the batched kernel
        (fused argmin + per-batch perimeter memo) must reproduce each
        per-route path exactly."""
        _, point = self._boundary_point(pick, faces)
        ids = sorted(self.overlay.nodes)
        starts = [ids[p % len(ids)] for p in picks]
        batched = greedy_paths(
            self.overlay, starts, np.tile(point, (len(starts), 1))
        )
        singles = [greedy_path(self.overlay, s, point) for s in starts]
        assert batched == singles


TestPerimeterLockstep = PerimeterLockstepMachine.TestCase
TestPerimeterLockstep.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
