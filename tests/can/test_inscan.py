"""Tests for INSCAN 2^k index pointers and O(log n) routing (§III-A)."""

import numpy as np
import pytest

from repro.can.inscan import (
    build_index_table,
    inscan_path,
    max_pointer_exponent,
)
from repro.can.routing import greedy_path
from repro.can.zone import adjacency_direction
from tests.conftest import make_overlay


def build_all_tables(overlay, seed=0):
    rng = np.random.default_rng(seed)
    return {i: build_index_table(overlay, i, rng) for i in overlay.node_ids()}


def test_max_pointer_exponent_formula():
    assert max_pointer_exponent(1, 2) == 0
    assert max_pointer_exponent(16, 2) == 2  # 16^(1/2)=4 → log2=2
    assert max_pointer_exponent(256, 2) == 4
    assert max_pointer_exponent(2000, 5) == 2  # 2000^0.2 ≈ 4.6 → ⌊log2⌋ = 2


def test_pointer_chain_lengths_bounded_by_exponent():
    overlay = make_overlay(256, 2, seed=1)
    table = build_index_table(overlay, 0, np.random.default_rng(0))
    k_max = max_pointer_exponent(256, 2)
    for (dim, sign), chain in table.links.items():
        assert 1 <= len(chain) <= k_max + 1


def test_first_pointer_is_adjacent_neighbor():
    overlay = make_overlay(64, 2, seed=2)
    for node_id in overlay.node_ids()[:10]:
        table = build_index_table(overlay, node_id, np.random.default_rng(1))
        for (dim, sign), chain in table.links.items():
            first = overlay.nodes[chain[0]]
            direction = adjacency_direction(
                overlay.nodes[node_id].zone, first.zone
            )
            assert direction == (dim, sign)


def test_pointers_follow_requested_direction():
    overlay = make_overlay(128, 2, seed=3)
    for node_id in overlay.node_ids()[:20]:
        table = build_index_table(overlay, node_id, np.random.default_rng(2))
        me = overlay.nodes[node_id].zone
        for (dim, sign), chain in table.links.items():
            for target in chain:
                z = overlay.nodes[target].zone
                if sign > 0:
                    assert z.center[dim] > me.lo[dim]
                else:
                    assert z.center[dim] < me.hi[dim]


def test_edge_nodes_lack_outward_pointers():
    overlay = make_overlay(64, 2, seed=4)
    # a node whose zone touches lo=0 on dim 0 has no (0,-1) chain
    for node in overlay.nodes.values():
        if node.zone.lo[0] == 0.0:
            table = build_index_table(overlay, node.node_id, np.random.default_rng(3))
            assert (0, -1) not in table.links
            break
    else:
        pytest.fail("no edge node found")


def test_negative_index_nodes_include_k0():
    # Theorem 1's binary decomposition needs the 2^0 link.
    overlay = make_overlay(256, 2, seed=5)
    inner = next(
        n.node_id
        for n in overlay.nodes.values()
        if n.zone.lo[0] > 0.25 and n.zone.hi[0] < 0.75
    )
    table = build_index_table(overlay, inner, np.random.default_rng(4))
    ninodes = table.negative_index_nodes(0)
    assert ninodes  # non-edge nodes always have at least the adjacent link
    assert ninodes == table.pointers(0, -1)


def test_inscan_routing_reaches_owner():
    overlay = make_overlay(128, 3, seed=6)
    tables = build_all_tables(overlay)
    rng = np.random.default_rng(7)
    for _ in range(100):
        start = int(rng.integers(128))
        p = rng.uniform(0, 1, 3)
        path = inscan_path(overlay, tables, start, p)
        assert overlay.nodes[path[-1]].zone.contains(p)


def test_inscan_routing_beats_plain_can_on_average():
    overlay = make_overlay(256, 2, seed=8)
    tables = build_all_tables(overlay)
    rng = np.random.default_rng(9)
    plain, idx = [], []
    for _ in range(200):
        start = int(rng.integers(256))
        p = rng.uniform(0, 1, 2)
        plain.append(len(greedy_path(overlay, start, p)) - 1)
        idx.append(len(inscan_path(overlay, tables, start, p)) - 1)
    assert np.mean(idx) < np.mean(plain) * 0.8


def test_inscan_hops_scale_logarithmically():
    rng = np.random.default_rng(10)

    def mean_hops(n):
        overlay = make_overlay(n, 2, seed=11)
        tables = build_all_tables(overlay, seed=12)
        hops = []
        for _ in range(150):
            start = int(rng.integers(n))
            p = rng.uniform(0, 1, 2)
            hops.append(len(inscan_path(overlay, tables, start, p)) - 1)
        return np.mean(hops)

    h64, h512 = mean_hops(64), mean_hops(512)
    # 8× the nodes should cost ~log(8)≈3 extra hops, not √8×.
    assert h512 - h64 < 4.0


def test_routing_with_stale_tables_survives_churn():
    overlay = make_overlay(64, 2, seed=13)
    tables = build_all_tables(overlay)
    rng = np.random.default_rng(14)
    # churn out a quarter of the nodes without refreshing tables
    for node_id in overlay.node_ids()[:16]:
        overlay.leave(node_id)
        tables.pop(node_id, None)
    for _ in range(50):
        ids = overlay.node_ids()
        start = ids[int(rng.integers(len(ids)))]
        p = rng.uniform(0, 1, 2)
        path = inscan_path(overlay, tables, start, p)
        assert overlay.nodes[path[-1]].zone.contains(p)


def test_build_messages_charged():
    overlay = make_overlay(64, 2, seed=15)
    table = build_index_table(overlay, overlay.node_ids()[5], np.random.default_rng(0))
    walked = sum(len(c) for c in table.links.values())
    assert table.build_messages >= walked  # walks at least as far as chains
