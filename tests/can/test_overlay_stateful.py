"""Stateful lockstep property test: arbitrary join/leave/route/diffuse
interleavings drive the vectorized overlay and the scalar reference
overlay side by side (the pattern of ``tests/cloud/test_executor_stateful
.py``), asserting identical routing paths, adjacency sets, directional
neighbor lists and diffusion recipients at every step."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.can.inscan import build_index_table
from repro.can.overlay import CANOverlay
from repro.can.routing import greedy_path, greedy_paths
from repro.core.diffusion import DiffusionEngine
from repro.testing import (
    ReferenceCANOverlay,
    ReferenceDiffusionEngine,
    _diffusion_rig,
    reference_greedy_path,
    reference_inscan_path,
)

DIMS = 3
START_N = 6


class OverlayLockstepMachine(RuleBasedStateMachine):
    """Random interleavings of join/leave/route/diffuse on twin overlays."""

    @initialize()
    def setup(self) -> None:
        self.vec = CANOverlay(DIMS, np.random.default_rng(0))
        self.ref = ReferenceCANOverlay(DIMS, np.random.default_rng(0))
        self.vec.bootstrap(range(START_N))
        self.ref.bootstrap(range(START_N))
        self.next_id = START_N
        self.tables_epoch = -1
        self.vec_tables = {}
        self.ref_tables = {}

    # ------------------------------------------------------------------
    def _fresh_tables(self) -> None:
        """Rebuild twin pointer tables when the membership changed."""
        if self.tables_epoch == self.vec.geometry.epoch:
            return
        self.vec_tables = {
            i: build_index_table(self.vec, i, np.random.default_rng(50 + i))
            for i in sorted(self.vec.nodes)
        }
        self.ref_tables = {
            i: build_index_table(self.ref, i, np.random.default_rng(50 + i))
            for i in sorted(self.ref.nodes)
        }
        self.tables_epoch = self.vec.geometry.epoch

    # ------------------------------------------------------------------
    @rule(coords=st.lists(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        min_size=DIMS, max_size=DIMS,
    ))
    def join(self, coords):
        point = np.asarray(coords)
        self.vec.join(self.next_id, point)
        self.ref.join(self.next_id, point)
        self.next_id += 1

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def leave(self, pick):
        if len(self.vec) <= 2:
            return
        ids = sorted(self.vec.nodes)
        victim = ids[pick % len(ids)]
        self.vec.leave(victim)
        self.ref.leave(victim)

    @rule(
        pick=st.integers(min_value=0, max_value=10_000),
        coords=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=DIMS, max_size=DIMS,
        ),
        quantize=st.booleans(),
    )
    def route(self, pick, coords, quantize):
        point = np.asarray(coords)
        if quantize:
            point = np.round(point * 4) / 4  # boundary-exact target
        ids = sorted(self.vec.nodes)
        start = ids[pick % len(ids)]
        got = greedy_path(self.vec, start, point)
        want = reference_greedy_path(self.ref, start, point)
        assert got == want
        assert self.vec.nodes[got[-1]].zone.contains(
            tuple(float(x) for x in point)
        )

    @rule(
        pick=st.integers(min_value=0, max_value=10_000),
        coords=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=DIMS, max_size=DIMS,
        ),
    )
    def route_inscan(self, pick, coords):
        self._fresh_tables()
        point = np.asarray(coords)
        ids = sorted(self.vec.nodes)
        start = ids[pick % len(ids)]
        got = greedy_path(self.vec, start, point, link_tables=self.vec_tables)
        want = reference_inscan_path(self.ref, self.ref_tables, start, point)
        assert got == want
        batched = greedy_paths(
            self.vec, [start], point[None, :], link_tables=self.vec_tables
        )
        assert batched == [got]

    @rule(pick=st.integers(min_value=0, max_value=10_000),
          method=st.sampled_from(["hid", "sid"]))
    def diffuse(self, pick, method):
        ids = sorted(self.vec.nodes)
        origin = ids[pick % len(ids)]
        dead: set[int] = set()
        vec_engine, vec_tables = _diffusion_rig(
            self.vec, DiffusionEngine, 99, dead
        )
        ref_engine, ref_tables = _diffusion_rig(
            self.ref, ReferenceDiffusionEngine, 99, dead
        )
        got = vec_engine.diffuse(origin, method)
        want = ref_engine.diffuse(origin, method)
        assert got.recipients == want.recipients
        assert got.messages == want.messages
        assert got.max_depth == want.max_depth

    # ------------------------------------------------------------------
    @invariant()
    def memberships_and_adjacency_match(self):
        if not hasattr(self, "vec"):
            return
        assert set(self.vec.nodes) == set(self.ref.nodes)
        for node_id in self.vec.nodes:
            assert (
                self.vec.nodes[node_id].neighbors
                == self.ref.nodes[node_id].neighbors
            )

    @invariant()
    def directional_views_match(self):
        if not hasattr(self, "vec"):
            return
        for node_id in self.vec.nodes:
            for dim in range(DIMS):
                for sign in (+1, -1):
                    assert self.vec.directional_neighbors(
                        node_id, dim, sign
                    ) == self.ref.directional_neighbors(node_id, dim, sign)

    @precondition(lambda self: hasattr(self, "vec") and len(self.vec) <= 24)
    @invariant()
    def structural_invariants_hold(self):
        self.vec.check_invariants()  # O(n²): only while the overlay is small


TestOverlayLockstep = OverlayLockstepMachine.TestCase
TestOverlayLockstep.settings = settings(
    max_examples=15, stateful_step_count=25, deadline=None
)
