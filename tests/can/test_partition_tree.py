"""Unit and property tests for the binary partition tree and CAN takeover."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.partition_tree import PartitionTree


def test_single_owner_covers_unit_cube():
    tree = PartitionTree(2, first_owner=0)
    tree.check_invariants()
    assert tree.owners() == [0]
    leaf = tree.find_leaf(np.array([0.3, 0.7]))
    assert leaf.owner == 0


def test_split_hands_point_half_to_new_owner():
    tree = PartitionTree(2, first_owner=0)
    point = np.array([0.75, 0.2])
    kept, created = tree.split(0, new_owner=1, point=point)
    assert created.owner == 1
    assert created.zone.contains(point)
    assert not kept.zone.contains(point)
    tree.check_invariants()


def test_split_cycles_dimensions_by_depth():
    tree = PartitionTree(2, first_owner=0)
    tree.split(0, 1, np.array([0.9, 0.9]))  # depth 0 → dim 0
    leaf1 = tree.leaf_of(1)
    assert leaf1.zone.lo[0] == 0.5 and leaf1.zone.side(1) == 1.0
    tree.split(1, 2, np.array([0.9, 0.9]))  # depth 1 → dim 1
    leaf2 = tree.leaf_of(2)
    assert leaf2.zone.lo[1] == 0.5


def test_split_duplicate_owner_rejected():
    tree = PartitionTree(2, first_owner=0)
    tree.split(0, 1, np.array([0.9, 0.9]))
    with pytest.raises(ValueError):
        tree.split(0, 1, np.array([0.1, 0.1]))


def test_remove_last_owner_empties_tree():
    tree = PartitionTree(2, first_owner=0)
    assert tree.remove(0) is None
    assert len(tree) == 0


def test_sibling_merge_case():
    tree = PartitionTree(2, first_owner=0)
    tree.split(0, 1, np.array([0.9, 0.5]))
    plan = tree.remove(1)
    assert plan.absorber == 0
    assert plan.mover is None
    assert plan.absorber_leaf.zone.volume == pytest.approx(1.0)
    tree.check_invariants()


def test_handoff_case_relocates_a_leaf():
    # Build: 0 splits with 1 (dim 0); 1's half splits twice more so that
    # removing 0 finds no leaf sibling and must relocate someone.
    tree = PartitionTree(2, first_owner=0)
    tree.split(0, 1, np.array([0.9, 0.5]))
    tree.split(1, 2, np.array([0.9, 0.9]))
    tree.split(2, 3, np.array([0.6, 0.9]))
    plan = tree.remove(0)
    assert plan.mover is not None
    assert plan.mover_leaf.zone.volume == pytest.approx(0.5)  # the old zone of 0
    tree.check_invariants()
    assert len(tree) == 3


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_random_join_leave_sequences_preserve_invariants(ops):
    """Random interleavings of joins and leaves keep the tree a partition."""
    rng = np.random.default_rng(0)
    tree = PartitionTree(3, first_owner=0)
    alive = [0]
    next_id = 1
    for op in ops:
        if op % 3 != 0 or len(alive) == 1:
            point = rng.uniform(0, 1, 3)
            owner = tree.find_leaf(point).owner
            tree.split(owner, next_id, point)
            alive.append(next_id)
            next_id += 1
        else:
            victim = alive.pop(op % len(alive))
            tree.remove(victim)
            if not alive:
                return
        tree.check_invariants()
        # every random point belongs to exactly one alive owner
        probe = rng.uniform(0, 1, 3)
        assert tree.find_leaf(probe).owner in alive


def test_find_leaf_handles_boundary_points():
    tree = PartitionTree(2, first_owner=0)
    tree.split(0, 1, np.array([0.9, 0.5]))
    tree.split(0, 2, np.array([0.1, 0.9]))
    # Exactly on the first split plane → belongs to the high side.
    leaf = tree.find_leaf(np.array([0.5, 0.5]))
    assert leaf.owner == 1
    # The cube's far corner has an owner too.
    assert tree.find_leaf(np.array([1.0, 1.0])).owner == 1
