"""Structural tests for the CAN overlay, including a hypothesis-driven
churn soak that cross-checks local neighbor maintenance against the
O(n²) brute-force recomputation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.overlay import CANOverlay
from tests.conftest import make_overlay


@pytest.mark.parametrize("n,dims", [(1, 2), (2, 2), (16, 2), (40, 3), (64, 5)])
def test_bootstrap_invariants(n, dims):
    overlay = make_overlay(n, dims)
    overlay.check_invariants()
    assert len(overlay) == n


def test_every_point_has_an_owner(overlay_2d):
    rng = np.random.default_rng(1)
    for _ in range(100):
        p = rng.uniform(0, 1, 2)
        owner = overlay_2d.owner_of(p)
        assert overlay_2d.nodes[owner].zone.contains(p)


def test_corner_points_have_owners(overlay_2d):
    for p in ([0.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.5, 0.5]):
        owner = overlay_2d.owner_of(np.array(p))
        assert overlay_2d.nodes[owner].zone.contains(np.array(p))


def test_join_duplicate_id_rejected(overlay_2d):
    with pytest.raises(ValueError):
        overlay_2d.join(0)


def test_neighbors_nonempty_for_multinodes(overlay_2d):
    for node in overlay_2d.nodes.values():
        assert node.neighbors, f"node {node.node_id} is isolated"


def test_directional_neighbors_partition_neighbor_set(overlay_2d):
    for node_id, node in overlay_2d.nodes.items():
        directional = set()
        for dim in range(2):
            for sign in (+1, -1):
                directional.update(
                    overlay_2d.directional_neighbors(node_id, dim, sign)
                )
        assert directional == node.neighbors


def test_leave_until_one_node():
    overlay = make_overlay(12, 2, seed=3)
    ids = overlay.node_ids()
    for node_id in ids[:-1]:
        overlay.leave(node_id)
        overlay.check_invariants()
    last = overlay.node_ids()[0]
    assert overlay.nodes[last].zone.volume == pytest.approx(1.0)
    overlay.leave(last)
    assert len(overlay) == 0
    # fresh join after total drain restarts cleanly
    overlay.join(999)
    overlay.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=10_000)),
        min_size=5,
        max_size=40,
    ),
    st.integers(min_value=2, max_value=4),
)
def test_random_churn_preserves_invariants(ops, dims):
    """The central overlay property test: arbitrary join/leave interleavings
    keep (a) zones a partition of the cube, (b) the tree 1:1, and
    (c) the incrementally-maintained neighbor sets exactly equal to the
    brute-force adjacency relation."""
    overlay = CANOverlay(dims, np.random.default_rng(0))
    overlay.bootstrap(range(4))
    next_id = 4
    for is_join, selector in ops:
        if is_join or len(overlay) <= 2:
            overlay.join(next_id)
            next_id += 1
        else:
            ids = overlay.node_ids()
            overlay.leave(ids[selector % len(ids)])
        overlay.check_invariants()


def test_churned_overlay_still_routes():
    from repro.can.routing import greedy_path

    overlay = make_overlay(48, 3, seed=5)
    rng = np.random.default_rng(9)
    for step in range(30):
        ids = overlay.node_ids()
        overlay.leave(ids[int(rng.integers(len(ids)))])
        overlay.join(1000 + step)
    overlay.check_invariants()
    ids = overlay.node_ids()
    for _ in range(50):
        start = ids[int(rng.integers(len(ids)))]
        p = rng.uniform(0, 1, 3)
        path = greedy_path(overlay, start, p)
        assert overlay.nodes[path[-1]].zone.contains(p)


def test_zone_sizes_are_skewed_by_random_joins():
    # §I: records may be "intensively stored in only a few small-zone
    # nodes" — random joins must produce heterogeneous zone volumes.
    overlay = make_overlay(128, 2, seed=11)
    volumes = sorted(n.zone.volume for n in overlay.nodes.values())
    assert volumes[-1] / volumes[0] >= 4.0
