"""Tests for the random-walk strawman (§III-A)."""

import numpy as np

from repro.baselines.randomwalk import RandomWalkProtocol
from repro.core.protocol import PIDCANParams
from tests.core.helpers import Harness


def make_rw(n=48, seed=0, **kwargs):
    h = Harness(n=n, dims=2, seed=seed)
    proto = RandomWalkProtocol(h.ctx, PIDCANParams(resource_dims=2), **kwargs)
    proto.bootstrap(list(range(n)))
    # scatter availabilities over the upper region so many duty caches
    # hold qualifying records — the walk only needs to hit one of them
    rng = np.random.default_rng(seed + 100)
    for i in range(n):
        h.availability[i] = rng.uniform(0.5, 1.0, 2)
    return h, proto


def test_finds_record_when_records_are_plentiful():
    h, proto = make_rw(seed=1)
    h.sim.run(until=900.0)  # state updates populate duty caches
    out = {}
    proto.submit_query(
        np.array([0.4, 0.4]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1100.0)
    assert out["records"]


def test_walk_hop_budget_bounds_traffic():
    h, proto = make_rw(seed=2, walk_hops=4)
    h.sim.run(until=900.0)
    before = h.traffic.by_kind.get("walk-query", 0)
    out = {}
    proto.submit_query(
        np.array([0.99, 0.99]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1100.0)
    walked = h.traffic.by_kind.get("walk-query", 0) - before
    assert walked <= 4
    assert out["records"] == []


def test_callback_always_fires():
    h, proto = make_rw(seed=3)
    calls = []
    proto.submit_query(np.array([0.2, 0.2]), 0, lambda r, m: calls.append(1))
    h.sim.run(until=600.0)
    assert len(calls) == 1


def test_churn_hooks():
    h, proto = make_rw(seed=4)
    proto.on_leave(5)
    assert 5 not in proto.overlay
    h.availability[777] = np.array([0.5, 0.5])
    proto.on_join(777)
    proto.overlay.check_invariants()
