"""Tests for the Mercury attribute-hub baseline (related work [15])."""

import numpy as np
import pytest

from repro.baselines.mercury import HubRing, MercuryProtocol
from repro.core.protocol import PIDCANParams, make_protocol
from repro.testing import ProtocolSandbox


# ----------------------------------------------------------------------
# HubRing substrate
# ----------------------------------------------------------------------
def make_ring(positions):
    ring = HubRing(0)
    for node_id, pos in enumerate(positions):
        ring.add(node_id, pos)
    return ring


def test_ring_orders_members_by_position():
    ring = make_ring([0.7, 0.2, 0.5])
    assert ring.members() == [1, 2, 0]  # ascending by position


def test_owner_lookup_by_arc():
    ring = make_ring([0.0, 0.5])
    assert ring.owner_of(0.25) == 0
    assert ring.owner_of(0.5) == 1
    assert ring.owner_of(0.99) == 1


def test_values_below_first_arc_wrap_to_last():
    ring = make_ring([0.3, 0.6])
    assert ring.owner_of(0.1) == 1  # wraps to the topmost arc


def test_duplicate_member_rejected():
    ring = make_ring([0.3])
    with pytest.raises(ValueError):
        ring.add(0, 0.9)


def test_remove_merges_arc_into_predecessor():
    ring = make_ring([0.0, 0.5])
    ring.remove(1)
    assert ring.owner_of(0.9) == 0
    assert len(ring) == 1


def test_empty_ring_lookup_raises():
    with pytest.raises(LookupError):
        HubRing(0).owner_of(0.5)


def test_successor_orders():
    ring = make_ring([0.0, 0.5, 0.8])
    assert ring.successor(0) == 1
    assert ring.successor(2) == 0  # wraps
    assert ring.successor_no_wrap(2) is None
    assert ring.successor_no_wrap(0) == 1


def test_routing_hops_popcount():
    ring = make_ring([i / 16 for i in range(16)])
    # distance 5 = 0b101 → 2 finger hops
    src = ring.members()[0]
    value = 5 / 16 + 0.01
    assert ring.routing_hops(src, value) == 2
    # self arc → 0 hops
    assert ring.routing_hops(src, 0.001) == 0


def test_routing_from_outside_charges_bootstrap():
    ring = make_ring([0.0, 0.5])
    assert ring.routing_hops(999, 0.7) >= 1


# ----------------------------------------------------------------------
# protocol behaviour
# ----------------------------------------------------------------------
def make_mercury(n=40, seed=0, dims=2, **kwargs):
    sb = ProtocolSandbox(n=n, dims=dims, seed=seed)
    proto = MercuryProtocol(sb.ctx, PIDCANParams(resource_dims=dims), **kwargs)
    proto.bootstrap(list(range(n)))
    rng = np.random.default_rng(seed + 50)
    for i in range(n):
        sb.availability[i] = rng.uniform(0.3, 1.0, dims)
    return sb, proto


def test_hubs_are_balanced():
    _, proto = make_mercury(n=40, dims=2)
    sizes = [len(hub) for hub in proto.hubs]
    assert sum(sizes) == 40
    assert max(sizes) - min(sizes) <= 1


def test_state_updates_replicate_to_every_hub():
    sb, proto = make_mercury(seed=1)
    sb.sim.run(until=900.0)
    total = sum(len(c) for c in proto.caches.values())
    # ~every node's record lands once per hub (d=2 replicas each)
    assert total >= 40 * 2 * 0.7
    assert sb.traffic.by_kind["state-update"] > 0


def test_query_finds_qualified_records():
    sb, proto = make_mercury(seed=2)
    sb.sim.run(until=900.0)
    out = {}
    proto.submit_query(
        np.array([0.35, 0.35]), 0, lambda r, m: out.setdefault("records", r)
    )
    sb.sim.run(until=1100.0)
    assert out["records"]
    for rec in out["records"]:
        assert np.all(rec.availability >= 0.35)


def test_query_fails_cleanly_when_unsatisfiable():
    sb, proto = make_mercury(seed=3)
    sb.sim.run(until=900.0)
    out = {}
    proto.submit_query(
        np.array([1.5, 1.5]), 0, lambda r, m: out.setdefault("records", r)
    )
    sb.sim.run(until=1200.0)
    assert out["records"] == []


def test_most_selective_hub_picks_highest_demand():
    sb, proto = make_mercury(seed=4)
    hub = proto._most_selective_hub(np.array([0.2, 0.9]))
    assert hub.attribute == 1


def test_walk_budget_bounds_traffic():
    sb, proto = make_mercury(seed=5, walk_budget=3)
    sb.sim.run(until=900.0)
    before = sb.traffic.by_kind.get("walk-query", 0)
    out = {}
    proto.submit_query(
        np.array([0.95, 0.95]), 0, lambda r, m: out.setdefault("records", r)
    )
    sb.sim.run(until=1200.0)
    assert sb.traffic.by_kind.get("walk-query", 0) - before <= 3


def test_churn_hooks():
    sb, proto = make_mercury(seed=6)
    hub_idx = proto.hub_of[3]
    proto.on_leave(3)
    assert 3 not in proto.hub_of
    assert 3 not in proto.hubs[hub_idx]
    sb.availability[777] = np.array([0.5, 0.5])
    proto.on_join(777)
    assert 777 in proto.hub_of


def test_factory_builds_mercury():
    sb = ProtocolSandbox(n=10, dims=5, seed=7)
    proto = make_protocol("mercury", sb.ctx)
    assert proto.name == "mercury"


def test_full_soc_run_with_mercury():
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import SOCSimulation

    cfg = ExperimentConfig(
        n_nodes=40, duration=4000.0, demand_ratio=0.4, seed=11,
        protocol="mercury",
    )
    res = SOCSimulation(cfg).run()
    assert res.generated > 0
    assert res.finished + res.failed <= res.generated
    assert res.traffic_total > 0
