"""Tests for the KHDN-CAN baseline."""

import numpy as np

from repro.baselines.khdn import KHDNProtocol
from repro.core.protocol import PIDCANParams
from repro.core.state import StateRecord
from tests.core.helpers import Harness


def make_khdn(n=48, seed=0, **kwargs):
    h = Harness(n=n, dims=2, seed=seed)
    proto = KHDNProtocol(h.ctx, PIDCANParams(resource_dims=2), **kwargs)
    proto.bootstrap(list(range(n)))
    # overwrite harness availability with 2-dim vectors in [0,1]
    for i in range(n):
        h.availability[i] = np.array([0.6, 0.6])
    return h, proto


def test_bootstrap_builds_overlay_and_caches():
    h, proto = make_khdn()
    assert len(proto.overlay) == 48
    assert set(proto.caches) == set(range(48))
    proto.overlay.check_invariants()


def test_state_replication_reaches_negative_nodes():
    from repro.can.zone import is_negative_direction_of

    h, proto = make_khdn(seed=1)
    # pick a duty node in the interior and deliver a record there
    duty = next(
        n.node_id for n in proto.overlay.nodes.values() if np.all(n.zone.lo > 0.4)
    )
    record = StateRecord(777, np.array([0.9, 0.9]), 0.0)
    proto._deliver_state(duty, record)
    holders = [i for i, c in proto.caches.items() if len(c) > 0]
    assert duty in holders
    replicas = [i for i in holders if i != duty]
    assert replicas, "K-hop replication produced no copies"
    duty_zone = proto.overlay.nodes[duty].zone
    for r in replicas:
        assert is_negative_direction_of(proto.overlay.nodes[r].zone, duty_zone)
    assert h.traffic.by_kind["state-replication"] == len(replicas)


def test_query_finds_replicated_record():
    h, proto = make_khdn(seed=2)
    h.sim.run(until=900.0)  # state updates + replication run
    out = {}
    proto.submit_query(
        np.array([0.5, 0.5]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1100.0)
    assert out["records"]
    for rec in out["records"]:
        assert np.all(rec.availability >= 0.5)


def test_query_fails_cleanly_when_unsatisfiable():
    h, proto = make_khdn(seed=3)
    h.sim.run(until=900.0)
    out = {}
    proto.submit_query(
        np.array([0.95, 0.95]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1100.0)
    assert out["records"] == []


def test_probe_budget_bounds_query_traffic():
    h, proto = make_khdn(seed=4, max_probes=3)
    h.sim.run(until=900.0)
    before = h.traffic.by_kind.get("probe-query", 0)
    out = {}
    proto.submit_query(
        np.array([0.94, 0.94]), 0, lambda r, m: out.setdefault("m", m)
    )
    h.sim.run(until=1100.0)
    probes = h.traffic.by_kind.get("probe-query", 0) - before
    assert probes <= 3


def test_churn_hooks():
    h, proto = make_khdn(seed=5)
    proto.on_leave(7)
    assert 7 not in proto.overlay
    assert 7 not in proto.caches
    h.availability[999] = np.array([0.5, 0.5])
    proto.on_join(999)
    assert 999 in proto.overlay
    proto.overlay.check_invariants()
