"""Tests for the Newscast gossip baseline."""

import numpy as np
import pytest

from repro.baselines.newscast import NewscastProtocol, ViewEntry
from repro.core.protocol import PIDCANParams
from tests.core.helpers import Harness


def make_newscast(n=32, seed=0, **kwargs):
    h = Harness(n=n, dims=2, seed=seed)
    for i in h.overlay.node_ids():
        h.availability[i] = np.array([0.5, 0.5])
    proto = NewscastProtocol(h.ctx, PIDCANParams(), **kwargs)
    proto.bootstrap(h.overlay.node_ids())
    return h, proto


def test_view_size_is_log2_population():
    h, proto = make_newscast(n=32)
    assert proto.view_size() == 5
    for view in proto.views.values():
        assert len(view) <= 5


def test_views_reference_other_nodes():
    h, proto = make_newscast()
    for node_id, view in proto.views.items():
        assert all(e.peer != node_id for e in view)


def test_gossip_refreshes_views():
    h, proto = make_newscast()
    h.sim.run(until=2000.0)
    assert h.traffic.by_kind["gossip"] > 0
    newest = max(
        (e.timestamp for view in proto.views.values() for e in view), default=0
    )
    assert newest > 1000.0


def test_merge_keeps_freshest_entries():
    h, proto = make_newscast()
    a = [ViewEntry(1, np.ones(2), 10.0), ViewEntry(2, np.ones(2), 5.0)]
    b = [ViewEntry(1, np.zeros(2), 20.0), ViewEntry(3, np.ones(2), 1.0)]
    merged = proto._merge(a, b)
    by_peer = {e.peer: e for e in merged}
    assert by_peer[1].timestamp == 20.0  # fresher copy of peer 1 won
    assert by_peer[1].availability[0] == 0.0


def test_query_finds_qualified_view_entry():
    h, proto = make_newscast(seed=3)
    h.sim.run(until=800.0)  # let gossip populate fresh entries
    out = {}
    proto.submit_query(
        np.array([0.4, 0.4]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1000.0)
    assert out["records"], "uniform availability 0.5 ⪰ demand 0.4 must be found"
    for rec in out["records"]:
        assert np.all(rec.availability >= 0.4)


def test_query_fails_when_nothing_qualifies():
    h, proto = make_newscast(seed=4)
    h.sim.run(until=800.0)
    out = {}
    proto.submit_query(
        np.array([0.9, 0.9]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1000.0)
    assert out["records"] == []


def test_walk_respects_delta():
    h, proto = make_newscast(seed=5)
    h.sim.run(until=800.0)
    out = {}
    proto.submit_query(
        np.array([0.1, 0.1]), 0, lambda r, m: out.setdefault("records", r)
    )
    h.sim.run(until=1000.0)
    owners = {r.owner for r in out["records"]}
    assert len(owners) >= proto.params.delta  # stops once delta distinct found


def test_join_seeds_view_from_introducer():
    h, proto = make_newscast()
    h.availability[999] = np.array([0.5, 0.5])
    proto.on_join(999)
    assert 999 in proto.views


def test_leave_drops_view():
    h, proto = make_newscast()
    proto.on_leave(3)
    assert 3 not in proto.views


def test_view_size_override():
    h = Harness(n=16, dims=2, seed=6)
    proto = NewscastProtocol(h.ctx, PIDCANParams(), view_size=3, walk_hops=2)
    proto.bootstrap(h.overlay.node_ids())
    assert proto.view_size() == 3
    assert proto.walk_hops() == 2
