"""Tests for the INSCAN-RQ flooding range query — §III-A's completeness
and traffic/delay claims."""

import numpy as np
import pytest

from repro.baselines.inscan_rq import INSCANRangeQuery
from tests.core.helpers import Harness


def make_rq(n=64, seed=0):
    h = Harness(n=n, dims=2, seed=seed)
    rq = INSCANRangeQuery(h.overlay, h.tables, h.caches)
    return h, rq


def plant_everywhere(h: Harness, rng):
    """One record per node, stored at the duty node of its availability."""
    owners = {}
    for owner in h.overlay.node_ids():
        avail = rng.uniform(0, 1, 2)
        duty = h.duty_of(avail)
        h.plant_record(duty, owner=1000 + owner, availability=avail)
        owners[1000 + owner] = avail
    return owners


def test_flooding_finds_all_qualified_records():
    h, rq = make_rq(seed=1)
    rng = np.random.default_rng(2)
    owners = plant_everywhere(h, rng)
    demand = np.array([0.6, 0.6])
    result = rq.query(0, demand, demand, now=0.0)
    expected = {o for o, a in owners.items() if np.all(a >= demand)}
    assert {r.owner for r in result.records} == expected


def test_responsible_nodes_cover_query_box():
    h, rq = make_rq(seed=3)
    demand = np.array([0.5, 0.5])
    result = rq.query(0, demand, demand, now=0.0)
    overlap = [
        n.node_id
        for n in h.overlay.nodes.values()
        if n.zone.overlaps_box(demand, np.ones(2)) or n.zone.contains(demand)
    ]
    assert result.responsible_nodes == len(overlap)


def test_traffic_formula():
    # §III-A: traffic per query is route hops + (N − 1) flood edges.
    h, rq = make_rq(seed=4)
    demand = np.array([0.4, 0.4])
    result = rq.query(5, demand, demand, now=0.0)
    assert result.messages == result.route_hops + result.responsible_nodes - 1


def test_wider_ranges_touch_more_nodes():
    h, rq = make_rq(seed=5)
    narrow = rq.query(0, np.array([0.8, 0.8]), np.array([0.8, 0.8]), now=0.0)
    wide = rq.query(0, np.array([0.1, 0.1]), np.array([0.1, 0.1]), now=0.0)
    assert wide.responsible_nodes > narrow.responsible_nodes
    assert wide.messages > narrow.messages


def test_flood_depth_bounded_by_network_diameter():
    h, rq = make_rq(n=128, seed=6)
    demand = np.array([0.05, 0.05])  # floods nearly the whole space
    result = rq.query(0, demand, demand, now=0.0)
    # depth ≤ O(√N) for 2-D CAN; wildly smaller than N
    assert result.flood_depth <= 4 * int(np.sqrt(result.responsible_nodes)) + 4


def test_empty_caches_return_no_records():
    h, rq = make_rq(seed=7)
    result = rq.query(0, np.array([0.3, 0.3]), np.array([0.3, 0.3]), now=0.0)
    assert result.records == ()
    assert result.responsible_nodes >= 1
