"""Tests for the PID-CAN protocol assembly and variant factory."""

import numpy as np
import pytest

from repro.core.context import ProtocolContext
from repro.core.protocol import (
    PIDCANParams,
    PIDCANProtocol,
    PROTOCOL_NAMES,
    make_protocol,
)
from repro.metrics.traffic import TrafficMeter
from repro.sim.engine import Simulator
from repro.sim.network import NetworkModel, NetworkParams


def make_ctx(n=24, dims=5, seed=0):
    sim = Simulator()
    network = NetworkModel(NetworkParams(), np.random.default_rng(seed))
    for i in range(n):
        network.add_node(i)
    alive = set(range(n))
    avail = {i: np.full(dims, 5.0) for i in range(n)}
    ctx = ProtocolContext(
        sim=sim,
        network=network,
        traffic=TrafficMeter(),
        rng=np.random.default_rng(seed + 1),
        cmax=np.full(dims, 10.0),
        availability_of=lambda i: avail[i],
        is_alive=lambda i: i in alive,
    )
    return ctx, alive, avail


def test_bootstrap_creates_per_node_state():
    ctx, alive, _ = make_ctx()
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    assert len(proto.overlay) == 24
    assert set(proto.caches) == alive
    assert set(proto.pilists) == alive
    assert set(proto.tables) == alive
    proto.overlay.check_invariants()


def test_state_updates_populate_duty_caches():
    ctx, alive, avail = make_ctx()
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    ctx.sim.run(until=900.0)  # two state cycles
    total_records = sum(len(c) for c in proto.caches.values())
    assert total_records >= len(alive) * 0.8  # nearly every node reported
    assert ctx.traffic.by_kind["state-update"] > 0


def test_diffusion_fills_pilists_over_time():
    ctx, alive, _ = make_ctx()
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    ctx.sim.run(until=1800.0)
    assert ctx.traffic.by_kind.get("index-diffusion", 0) > 0
    assert any(len(p) > 0 for p in proto.pilists.values())


def test_on_leave_cleans_up():
    ctx, alive, _ = make_ctx()
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    proto.on_leave(3)
    alive.discard(3)
    assert 3 not in proto.caches
    assert 3 not in proto.pilists
    assert 3 not in proto.overlay
    proto.overlay.check_invariants()


def test_on_join_arms_new_node():
    ctx, alive, avail = make_ctx()
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    avail[99] = np.full(5, 5.0)
    alive.add(99)
    proto.on_join(99)
    assert 99 in proto.overlay
    assert 99 in proto.caches
    proto.overlay.check_invariants()


def test_periodic_chains_stop_for_dead_nodes():
    ctx, alive, _ = make_ctx(n=8)
    proto = PIDCANProtocol(ctx, PIDCANParams())
    proto.bootstrap(sorted(alive))
    ctx.sim.run(until=500.0)
    for node in list(alive):
        if node != 0:
            proto.on_leave(node)
            alive.discard(node)
    before = ctx.sim.pending()
    ctx.sim.run(until=5000.0)
    # chains for dead nodes must have unwound, not kept re-arming
    assert ctx.sim.pending() < before


def test_vd_adds_overlay_dimension():
    params = PIDCANParams(vd=True, resource_dims=5)
    assert params.overlay_dims == 6
    ctx, alive, _ = make_ctx(dims=5)
    proto = PIDCANProtocol(ctx, params)
    proto.bootstrap(sorted(alive))
    assert proto.overlay.dims == 6
    ctx.sim.run(until=500.0)  # state updates route in the padded space
    assert ctx.traffic.by_kind["state-update"] > 0


@pytest.mark.parametrize(
    "name,expect_cls",
    [
        ("hid-can", "hid-can"),
        ("sid-can", "sid-can"),
        ("hid-can+sos", "hid-can+sos"),
        ("sid-can+sos", "sid-can+sos"),
        ("sid-can+vd", "sid-can+vd"),
        ("hid-can+vd", "hid-can+vd"),
    ],
)
def test_factory_builds_pidcan_variants(name, expect_cls):
    ctx, alive, _ = make_ctx()
    proto = make_protocol(name, ctx)
    assert proto.name == expect_cls
    assert isinstance(proto, PIDCANProtocol)
    if "+sos" in name:
        assert proto.params.sos
    if "+vd" in name:
        assert proto.params.vd


@pytest.mark.parametrize("name", ["newscast", "khdn-can", "randomwalk-can"])
def test_factory_builds_baselines(name):
    ctx, alive, _ = make_ctx()
    proto = make_protocol(name, ctx)
    assert proto.name == name


def test_factory_rejects_unknown():
    ctx, _, _ = make_ctx()
    with pytest.raises(ValueError, match="unknown protocol"):
        make_protocol("chord", ctx)


def test_protocol_names_all_constructible():
    for name in PROTOCOL_NAMES:
        ctx, _, _ = make_ctx()
        make_protocol(name, ctx)
