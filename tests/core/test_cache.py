"""Unit tests for the hot-range path cache (docs/caching.md).

The TTL policy is pinned against the verbatim seed PIList
(:class:`repro.testing.ReferencePIList`) by a randomized lockstep drive;
the other policies get behavioural tests of their eviction orders, and
:class:`PathCacheIndex` gets registry + heat-window coverage.
"""

import numpy as np
import pytest

from repro.core.cache import CACHE_POLICIES, PathCacheIndex, RangeCache
from repro.testing import ReferencePIList


def box(lo, hi, dims=2):
    return np.full(dims, lo, dtype=float), np.full(dims, hi, dtype=float)


# ----------------------------------------------------------------------
# randomized lockstep: RangeCache TTL policy == seed PIList
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_ttl_policy_lockstep_with_reference_pilist(seed):
    rng = np.random.default_rng(seed)
    soa = RangeCache(ttl=50.0, max_size=8, policy="ttl")
    ref = ReferencePIList(ttl=50.0, max_size=8)
    now = 0.0
    for _ in range(600):
        now += float(rng.exponential(3.0))
        op = rng.integers(6)
        key = int(rng.integers(24))
        if op <= 2:  # adds dominate, forcing evictions
            soa.add(key, now)
            ref.add(key, now)
        elif op == 3:
            soa.discard(key)
            ref.discard(key)
        elif op == 4:
            soa.purge(now)
            ref.purge(now)
        else:
            r1 = np.random.default_rng(int(rng.integers(1 << 30)))
            r2 = np.random.default_rng(r1.bit_generator.state["state"]["state"])
            r2.bit_generator.state = r1.bit_generator.state
            assert soa.sample(3, now, r1) == ref.sample(3, now, r2)
        assert soa.entries(now) == ref.entries(now)
        assert len(soa) == len(ref)
        assert (key in soa) == (key in ref)


def test_ttl_eviction_ignores_purgeable_entries_like_seed():
    # The seed evicts by raw insertion stamp without purging first; a
    # stale entry is therefore the preferred victim.
    soa = RangeCache(ttl=10.0, max_size=2, policy="ttl")
    ref = ReferencePIList(ttl=10.0, max_size=2)
    for cache in (soa, ref):
        cache.add(1, now=0.0)
        cache.add(2, now=100.0)
        cache.add(3, now=101.0)  # over capacity: stale 1 evicted, not 2
    assert soa.entries(now=101.0) == ref.entries(now=101.0) == [2, 3]


def test_validation():
    with pytest.raises(ValueError):
        RangeCache(ttl=0.0)
    with pytest.raises(ValueError):
        RangeCache(ttl=1.0, policy="mru")
    with pytest.raises(ValueError):
        RangeCache(ttl=1.0, max_size=0)
    assert set(CACHE_POLICIES) == {"ttl", "lru", "lfu", "adaptive"}


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------
def filled(policy, max_size=3, ttl=1000.0, dims=2):
    cache = RangeCache(ttl=ttl, max_size=max_size, policy=policy, dims=dims)
    for key in range(max_size):
        lo, hi = box(0.1 * key, 0.1 * key + 0.05, dims)
        cache.add(key, now=float(key), lo=lo, hi=hi)
    return cache


def touch(cache, key, now, dims=2):
    point = np.full(dims, 0.1 * key + 0.02)
    assert cache.lookup(point, now) == key


def test_lru_evicts_least_recently_used():
    cache = filled("lru")
    touch(cache, 0, now=10.0)  # 0 becomes most recent; 1 is now LRU
    cache.add(9, now=11.0, lo=box(0.8, 0.9)[0], hi=box(0.8, 0.9)[1])
    assert cache.entries(now=11.0) == [0, 2, 9]


def test_lfu_evicts_least_frequently_used():
    cache = filled("lfu")
    touch(cache, 0, now=10.0)
    touch(cache, 0, now=11.0)
    touch(cache, 1, now=12.0)
    # 2 and the incoming 9 are both hitless — recency breaks the tie, so
    # the older 2 goes and the newcomer is admitted.
    cache.add(9, now=14.0, lo=box(0.8, 0.9)[0], hi=box(0.8, 0.9)[1])
    assert cache.entries(now=14.0) == [0, 1, 9]


def test_lfu_rejects_newcomer_when_incumbents_have_hits():
    # The classic LFU admission property, kept deliberately: eviction is
    # one uniform rule over all entries (the TTL lockstep needs that), so
    # a hitless newcomer loses to an all-hit incumbency.
    cache = filled("lfu")
    for key in range(3):
        touch(cache, key, now=10.0 + key)
    cache.add(9, now=14.0, lo=box(0.8, 0.9)[0], hi=box(0.8, 0.9)[1])
    assert cache.entries(now=14.0) == [0, 1, 2]


def test_adaptive_prefers_frequent_over_merely_recent():
    cache = RangeCache(ttl=1000.0, max_size=2, policy="adaptive", dims=2)
    lo0, hi0 = box(0.0, 0.1)
    cache.add(0, now=0.0, lo=lo0, hi=hi0)
    for t in (1.0, 2.0, 3.0, 4.0):
        touch(cache, 0, now=t)
    lo1, hi1 = box(0.2, 0.3)
    cache.add(1, now=5.0, lo=lo1, hi=hi1)  # recent but never hit
    lo2, hi2 = box(0.4, 0.5)
    cache.add(2, now=6.0, lo=lo2, hi=hi2)
    # utility(0) = 5·exp(-2/τ) >> utility(1) = 1·exp(-1/τ): 1 is evicted.
    assert cache.entries(now=6.0) == [0, 2]


def test_adaptive_decays_stale_frequency():
    cache = RangeCache(ttl=100.0, max_size=2, policy="adaptive", dims=2)
    lo0, hi0 = box(0.0, 0.1)
    cache.add(0, now=0.0, lo=lo0, hi=hi0)
    for t in (1.0, 2.0, 3.0):
        touch(cache, 0, now=t)
    # τ = 50; by t=95 entry 0's burst has decayed: 4·exp(-92/50) ≈ 0.63
    # < 1·exp(0) — the fresh, unhit entry 1 outranks it.
    lo1, hi1 = box(0.2, 0.3)
    cache.add(1, now=95.0, lo=lo1, hi=hi1)
    lo2, hi2 = box(0.4, 0.5)
    cache.add(2, now=95.0, lo=lo2, hi=hi2)
    assert cache.entries(now=95.0) == [1, 2]


def test_refresh_keeps_hit_history():
    cache = filled("lfu")
    touch(cache, 0, now=10.0)
    lo, hi = box(0.0, 0.05)
    cache.add(0, now=11.0, lo=lo, hi=hi)  # re-learn the same route
    row = cache._row[0]
    assert cache._hits[row] == 1  # refresh confirms, it doesn't reset
    assert cache._added[row] == 11.0 and cache._last[row] == 11.0


# ----------------------------------------------------------------------
# box-containment lookup
# ----------------------------------------------------------------------
def test_lookup_requires_dims():
    with pytest.raises(ValueError):
        RangeCache(ttl=10.0).lookup(np.zeros(2), now=0.0)


def test_lookup_containment_half_open():
    cache = RangeCache(ttl=100.0, max_size=4, policy="ttl", dims=2)
    cache.add(7, now=0.0, lo=np.array([0.2, 0.2]), hi=np.array([0.4, 0.4]))
    assert cache.lookup(np.array([0.2, 0.3]), now=1.0) == 7  # lo inclusive
    assert cache.lookup(np.array([0.4, 0.3]), now=1.0) is None  # hi exclusive
    assert cache.lookup(np.array([0.1, 0.3]), now=1.0) is None


def test_lookup_top_face_is_closed():
    # Zones touching the top of the unit cube own their upper boundary.
    cache = RangeCache(ttl=100.0, max_size=4, policy="ttl", dims=2)
    cache.add(7, now=0.0, lo=np.array([0.5, 0.5]), hi=np.array([1.0, 1.0]))
    assert cache.lookup(np.array([1.0, 1.0]), now=1.0) == 7


def test_lookup_prefers_freshest_overlap():
    cache = RangeCache(ttl=100.0, max_size=4, policy="ttl", dims=2)
    lo, hi = np.array([0.0, 0.0]), np.array([1.0, 1.0])
    cache.add(1, now=0.0, lo=lo, hi=hi)
    cache.add(2, now=5.0, lo=lo, hi=hi)  # fresher binding wins
    assert cache.lookup(np.array([0.5, 0.5]), now=6.0) == 2


def test_lookup_expires_entries():
    cache = RangeCache(ttl=10.0, max_size=4, policy="ttl", dims=2)
    cache.add(1, now=0.0, lo=np.zeros(2), hi=np.ones(2))
    assert cache.lookup(np.array([0.5, 0.5]), now=20.0) is None


def test_lookup_bumps_frequency_and_recency():
    cache = RangeCache(ttl=100.0, max_size=4, policy="lfu", dims=2)
    cache.add(1, now=0.0, lo=np.zeros(2), hi=np.ones(2))
    row = cache._row[1]
    cache.lookup(np.array([0.5, 0.5]), now=3.0)
    assert cache._hits[row] == 1
    assert cache._last[row] == 3.0


def test_compaction_preserves_entries_and_boxes():
    cache = RangeCache(ttl=1e6, max_size=500, policy="lru", dims=2)
    for key in range(200):
        lo, hi = box(0.0, 1.0)
        cache.add(key, now=float(key), lo=lo, hi=hi)
    for key in range(0, 200, 2):
        cache.discard(key)  # 100 dead rows → lazy compaction kicks in
    assert cache.entries(now=200.0) == list(range(1, 200, 2))
    assert cache.lookup(np.array([0.5, 0.5]), now=200.0) == 199
    for key in range(1, 200, 2):
        assert key in cache


# ----------------------------------------------------------------------
# PathCacheIndex: registry, invalidation, heat window
# ----------------------------------------------------------------------
def test_index_registry_and_store():
    index = PathCacheIndex("lru", size=8, ttl=100.0, dims=2)
    index.add_node(1)
    index.add_node(2)
    assert len(index) == 2
    lo, hi = np.zeros(2), np.ones(2)
    index.store(1, 9, lo, hi, now=0.0)
    index.store(1, 1, lo, hi, now=0.0)  # self-binding is ignored
    assert index.lookup(1, np.array([0.5, 0.5]), now=1.0) == 9
    assert 1 not in index.cache_of(1)
    assert index.lookup(2, np.array([0.5, 0.5]), now=1.0) is None
    assert index.lookup(99, np.array([0.5, 0.5]), now=1.0) is None  # unknown node
    index.invalidate(1, 9)
    assert index.lookup(1, np.array([0.5, 0.5]), now=1.0) is None
    index.drop_node(1)
    assert index.cache_of(1) is None and len(index) == 1


def test_heat_threshold_triggers_once():
    index = PathCacheIndex(
        "lru", dims=2, replication_threshold=3, replication_window=100.0
    )
    for t in (0.0, 1.0):
        index.record_service(5, t)
    assert not index.take_hot(5, now=2.0)
    index.record_service(5, 3.0)
    assert index.take_hot(5, now=4.0)
    # take_hot consumed the heat: not hot again until re-accumulated.
    assert not index.take_hot(5, now=5.0)
    assert not index.take_hot(99, now=5.0)  # never-serviced node


def test_heat_window_spans_two_buckets():
    index = PathCacheIndex(
        "lru", dims=2, replication_threshold=4, replication_window=100.0
    )
    for t in (10.0, 20.0):
        index.record_service(5, t)
    # One window later the counts age into the previous bucket but still
    # contribute: 2 (prev) + 2 (cur) crosses the threshold.
    for t in (110.0, 120.0):
        index.record_service(5, t)
    assert index.take_hot(5, now=130.0)


def test_heat_ages_out_after_two_windows():
    index = PathCacheIndex(
        "lru", dims=2, replication_threshold=3, replication_window=100.0
    )
    for t in (0.0, 1.0, 2.0):
        index.record_service(5, t)
    # >= 2 windows of silence: both buckets expire, the burst is gone.
    assert not index.take_hot(5, now=250.0)
