"""Churn-hardening regression: the ROADMAP hang repro.

Before the shared query lifecycle, the timeout-less baselines
(randomwalk/khdn/mercury) could hang ``submit_many`` forever when a chain
message landed on a churned node: the per-query callback never fired and
the batch fan-in never completed.  These tests drive every registered
protocol through exactly that situation and assert the batch resolves —
by chain completion or by explicit timeout failure, never a silent hang —
and that a timed-out query is counted exactly once.
"""

import numpy as np
import pytest

from repro.core.protocol import PIDCANParams, PROTOCOL_NAMES, make_protocol
from tests.core.helpers import Harness

TIMEOUT = 30.0


def build(name, n=32, seed=0):
    h = Harness(n=n, dims=2, seed=seed)
    params = PIDCANParams(resource_dims=2, query_timeout=TIMEOUT)
    proto = make_protocol(name, h.ctx, params)
    rng = np.random.default_rng(seed + 50)
    for i in range(n):
        h.availability[i] = rng.uniform(0.3, 1.0, 2)
    proto.bootstrap(list(range(n)))
    return h, proto


def churn_out(h, proto, node_id):
    h.kill(node_id)
    proto.on_leave(node_id)


@pytest.mark.parametrize("name", PROTOCOL_NAMES)
def test_submit_many_resolves_under_aggressive_churn(name):
    n = 32
    h, proto = build(name, n=n, seed=sum(map(ord, name)))
    h.sim.run(until=900.0)  # state updates + diffusion populate caches
    demands = [
        np.array([0.35, 0.35]),
        np.array([0.6, 0.5]),
        np.array([0.95, 0.95]),
        np.array([0.2, 0.8]),
    ]
    batches = []
    proto.submit_many(demands, 0, batches.append)
    # Churn out most of the population while the chains are in flight, so
    # in-flight messages land on dead nodes and are dropped.
    for k, victim in enumerate(range(2, n - 2)):
        h.sim.schedule(0.002 * (k + 1), churn_out, h, proto, victim)
    h.sim.run(until=900.0 + 20 * TIMEOUT)
    assert len(batches) == 1, f"{name}: batch fan-in never completed"
    results = batches[0]
    assert len(results) == len(demands)
    for records, messages in results:
        assert messages >= 0
        assert isinstance(records, list)
    stats = proto.query_stats()
    assert stats.started == len(demands)
    assert stats.resolved == len(demands)
    assert proto.lifecycle is not None
    assert proto.lifecycle.active_queries() == 0


def test_timed_out_query_counts_exactly_once():
    """Kill a walk's duty node mid-flight: the callback fires once (via
    the failsafe), the expiry is observed once, and late stragglers of
    the dead chain cannot double-fire."""
    h, proto = build("randomwalk-can", seed=7)
    h.sim.run(until=900.0)
    demand = np.array([0.9, 0.9])
    # the protocol builds its own overlay; locate the duty node there
    duty = proto.overlay.owner_of(demand)
    requester = next(i for i in range(32) if i != duty)
    calls = []
    expired = []
    proto.lifecycle.on_expire = expired.append
    proto.submit_query(demand, requester, lambda r, m: calls.append((r, m)))
    churn_out(h, proto, duty)  # the in-flight duty-query is now doomed
    h.sim.run(until=900.0 + 10 * TIMEOUT)
    assert len(calls) == 1
    assert len(expired) == 1
    stats = proto.query_stats()
    assert (stats.started, stats.completed, stats.timed_out) == (1, 0, 1)
    # the route hops were charged before the drop and still reach the
    # callback exactly once
    _, messages = calls[0]
    assert messages >= 1


def test_sos_retry_failing_after_timeout_counts_as_timeout():
    """+sos variants: when the failsafe fires and the one-shot retry
    cannot even launch (requester churned out while waiting), the
    resolution is attributed to the timeout path, not counted as a chain
    completion."""
    h, proto = build("hid-can+sos", seed=11)
    h.sim.run(until=900.0)
    calls = []
    proto.submit_query(np.array([0.9, 0.9]), 0, lambda r, m: calls.append((r, m)))
    h.kill(0)  # requester churns out with the chain in flight
    h.sim.run(until=900.0 + 10 * TIMEOUT)
    assert len(calls) == 1
    stats = proto.query_stats()
    assert stats.timed_out == 1
    assert stats.completed == 0


def test_every_protocol_reports_query_stats():
    for name in PROTOCOL_NAMES:
        h, proto = build(name, n=16, seed=3)
        assert proto.lifecycle is not None
        stats = proto.query_stats()
        assert (stats.started, stats.completed, stats.timed_out) == (0, 0, 0)
