"""Edge-case tests for the query engine beyond the happy paths."""

import numpy as np
import pytest

from repro.core.query import QueryEngine, QueryParams
from repro.testing import ProtocolSandbox


def make_engine(sb: ProtocolSandbox, **overrides) -> QueryEngine:
    return QueryEngine(
        sb.ctx, sb.overlay, sb.tables, sb.caches, sb.pilists,
        QueryParams(**overrides),
    )


def drive(sb: ProtocolSandbox, engine, demand, requester=0, horizon=600.0):
    out = {}
    engine.submit(
        np.asarray(demand, float), requester,
        lambda r, m: out.update(records=r, messages=m),
    )
    sb.sim.run(until=sb.sim.now + horizon)
    return out


def test_dead_requester_fails_immediately():
    sb = ProtocolSandbox(n=16, dims=2, seed=1)
    engine = make_engine(sb)
    sb.kill(0)
    out = drive(sb, engine, [0.5, 0.5], requester=0)
    assert out["records"] == []


def test_max_chain_hops_terminates_runaway_chains():
    sb = ProtocolSandbox(n=64, dims=2, seed=2)
    engine = make_engine(sb, max_chain_hops=2, check_duty_cache=False)
    # densely populate PILists so chains would run long without the cap
    for node, pilist in sb.pilists.items():
        for other in list(sb.pilists)[:20]:
            if other != node:
                pilist.add(other, now=0.0)
    out = drive(sb, engine, [0.2, 0.2])
    assert "records" in out  # terminated despite dense lists
    assert out["messages"] <= 32


def test_expired_records_not_matched():
    sb = ProtocolSandbox(n=32, dims=2, seed=3, state_ttl=100.0)
    engine = make_engine(sb)
    demand = np.array([0.3, 0.3])
    duty = sb.duty_of(demand)
    sb.plant_record(duty, owner=5, availability=[0.9, 0.9], ts=0.0)
    # advance well past the TTL before querying
    sb.sim.schedule(300.0, lambda: None)
    sb.sim.run(until=300.0)
    out = drive(sb, engine, demand)
    assert out["records"] == []


def test_concurrent_queries_do_not_interfere():
    sb = ProtocolSandbox(n=32, dims=2, seed=4)
    engine = make_engine(sb)
    d1 = np.array([0.2, 0.2])
    d2 = np.array([0.6, 0.6])
    sb.plant_record(sb.duty_of(d1), owner=101, availability=[0.25, 0.25])
    sb.plant_record(sb.duty_of(d2), owner=202, availability=[0.7, 0.7])
    results = {}
    engine.submit(d1, 0, lambda r, m: results.update(q1={x.owner for x in r}))
    engine.submit(d2, 1, lambda r, m: results.update(q2={x.owner for x in r}))
    sb.sim.run(until=600.0)
    assert 101 in results["q1"] and 202 not in results["q1"]
    assert 202 in results["q2"] and 101 not in results["q2"]


def test_requester_dies_mid_query_without_leak():
    sb = ProtocolSandbox(n=32, dims=2, seed=5)
    engine = make_engine(sb, timeout=30.0)
    fired = []
    engine.submit(np.array([0.4, 0.4]), 0, lambda r, m: fired.append(1))
    sb.kill(0)  # found-notify / query-end to the requester now drop
    sb.sim.run(until=120.0)
    # the timeout still finalizes the runtime exactly once
    assert len(fired) == 1
    assert engine.active_queries() == 0


def test_delta_one_returns_single_owner():
    sb = ProtocolSandbox(n=32, dims=2, seed=6)
    engine = make_engine(sb, delta=1)
    demand = np.array([0.2, 0.2])
    duty = sb.duty_of(demand)
    for owner in (50, 51, 52):
        sb.plant_record(duty, owner=owner, availability=[0.5, 0.5])
    out = drive(sb, engine, demand)
    assert len({r.owner for r in out["records"]}) == 1


def test_zero_demand_matches_anything_fresh():
    sb = ProtocolSandbox(n=32, dims=2, seed=7)
    engine = make_engine(sb)
    demand = np.zeros(2)
    duty = sb.duty_of(demand)
    sb.plant_record(duty, owner=9, availability=[0.01, 0.01])
    out = drive(sb, engine, demand)
    assert {r.owner for r in out["records"]} == {9}


def test_messages_counted_monotonically():
    sb = ProtocolSandbox(n=64, dims=2, seed=8)
    engine = make_engine(sb)
    out = drive(sb, engine, [0.3, 0.3])
    assert out["messages"] >= 0
    # the traffic meter saw at least as many protocol messages
    protocol_kinds = ("duty-query", "index-agent", "index-jump", "found-notify")
    total = sum(sb.traffic.by_kind.get(k, 0) for k in protocol_kinds)
    assert total >= out["messages"] - 1
