"""End-to-end tests for the three-phase query (Algorithms 3-5)."""

import numpy as np
import pytest

from repro.core.query import QueryEngine, QueryParams
from tests.core.helpers import Harness


def make_engine(h: Harness, **param_overrides) -> QueryEngine:
    params = QueryParams(**param_overrides)
    return QueryEngine(h.ctx, h.overlay, h.tables, h.caches, h.pilists, params)


def run_query(h: Harness, engine: QueryEngine, demand, requester=0):
    """Submit and drive the simulator until the callback fires."""
    out = {}

    def callback(records, messages):
        out["records"] = records
        out["messages"] = messages

    engine.submit(np.asarray(demand, float), requester, callback)
    h.sim.run(until=600.0)
    assert "records" in out, "query never finalized"
    return out["records"], out["messages"]


def test_duty_cache_hit_resolves_query():
    h = Harness(n=32, dims=2, seed=1)
    engine = make_engine(h)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)  # cmax is ones → point == demand
    h.plant_record(duty, owner=99, availability=[0.35, 0.35])
    records, messages = run_query(h, engine, demand)
    assert [r.owner for r in records] == [99]
    assert messages >= 0


def test_unqualified_records_not_returned():
    h = Harness(n=32, dims=2, seed=2)
    engine = make_engine(h)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    h.plant_record(duty, owner=99, availability=[0.25, 0.9])  # fails dim 0
    records, _ = run_query(h, engine, demand)
    assert all(r.owner != 99 for r in records)


def test_jump_phase_finds_records_via_pilist():
    h = Harness(n=32, dims=2, seed=3)
    engine = make_engine(h, check_duty_cache=False)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    # plant a qualified record at an index node positive of the duty zone
    holder = next(
        n.node_id
        for n in h.overlay.nodes.values()
        if np.all(n.zone.lo >= h.overlay.nodes[duty].zone.hi - 1e-12)
    )
    h.plant_record(holder, owner=77, availability=[0.9, 0.9])
    # make every agent's PIList point at the holder
    for dim in range(2):
        for agent in h.overlay.directional_neighbors(duty, dim, +1):
            h.pilists[agent].add(holder, now=0.0)
    records, _ = run_query(h, engine, demand)
    assert 77 in {r.owner for r in records}


def test_delta_bounds_result_count():
    h = Harness(n=32, dims=2, seed=4)
    engine = make_engine(h, delta=2)
    demand = np.array([0.2, 0.2])
    duty = h.duty_of(demand)
    for owner in range(50, 60):
        h.plant_record(duty, owner=owner, availability=[0.5, 0.5])
    records, _ = run_query(h, engine, demand)
    owners = {r.owner for r in records}
    assert 1 <= len(owners) <= 2


def test_empty_system_fails_query():
    h = Harness(n=32, dims=2, seed=5)
    engine = make_engine(h)
    records, _ = run_query(h, engine, [0.5, 0.5])
    assert records == []


def test_callback_fires_exactly_once():
    h = Harness(n=32, dims=2, seed=6)
    engine = make_engine(h)
    calls = []
    engine.submit(np.array([0.4, 0.4]), 0, lambda r, m: calls.append(r))
    h.sim.run(until=600.0)
    assert len(calls) == 1
    assert engine.active_queries() == 0


def test_timeout_finalizes_query_when_chain_dies():
    h = Harness(n=32, dims=2, seed=7)
    engine = make_engine(h, timeout=30.0, check_duty_cache=False)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    # the chain will go to an agent that is dead → message dropped
    for dim in range(2):
        for agent in h.overlay.directional_neighbors(duty, dim, +1):
            h.kill(agent)
    out = {}
    engine.submit(demand, 0, lambda r, m: out.setdefault("records", r))
    h.sim.run(until=29.0)
    assert "records" not in out  # still waiting
    h.sim.run(until=120.0)
    assert out["records"] == []
    assert engine.active_queries() == 0


def test_sos_retries_with_original_on_failure():
    h = Harness(n=32, dims=2, seed=8)
    engine = make_engine(h, sos=True, check_duty_cache=True)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    # Only a barely-qualified record exists: the slacked vector e' ≻ e will
    # miss it, but the retry with the original e must find it.
    h.plant_record(duty, owner=42, availability=[0.31, 0.31])
    records, _ = run_query(h, engine, demand)
    assert {r.owner for r in records} == {42}


def test_sos_first_attempt_uses_slacked_vector():
    h = Harness(n=32, dims=2, seed=9)
    engine = make_engine(h, sos=True)
    seen_vectors = []
    original_launch = engine._launch

    def spy(rt, timed_out=False):
        seen_vectors.append(rt.v.copy())
        original_launch(rt, timed_out)

    engine._launch = spy
    run_query(h, engine, [0.2, 0.2])
    assert len(seen_vectors) >= 1
    assert np.all(seen_vectors[0] >= 0.2 - 1e-12)  # Formula 3 lower bound
    if len(seen_vectors) == 2:  # retry restored the original
        assert np.allclose(seen_vectors[1], [0.2, 0.2])


def test_duty_cache_check_can_be_disabled():
    h = Harness(n=32, dims=2, seed=10)
    engine = make_engine(h, check_duty_cache=False)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    h.plant_record(duty, owner=99, availability=[0.9, 0.9])
    records, _ = run_query(h, engine, demand)
    # the record sits only in the duty cache, which is not consulted
    assert all(r.owner != 99 for r in records)


def test_vd_query_routes_in_padded_space():
    h = Harness(n=32, dims=3, seed=11, cmax=np.ones(2))
    # overlay has 3 dims = 2 resource dims + 1 virtual
    engine = make_engine(h, vd=True)
    records, messages = run_query(h, engine, [0.4, 0.4])
    assert records == []  # nothing planted; just exercising the path
    assert messages >= 0


def test_requester_is_duty_node():
    h = Harness(n=32, dims=2, seed=12)
    engine = make_engine(h)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    h.plant_record(duty, owner=5, availability=[0.5, 0.5])
    records, _ = run_query(h, engine, demand, requester=duty)
    assert {r.owner for r in records} == {5}


def test_query_traffic_is_charged():
    h = Harness(n=32, dims=2, seed=13)
    engine = make_engine(h)
    run_query(h, engine, [0.3, 0.3])
    kinds = h.traffic.kind_snapshot()
    assert kinds.get("duty-query", 0) + kinds.get("query-end", 0) > 0
