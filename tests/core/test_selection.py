"""Unit and property tests for best-fit record selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import normalized_slack, select_record
from repro.core.state import StateRecord

CMAX = np.array([10.0, 10.0])
DEMAND = np.array([2.0, 2.0])


def rec(owner, avail, ts=0.0):
    return StateRecord(owner, np.asarray(avail, float), ts)


def rng():
    return np.random.default_rng(0)


def test_empty_records_returns_none():
    assert select_record([], DEMAND, CMAX, rng()) is None


def test_best_fit_picks_tightest():
    records = [rec(1, [9, 9]), rec(2, [3, 3]), rec(3, [5, 5])]
    pick = select_record(records, DEMAND, CMAX, rng(), "best-fit")
    assert pick.owner == 2


def test_worst_fit_picks_loosest():
    records = [rec(1, [9, 9]), rec(2, [3, 3]), rec(3, [5, 5])]
    pick = select_record(records, DEMAND, CMAX, rng(), "worst-fit")
    assert pick.owner == 1


def test_first_fit_preserves_discovery_order():
    records = [rec(3, [5, 5]), rec(1, [9, 9]), rec(2, [3, 3])]
    pick = select_record(records, DEMAND, CMAX, rng(), "first-fit")
    assert pick.owner == 3


def test_random_fit_picks_member():
    records = [rec(i, [5, 5]) for i in range(5)]
    pick = select_record(records, DEMAND, CMAX, rng(), "random")
    assert pick.owner in range(5)


def test_duplicate_owners_collapse_to_freshest():
    records = [rec(1, [9, 9], ts=0.0), rec(1, [3, 3], ts=10.0)]
    pick = select_record(records, DEMAND, CMAX, rng(), "best-fit")
    assert pick.availability[0] == 3.0  # the fresh record won


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown selection policy"):
        select_record([rec(1, [5, 5])], DEMAND, CMAX, rng(), "mystery")


def test_normalized_slack_zero_for_exact_fit():
    assert normalized_slack(rec(1, DEMAND.copy()), DEMAND, CMAX) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=2.0, max_value=10.0),
            st.floats(min_value=2.0, max_value=10.0),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_best_fit_minimizes_slack_property(avail_list):
    records = [rec(i, list(a)) for i, a in enumerate(avail_list)]
    pick = select_record(records, DEMAND, CMAX, rng(), "best-fit")
    best = min(normalized_slack(r, DEMAND, CMAX) for r in records)
    assert normalized_slack(pick, DEMAND, CMAX) == pytest.approx(best)
