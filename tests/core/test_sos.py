"""Property tests for Slack-on-Submission (Formula 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sos import slack_expectation

CMAX = np.array([25.6, 80.0, 10.0, 240.0, 4096.0])


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=0.01, max_value=1.0), st.integers(min_value=0, max_value=10_000))
def test_formula_three_bounds(scale, seed):
    """e ⪯ e' ⪯ cmax for any expectation inside the capacity box."""
    rng = np.random.default_rng(seed)
    e = rng.uniform(0, scale, size=5) * CMAX
    slacked = slack_expectation(e, CMAX, rng)
    assert np.all(slacked >= e - 1e-12)
    assert np.all(slacked <= CMAX + 1e-12)


def test_slack_is_random_not_identity():
    rng = np.random.default_rng(1)
    e = CMAX * 0.1
    draws = [slack_expectation(e, CMAX, rng) for _ in range(5)]
    assert not all(np.allclose(draws[0], d) for d in draws[1:])


def test_expectation_at_cmax_cannot_slack():
    rng = np.random.default_rng(2)
    slacked = slack_expectation(CMAX.copy(), CMAX, rng)
    assert np.allclose(slacked, CMAX)


def test_expectation_above_cmax_rejected():
    rng = np.random.default_rng(3)
    with pytest.raises(ValueError):
        slack_expectation(CMAX * 1.1, CMAX, rng)


def test_bias_greater_than_one_stays_closer_to_e():
    rng_a = np.random.default_rng(4)
    rng_b = np.random.default_rng(4)
    e = CMAX * 0.1
    uniform = np.mean(
        [slack_expectation(e, CMAX, rng_a, bias=1.0) - e for _ in range(300)], axis=0
    )
    biased = np.mean(
        [slack_expectation(e, CMAX, rng_b, bias=4.0) - e for _ in range(300)], axis=0
    )
    assert np.all(biased < uniform)


def test_bias_validation():
    with pytest.raises(ValueError):
        slack_expectation(CMAX * 0.5, CMAX, np.random.default_rng(0), bias=0.0)
