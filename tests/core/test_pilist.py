"""Unit tests for the PIList (positive index list)."""

import numpy as np
import pytest

from repro.core.pilist import PIList


def test_ttl_validation():
    with pytest.raises(ValueError):
        PIList(0.0)


def test_add_and_contains():
    pl = PIList(ttl=100)
    pl.add(5, now=0.0)
    assert 5 in pl
    assert len(pl) == 1
    assert pl.entries(now=50.0) == [5]


def test_readd_refreshes_timestamp():
    pl = PIList(ttl=100)
    pl.add(5, now=0.0)
    pl.add(5, now=90.0)
    assert pl.entries(now=150.0) == [5]  # refreshed entry survives


def test_expiry():
    pl = PIList(ttl=100)
    pl.add(1, now=0.0)
    pl.add(2, now=60.0)
    assert pl.entries(now=120.0) == [2]


def test_capacity_evicts_stalest():
    pl = PIList(ttl=1000, max_size=3)
    for i, t in enumerate([0.0, 1.0, 2.0, 3.0]):
        pl.add(i, now=t)
    assert 0 not in pl
    assert len(pl) == 3


def test_len_and_contains_honour_ttl():
    """Regression: ``len`` / ``in`` used to report expired entries as live,
    disagreeing with ``entries()``/``sample()``."""
    pl = PIList(ttl=100)
    pl.add(1, now=0.0)
    pl.add(2, now=60.0)
    assert len(pl) == 2 and 1 in pl and 2 in pl
    assert pl.entries(now=120.0) == [2]  # 1 expired at t=120
    assert len(pl) == 1
    assert 1 not in pl
    assert 2 in pl


def test_len_consistent_without_explicit_purge():
    """The watermark advances through any time-bearing call, so the
    dunders never report more than the latest entries() view."""
    pl = PIList(ttl=50)
    pl.add(1, now=0.0)
    pl.add(2, now=200.0)  # observing t=200 implicitly expires entry 1
    assert len(pl) == 1
    assert 1 not in pl
    assert 2 in pl
    rng = np.random.default_rng(0)
    assert pl.sample(5, now=200.0, rng=rng) == [2]


def test_contains_boundary_is_inclusive_like_purge():
    pl = PIList(ttl=100)
    pl.add(7, now=0.0)
    pl.purge(now=100.0)  # cutoff == added_at: survives (strict <)
    assert 7 in pl
    assert len(pl) == 1
    pl.purge(now=100.0001)
    assert 7 not in pl
    assert len(pl) == 0


def test_sample_returns_distinct_subset():
    pl = PIList(ttl=1000)
    for i in range(20):
        pl.add(i, now=0.0)
    rng = np.random.default_rng(0)
    sample = pl.sample(5, now=1.0, rng=rng)
    assert len(sample) == 5
    assert len(set(sample)) == 5
    assert all(s in range(20) for s in sample)


def test_sample_small_pool_returns_all():
    pl = PIList(ttl=1000)
    pl.add(1, now=0.0)
    pl.add(2, now=0.0)
    assert sorted(pl.sample(10, now=0.0, rng=np.random.default_rng(0))) == [1, 2]


def test_discard():
    pl = PIList(ttl=1000)
    pl.add(1, now=0.0)
    pl.discard(1)
    pl.discard(99)  # no-op
    assert len(pl) == 0
