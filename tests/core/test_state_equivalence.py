"""Property-style equivalence of the vectorized StateCache vs the scalar
reference implementation.

Every test drives the same operation sequence through both caches — the
very StateRecord instances are shared — and asserts the vectorized store
returns the *identical* record objects in the identical order, under
replacement, eviction, TTL expiry, limits, exclusion and lazy compaction.
"""

import numpy as np
import pytest

from repro.core.state import StateCache, StateRecord
from repro.testing import ReferenceStateCache


def rec(owner, avail, ts=0.0):
    return StateRecord(owner, np.asarray(avail, float), ts)


class CachePair:
    """Mirror every mutation into both implementations."""

    def __init__(self, ttl: float):
        self.vec = StateCache(ttl)
        self.ref = ReferenceStateCache(ttl)

    def put(self, record: StateRecord) -> None:
        self.vec.put(record)
        self.ref.put(record)

    def evict_owner(self, owner: int) -> None:
        self.vec.evict_owner(owner)
        self.ref.evict_owner(owner)

    def assert_equivalent(self, now, demand, limit=None, exclude=None):
        assert len(self.vec) == len(self.ref)
        v_records = self.vec.records(now)
        r_records = self.ref.records(now)
        assert [id(r) for r in v_records] == [id(r) for r in r_records]
        v_q = self.vec.qualified(demand, now, limit=limit, exclude=exclude)
        r_q = self.ref.qualified(demand, now, limit=limit, exclude=exclude)
        assert [id(r) for r in v_q] == [id(r) for r in r_q]
        assert self.vec.non_empty(now) == self.ref.non_empty(now)


def test_same_objects_same_order_basic():
    pair = CachePair(ttl=100.0)
    for owner in range(10):
        pair.put(rec(owner, [owner / 10, 1 - owner / 10], ts=float(owner)))
    pair.assert_equivalent(now=9.0, demand=np.array([0.2, 0.2]))
    pair.assert_equivalent(now=9.0, demand=np.array([0.2, 0.2]), limit=2)
    pair.assert_equivalent(
        now=9.0, demand=np.array([0.0, 0.0]), exclude={2, 4, 6}
    )


def test_replacement_keeps_insertion_position():
    pair = CachePair(ttl=1000.0)
    for owner in (3, 1, 2):
        pair.put(rec(owner, [0.5, 0.5], ts=0.0))
    pair.put(rec(1, [0.9, 0.9], ts=5.0))  # replaces in place
    pair.put(rec(2, [0.1, 0.1], ts=1.0))
    pair.put(rec(2, [0.8, 0.8], ts=0.5))  # stale update, both must ignore
    pair.assert_equivalent(now=5.0, demand=np.zeros(2))
    owners = [r.owner for r in pair.vec.records(5.0)]
    assert owners == [3, 1, 2]  # original insertion order preserved


def test_ttl_expiry_matches():
    pair = CachePair(ttl=50.0)
    for owner in range(20):
        pair.put(rec(owner, [0.5, 0.5], ts=float(owner)))
    for now in (30.0, 55.0, 60.5, 71.0, 200.0):
        pair.assert_equivalent(now=now, demand=np.zeros(2))


def test_eviction_and_reinsertion_moves_to_end():
    pair = CachePair(ttl=1000.0)
    for owner in range(6):
        pair.put(rec(owner, [0.5, 0.5], ts=0.0))
    pair.evict_owner(2)
    pair.put(rec(2, [0.6, 0.6], ts=1.0))  # re-inserted at the end
    pair.assert_equivalent(now=1.0, demand=np.zeros(2))
    assert [r.owner for r in pair.vec.records(1.0)] == [0, 1, 3, 4, 5, 2]


def test_compaction_preserves_order_and_objects():
    pair = CachePair(ttl=1e9)
    for owner in range(200):
        pair.put(rec(owner, [0.5, 0.5], ts=0.0))
    # evict enough rows to force lazy compaction of the SoA arrays
    for owner in range(0, 200, 2):
        pair.evict_owner(owner)
    pair.assert_equivalent(now=1.0, demand=np.zeros(2))
    for owner in range(300, 340):  # append after compaction
        pair.put(rec(owner, [0.7, 0.7], ts=2.0))
    pair.assert_equivalent(now=2.0, demand=np.zeros(2), limit=17)


def test_growth_reallocations_keep_contents():
    pair = CachePair(ttl=1e9)
    for owner in range(1000):  # several capacity doublings
        pair.put(rec(owner, [owner / 1000.0, 0.5, 0.3], ts=float(owner % 7)))
    pair.assert_equivalent(now=10.0, demand=np.array([0.4, 0.1, 0.1]))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_randomized_operation_sequences(seed):
    """Fuzz puts / evictions / purges / queries through both caches."""
    rng = np.random.default_rng(seed)
    pair = CachePair(ttl=80.0)
    now = 0.0
    for step in range(1500):
        now += float(rng.exponential(2.0))
        op = rng.uniform()
        owner = int(rng.integers(0, 60))
        if op < 0.55:
            ts = now - float(rng.uniform(0, 30))  # occasional stale arrivals
            pair.put(rec(owner, rng.uniform(0, 1, 3), ts=ts))
        elif op < 0.70:
            pair.evict_owner(owner)
        elif op < 0.80:
            pair.vec.purge(now)
            pair.ref.purge(now)
        else:
            demand = rng.uniform(0, 1, 3) * float(rng.choice([0.3, 0.6, 0.95]))
            limit = None if rng.uniform() < 0.5 else int(rng.integers(1, 6))
            exclude = (
                None
                if rng.uniform() < 0.5
                else set(rng.integers(0, 60, size=5).tolist())
            )
            pair.assert_equivalent(now, demand, limit=limit, exclude=exclude)
    pair.assert_equivalent(now + 200.0, np.zeros(3))  # everything expired


def test_qualified_returns_put_instances():
    """The vectorized fast path must hand back the stored records, not
    reconstructed copies — selection policies hash them by identity."""
    cache = StateCache(ttl=100.0)
    planted = rec(7, [0.9, 0.9], ts=0.0)
    cache.put(planted)
    out = cache.qualified(np.array([0.5, 0.5]), now=1.0)
    assert out[0] is planted
