"""Unit tests for state records and duty-node caches (γ)."""

import numpy as np
import pytest

from repro.core.state import StateCache, StateRecord


def rec(owner, avail, ts=0.0):
    return StateRecord(owner, np.asarray(avail, float), ts)


def test_record_qualification_is_dominance():
    r = rec(1, [4.0, 4.0])
    assert r.qualifies(np.array([4.0, 3.0]))
    assert r.qualifies(np.array([4.0, 4.0]))
    assert not r.qualifies(np.array([4.1, 3.0]))


def test_ttl_must_be_positive():
    with pytest.raises(ValueError):
        StateCache(0.0)


def test_put_and_len():
    cache = StateCache(600)
    cache.put(rec(1, [1, 1], 0.0))
    cache.put(rec(2, [2, 2], 0.0))
    assert len(cache) == 2


def test_newer_record_replaces_older():
    cache = StateCache(600)
    cache.put(rec(1, [1, 1], ts=10.0))
    cache.put(rec(1, [5, 5], ts=20.0))
    records = cache.records(now=20.0)
    assert len(records) == 1
    assert records[0].availability[0] == 5.0


def test_stale_update_does_not_replace_fresh():
    cache = StateCache(600)
    cache.put(rec(1, [5, 5], ts=20.0))
    cache.put(rec(1, [1, 1], ts=10.0))  # out-of-order arrival
    assert cache.records(now=20.0)[0].availability[0] == 5.0


def test_purge_drops_expired():
    cache = StateCache(ttl=100)
    cache.put(rec(1, [1, 1], ts=0.0))
    cache.put(rec(2, [2, 2], ts=50.0))
    assert cache.non_empty(now=99.0)
    cache.purge(now=120.0)
    assert len(cache) == 1
    assert not cache.non_empty(now=200.0)


def test_qualified_filters_on_demand_and_ttl():
    cache = StateCache(ttl=100)
    cache.put(rec(1, [5, 5], ts=0.0))
    cache.put(rec(2, [10, 10], ts=90.0))
    cache.put(rec(3, [1, 1], ts=90.0))
    out = cache.qualified(np.array([4.0, 4.0]), now=95.0)
    assert {r.owner for r in out} == {1, 2}
    out_late = cache.qualified(np.array([4.0, 4.0]), now=150.0)
    assert {r.owner for r in out_late} == {2}


def test_qualified_respects_limit_and_exclude():
    cache = StateCache(ttl=1000)
    for owner in range(10):
        cache.put(rec(owner, [5, 5], ts=0.0))
    out = cache.qualified(np.array([1.0, 1.0]), now=1.0, limit=3)
    assert len(out) == 3
    out2 = cache.qualified(
        np.array([1.0, 1.0]), now=1.0, exclude={r.owner for r in out}
    )
    assert all(r.owner not in {o.owner for o in out} for r in out2)


def test_evict_owner():
    cache = StateCache(600)
    cache.put(rec(1, [1, 1]))
    cache.evict_owner(1)
    cache.evict_owner(42)  # no-op
    assert len(cache) == 0
