"""Tests for proactive index diffusion (Algorithms 1-2, Theorem 1)."""

import numpy as np
import pytest

from repro.core.diffusion import (
    DiffusionEngine,
    binary_hop_decomposition,
    diffusion_message_count,
    line_diffusion_rounds,
)
from tests.core.helpers import Harness


# ----------------------------------------------------------------------
# closed-form analysis
# ----------------------------------------------------------------------
def test_message_count_paper_example():
    # §III-B: "if L = 2 and d = 3, the total number of messages is only 14"
    assert diffusion_message_count(2, 3) == 14


@pytest.mark.parametrize(
    "L,d", [(1, 1), (1, 5), (2, 1), (2, 5), (3, 3), (4, 2)]
)
def test_message_count_matches_sum(L, d):
    assert diffusion_message_count(L, d) == sum(L**j for j in range(1, d + 1))


def test_message_count_validation():
    with pytest.raises(ValueError):
        diffusion_message_count(0, 3)


def test_binary_hop_decomposition_paper_example():
    # Theorem 1's proof: (13)₁₀ = (1101)₂ → 13 = 2³ + 2² + 2⁰, h = 3.
    assert binary_hop_decomposition(13) == [8, 4, 1]


@pytest.mark.parametrize("distance", [1, 2, 3, 7, 16, 100, 255, 1024])
def test_binary_hop_decomposition_properties(distance):
    powers = binary_hop_decomposition(distance)
    assert sum(powers) == distance
    assert len(powers) <= int(np.floor(np.log2(distance))) + 1  # Theorem 1
    assert all(p & (p - 1) == 0 for p in powers)  # each term a power of 2


def test_line_diffusion_rounds_theorem1():
    # Fig. 2: r = 19 nodes on a line → every node reached within
    # ⌈log2 r⌉ hops of relay.
    rounds = line_diffusion_rounds(19)
    assert len(rounds) == 19
    assert max(rounds) <= int(np.ceil(np.log2(19)))
    assert rounds[0] == 0  # the origin itself
    assert rounds[1] == 1  # direct 2^0 link
    assert rounds[13] == 3  # 13 = 8+4+1


@pytest.mark.parametrize("r", [1, 2, 5, 16, 100, 1000])
def test_line_diffusion_log_bound(r):
    assert max(line_diffusion_rounds(r)) <= max(1, int(np.ceil(np.log2(max(r, 2)))))


# ----------------------------------------------------------------------
# live engine on an overlay
# ----------------------------------------------------------------------
def make_engine(h: Harness, L=2):
    return DiffusionEngine(h.ctx, h.tables, h.pilists, h.overlay.dims, L)


@pytest.mark.parametrize("method", ["hid", "sid"])
def test_diffusion_respects_message_budget(method):
    h = Harness(n=64, dims=2, seed=1)
    engine = make_engine(h, L=2)
    omega = diffusion_message_count(2, 2)
    for origin in h.overlay.node_ids()[:20]:
        result = engine.diffuse(origin, method)
        assert result.messages <= omega


@pytest.mark.parametrize("method", ["hid", "sid"])
def test_recipients_get_pilist_entries(method):
    h = Harness(n=64, dims=2, seed=2)
    engine = make_engine(h)
    # pick an interior origin so backward chains exist
    origin = next(
        n.node_id
        for n in h.overlay.nodes.values()
        if np.all(n.zone.lo > 0.2)
    )
    result = engine.diffuse(origin, method)
    assert result.messages > 0
    landed = [i for i, p in h.pilists.items() if origin in p]
    assert landed
    assert set(landed) <= result.recipients


@pytest.mark.parametrize("method", ["hid", "sid"])
def test_recipients_are_negative_direction_nodes(method):
    from repro.can.zone import is_negative_direction_of

    h = Harness(n=64, dims=2, seed=3)
    engine = make_engine(h)
    origin = next(
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.4)
    )
    result = engine.diffuse(origin, method)
    origin_zone = h.overlay.nodes[origin].zone
    for r in result.recipients:
        if r == origin:
            continue
        assert is_negative_direction_of(h.overlay.nodes[r].zone, origin_zone)


def test_hid_spreads_wider_than_sid():
    """Fig. 3's claim: hopping diffusion covers more distinct nodes than
    spreading, because relays re-select from their own tables."""
    h = Harness(n=256, dims=2, seed=4)
    engine = make_engine(h)
    rng = np.random.default_rng(5)
    interior = [
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.5)
    ]
    hid_cover, sid_cover = set(), set()
    for origin in interior:
        for _ in range(10):
            hid_cover |= engine.diffuse(origin, "hid").recipients
            sid_cover |= engine.diffuse(origin, "sid").recipients
    assert len(hid_cover) > len(sid_cover)


def test_hid_relay_depth_is_logarithmic():
    h = Harness(n=256, dims=2, seed=6)
    engine = make_engine(h)
    max_depth = 0
    for origin in h.overlay.node_ids():
        result = engine.diffuse(origin, "hid")
        max_depth = max(max_depth, result.max_depth)
    # depth ≤ d·L with the TTL discipline (L=2, d=2 → 4)
    assert max_depth <= 2 * 2


def test_dead_ninodes_skipped():
    h = Harness(n=32, dims=2, seed=7)
    engine = make_engine(h)
    origin = next(
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.4)
    )
    # kill everything except the origin: no recipients, no crash
    for other in h.overlay.node_ids():
        if other != origin:
            h.kill(other)
    result = engine.diffuse(origin, "hid")
    assert result.messages == 0
    assert result.recipients <= {origin}


def test_unknown_method_rejected():
    h = Harness(n=8, dims=2, seed=8)
    engine = make_engine(h)
    with pytest.raises(ValueError):
        engine.diffuse(0, "flooding")


def test_traffic_charged_per_message():
    h = Harness(n=64, dims=2, seed=9)
    engine = make_engine(h)
    origin = next(
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.4)
    )
    result = engine.diffuse(origin, "hid")
    assert h.traffic.by_kind["index-diffusion"] == result.messages
