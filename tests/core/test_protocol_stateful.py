"""Stateful soak of the full PID-CAN protocol under churn and queries.

A hypothesis state machine interleaves joins, abrupt departures, simulated
time and query submissions against a live PIDCANProtocol, asserting after
every step that the overlay stays structurally consistent and that every
query eventually resolves exactly once.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.context import ProtocolContext
from repro.core.protocol import PIDCANParams, PIDCANProtocol
from repro.metrics.traffic import TrafficMeter
from repro.sim.engine import Simulator
from repro.sim.network import NetworkModel, NetworkParams


class ProtocolMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.sim = Simulator()
        self.rng = np.random.default_rng(0)
        self.network = NetworkModel(NetworkParams(), np.random.default_rng(1))
        self.alive: set[int] = set()
        self.next_id = 0
        self.query_log: list[dict] = []

        ctx = ProtocolContext(
            sim=self.sim,
            network=self.network,
            traffic=TrafficMeter(),
            rng=np.random.default_rng(2),
            cmax=np.ones(3),
            availability_of=lambda i: np.full(3, 0.6),
            is_alive=lambda i: i in self.alive,
        )
        self.proto = PIDCANProtocol(
            ctx, PIDCANParams(resource_dims=3, query_timeout=30.0)
        )
        ids = [self._fresh_id() for _ in range(8)]
        self.proto.bootstrap(ids)

    def _fresh_id(self) -> int:
        node_id = self.next_id
        self.next_id += 1
        self.network.add_node(node_id)
        self.alive.add(node_id)
        return node_id

    # ------------------------------------------------------------------
    @rule()
    def join(self):
        self.proto.on_join(self._fresh_id())

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def crash(self, pick):
        if len(self.alive) <= 3:
            return
        victims = sorted(self.alive)
        victim = victims[pick % len(victims)]
        self.alive.discard(victim)
        self.network.remove_node(victim)
        self.proto.on_leave(victim)

    @rule(
        demand=st.floats(min_value=0.05, max_value=0.9),
        pick=st.integers(min_value=0, max_value=10_000),
    )
    def query(self, demand, pick):
        members = sorted(self.alive)
        requester = members[pick % len(members)]
        entry = {"fired": 0}
        self.query_log.append(entry)
        self.proto.submit_query(
            np.full(3, demand),
            requester,
            lambda r, m, e=entry: e.__setitem__("fired", e["fired"] + 1),
        )

    @rule(dt=st.floats(min_value=1.0, max_value=500.0))
    def advance(self, dt):
        self.sim.run(until=self.sim.now + dt)

    # ------------------------------------------------------------------
    @invariant()
    def overlay_consistent(self):
        if hasattr(self, "proto"):
            self.proto.overlay.check_invariants()

    @invariant()
    def protocol_state_matches_membership(self):
        if not hasattr(self, "proto"):
            return
        assert set(self.proto.caches) == self.alive
        assert set(self.proto.overlay.node_ids()) == self.alive

    @invariant()
    def callbacks_never_fire_twice(self):
        if not hasattr(self, "proto"):
            return
        assert all(e["fired"] <= 1 for e in self.query_log)

    def teardown(self):
        # drain: every query must resolve exactly once (timeout backstop)
        if hasattr(self, "sim"):
            self.sim.run(until=self.sim.now + 120.0)
            assert all(e["fired"] == 1 for e in self.query_log)


TestProtocolStateful = ProtocolMachine.TestCase
TestProtocolStateful.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
