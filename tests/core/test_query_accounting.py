"""Message accounting of the query chain and the batched submission API.

The accounting convention (see ``repro.core.query``): ``rt.messages``
counts every inter-node send of a query chain exactly once — duty-query
route hops, index-agent handoffs, index-jump hops, found-notify and
query-end — mirroring the TrafficMeter charges for those kinds.
"""

import numpy as np

from repro.core.query import QueryEngine, QueryParams
from tests.core.helpers import Harness

CHAIN_KINDS = (
    "duty-query", "index-agent", "index-jump", "found-notify", "query-end",
)


def make_engine(h: Harness, **overrides) -> QueryEngine:
    return QueryEngine(
        h.ctx, h.overlay, h.tables, h.caches, h.pilists, QueryParams(**overrides)
    )


def chain_traffic(h: Harness) -> int:
    kinds = h.traffic.kind_snapshot()
    return sum(kinds.get(k, 0) for k in CHAIN_KINDS)


def run_query(h, engine, demand, requester=0):
    out = {}
    engine.submit(
        np.asarray(demand, float), requester,
        lambda r, m: out.update(records=r, messages=m),
    )
    h.sim.run(until=600.0)
    assert "records" in out
    return out["records"], out["messages"]


def test_three_phase_walk_counts_every_send_once():
    """Deterministic duty → agent → jump → notify → end chain: the callback
    message count equals the traffic meter's chain charges exactly."""
    h = Harness(n=32, dims=2, seed=3)
    engine = make_engine(h, check_duty_cache=False, delta=1)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    holder = next(
        n.node_id
        for n in h.overlay.nodes.values()
        if np.all(n.zone.lo >= h.overlay.nodes[duty].zone.hi - 1e-12)
    )
    h.plant_record(holder, owner=77, availability=[0.9, 0.9])
    for dim in range(2):
        for agent in h.overlay.directional_neighbors(duty, dim, +1):
            h.pilists[agent].add(holder, now=0.0)

    records, messages = run_query(h, engine, demand)
    assert [r.owner for r in records] == [77]

    kinds = h.traffic.kind_snapshot()
    # all three phases actually ran, then found-notify and query-end
    assert kinds.get("index-agent", 0) >= 1
    assert kinds.get("index-jump", 0) >= 1
    assert kinds.get("found-notify", 0) == 1
    assert kinds.get("query-end", 0) == 1
    assert messages == chain_traffic(h)


def test_duty_cache_hit_chain_is_fully_counted():
    """Regression for the uncounted first index-agent send: even the
    shortest successful chain must match the meter exactly."""
    h = Harness(n=32, dims=2, seed=1)
    engine = make_engine(h, delta=1)
    demand = np.array([0.3, 0.3])
    duty = h.duty_of(demand)
    h.plant_record(duty, owner=99, availability=[0.35, 0.35])
    records, messages = run_query(h, engine, demand)
    assert [r.owner for r in records] == [99]
    assert messages == chain_traffic(h)


def test_failed_query_chain_is_fully_counted():
    """An empty system still routes, walks agents and ends explicitly."""
    h = Harness(n=64, dims=2, seed=8)
    engine = make_engine(h)
    records, messages = run_query(h, engine, [0.3, 0.3])
    assert records == []
    assert messages == chain_traffic(h)
    assert h.traffic.kind_snapshot().get("query-end", 0) == 1


def test_first_index_agent_send_is_counted():
    """The duty node's very first agent handoff (the historic undercount)
    shows up in the callback count."""
    h = Harness(n=32, dims=2, seed=6)
    engine = make_engine(h, check_duty_cache=False)
    run_query(h, engine, [0.3, 0.3])
    kinds = h.traffic.kind_snapshot()
    assert kinds.get("index-agent", 0) >= 1  # at least the first handoff


# ----------------------------------------------------------------------
# batched submission
# ----------------------------------------------------------------------
def test_submit_many_fires_once_with_ordered_results():
    h = Harness(n=32, dims=2, seed=4)
    engine = make_engine(h)
    d1 = np.array([0.2, 0.2])
    d2 = np.array([0.6, 0.6])
    h.plant_record(h.duty_of(d1), owner=101, availability=[0.25, 0.25])
    h.plant_record(h.duty_of(d2), owner=202, availability=[0.7, 0.7])
    calls = []
    qids = engine.submit_many([d1, d2], 0, calls.append)
    assert len(qids) == 2
    h.sim.run(until=600.0)
    assert len(calls) == 1
    results = calls[0]
    assert len(results) == 2
    owners_0 = {r.owner for r in results[0][0]}
    owners_1 = {r.owner for r in results[1][0]}
    assert 101 in owners_0 and 202 not in owners_0
    assert 202 in owners_1 and 101 not in owners_1
    assert all(messages >= 0 for _, messages in results)


def test_submit_many_empty_batch_completes_immediately():
    h = Harness(n=16, dims=2, seed=5)
    engine = make_engine(h)
    calls = []
    assert engine.submit_many([], 0, calls.append) == []
    assert calls == [[]]


def test_submit_many_batched_routing_matches_sequential():
    """submit_many routes the whole burst in one lockstep pass; every
    observable — per-query records, message counts, traffic by kind, the
    simulated clock of the fan-in — must equal submitting one by one on a
    twin harness (same seeds), for plain, SoS and VD engines."""
    for overrides in (
        {}, {"sos": True}, {"vd": True}, {"sos": True, "vd": True}
    ):
        # VD pads the overlay by one virtual dimension (2 resource + 1)
        dims = 3 if overrides.get("vd") else 2
        h_batch = Harness(n=48, dims=dims, seed=21, cmax=np.ones(2))
        h_seq = Harness(n=48, dims=dims, seed=21, cmax=np.ones(2))
        eng_batch = make_engine(h_batch, **overrides)
        eng_seq = make_engine(h_seq, **overrides)
        demands = [
            np.array([0.2, 0.3]), np.array([0.6, 0.6]), np.array([0.5, 0.25]),
            np.array([0.5, 0.5]),  # boundary-exact duty point
        ]
        if dims == 2:
            for h in (h_batch, h_seq):
                h.plant_record(h.duty_of([0.25, 0.35]), 301, [0.3, 0.4])
                h.plant_record(h.duty_of([0.7, 0.7]), 302, [0.75, 0.75])
        batch_calls = []
        seq_results = [None] * len(demands)
        eng_batch.submit_many(demands, 0, batch_calls.append)
        for i, d in enumerate(demands):
            # pin each callback to its submission slot (callbacks fire in
            # completion order, the batch reports in submission order)
            eng_seq.submit(
                d, 0, lambda r, m, i=i: seq_results.__setitem__(i, (r, m))
            )
        h_batch.sim.run(until=600.0)
        h_seq.sim.run(until=600.0)
        assert len(batch_calls) == 1 and None not in seq_results
        got = [
            ([r.owner for r in records], messages)
            for records, messages in batch_calls[0]
        ]
        want = [
            ([r.owner for r in records], messages)
            for records, messages in seq_results
        ]
        assert got == want, f"burst diverged from sequential ({overrides})"
        assert (
            h_batch.traffic.kind_snapshot() == h_seq.traffic.kind_snapshot()
        ), f"traffic diverged ({overrides})"


def test_submit_many_dead_requester_resolves_all_queries():
    h = Harness(n=24, dims=2, seed=22)
    engine = make_engine(h)
    h.kill(0)
    calls = []
    engine.submit_many(
        [np.array([0.4, 0.4]), np.array([0.6, 0.2])], 0, calls.append
    )
    h.sim.run(until=600.0)
    assert len(calls) == 1
    assert all(records == [] for records, _ in calls[0])


def test_protocol_submit_many_default_fans_out():
    """Baselines inherit the DiscoveryProtocol default, which batches over
    plain submit_query (RandomWalkProtocol does not override it)."""
    from repro.baselines.randomwalk import RandomWalkProtocol
    from repro.core.protocol import PIDCANParams

    h = Harness(n=32, dims=2, seed=9)
    protocol = RandomWalkProtocol(h.ctx, PIDCANParams(resource_dims=2))
    protocol.bootstrap(sorted(h.overlay.node_ids()))
    calls = []
    demands = [np.array([0.4, 0.4]), np.array([0.5, 0.5]), np.array([0.3, 0.3])]
    protocol.submit_many(demands, 0, calls.append)
    h.sim.run(until=600.0)
    assert len(calls) == 1
    assert len(calls[0]) == 3
    assert all(isinstance(m, int) and m >= 0 for _, m in calls[0])
