"""Shared harness for core-protocol tests.

The actual implementation lives in :mod:`repro.testing` (it is public API —
the examples and downstream users drive the protocol machinery with it);
tests keep the short ``Harness`` alias."""

from repro.testing import ProtocolSandbox as Harness

__all__ = ["Harness"]
