"""Tests for the shared requester-side query lifecycle."""

import numpy as np
import pytest

from repro.core.lifecycle import QueryLifecycle, submit_batch
from tests.core.helpers import Harness


def make_lifecycle(timeout=30.0, **kwargs):
    h = Harness(n=8, dims=2, seed=0)
    return h, QueryLifecycle(h.ctx, timeout, **kwargs)


def test_begin_registers_and_assigns_increasing_qids():
    h, lc = make_lifecycle()
    a = lc.begin(np.array([0.1, 0.2]), 0, lambda r, m: None)
    b = lc.begin(np.array([0.3, 0.4]), 1, lambda r, m: None)
    assert b.qid == a.qid + 1
    assert lc.active_queries() == 2
    assert lc.get(a.qid) is a
    assert a.v is a.demand  # default query vector is the demand itself


def test_finalize_fires_callback_exactly_once():
    h, lc = make_lifecycle()
    calls = []
    rt = lc.begin(np.array([0.1, 0.2]), 0, lambda r, m: calls.append((r, m)))
    rt.messages = 7
    lc.finalize(rt)
    lc.finalize(rt)  # idempotent
    assert calls == [([], 7)]
    assert lc.get(rt.qid) is None
    assert lc.active_queries() == 0
    assert lc.stats().completed == 1
    assert lc.stats().timed_out == 0


def test_timeout_expires_live_query_with_partial_results():
    h, lc = make_lifecycle(timeout=10.0)
    calls = []
    rt = lc.begin(np.array([0.5, 0.5]), 0, lambda r, m: calls.append((r, m)))
    rec = h.plant_record(0, owner=3, availability=[0.9, 0.9])
    rt.found.append(rec)
    rt.messages = 2
    h.sim.run(until=100.0)
    assert calls == [([rec], 2)]
    assert rt.timed_out
    stats = lc.stats()
    assert (stats.started, stats.completed, stats.timed_out) == (1, 0, 1)


def test_timeout_counted_exactly_once_even_with_long_run():
    h, lc = make_lifecycle(timeout=10.0)
    calls = []
    expired = []
    lc.on_expire = expired.append
    lc.begin(np.array([0.5, 0.5]), 0, lambda r, m: calls.append(m))
    h.sim.run(until=1000.0)
    assert len(calls) == 1
    assert len(expired) == 1
    assert lc.stats().timed_out == 1


def test_finalized_query_never_times_out():
    h, lc = make_lifecycle(timeout=10.0)
    calls = []
    rt = lc.begin(np.array([0.5, 0.5]), 0, lambda r, m: calls.append(m))
    lc.finalize(rt)
    h.sim.run(until=100.0)
    assert len(calls) == 1
    assert lc.stats().timed_out == 0


def test_restart_timeout_postpones_expiry():
    h, lc = make_lifecycle(timeout=10.0)
    calls = []
    rt = lc.begin(np.array([0.5, 0.5]), 0, lambda r, m: calls.append(m))
    h.sim.run(until=8.0)
    lc.restart_timeout(rt)
    h.sim.run(until=15.0)  # past the original deadline, before the new one
    assert calls == []
    h.sim.run(until=100.0)
    assert len(calls) == 1


def test_on_timeout_hook_overrides_default_expiry():
    h = Harness(n=8, dims=2, seed=0)
    retried = []

    def hook(rt):
        if not retried:
            retried.append(rt.qid)
            lc.restart_timeout(rt)  # first deadline: retry
        else:
            lc.expire(rt)  # second deadline: give up

    lc = QueryLifecycle(h.ctx, 10.0, on_timeout=hook)
    calls = []
    lc.begin(np.array([0.5, 0.5]), 0, lambda r, m: calls.append(m))
    h.sim.run(until=1000.0)
    assert retried  # the hook intervened once
    assert len(calls) == 1
    assert lc.stats().timed_out == 1


def test_rejects_non_positive_timeout():
    h = Harness(n=4, dims=2, seed=0)
    with pytest.raises(ValueError, match="timeout"):
        QueryLifecycle(h.ctx, 0.0)


# ----------------------------------------------------------------------
# batched fan-in
# ----------------------------------------------------------------------
def test_submit_batch_orders_results_by_submission():
    done = {}

    def submit(demand, cb):
        # resolve out of order: the fan-in must still order by index
        done[float(demand[0])] = cb
        return float(demand[0])

    results = []
    ids = submit_batch(
        submit, [np.array([1.0]), np.array([2.0])], results.append
    )
    assert ids == [1.0, 2.0]
    done[2.0]([], 5)
    assert results == []  # not complete yet
    done[1.0]([], 3)
    assert results == [[([], 3), ([], 5)]]


def test_submit_batch_empty_fires_immediately():
    results = []
    assert submit_batch(lambda d, cb: None, [], results.append) == []
    assert results == [[]]
