"""Tests for gossip aggregation (reference [23])."""

import numpy as np
import pytest

from repro.core.aggregation import gossip_aggregate


def make_values(n=50, dims=3, seed=0):
    rng = np.random.default_rng(seed)
    return {i: rng.uniform(1, 100, dims) for i in range(n)}


def test_max_converges_exactly():
    values = make_values()
    truth = np.max(np.stack(list(values.values())), axis=0)
    result = gossip_aggregate(values, "max", np.random.default_rng(1))
    assert result.max_relative_error(truth) == 0.0
    assert np.allclose(result.consensus(), truth)


def test_mean_converges_approximately():
    values = make_values(n=64)
    truth = np.mean(np.stack(list(values.values())), axis=0)
    result = gossip_aggregate(values, "mean", np.random.default_rng(2))
    assert result.max_relative_error(truth) < 0.15
    assert np.allclose(result.consensus(), truth, rtol=0.1)


def test_mean_preserves_total_mass():
    values = make_values(n=32)
    total = np.sum(np.stack(list(values.values())), axis=0)
    result = gossip_aggregate(values, "mean", np.random.default_rng(3))
    after = np.sum(np.stack(list(result.estimates.values())), axis=0)
    assert np.allclose(after, total)  # pairwise averaging conserves sum


def test_message_count_scales_with_rounds():
    values = make_values(n=20)
    r1 = gossip_aggregate(values, "max", np.random.default_rng(4), rounds=1)
    r5 = gossip_aggregate(values, "max", np.random.default_rng(4), rounds=5)
    assert r5.messages > r1.messages
    assert r1.messages <= 2 * 20  # ≤ 2 per node per round


def test_single_node_is_its_own_consensus():
    values = {7: np.array([3.0, 4.0])}
    result = gossip_aggregate(values, "max", np.random.default_rng(5))
    assert np.allclose(result.consensus(), [3.0, 4.0])


def test_validation():
    with pytest.raises(ValueError):
        gossip_aggregate({}, "max", np.random.default_rng(0))
    with pytest.raises(ValueError):
        gossip_aggregate({0: np.ones(2)}, "median", np.random.default_rng(0))
