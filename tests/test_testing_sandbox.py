"""Tests for the public ProtocolSandbox."""

import numpy as np

from repro.testing import ProtocolSandbox


def test_sandbox_builds_consistent_state():
    sb = ProtocolSandbox(n=24, dims=3, seed=1)
    assert len(sb.overlay) == 24
    assert set(sb.caches) == set(sb.pilists) == set(sb.tables)
    sb.overlay.check_invariants()


def test_plant_record_and_duty_lookup():
    sb = ProtocolSandbox(n=16, dims=2, seed=2)
    point = np.array([0.3, 0.7])
    duty = sb.duty_of(point)
    rec = sb.plant_record(duty, owner=5, availability=[0.4, 0.8])
    assert sb.caches[duty].records(now=0.0) == [rec]
    assert sb.overlay.nodes[duty].zone.contains(point)


def test_kill_drops_messages():
    sb = ProtocolSandbox(n=8, dims=2, seed=3)
    received = []
    sb.kill(3)
    sb.ctx.send("test", 0, 3, received.append, "payload")
    sb.sim.run()
    assert received == []
    assert sb.traffic.by_kind["dropped"] == 1


def test_alive_messages_delivered():
    sb = ProtocolSandbox(n=8, dims=2, seed=4)
    received = []
    sb.ctx.send("test", 0, 5, received.append, "payload")
    sb.sim.run()
    assert received == ["payload"]


def test_availability_is_mutable():
    sb = ProtocolSandbox(n=8, dims=2, seed=5)
    sb.availability[2] = np.array([0.9, 0.9])
    assert np.allclose(sb.ctx.availability_of(2), [0.9, 0.9])
