"""Smoke tests keeping the example scripts runnable.

Each example runs in a subprocess exactly as a user would invoke it; the
slowest multi-scenario ones are exercised at reduced scope elsewhere
(scenario tests), so only the fast ones run here.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "T-Ratio" in out
    assert "hourly T-Ratio series" in out


def test_overlay_tour():
    out = run_example("overlay_tour.py")
    assert "zone partitioning" in out
    assert "INSCAN" in out
    assert "found [(999," in out  # the planted record is discovered


def test_range_query_cost():
    out = run_example("range_query_cost.py")
    assert "flood msgs" in out
    # flood traffic grows down the table while PID stays bounded
    lines = [l for l in out.splitlines() if l.strip() and l.strip()[0] == "0"]
    assert len(lines) == 4


@pytest.mark.slow
def test_fault_tolerance():
    out = run_example("fault_tolerance.py")
    assert "tasks recovered" in out


def test_examples_all_have_docstrings_and_main():
    for script in EXAMPLES.glob("*.py"):
        text = script.read_text()
        assert text.startswith("#!") or text.startswith('"""'), script
        assert '__name__ == "__main__"' in text, script
