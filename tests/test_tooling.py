"""Style-drift gate: run ``ruff check`` when the linter is available.

The project pins its lint policy in ``pyproject.toml`` (``[tool.ruff]``).
Containers that ship without ruff skip this test instead of failing —
the configuration still travels with the repo so any environment that
has the linter (CI, dev machines) catches drift immediately.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _ruff_command() -> list[str] | None:
    if shutil.which("ruff"):
        return ["ruff"]
    try:
        import ruff  # noqa: F401
    except ImportError:
        return None
    return [sys.executable, "-m", "ruff"]


def test_ruff_check_clean():
    command = _ruff_command()
    if command is None:
        pytest.skip("ruff is not installed in this environment")
    proc = subprocess.run(
        [*command, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"ruff found style drift:\n{proc.stdout}{proc.stderr}"


def test_ruff_config_present():
    """The lint policy must stay in the repo even where ruff isn't."""
    config = (REPO_ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff]" in config


def test_host_engine_equivalence_smoke():
    """Fast-gate smoke of the execution substrate: one short randomized
    schedule through both the vectorized HostEngine and the scalar
    reference must stay indistinguishable (the heavy property suite lives
    in tests/cloud/test_engine_equivalence.py; this runs in well under a
    second so it belongs in the pre-commit gate)."""
    from repro.testing import assert_engines_equivalent

    stats = assert_engines_equivalent(seed=1, n_hosts=8, steps=120)
    assert stats["placed"] > 0 and stats["completed"] > 0


def test_zone_store_equivalence_smoke():
    """Fast-gate smoke of the overlay substrate: one short randomized
    join/leave/route/diffuse schedule through both the vectorized
    ZoneStore-backed overlay and the verbatim scalar reference must stay
    indistinguishable — identical adjacency, routing paths (hop for hop)
    and diffusion recipients (the heavy suites live in
    tests/can/test_overlay_equivalence.py and test_overlay_stateful.py)."""
    from repro.testing import assert_overlays_equivalent

    stats = assert_overlays_equivalent(seed=1, n=20, dims=3, steps=21)
    assert stats["routes"] > 0 and stats["diffusions"] > 0


def test_cohort_equivalence_smoke():
    """Fast-gate smoke of cohort event coalescing: a small HID-CAN cell
    under cohort ticking must stay metric- and series-identical to the
    per-node tick path (the full cells — paper scale, churn, baselines —
    live in tests/experiments/test_coalescing.py)."""
    from repro.core.protocol import PIDCANParams
    from repro.experiments.config import ExperimentConfig
    from repro.testing import assert_tick_modes_equivalent

    per_node, _ = assert_tick_modes_equivalent(
        ExperimentConfig(
            protocol="hid-can",
            demand_ratio=0.5,
            n_nodes=48,
            duration=3000.0,
            sample_period=1000.0,
            seed=2,
            pidcan=PIDCANParams(phase_buckets=16),
        )
    )
    assert per_node.generated > 0


def test_delivery_coalescing_equivalence_smoke():
    """Fast-gate smoke of delivery-event coalescing: a small HID-CAN cell
    with the delivery calendar on must stay metric- and series-identical
    to per-message scheduling (the full cells — paper scale, churn — live
    in tests/experiments/test_coalescing.py)."""
    from repro.core.protocol import PIDCANParams
    from repro.experiments.config import ExperimentConfig
    from repro.testing import assert_delivery_modes_equivalent

    per_message, _ = assert_delivery_modes_equivalent(
        ExperimentConfig(
            protocol="hid-can",
            demand_ratio=0.5,
            n_nodes=48,
            duration=3000.0,
            sample_period=1000.0,
            seed=2,
            pidcan=PIDCANParams(phase_buckets=16),
        )
    )
    assert per_message.generated > 0


def test_mega_scenario_smoke():
    """The mega tier runs end-to-end at toy size with every coalescing
    lever on (cohort ticking, arrival quantum+coalescing, delivery
    calendar, memory budget)."""
    from repro.experiments.scenarios import run_scenario

    results = run_scenario("mega", scale="tiny", seed=1,
                           n_nodes=64, duration=600.0)
    result = results["hid-can"]
    assert result.config.pidcan.tick_mode == "cohort"
    assert result.config.coalesce_arrivals
    assert result.config.coalesce_deliveries
    assert result.generated > 0


def test_mega2_scenario_smoke():
    """The mega2 tier (compact dtypes on top of every mega lever) runs
    end-to-end at toy size."""
    from repro.experiments.scenarios import run_scenario

    results = run_scenario("mega2", scale="tiny", seed=1,
                           n_nodes=96, duration=600.0)
    result = results["hid-can"]
    assert result.config.compact_dtypes
    assert result.config.coalesce_deliveries
    assert result.generated > 0


def test_cache_off_equivalence_smoke():
    """Fast-gate smoke of the hot-range cache's opt-in contract: with
    ``cache_policy=None`` a small Zipf-skewed cell is bit-identical
    whether the PIList is the RangeCache TTL policy or the verbatim seed
    scalar, and no cache counter moves (the paper-scale and churn cells
    live in tests/experiments/test_hotrange.py)."""
    from repro.experiments.config import ExperimentConfig
    from repro.testing import assert_cache_off_equivalent

    stock, _ = assert_cache_off_equivalent(
        ExperimentConfig(
            protocol="hid-can",
            demand_ratio=0.5,
            n_nodes=48,
            duration=3000.0,
            sample_period=1000.0,
            seed=2,
            zipf_s=1.0,
        )
    )
    assert stock.generated > 0
    assert stock.cache_lookups == 0
