"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW


def test_events_run_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(5.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.schedule(3.0, out.append, "mid")
    sim.run()
    assert out == ["early", "mid", "late"]


def test_same_time_events_run_in_scheduling_order():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_priority_breaks_same_time_ties():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "low", priority=PRIORITY_LOW)
    sim.schedule(1.0, out.append, "high", priority=PRIORITY_HIGH)
    sim.run()
    assert out == ["high", "low"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]
    assert sim.now == 2.5


def test_run_until_stops_before_later_events():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(10.0, out.append, "b")
    sim.run(until=5.0)
    assert out == ["a"]
    assert sim.now == 5.0  # clock lands exactly on `until`
    sim.run()
    assert out == ["a", "b"]


def test_run_until_advances_clock_when_queue_drains_early():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=100.0)
    assert sim.now == 100.0


def test_cancellation_skips_event():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "cancelled")
    sim.schedule(2.0, out.append, "kept")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert out == ["kept"]


def test_pending_counts_live_events_only():
    sim = Simulator()
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    h1.cancel()
    assert sim.pending() == 1


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator(start_time=10.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_events_scheduled_from_callbacks_run():
    sim = Simulator()
    out = []

    def first():
        out.append("first")
        sim.schedule(1.0, out.append, "second")

    sim.schedule(1.0, first)
    sim.run()
    assert out == ["first", "second"]
    assert sim.now == 2.0


def test_periodic_fires_on_schedule():
    sim = Simulator()
    times = []
    sim.periodic(10.0, lambda: times.append(sim.now))
    sim.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_periodic_first_at_override():
    sim = Simulator()
    times = []
    sim.periodic(10.0, lambda: times.append(sim.now), first_at=3.0)
    sim.run(until=25.0)
    assert times == [3.0, 13.0, 23.0]


def test_periodic_cancel_stops_rearming():
    sim = Simulator()
    times = []
    handle = sim.periodic(10.0, lambda: times.append(sim.now))

    sim.schedule(25.0, handle.cancel)
    sim.run(until=100.0)
    assert times == [10.0, 20.0]


def test_periodic_rejects_bad_interval():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.periodic(0.0, lambda: None)


def test_periodic_cancel_from_inside_callback_stops_timer():
    """Regression: cancelling the handle from within its own callback used
    to be lost — tick() re-armed and rebound the handle to a fresh,
    uncancelled event, resurrecting the timer."""
    sim = Simulator()
    times = []
    box = {}

    def tick():
        times.append(sim.now)
        if len(times) == 3:
            box["handle"].cancel()

    box["handle"] = sim.periodic(10.0, tick)
    sim.run(until=200.0)
    assert times == [10.0, 20.0, 30.0]
    assert sim.pending() == 0


def test_periodic_cancel_on_first_fire_from_inside_callback():
    sim = Simulator()
    times = []
    box = {}

    def tick():
        times.append(sim.now)
        box["handle"].cancel()

    box["handle"] = sim.periodic(5.0, tick)
    sim.run(until=100.0)
    assert times == [5.0]


def test_stop_halts_run():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, out.append, "b")
    sim.run()
    assert out == ["a"]
    sim.run()
    assert out == ["a", "b"]


def test_max_events_bound():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i + 1), out.append, i)
    sim.run(max_events=2)
    assert out == [0, 1]


def test_run_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


# ----------------------------------------------------------------------
# the O(1) pending() counter (maintained on push / pop / cancel)
# ----------------------------------------------------------------------
def test_pending_is_constant_time_counter_not_heap_scan():
    """pending() must agree with a brute-force heap scan throughout an
    arbitrary push/pop/cancel workload — the counter is the contract."""
    sim = Simulator()
    rng = __import__("random").Random(5)
    handles = []
    for step in range(200):
        roll = rng.random()
        if roll < 0.6:
            handles.append(sim.schedule(rng.uniform(0.1, 50.0), lambda: None))
        elif handles:
            handles.pop(rng.randrange(len(handles))).cancel()
        brute = sum(1 for e in sim._heap if not e.cancelled)
        assert sim.pending() == brute
    sim.run()
    assert sim.pending() == 0


def test_double_cancel_decrements_once():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    h.cancel()
    assert sim.pending() == 1


def test_cancel_after_fire_is_noop():
    """A handle cancelled after its event already ran (the failsafe
    pattern: on_result cancels the failsafe that invoked it) must not
    corrupt the live-event counter."""
    sim = Simulator()
    box = {}

    def fire():
        box["handle"].cancel()

    box["handle"] = sim.schedule(1.0, fire)
    keeper = sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    assert sim.pending() == 1
    keeper.cancel()
    assert sim.pending() == 0


def test_pending_counts_fired_events_down():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(until=2.5)
    assert sim.pending() == 2


# ----------------------------------------------------------------------
# cohort timers (docs/coalescing.md)
# ----------------------------------------------------------------------
def test_cohort_delivers_founders_in_insertion_order():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    for member in (3, 1, 2):
        timer.add(member)
    sim.run(until=25.0)
    assert out == [(3, 1, 2), (3, 1, 2), (3, 1, 2)]  # t=0, 10, 20


def test_cohort_epoch_sets_the_grid():
    sim = Simulator()
    times = []
    timer = sim.periodic_cohort(10.0, lambda batch: times.append(sim.now), epoch=4.0)
    timer.add("a")
    sim.run(until=35.0)
    assert times == [4.0, 14.0, 24.0, 34.0]


def test_cohort_first_fire_is_next_grid_instant_not_epoch():
    sim = Simulator()
    sim.schedule(17.0, lambda: None)
    sim.run()
    assert sim.now == 17.0
    times = []
    timer = sim.periodic_cohort(5.0, lambda batch: times.append(sim.now), epoch=1.0)
    timer.add("a")
    sim.run(until=32.0)
    assert times == [21.0, 26.0, 31.0]


def test_cohort_late_joiner_straggles_once_then_merges():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    timer.add("a")
    # Joining from a later event (off-grid) gets a one-shot solo delivery
    # at the pending fire instant, then rides the shared batch.
    sim.schedule(5.0, timer.add, "b")
    sim.run(until=25.0)
    # t=0: batch; t=10: batch then straggler (the batch's heap entry is
    # older, exactly like a per-member chain armed at t=5); t=20: merged.
    assert out == [("a",), ("a",), ("b",), ("a", "b")]


def test_cohort_discard_cancels_pending_straggler():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    timer.add("a")
    sim.schedule(5.0, timer.add, "b")
    sim.schedule(7.0, timer.discard, "b")
    sim.run(until=15.0)
    assert out == [("a",), ("a",)]
    assert "b" not in timer


def test_cohort_discard_from_inside_callback_sticks():
    sim = Simulator()
    out = []

    def fn(batch):
        out.append(batch)
        timer.discard("b")

    timer = sim.periodic_cohort(10.0, fn)
    timer.add("a")
    timer.add("b")
    sim.run(until=25.0)
    assert out == [("a", "b"), ("a",), ("a",)]


def test_cohort_cancel_stops_everything():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    timer.add("a")
    sim.schedule(5.0, timer.add, "b")     # straggler pending at t=10
    sim.schedule(6.0, timer.cancel)
    sim.run(until=40.0)
    assert out == [("a",)]  # only the t=0 fire
    assert timer.cancelled
    with pytest.raises(SimulationError):
        timer.add("c")


def test_cohort_add_is_idempotent():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    timer.add("a")
    timer.add("a")
    assert len(timer) == 1
    sim.run(until=5.0)
    assert out == [("a",)]


def test_cohort_empty_timer_keeps_ticking():
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    sim.run(until=25.0)
    assert out == [(), (), ()]
    assert not timer.cancelled


def test_cohort_tick_charges_one_unit_per_member():
    """A batched fire counts as len(batch) event units, so
    ``run(max_events=...)`` budgets stay comparable across tick modes."""
    sim = Simulator()
    out = []
    timer = sim.periodic_cohort(10.0, out.append)
    for member in ("a", "b", "c"):
        timer.add(member)
    sim.run(max_events=2)
    # One tick fires (3 units >= the 2-unit budget); the accounting
    # records all three member callbacks, not one heap pop.
    assert out == [("a", "b", "c")]
    assert sim.events_processed == 3
    timer.cancel()


def test_cohort_empty_fire_counts_one_unit():
    sim = Simulator()
    sim.periodic_cohort(10.0, lambda batch: None)
    sim.run(max_events=1)
    assert sim.events_processed == 1


def test_charge_events_rejects_negative():
    sim = Simulator()

    def bad():
        sim.charge_events(-1)

    sim.schedule(1.0, bad)
    with pytest.raises(SimulationError):
        sim.run()


def test_cohort_matches_per_member_reference_under_churn():
    """Global delivery log of one cohort timer == N per-member grid
    chains, including members that join/leave mid-run (off-grid)."""
    from repro.testing import ReferenceCohortScheduler

    def drive(make_timer):
        sim = Simulator()
        log = []

        def fn(batch):
            for member in batch:
                log.append((sim.now, member))

        timer = make_timer(sim, fn)
        timer.add(0)
        timer.add(1)
        sim.schedule(3.5, timer.add, 2)
        sim.schedule(12.5, timer.discard, 1)
        sim.schedule(26.5, timer.add, 3)
        sim.schedule(26.5, timer.discard, 0)
        sim.run(until=45.0)
        return log

    cohort_log = drive(lambda sim, fn: sim.periodic_cohort(10.0, fn))
    ref_log = drive(lambda sim, fn: ReferenceCohortScheduler(sim, 10.0, fn))
    assert cohort_log == ref_log
    assert cohort_log  # non-trivial
