"""Stateful property test: a :class:`CohortTimer` and N per-member grid
chains deliver the identical global ``(time, member)`` log under
arbitrary add/discard/advance interleavings.

The machine drives one cohort timer and one
:class:`~repro.testing.ReferenceCohortScheduler` in lockstep on twin
simulators.  Adds and discards always happen at half-integer instants
(the grid is integer-period with integer epoch), so the measure-zero
straggler edge — joining *exactly* at a grid instant after that
instant's tick already fired — is never exercised; docs/coalescing.md
documents that edge as out of contract.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.sim.engine import Simulator
from repro.testing import ReferenceCohortScheduler

PERIOD = 4.0
EPOCH = 1.0
MEMBERS = tuple(range(8))


class _Rig:
    """One simulator + one scheduler + its flattened delivery log."""

    def __init__(self, make_timer):
        self.sim = Simulator()
        self.log = []

        def fn(batch):
            for member in batch:
                self.log.append((self.sim.now, member))

        self.timer = make_timer(self.sim, fn)


class CohortLockstepMachine(RuleBasedStateMachine):
    """Random add/discard/advance sequences, always off-grid."""

    @initialize()
    def setup(self) -> None:
        self.cohort = _Rig(
            lambda sim, fn: sim.periodic_cohort(PERIOD, fn, epoch=EPOCH)
        )
        self.reference = _Rig(
            lambda sim, fn: ReferenceCohortScheduler(sim, PERIOD, fn, epoch=EPOCH)
        )
        self.rigs = (self.cohort, self.reference)
        self.ticks = 0  # integer clock; advances land on half-integers

    # ------------------------------------------------------------------
    @rule(member=st.sampled_from(MEMBERS))
    def add(self, member: int) -> None:
        for rig in self.rigs:
            rig.timer.add(member)

    @rule(member=st.sampled_from(MEMBERS))
    def discard(self, member: int) -> None:
        for rig in self.rigs:
            rig.timer.discard(member)

    @rule(steps=st.integers(min_value=1, max_value=12))
    def advance(self, steps: int) -> None:
        """Run both simulators to the same off-grid instant.

        The target is always a half-integer (``k - 0.5`` off a
        monotone integer counter), and the grid is integer (period 4,
        epoch 1), so membership changes issued by later rules never
        coincide with a fire instant.
        """
        self.ticks += steps
        target = self.ticks - 0.5
        for rig in self.rigs:
            rig.sim.run(until=target)
            assert rig.sim.now == target

    # ------------------------------------------------------------------
    @invariant()
    def logs_identical(self) -> None:
        assert self.cohort.log == self.reference.log

    @invariant()
    def membership_identical(self) -> None:
        for member in MEMBERS:
            assert (member in self.cohort.timer) == (
                member in self.reference.timer
            )


CohortLockstepMachine.TestCase.settings = settings(
    max_examples=60, deadline=None, stateful_step_count=30
)
TestCohortLockstep = CohortLockstepMachine.TestCase
