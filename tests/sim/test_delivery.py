"""DeliveryCalendar: batching, ordering, accounting, quantum rounding.

The contract under test (``src/repro/sim/delivery.py``): coalescing
same-instant deliveries into one flush event is a pure event-batching
transform — same delivery order, same ``events_processed`` accounting —
and a positive quantum only moves instants *up* onto the grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.delivery import DeliveryCalendar
from repro.sim.engine import Simulator
from repro.testing import ReferenceDeliveryCalendar


def test_negative_quantum_rejected():
    with pytest.raises(ValueError):
        DeliveryCalendar(Simulator(), quantum=-0.5)


def test_same_instant_batch_runs_in_enqueue_order():
    sim = Simulator()
    cal = DeliveryCalendar(sim)
    out: list[str] = []
    for tag in ("a", "b", "c"):
        cal.deliver(5.0, out.append, tag)
    cal.deliver(7.0, out.append, "late")
    sim.run()
    assert out == ["a", "b", "c", "late"]
    assert cal.deliveries == 4
    assert cal.flushes == 2  # one heap event per distinct instant


def test_charges_match_per_message_accounting():
    """events_processed counts what per-message scheduling would have."""

    # 3 instants: 4 + 1 + 2 deliveries
    load = [
        (5.0, "a"), (5.0, "b"), (5.0, "c"), (5.0, "d"),
        (6.0, "e"),
        (9.0, "f"), (9.0, "g"),
    ]

    ref_sim = Simulator()
    ref_out: list[str] = []
    for delay, tag in load:
        ref_sim.schedule(delay, ref_out.append, tag)
    ref_sim.run()

    sim = Simulator()
    cal = DeliveryCalendar(sim)
    out: list[str] = []
    for delay, tag in load:
        cal.deliver(delay, out.append, tag)
    sim.run()

    assert out == ref_out
    assert sim.events_processed == ref_sim.events_processed == 7
    assert cal.flushes == 3


def test_reentrant_same_instant_send_opens_fresh_batch():
    """A delivery that sends again for the *current* instant must land in
    a fresh batch behind every already-queued event — exactly where
    per-message scheduling would put it."""
    sim = Simulator()
    cal = DeliveryCalendar(sim)
    out: list[str] = []

    def first():
        out.append("first")
        cal.deliver_at(sim.now, out.append, "reentrant")

    cal.deliver(3.0, first)
    cal.deliver(3.0, out.append, "second")
    sim.schedule(3.0, out.append, "plain-event")
    sim.run()
    # The reentrant send runs after the plain event queued before it.
    assert out == ["first", "second", "plain-event", "reentrant"]
    assert cal.flushes == 2


def test_quantum_rounds_up_onto_grid():
    sim = Simulator()
    cal = DeliveryCalendar(sim, quantum=0.5)
    seen: list[float] = []
    cal.deliver(1.01, lambda: seen.append(sim.now))
    cal.deliver(1.26, lambda: seen.append(sim.now))  # same 1.5 slot
    cal.deliver(1.75, lambda: seen.append(sim.now))  # exact grid point stays
    sim.run()
    assert seen == [1.5, 1.5, 2.0]
    assert cal.flushes == 2
    assert cal.deliveries == 3


def test_quantum_never_moves_delivery_before_now():
    sim = Simulator()
    cal = DeliveryCalendar(sim, quantum=10.0)

    def at_now():
        # now == 10.0 sits on the grid; a zero-delay send must not round
        # into the past.
        cal.deliver(0.0, lambda: None)

    cal.deliver(3.0, at_now)
    sim.run()
    assert sim.now == 10.0
    assert cal.deliveries == 2


def test_randomized_lockstep_matches_per_message_reference():
    """Random workload with engineered instant collisions: the calendar
    and the per-message reference must deliver in the same order at the
    same times with the same event accounting."""
    rng = np.random.default_rng(0xC0FFEE)
    # Draw delays from a small grid so instants genuinely collide.
    delays = (rng.integers(1, 40, size=300) * 0.25).tolist()

    def drive(sim, calendar):
        trace: list[tuple[float, int]] = []

        def receive(tag, hops_left):
            trace.append((sim.now, tag))
            if hops_left > 0:
                # Forward with a deterministic per-tag delay, including
                # zero-delay (same-instant) hops.
                delay = (tag % 3) * 0.25
                calendar.deliver(delay, receive, tag + 1000, hops_left - 1)

        for tag, delay in enumerate(delays):
            calendar.deliver(delay, receive, tag, tag % 2)
        sim.run()
        return trace

    ref_sim = Simulator()
    ref_trace = drive(ref_sim, ReferenceDeliveryCalendar(ref_sim))

    sim = Simulator()
    cal = DeliveryCalendar(sim)
    trace = drive(sim, cal)

    assert trace == ref_trace
    assert sim.events_processed == ref_sim.events_processed
    assert cal.deliveries == len(trace)
    assert cal.flushes < cal.deliveries  # collisions actually coalesced
