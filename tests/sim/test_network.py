"""Unit tests for the LAN/WAN network model."""

import numpy as np
import pytest

from repro.sim.network import CONTROL_MSG_BITS, NetworkModel, NetworkParams


@pytest.fixture
def net():
    model = NetworkModel(NetworkParams(lan_size=4), np.random.default_rng(0))
    for node in range(10):
        model.add_node(node)
    return model


def test_lans_fill_to_capacity(net):
    lans = [net.lan_of(i) for i in range(10)]
    sizes = {lan: lans.count(lan) for lan in set(lans)}
    assert all(size <= 4 for size in sizes.values())
    # 10 nodes at LAN size 4 need exactly 3 LANs
    assert len(sizes) == 3


def test_same_lan_delay_uses_lan_latency(net):
    params = net.params
    a, b = [n for n in range(10) if net.lan_of(n) == net.lan_of(0)][:2]
    d = net.delay(a, b)
    assert params.lan_latency_s <= d < params.wan_latency_s


def test_cross_lan_delay_uses_wan_latency(net):
    pairs = [
        (a, b)
        for a in range(10)
        for b in range(10)
        if a != b and net.lan_of(a) != net.lan_of(b)
    ]
    a, b = pairs[0]
    assert net.delay(a, b) >= net.params.wan_latency_s


def test_delay_to_self_is_zero(net):
    assert net.delay(3, 3) == 0.0


def test_delay_is_symmetric(net):
    for a, b in [(0, 5), (2, 9), (1, 3)]:
        assert net.delay(a, b) == pytest.approx(net.delay(b, a))


def test_bigger_messages_take_longer(net):
    small = net.delay(0, 9, CONTROL_MSG_BITS)
    big = net.delay(0, 9, CONTROL_MSG_BITS * 100)
    assert big > small


def test_path_delay_sums_hops(net):
    path = [0, 5, 9]
    expected = net.delay(0, 5) + net.delay(5, 9)
    assert net.path_delay(path) == pytest.approx(expected)


def test_path_delay_single_node_is_zero(net):
    assert net.path_delay([4]) == 0.0


def test_node_bandwidth_in_lan_range(net):
    for n in range(10):
        bw = net.node_bandwidth_mbps(n)
        assert net.params.lan_bw_mbps_lo <= bw <= net.params.lan_bw_mbps_hi


def test_nodes_in_same_lan_share_bandwidth(net):
    groups = {}
    for n in range(10):
        groups.setdefault(net.lan_of(n), set()).add(net.node_bandwidth_mbps(n))
    assert all(len(bws) == 1 for bws in groups.values())


def test_remove_node_frees_lan_slot():
    # Fill 12 nodes into exactly 3 LANs of 4 each; removing one node must
    # make its LAN the reuse target instead of opening a fourth LAN.
    model = NetworkModel(NetworkParams(lan_size=4), np.random.default_rng(0))
    for node in range(12):
        model.add_node(node)
    assert len({model.lan_of(n) for n in range(12)}) == 3
    lan = model.lan_of(5)
    model.remove_node(5)
    model.add_node(100)
    assert model.lan_of(100) == lan


def test_add_node_idempotent(net):
    lan = net.lan_of(0)
    net.add_node(0)
    assert net.lan_of(0) == lan


def test_delay_between_removed_nodes_takes_wan_path(net):
    """Churn regression: two departed endpoints both resolve to no LAN
    (``None == None``) and used to take the intra-LAN branch, crashing on
    the LAN bandwidth lookup.  In-flight messages between churned-out
    nodes must instead pay the WAN fallback price."""
    net.remove_node(0)
    net.remove_node(1)
    d = net.delay(0, 1, CONTROL_MSG_BITS)
    assert d >= net.params.wan_latency_s


def test_delay_with_one_removed_endpoint_is_wan(net):
    """A live node messaging a departed one cannot share a LAN with it."""
    peer = next(n for n in range(1, 10) if net.lan_of(n) == net.lan_of(0))
    net.remove_node(0)
    assert net.delay(peer, 0) >= net.params.wan_latency_s
    assert net.delay(0, peer) >= net.params.wan_latency_s


def test_removed_node_delay_under_churn_traffic():
    """End-to-end churn shape: keep routing among a mix of removed and
    live nodes; every pair must produce a finite positive delay."""
    model = NetworkModel(NetworkParams(lan_size=4), np.random.default_rng(2))
    for node in range(12):
        model.add_node(node)
    for node in (0, 3, 7):
        model.remove_node(node)
    for a in range(12):
        for b in range(12):
            if a != b:
                assert model.delay(a, b) > 0.0
