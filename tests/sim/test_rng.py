"""Unit tests for the named RNG substreams."""

import numpy as np

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_cached_stream():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(99).stream("workload").random(8)
    b = RngRegistry(99).stream("workload").random(8)
    assert np.array_equal(a, b)


def test_different_names_give_independent_streams():
    rngs = RngRegistry(99)
    a = rngs.stream("one").random(8)
    b = rngs.stream("two").random(8)
    assert not np.array_equal(a, b)


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("x").random(8)
    b = RngRegistry(2).stream("x").random(8)
    assert not np.array_equal(a, b)


def test_derive_seed_is_stable_and_positive():
    s1 = derive_seed(42, "alpha")
    s2 = derive_seed(42, "alpha")
    assert s1 == s2
    assert 0 <= s1 < 2**63


def test_derive_seed_sensitive_to_name_boundaries():
    # "1" + "ab" must differ from "1a" + "b" — the separator guarantees it.
    assert derive_seed(1, "ab") != derive_seed(11, "b")


def test_spawn_gives_independent_child_registry():
    parent = RngRegistry(7)
    child = parent.spawn("worker")
    a = parent.stream("x").random(8)
    b = child.stream("x").random(8)
    assert not np.array_equal(a, b)
    # spawn is deterministic too
    again = RngRegistry(7).spawn("worker").stream("x").random(8)
    assert np.array_equal(b, again)
