"""Tests for task-lifecycle tracing, including full-run trace validation."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation
from repro.sim.tracing import Tracer


def test_emit_and_views():
    tr = Tracer()
    tr.emit(1.0, "generated", 7, node=3)
    tr.emit(2.0, "query-ok", 7, candidates=2)
    tr.emit(1.5, "generated", 8)
    assert len(tr) == 3
    assert [e.kind for e in tr.for_task(7)] == ["generated", "query-ok"]
    assert len(tr.by_kind("generated")) == 2
    assert tr.task_ids() == [7, 8]


def test_unknown_kind_rejected():
    tr = Tracer()
    with pytest.raises(ValueError):
        tr.emit(0.0, "teleported", 1)


def test_disabled_tracer_records_nothing():
    tr = Tracer(enabled=False)
    tr.emit(0.0, "generated", 1)
    assert len(tr) == 0


def test_timeline_readable():
    tr = Tracer()
    tr.emit(10.0, "generated", 1, node=2)
    tr.emit(20.0, "query-ok", 1, candidates=3)
    lines = tr.timeline(1)
    assert "generated" in lines[0] and "@node 2" in lines[0]
    assert "candidates" in lines[1]


def test_terminal_kind():
    tr = Tracer()
    tr.emit(0.0, "generated", 1)
    assert tr.terminal_kind(1) is None
    tr.emit(1.0, "query-ok", 1)
    tr.emit(2.0, "admitted", 1)
    tr.emit(3.0, "completed", 1)
    assert tr.terminal_kind(1) == "completed"


def test_validate_catches_admission_without_query():
    tr = Tracer()
    tr.emit(0.0, "generated", 1)
    tr.emit(1.0, "admitted", 1)
    with pytest.raises(AssertionError, match="without query-ok"):
        tr.validate()


def test_validate_catches_missing_generation():
    tr = Tracer()
    tr.emit(0.0, "query-ok", 1)
    with pytest.raises(AssertionError, match="starts with"):
        tr.validate()


# ----------------------------------------------------------------------
# full-run validation: every task's trace is causally consistent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["hid-can", "newscast"])
def test_full_run_traces_are_consistent(protocol):
    cfg = ExperimentConfig(
        n_nodes=40, duration=5000.0, demand_ratio=0.4, seed=17,
        protocol=protocol, trace_tasks=True,
    )
    sim = SOCSimulation(cfg)
    res = sim.run()
    sim.tracer.validate()
    assert len(sim.tracer.by_kind("generated")) == res.generated
    assert len(sim.tracer.by_kind("completed")) == res.finished
    failures = len(sim.tracer.by_kind("query-failed")) + len(
        sim.tracer.by_kind("rejected")
    )
    assert failures == res.failed


def test_full_run_traces_with_checkpointed_churn():
    cfg = ExperimentConfig(
        n_nodes=40, duration=5000.0, demand_ratio=0.4, seed=18,
        churn_degree=0.5, churn_kills_tasks=True, checkpoint_enabled=True,
        trace_tasks=True,
    )
    sim = SOCSimulation(cfg)
    res = sim.run()
    sim.tracer.validate()
    assert len(sim.tracer.by_kind("recovered")) == res.recovered


def test_tracing_disabled_by_default():
    cfg = ExperimentConfig(n_nodes=25, duration=1500.0, seed=3)
    sim = SOCSimulation(cfg)
    sim.run()
    assert len(sim.tracer) == 0
