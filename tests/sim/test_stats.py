"""Unit tests for counters and time series."""

import pytest

from repro.sim.stats import Counter, TimeSeries


def test_counter_accumulates():
    c = Counter()
    c.add("a")
    c.add("a", 2.5)
    c.add("b")
    assert c.get("a") == 3.5
    assert c.get("b") == 1.0
    assert c.get("missing") == 0.0
    assert c.total() == 4.5


def test_counter_snapshot_sorted():
    c = Counter()
    c.add("zeta")
    c.add("alpha")
    assert list(c.snapshot()) == ["alpha", "zeta"]


def test_timeseries_append_and_iter():
    ts = TimeSeries("x")
    ts.append(0.0, 1.0)
    ts.append(1.0, 2.0)
    assert len(ts) == 2
    assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]
    assert ts.last() == 2.0


def test_timeseries_rejects_time_regression():
    ts = TimeSeries()
    ts.append(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.append(4.0, 2.0)


def test_timeseries_last_empty_raises():
    with pytest.raises(IndexError):
        TimeSeries().last()


def test_timeseries_as_dict_copies():
    ts = TimeSeries()
    ts.append(1.0, 2.0)
    d = ts.as_dict()
    d["times"].append(99.0)
    assert ts.times == [1.0]
