"""HostEngine vs the scalar reference path — behavioural equivalence.

The vectorized engine must be indistinguishable from one
:class:`repro.testing.ReferenceNodeExecutor` per host: identical
completion order (host and task ids exact, times within 1e-9) and
identical availabilities, across randomized place / remove / complete /
churn schedules and across full SOC scenario runs.
"""

import numpy as np
import pytest

from repro.cloud.engine import HostEngine
from repro.cloud.tasks import TaskFactory
from repro.testing import ReferenceHostEngine, assert_engines_equivalent


@pytest.mark.parametrize("seed", range(8))
def test_randomized_schedules_agree(seed):
    stats = assert_engines_equivalent(seed, n_hosts=12, steps=400)
    # the schedule must exercise every operation class, not trivially pass
    assert stats["placed"] > 50
    assert stats["completed"] > 30
    assert stats["removed"] > 0
    assert stats["evicted"] > 0
    assert stats["joined"] > 0


def test_randomized_schedule_without_churn():
    stats = assert_engines_equivalent(99, n_hosts=8, steps=250, churn=False)
    assert stats["evicted"] == 0 and stats["joined"] == 0


def test_compaction_preserves_equivalence(monkeypatch):
    """Force aggressive compaction so every schedule crosses the lazy
    row-squeeze path many times."""
    monkeypatch.setattr("repro.cloud.engine._COMPACT_FLOOR", 2)
    assert_engines_equivalent(7, n_hosts=6, steps=200)


def _make_pair(n_hosts=4, seed=3):
    rng = np.random.default_rng(seed)
    caps = rng.uniform(5.0, 50.0, size=(n_hosts, 5))
    vec, ref = HostEngine(), ReferenceHostEngine()
    ids = list(range(n_hosts))
    vec.add_hosts(ids, caps)
    ref.add_hosts(ids, caps)
    fa = TaskFactory(0.5, np.random.default_rng(seed + 1))
    fb = TaskFactory(0.5, np.random.default_rng(seed + 1))
    return vec, ref, fa, fb


def test_empty_engines_agree():
    vec, ref, _, _ = _make_pair()
    assert vec.peek() is None and ref.peek() is None
    for h in range(4):
        assert np.array_equal(vec.availability(h), ref.availability(h))
        assert vec.next_completion(h) is None and ref.next_completion(h) is None


def test_calendar_head_tracks_rescheduling():
    """Placing a second task stretches shares, so the head moves; both
    calendars must lazily invalidate the stale entry the same way."""
    vec, ref, fa, fb = _make_pair()
    vec.place(0, fa.create(0, 0.0), 0.0)
    ref.place(0, fb.create(0, 0.0), 0.0)
    first_vec, first_ref = vec.peek(), ref.peek()
    assert first_vec[1:] == first_ref[1:]
    vec.place(0, fa.create(0, 10.0), 10.0)
    ref.place(0, fb.create(0, 10.0), 10.0)
    head_vec, head_ref = vec.peek(), ref.peek()
    assert head_vec[1:] == head_ref[1:]
    assert head_vec[0] == pytest.approx(head_ref[0], abs=1e-9)


def test_availability_matrix_matches_per_host_reads():
    vec, ref, fa, fb = _make_pair()
    for h in range(4):
        vec.place(h, fa.create(h, 0.0), 0.0)
        ref.place(h, fb.create(h, 0.0), 0.0)
    ids = [2, 0, 3]
    mat = vec.availability_matrix(ids)
    assert np.allclose(mat, ref.availability_matrix(ids), atol=1e-9, rtol=0.0)
    for row, h in enumerate(ids):
        assert np.array_equal(mat[row], vec.availability(h))


def test_running_tasks_sync_remaining_work():
    """Engine-side progress must be visible on the Task objects that
    checkpointing snapshots."""
    vec, ref, fa, fb = _make_pair()
    ta, tb = fa.create(0, 0.0), fb.create(0, 0.0)
    vec.place(0, ta, 0.0)
    ref.place(0, tb, 0.0)
    vec.advance_all(100.0)
    ref.advance_all(100.0)
    (synced,) = vec.running_tasks(0)
    assert synced is ta
    assert np.allclose(ta.remaining_work, tb.remaining_work, atol=1e-9, rtol=0.0)
    assert np.all(ta.remaining_work < ta.work)  # progress actually happened


def test_busy_host_ids_tracks_residency():
    vec, ref, fa, fb = _make_pair()
    assert list(vec.busy_host_ids()) == list(ref.busy_host_ids()) == []
    for h in (2, 0):
        vec.place(h, fa.create(h, 0.0), 0.0)
        ref.place(h, fb.create(h, 0.0), 0.0)
    assert list(vec.busy_host_ids()) == list(ref.busy_host_ids())
    assert set(vec.busy_host_ids()) == {0, 2}
    for task in vec.evict_all(0, 1.0):
        ref.remove(0, task.task_id, 1.0)
    assert list(vec.busy_host_ids()) == list(ref.busy_host_ids()) == [2]


def test_add_hosts_batch_matches_incremental():
    rng = np.random.default_rng(8)
    caps = rng.uniform(5.0, 50.0, size=(40, 5))
    batch, single = HostEngine(), HostEngine()
    batch.add_hosts(list(range(40)), caps)
    for h in range(40):
        single.add_host(h, caps[h])
    assert batch.n_hosts == single.n_hosts == 40
    for h in range(40):
        assert np.array_equal(batch.availability(h), single.availability(h))
        assert np.array_equal(
            batch.effective_capacity(h), single.effective_capacity(h)
        )


def test_add_hosts_rejects_shape_mismatch_and_duplicates():
    eng = HostEngine()
    with pytest.raises(ValueError, match="capacity matrix"):
        eng.add_hosts([0, 1], np.ones((3, 5)))
    with pytest.raises(ValueError, match="duplicate host ids"):
        eng.add_hosts([0, 0], np.ones((2, 5)))
    eng.add_hosts([0, 1], np.ones((2, 5)))
    with pytest.raises(ValueError, match="already registered"):
        eng.add_hosts([2, 1], np.ones((2, 5)))
    # the failed batches must not have partially registered any host
    assert eng.n_hosts == 2
