"""Tests for checkpoint/restart fault tolerance (§VI future work)."""

import numpy as np
import pytest

from repro.cloud.checkpoint import CheckpointStore
from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation


def make_task(task_id=0, nominal=100.0):
    return Task(
        task_id=task_id,
        origin=0,
        demand=ResourceVector([2.0, 10.0, 1.0, 10.0, 100.0]),
        nominal_time=nominal,
        submit_time=0.0,
    )


# ----------------------------------------------------------------------
# store semantics
# ----------------------------------------------------------------------
def test_take_and_peek():
    store = CheckpointStore()
    task = make_task()
    task.remaining_work = np.array([100.0, 500.0, 50.0])
    snap = store.take(task, now=10.0)
    assert store.has(0)
    assert store.peek(0) is snap
    assert snap.taken_at == 10.0
    assert np.allclose(snap.remaining_work, [100.0, 500.0, 50.0])


def test_snapshot_is_isolated_from_task_progress():
    store = CheckpointStore()
    task = make_task()
    store.take(task, now=0.0)
    before = store.peek(0).remaining_work.copy()
    task.remaining_work -= 50.0  # progress after the snapshot
    assert np.allclose(store.peek(0).remaining_work, before)


def test_restore_rolls_back_to_snapshot():
    store = CheckpointStore()
    task = make_task()
    full = task.work.copy()
    task.remaining_work = full * 0.5
    store.take(task, now=100.0)
    task.remaining_work = full * 0.1  # more progress, then crash
    task.placed_node = 7
    task.start_time = 0.0
    assert store.restore(task)
    assert np.allclose(task.remaining_work, full * 0.5)  # post-snapshot work lost
    assert task.placed_node is None
    assert task.start_time is None
    assert store.restored == 1


def test_restore_without_snapshot_restarts_from_zero_progress():
    store = CheckpointStore()
    task = make_task()
    task.remaining_work = task.work * 0.2
    assert not store.restore(task)
    assert np.allclose(task.remaining_work, task.work)


def test_newer_snapshot_replaces_older():
    store = CheckpointStore()
    task = make_task()
    store.take(task, now=0.0)
    task.remaining_work = task.work * 0.3
    store.take(task, now=50.0)
    store.restore(task)
    assert np.allclose(task.remaining_work, task.work * 0.3)
    assert store.taken == 2


def test_forget_reclaims_archive():
    store = CheckpointStore()
    store.take(make_task(1), now=0.0)
    store.take(make_task(2), now=0.0)
    store.forget(1)
    store.forget(99)  # no-op
    assert len(store) == 1


# ----------------------------------------------------------------------
# end-to-end: recovery under killing churn
# ----------------------------------------------------------------------
CHURN_KILL = dict(
    n_nodes=60,
    duration=6000.0,
    demand_ratio=0.4,
    seed=9,
    churn_degree=0.5,
    churn_kills_tasks=True,
    protocol="hid-can",
)


def test_checkpointing_recovers_killed_tasks():
    with_cp = SOCSimulation(
        ExperimentConfig(**CHURN_KILL, checkpoint_enabled=True)
    ).run()
    assert with_cp.evicted > 0, "churn never killed a task; test is vacuous"
    assert with_cp.recovered > 0
    assert with_cp.traffic_by_kind.get("checkpoint", 0) > 0


def test_checkpointing_improves_throughput_under_killing_churn():
    without = SOCSimulation(ExperimentConfig(**CHURN_KILL)).run()
    with_cp = SOCSimulation(
        ExperimentConfig(**CHURN_KILL, checkpoint_enabled=True)
    ).run()
    assert without.recovered == 0
    # recovery must not lose tasks, and should finish at least as many
    assert with_cp.finished >= without.finished


def test_checkpointing_off_by_default():
    res = SOCSimulation(
        ExperimentConfig(n_nodes=30, duration=2000.0, seed=3)
    ).run()
    assert res.recovered == 0
    assert "checkpoint" not in res.traffic_by_kind
