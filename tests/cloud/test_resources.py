"""Unit and property tests for resource vector algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.resources import (
    N_DIMS,
    RESOURCE_DIMS,
    ResourceVector,
    dominates,
)

vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=N_DIMS,
    max_size=N_DIMS,
)


def test_canonical_dimension_order():
    assert RESOURCE_DIMS == ("cpu", "io", "net", "disk", "mem")


def test_of_requires_all_dims():
    with pytest.raises(ValueError, match="missing"):
        ResourceVector.of(cpu=1, io=2, net=3, disk=4)
    with pytest.raises(ValueError, match="unknown"):
        ResourceVector.of(cpu=1, io=2, net=3, disk=4, mem=5, gpu=6)


def test_wrong_length_rejected():
    with pytest.raises(ValueError):
        ResourceVector([1.0, 2.0])


def test_values_are_read_only():
    v = ResourceVector.zeros()
    with pytest.raises(ValueError):
        v.values[0] = 1.0


def test_indexing_by_name_and_position():
    v = ResourceVector.of(cpu=1, io=2, net=3, disk=4, mem=5)
    assert v["cpu"] == 1.0
    assert v[4] == 5.0
    assert v.as_dict() == {"cpu": 1.0, "io": 2.0, "net": 3.0, "disk": 4.0, "mem": 5.0}


def test_arithmetic():
    a = ResourceVector.of(cpu=4, io=40, net=8, disk=120, mem=2048)
    b = a.scaled(0.5)
    assert (a - b).values.tolist() == b.values.tolist()
    assert (b + b).values.tolist() == a.values.tolist()


def test_clipped_floors_negatives():
    v = ResourceVector([1.0, -2.0, 3.0, -4.0, 5.0]).clipped()
    assert v.values.tolist() == [1.0, 0.0, 3.0, 0.0, 5.0]


def test_normalized_maps_to_unit_box():
    cmax = ResourceVector.of(cpu=10, io=10, net=10, disk=10, mem=10)
    v = ResourceVector.of(cpu=5, io=20, net=0, disk=10, mem=1)
    norm = v.normalized(cmax)
    assert norm.tolist() == [0.5, 1.0, 0.0, 1.0, 0.1]  # clipped at 1


def test_equality_and_hash():
    a = ResourceVector([1, 2, 3, 4, 5])
    b = ResourceVector([1, 2, 3, 4, 5])
    c = ResourceVector([1, 2, 3, 4, 6])
    assert a == b and hash(a) == hash(b)
    assert a != c


@settings(max_examples=50, deadline=None)
@given(vectors)
def test_dominance_is_reflexive(values):
    v = np.asarray(values)
    assert dominates(v, v)


@settings(max_examples=50, deadline=None)
@given(vectors, vectors)
def test_dominance_is_antisymmetric_up_to_equality(a, b):
    a, b = np.asarray(a), np.asarray(b)
    if dominates(a, b) and dominates(b, a):
        assert np.allclose(a, b, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(vectors, vectors, vectors)
def test_dominance_is_transitive(a, b, c):
    a, b, c = np.asarray(a), np.asarray(b), np.asarray(c)
    # strict margins so float tolerance cannot break the chain
    if dominates(a, b + 1e-6) and dominates(b, c + 1e-6):
        assert dominates(a, c)


@settings(max_examples=50, deadline=None)
@given(vectors, vectors)
def test_dominates_matches_componentwise_definition(a, b):
    a, b = np.asarray(a), np.asarray(b)
    expected = bool(np.all(a >= b - 1e-9))
    assert dominates(a, b) == expected
