"""Stateful property test: the PSM executor under arbitrary operation
sequences conserves work and never violates share proportionality."""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cloud.executor import NodeExecutor
from repro.cloud.psm import VMOverhead
from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task

NO_OVERHEAD = VMOverhead(fractions=(0, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))


class ExecutorMachine(RuleBasedStateMachine):
    """Random interleavings of place/advance/remove/complete."""

    @initialize()
    def setup(self) -> None:
        self.capacity = np.array([10.0, 50.0, 5.0, 100.0, 1000.0])
        self.ex = NodeExecutor(self.capacity, NO_OVERHEAD)
        self.now = 0.0
        self.next_id = 0
        self.total_work_injected = np.zeros(3)

    # ------------------------------------------------------------------
    @rule(
        cpu=st.floats(min_value=0.5, max_value=8.0),
        io=st.floats(min_value=1.0, max_value=40.0),
        net=st.floats(min_value=0.1, max_value=4.0),
        nominal=st.floats(min_value=10.0, max_value=500.0),
    )
    def place(self, cpu, io, net, nominal):
        task = Task(
            task_id=self.next_id,
            origin=0,
            demand=ResourceVector([cpu, io, net, 1.0, 10.0]),
            nominal_time=nominal,
            submit_time=self.now,
        )
        self.next_id += 1
        self.total_work_injected += task.work
        self.ex.place(task, self.now)

    @rule(dt=st.floats(min_value=0.1, max_value=200.0))
    def advance(self, dt):
        self.now += dt
        self.ex.advance(self.now)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_one(self, pick):
        running = self.ex.running_tasks()
        if not running:
            return
        task = running[pick % len(running)]
        self.ex.remove(task.task_id, self.now)

    @rule()
    def complete_next(self):
        nxt = self.ex.next_completion()
        if nxt is None:
            return
        when, task = nxt
        if when < self.now:
            when = self.now
        self.now = when
        done = self.ex.complete(task.task_id, when)
        assert done.finish_time == when

    # ------------------------------------------------------------------
    @invariant()
    def remaining_work_nonnegative(self):
        if not hasattr(self, "ex"):
            return
        for task in self.ex.running_tasks():
            assert np.all(task.remaining_work >= -1e-9)

    @invariant()
    def remaining_never_exceeds_injected(self):
        if not hasattr(self, "ex"):
            return
        for task in self.ex.running_tasks():
            assert np.all(task.remaining_work <= task.work + 1e-6)

    @invariant()
    def shares_proportional_to_expectations(self):
        if not hasattr(self, "ex") or self.ex.n_running == 0:
            return
        self.ex._reshare()
        rates = {
            rt.task.task_id: rt.rates for rt in self.ex._running.values()
        }
        expectations = {
            rt.task.task_id: rt.task.expectation[:3]
            for rt in self.ex._running.values()
        }
        # r_j / e_j identical across tasks per dimension (Eq. 1)
        ratios = np.stack(
            [rates[tid] / expectations[tid] for tid in rates]
        )
        assert np.allclose(ratios, ratios[0], rtol=1e-9, atol=1e-12)

    @invariant()
    def allocation_never_exceeds_capacity(self):
        if not hasattr(self, "ex") or self.ex.n_running == 0:
            return
        total_rates = np.sum(
            [rt.rates for rt in self.ex._running.values()], axis=0
        )
        assert np.all(total_rates <= self.capacity[:3] + 1e-9)


TestExecutorStateful = ExecutorMachine.TestCase
TestExecutorStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
