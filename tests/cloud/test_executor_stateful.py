"""Stateful property test: the PSM execution substrate under arbitrary
operation sequences conserves work and never violates share
proportionality.

The machine drives the scalar :class:`ReferenceNodeExecutor` and a
single-host :class:`HostEngine` in lockstep (each gets its own copy of
every task): the PSM invariants are asserted on the scalar oracle, and an
extra invariant asserts the vectorized engine never drifts from it.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cloud.engine import HostEngine
from repro.cloud.psm import VMOverhead
from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task
from repro.testing import ReferenceNodeExecutor

NO_OVERHEAD = VMOverhead(fractions=(0, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))

HOST = 0


class ExecutorMachine(RuleBasedStateMachine):
    """Random interleavings of place/advance/remove/complete."""

    @initialize()
    def setup(self) -> None:
        self.capacity = np.array([10.0, 50.0, 5.0, 100.0, 1000.0])
        self.ex = ReferenceNodeExecutor(self.capacity, NO_OVERHEAD)
        self.engine = HostEngine(NO_OVERHEAD)
        self.engine.add_host(HOST, self.capacity)
        self.now = 0.0
        self.next_id = 0
        self.total_work_injected = np.zeros(3)

    def _make_task(self, cpu, io, net, nominal) -> Task:
        task = Task(
            task_id=self.next_id,
            origin=0,
            demand=ResourceVector([cpu, io, net, 1.0, 10.0]),
            nominal_time=nominal,
            submit_time=self.now,
        )
        return task

    # ------------------------------------------------------------------
    @rule(
        cpu=st.floats(min_value=0.5, max_value=8.0),
        io=st.floats(min_value=1.0, max_value=40.0),
        net=st.floats(min_value=0.1, max_value=4.0),
        nominal=st.floats(min_value=10.0, max_value=500.0),
    )
    def place(self, cpu, io, net, nominal):
        task = self._make_task(cpu, io, net, nominal)
        twin = self._make_task(cpu, io, net, nominal)
        self.next_id += 1
        self.total_work_injected += task.work
        self.ex.place(task, self.now)
        self.engine.place(HOST, twin, self.now)

    @rule(dt=st.floats(min_value=0.1, max_value=200.0))
    def advance(self, dt):
        self.now += dt
        self.ex.advance(self.now)
        self.engine.advance_all(self.now)

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove_one(self, pick):
        running = self.ex.running_tasks()
        if not running:
            return
        task = running[pick % len(running)]
        self.ex.remove(task.task_id, self.now)
        self.engine.remove(HOST, task.task_id, self.now)

    @rule()
    def complete_next(self):
        nxt = self.ex.next_completion()
        if nxt is None:
            return
        when, task = nxt
        eng_when, eng_task = self.engine.next_completion(HOST)
        if when > self.now:
            # Prediction ahead of the clock: both paths must agree exactly.
            assert eng_task.task_id == task.task_id
            assert abs(eng_when - when) <= 1e-9
        else:
            # The advance rule overshot the completion (the runner's event
            # discipline never does): the reference re-derives "due now"
            # while the engine's calendar kept the true earlier time — both
            # must agree the head is due, and completing the reference's
            # pick on both re-synchronizes the calendars.
            assert eng_when <= self.now + 1e-9
        when = max(when, self.now)
        self.now = when
        done = self.ex.complete(task.task_id, when)
        twin = self.engine.complete(HOST, task.task_id, when)
        assert done.finish_time == when
        assert twin.finish_time == when

    # ------------------------------------------------------------------
    @invariant()
    def remaining_work_nonnegative(self):
        if not hasattr(self, "ex"):
            return
        for task in self.ex.running_tasks():
            assert np.all(task.remaining_work >= -1e-9)

    @invariant()
    def remaining_never_exceeds_injected(self):
        if not hasattr(self, "ex"):
            return
        for task in self.ex.running_tasks():
            assert np.all(task.remaining_work <= task.work + 1e-6)

    @invariant()
    def shares_proportional_to_expectations(self):
        if not hasattr(self, "ex") or self.ex.n_running == 0:
            return
        self.ex._reshare()
        rates = {
            rt.task.task_id: rt.rates for rt in self.ex._running.values()
        }
        expectations = {
            rt.task.task_id: rt.task.expectation[:3]
            for rt in self.ex._running.values()
        }
        # r_j / e_j identical across tasks per dimension (Eq. 1)
        ratios = np.stack(
            [rates[tid] / expectations[tid] for tid in rates]
        )
        assert np.allclose(ratios, ratios[0], rtol=1e-9, atol=1e-12)

    @invariant()
    def allocation_never_exceeds_capacity(self):
        if not hasattr(self, "ex") or self.ex.n_running == 0:
            return
        total_rates = np.sum(
            [rt.rates for rt in self.ex._running.values()], axis=0
        )
        assert np.all(total_rates <= self.capacity[:3] + 1e-9)

    @invariant()
    def engine_matches_reference(self):
        if not hasattr(self, "ex"):
            return
        assert self.engine.n_running(HOST) == self.ex.n_running
        avail_ref = np.maximum(
            self.ex.effective_capacity() - self.ex.load(), 0.0
        )
        assert np.allclose(
            self.engine.availability(HOST), avail_ref, atol=1e-9, rtol=0.0
        )
        ref_rem = {
            t.task_id: t.remaining_work.copy() for t in self.ex.running_tasks()
        }
        for task in self.engine.running_tasks(HOST):
            assert np.allclose(
                task.remaining_work, ref_rem[task.task_id], atol=1e-6, rtol=1e-9
            )


TestExecutorStateful = ExecutorMachine.TestCase
TestExecutorStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
