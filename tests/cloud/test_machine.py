"""Unit tests for Table-I machine sampling."""

import numpy as np

from repro.cloud.machine import CMAX, CMAX_VECTOR, sample_machine
from repro.cloud.resources import RESOURCE_DIMS
from repro.cloud.tasks import demand_fits_cmax


def test_cmax_matches_table_one_maxima():
    assert CMAX_VECTOR.as_dict() == {
        "cpu": 25.6,
        "io": 80.0,
        "net": 10.0,
        "disk": 240.0,
        "mem": 4096.0,
    }


def test_demand_upper_bounds_equal_cmax():
    # Table II's demand ranges top out exactly at Table I's capacities.
    assert demand_fits_cmax()


def test_sampled_machines_within_table_one():
    rng = np.random.default_rng(0)
    for _ in range(200):
        m = sample_machine(rng, net_bandwidth_mbps=7.5)
        assert m.processors in (1, 2, 4, 8)
        assert m.rate_per_processor in (1.0, 2.0, 2.4, 3.2)
        assert m.io_speed in (20.0, 40.0, 60.0, 80.0)
        assert m.memory_size in (512.0, 1024.0, 2048.0, 4096.0)
        assert m.disk_size in (20.0, 60.0, 120.0, 240.0)
        cap = m.capacity
        assert np.all(cap.values <= CMAX + 1e-12)
        assert np.all(cap.values > 0)


def test_capacity_vector_layout():
    rng = np.random.default_rng(1)
    m = sample_machine(rng, net_bandwidth_mbps=6.0)
    cap = m.capacity
    assert cap["cpu"] == m.processors * m.rate_per_processor
    assert cap["net"] == 6.0
    assert list(cap.as_dict()) == list(RESOURCE_DIMS)


def test_all_configurations_reachable():
    rng = np.random.default_rng(2)
    procs = {sample_machine(rng, 5.0).processors for _ in range(500)}
    assert procs == {1, 2, 4, 8}
