"""Unit and property tests for the Table-II task model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.machine import CMAX
from repro.cloud.tasks import DEMAND_RANGES, Task, TaskFactory
from repro.cloud.resources import ResourceVector


def make_factory(lam=0.5, seed=0):
    return TaskFactory(lam, np.random.default_rng(seed))


def test_demand_ratio_validation():
    with pytest.raises(ValueError):
        TaskFactory(0.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        TaskFactory(1.5, np.random.default_rng(0))


@settings(max_examples=25, deadline=None)
@given(st.floats(min_value=0.05, max_value=1.0))
def test_demands_within_table_two_ranges(lam):
    fac = TaskFactory(lam, np.random.default_rng(1))
    for _ in range(20):
        d = fac.sample_demand().as_dict()
        for dim, (lo, hi) in DEMAND_RANGES.items():
            assert lo * lam - 1e-9 <= d[dim] <= hi * lam + 1e-9


def test_demand_never_exceeds_scaled_cmax():
    fac = make_factory(lam=0.25)
    for _ in range(100):
        assert np.all(fac.sample_demand().values <= 0.25 * CMAX + 1e-9)


def test_nominal_time_mean_is_3000s():
    fac = make_factory(lam=1.0, seed=3)
    times = [fac.sample_nominal_time() for _ in range(4000)]
    assert abs(np.mean(times) - 3000.0) < 100.0
    assert min(times) >= 0.2 * 3000.0
    assert max(times) <= 1.8 * 3000.0


def test_task_ids_increment():
    fac = make_factory()
    t1 = fac.create(0, 0.0)
    t2 = fac.create(1, 5.0)
    assert (t1.task_id, t2.task_id) == (0, 1)
    assert t2.origin == 1 and t2.submit_time == 5.0


def test_work_vector_is_demand_times_nominal():
    fac = make_factory()
    t = fac.create(0, 0.0)
    expected = t.demand.values[:3] * t.nominal_time
    assert np.allclose(t.work, expected)
    assert np.allclose(t.remaining_work, expected)


def test_expected_time_at_mean_capacity():
    t = Task(
        task_id=0,
        origin=0,
        demand=ResourceVector([2.0, 10.0, 1.0, 10.0, 100.0]),
        nominal_time=1000.0,
        submit_time=0.0,
    )
    mean_cap = np.array([4.0, 40.0, 4.0, 100.0, 1000.0])
    # work = (2000, 10000, 1000); rates (4, 40, 4) → times (500, 250, 250)
    assert t.expected_time(mean_cap) == pytest.approx(500.0)


def test_efficiency_requires_finished_task():
    fac = make_factory()
    t = fac.create(0, 0.0)
    with pytest.raises(ValueError):
        t.efficiency(np.ones(5))


def test_efficiency_is_expected_over_actual():
    t = Task(
        task_id=0,
        origin=0,
        demand=ResourceVector([2.0, 10.0, 1.0, 10.0, 100.0]),
        nominal_time=1000.0,
        submit_time=0.0,
    )
    t.start_time = 10.0
    t.finish_time = 1000.0
    mean_cap = np.array([4.0, 40.0, 4.0, 100.0, 1000.0])
    assert t.efficiency(mean_cap) == pytest.approx(500.0 / 1000.0)


def test_demand_upper_bound_helper():
    ub = TaskFactory.demand_upper_bound(0.5)
    assert np.allclose(ub, 0.5 * CMAX)
