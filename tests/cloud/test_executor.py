"""Unit tests for the event-driven PSM execution semantics.

Parametrized over both implementations: the scalar
:class:`repro.testing.ReferenceNodeExecutor` oracle and the vectorized
:class:`repro.cloud.engine.HostEngine` behind a single-host adapter — the
same behavioural contract must hold for either.
"""

import numpy as np
import pytest

from repro.cloud.engine import HostEngine
from repro.cloud.psm import VMOverhead
from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task
from repro.testing import ReferenceNodeExecutor

#: Zero overhead isolates the PSM arithmetic in timing tests.
NO_OVERHEAD = VMOverhead(fractions=(0, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))


class SingleHostEngine:
    """The one-host slice of :class:`HostEngine`, shaped like the scalar
    per-node executor so the same unit suite drives both."""

    def __init__(self, capacity, overhead):
        self._engine = HostEngine(overhead)
        self._engine.add_host(0, capacity)

    @property
    def n_running(self):
        return self._engine.n_running(0)

    def running_tasks(self):
        return self._engine.running_tasks(0)

    def load(self):
        return self._engine.load(0)

    def effective_capacity(self):
        return self._engine.effective_capacity(0)

    def availability(self, now):
        return self._engine.availability(0)

    def is_overloaded(self):
        return self._engine.is_overloaded(0)

    def advance(self, now):
        self._engine.advance_all(now)

    def place(self, task, now):
        self._engine.place(0, task, now)

    def remove(self, task_id, now):
        return self._engine.remove(0, task_id, now)

    def complete(self, task_id, now):
        return self._engine.complete(0, task_id, now)

    def next_completion(self):
        return self._engine.next_completion(0)


IMPLEMENTATIONS = {
    "reference": ReferenceNodeExecutor,
    "engine": SingleHostEngine,
}


@pytest.fixture(params=sorted(IMPLEMENTATIONS), ids=sorted(IMPLEMENTATIONS))
def impl(request):
    return IMPLEMENTATIONS[request.param]


def make_task(task_id, cpu=2.0, io=10.0, net=1.0, nominal=100.0):
    return Task(
        task_id=task_id,
        origin=0,
        demand=ResourceVector([cpu, io, net, 10.0, 100.0]),
        nominal_time=nominal,
        submit_time=0.0,
    )


def make_executor(impl, cpu=10.0, io=100.0, net=10.0, overhead=NO_OVERHEAD):
    return impl(np.array([cpu, io, net, 100.0, 1000.0]), overhead)


def test_single_task_alone_runs_faster_than_nominal(impl):
    # PSM grants the full capacity to a lone task: speedup = capacity/demand.
    ex = make_executor(impl, cpu=4.0, io=20.0, net=2.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0, nominal=100.0)
    ex.place(task, 0.0)
    when, t = ex.next_completion()
    assert t is task
    assert when == pytest.approx(50.0)  # 2× speedup on every dim
    done = ex.complete(0, when)
    assert done.finish_time == pytest.approx(50.0)


def test_task_at_exact_capacity_finishes_at_nominal(impl):
    ex = make_executor(impl, cpu=2.0, io=10.0, net=1.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0, nominal=100.0)
    ex.place(task, 0.0)
    when, _ = ex.next_completion()
    assert when == pytest.approx(100.0)


def test_oversubscription_stretches_completion(impl):
    ex = make_executor(impl, cpu=2.0, io=10.0, net=1.0)
    a = make_task(0, nominal=100.0)
    b = make_task(1, nominal=100.0)
    ex.place(a, 0.0)
    ex.place(b, 0.0)
    assert ex.is_overloaded()
    when, _ = ex.next_completion()
    # two identical tasks share capacity equal to one task's demand → 2×
    assert when == pytest.approx(200.0)


def test_shares_rescale_when_task_leaves(impl):
    ex = make_executor(impl, cpu=2.0, io=10.0, net=1.0)
    a = make_task(0, nominal=100.0)
    b = make_task(1, nominal=100.0)
    ex.place(a, 0.0)
    ex.place(b, 0.0)
    # at t=100 both are half done; remove b → a gets full capacity again
    ex.remove(1, 100.0)
    when, t = ex.next_completion()
    assert t is a
    assert when == pytest.approx(150.0)  # 50 units of work left at rate 1×


def test_availability_is_capacity_minus_load(impl):
    ex = make_executor(impl, cpu=10.0, io=100.0, net=10.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0)
    ex.place(task, 0.0)
    avail = ex.availability(0.0)
    assert avail[0] == pytest.approx(8.0)
    assert avail[1] == pytest.approx(90.0)


def test_availability_accounts_for_vm_overhead(impl):
    overhead = VMOverhead(fractions=(0.05, 0.10, 0.05, 0.0, 0.0), flat=(0, 0, 0, 0, 5.0))
    ex = make_executor(impl, cpu=10.0, io=100.0, net=10.0, overhead=overhead)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0)
    ex.place(task, 0.0)
    avail = ex.availability(0.0)
    assert avail[0] == pytest.approx(10.0 * 0.95 - 2.0)
    assert avail[1] == pytest.approx(100.0 * 0.90 - 10.0)
    assert avail[4] == pytest.approx(1000.0 - 5.0 - 100.0)


def test_availability_clamps_at_zero_when_overloaded(impl):
    ex = make_executor(impl, cpu=2.0, io=10.0, net=1.0)
    ex.place(make_task(0), 0.0)
    ex.place(make_task(1), 0.0)
    assert np.all(ex.availability(0.0) >= 0.0)


def test_progress_integrates_across_share_changes(impl):
    ex = make_executor(impl, cpu=4.0, io=20.0, net=2.0)
    a = make_task(0, nominal=100.0)  # alone: 2× speed
    ex.place(a, 0.0)
    b = make_task(1, nominal=100.0)
    ex.place(b, 25.0)  # a is half done; now they share at exactly 1×
    when, t = ex.next_completion()
    assert t is a
    assert when == pytest.approx(75.0)  # 50 work units left at rate 1.0
    ex.complete(0, when)
    when_b, t_b = ex.next_completion()
    assert t_b is b
    # b did 50 units by t=75, then runs at 2× → 25 more seconds
    assert when_b == pytest.approx(100.0)


def test_complete_rejects_unfinished_task(impl):
    ex = make_executor(impl)
    ex.place(make_task(0, nominal=1000.0), 0.0)
    with pytest.raises(RuntimeError, match="work left"):
        ex.complete(0, 1.0)


def test_double_place_rejected(impl):
    ex = make_executor(impl)
    ex.place(make_task(0), 0.0)
    with pytest.raises(ValueError):
        ex.place(make_task(0), 1.0)


def test_time_cannot_go_backwards(impl):
    ex = make_executor(impl)
    ex.place(make_task(0), 10.0)
    with pytest.raises(ValueError):
        ex.advance(5.0)


def test_stalled_task_has_no_completion(impl):
    # 20 VMs × 5% CPU overhead → zero effective CPU: the task stalls.
    overhead = VMOverhead(fractions=(0.05, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))
    ex = make_executor(impl, cpu=2.0, io=1000.0, net=100.0, overhead=overhead)
    for i in range(20):
        ex.place(make_task(i, cpu=0.1, io=1.0, net=0.1), 0.0)
    assert ex.next_completion() is None


def test_empty_executor(impl):
    ex = make_executor(impl)
    assert ex.next_completion() is None
    assert ex.n_running == 0
    assert not ex.is_overloaded()
    assert np.allclose(ex.load(), 0.0)
