"""Unit tests for the event-driven PSM executor."""

import numpy as np
import pytest

from repro.cloud.executor import NodeExecutor
from repro.cloud.psm import VMOverhead
from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task

#: Zero overhead isolates the PSM arithmetic in timing tests.
NO_OVERHEAD = VMOverhead(fractions=(0, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))


def make_task(task_id, cpu=2.0, io=10.0, net=1.0, nominal=100.0):
    return Task(
        task_id=task_id,
        origin=0,
        demand=ResourceVector([cpu, io, net, 10.0, 100.0]),
        nominal_time=nominal,
        submit_time=0.0,
    )


def make_executor(cpu=10.0, io=100.0, net=10.0, overhead=NO_OVERHEAD):
    return NodeExecutor(np.array([cpu, io, net, 100.0, 1000.0]), overhead)


def test_single_task_alone_runs_faster_than_nominal():
    # PSM grants the full capacity to a lone task: speedup = capacity/demand.
    ex = make_executor(cpu=4.0, io=20.0, net=2.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0, nominal=100.0)
    ex.place(task, 0.0)
    when, t = ex.next_completion()
    assert t is task
    assert when == pytest.approx(50.0)  # 2× speedup on every dim
    done = ex.complete(0, when)
    assert done.finish_time == pytest.approx(50.0)


def test_task_at_exact_capacity_finishes_at_nominal():
    ex = make_executor(cpu=2.0, io=10.0, net=1.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0, nominal=100.0)
    ex.place(task, 0.0)
    when, _ = ex.next_completion()
    assert when == pytest.approx(100.0)


def test_oversubscription_stretches_completion():
    ex = make_executor(cpu=2.0, io=10.0, net=1.0)
    a = make_task(0, nominal=100.0)
    b = make_task(1, nominal=100.0)
    ex.place(a, 0.0)
    ex.place(b, 0.0)
    assert ex.is_overloaded()
    when, _ = ex.next_completion()
    # two identical tasks share capacity equal to one task's demand → 2×
    assert when == pytest.approx(200.0)


def test_shares_rescale_when_task_leaves():
    ex = make_executor(cpu=2.0, io=10.0, net=1.0)
    a = make_task(0, nominal=100.0)
    b = make_task(1, nominal=100.0)
    ex.place(a, 0.0)
    ex.place(b, 0.0)
    # at t=100 both are half done; remove b → a gets full capacity again
    ex.remove(1, 100.0)
    when, t = ex.next_completion()
    assert t is a
    assert when == pytest.approx(150.0)  # 50 units of work left at rate 1×


def test_availability_is_capacity_minus_load():
    ex = make_executor(cpu=10.0, io=100.0, net=10.0)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0)
    ex.place(task, 0.0)
    avail = ex.availability(0.0)
    assert avail[0] == pytest.approx(8.0)
    assert avail[1] == pytest.approx(90.0)


def test_availability_accounts_for_vm_overhead():
    overhead = VMOverhead(fractions=(0.05, 0.10, 0.05, 0.0, 0.0), flat=(0, 0, 0, 0, 5.0))
    ex = make_executor(cpu=10.0, io=100.0, net=10.0, overhead=overhead)
    task = make_task(0, cpu=2.0, io=10.0, net=1.0)
    ex.place(task, 0.0)
    avail = ex.availability(0.0)
    assert avail[0] == pytest.approx(10.0 * 0.95 - 2.0)
    assert avail[1] == pytest.approx(100.0 * 0.90 - 10.0)
    assert avail[4] == pytest.approx(1000.0 - 5.0 - 100.0)


def test_availability_clamps_at_zero_when_overloaded():
    ex = make_executor(cpu=2.0, io=10.0, net=1.0)
    ex.place(make_task(0), 0.0)
    ex.place(make_task(1), 0.0)
    assert np.all(ex.availability(0.0) >= 0.0)


def test_progress_integrates_across_share_changes():
    ex = make_executor(cpu=4.0, io=20.0, net=2.0)
    a = make_task(0, nominal=100.0)  # alone: 2× speed
    ex.place(a, 0.0)
    b = make_task(1, nominal=100.0)
    ex.place(b, 25.0)  # a is half done; now they share at exactly 1×
    when, t = ex.next_completion()
    assert t is a
    assert when == pytest.approx(75.0)  # 50 work units left at rate 1.0
    ex.complete(0, when)
    when_b, t_b = ex.next_completion()
    assert t_b is b
    # b did 50 units by t=75, then runs at 2× → 25 more seconds
    assert when_b == pytest.approx(100.0)


def test_complete_rejects_unfinished_task():
    ex = make_executor()
    ex.place(make_task(0, nominal=1000.0), 0.0)
    with pytest.raises(RuntimeError, match="work left"):
        ex.complete(0, 1.0)


def test_double_place_rejected():
    ex = make_executor()
    ex.place(make_task(0), 0.0)
    with pytest.raises(ValueError):
        ex.place(make_task(0), 1.0)


def test_time_cannot_go_backwards():
    ex = make_executor()
    ex.place(make_task(0), 10.0)
    with pytest.raises(ValueError):
        ex.advance(5.0)


def test_stalled_task_has_no_completion():
    # 20 VMs × 5% CPU overhead → zero effective CPU: the task stalls.
    overhead = VMOverhead(fractions=(0.05, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))
    ex = make_executor(cpu=2.0, io=1000.0, net=100.0, overhead=overhead)
    for i in range(20):
        ex.place(make_task(i, cpu=0.1, io=1.0, net=0.1), 0.0)
    assert ex.next_completion() is None


def test_empty_executor():
    ex = make_executor()
    assert ex.next_completion() is None
    assert ex.n_running == 0
    assert not ex.is_overloaded()
    assert np.allclose(ex.load(), 0.0)
