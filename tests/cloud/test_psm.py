"""Unit tests for the proportional share model (Eq. 1).

The anchor test reproduces the paper's worked example verbatim (§II): three
tasks expecting {2 GFlops, 100 M}, {3, 200}, {4, 300} on a node with
capacity {13.5 GFlops, 1200 M} receive {3, 200}, {4.5, 400}, {6, 600}.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.psm import (
    VMOverhead,
    aggregate_load,
    allocate_shares,
    effective_capacity,
)


def _pad(cpu, mem):
    """The paper's example is 2-D; embed it in the canonical 5-dim layout
    (cpu, io, net, disk, mem) with inert middle dimensions."""
    return np.array([cpu, 1.0, 1.0, 1.0, mem])


def test_paper_worked_example():
    capacity = _pad(13.5, 1200.0)
    tasks = [_pad(2.0, 100.0), _pad(3.0, 200.0), _pad(4.0, 300.0)]
    shares = allocate_shares(capacity, tasks)
    assert shares[0][0] == pytest.approx(3.0)
    assert shares[0][4] == pytest.approx(200.0)
    assert shares[1][0] == pytest.approx(4.5)
    assert shares[1][4] == pytest.approx(400.0)
    assert shares[2][0] == pytest.approx(6.0)
    assert shares[2][4] == pytest.approx(600.0)


def test_shares_sum_to_capacity_on_loaded_dims():
    capacity = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
    tasks = [np.array([1.0, 2.0, 3.0, 4.0, 5.0]) * k for k in (1, 2, 3)]
    shares = allocate_shares(capacity, tasks)
    total = np.sum(shares, axis=0)
    assert np.allclose(total, capacity)


def test_no_tasks_no_shares():
    assert allocate_shares(np.ones(5), []) == []


def test_zero_load_dimension_allocates_zero():
    capacity = np.ones(5) * 10
    tasks = [np.array([1.0, 0.0, 0.0, 0.0, 0.0])]
    shares = allocate_shares(capacity, tasks)
    assert shares[0][0] == pytest.approx(10.0)
    assert np.all(shares[0][1:] == 0.0)


def test_undersubscribed_tasks_get_at_least_expectation():
    capacity = np.ones(5) * 100
    tasks = [np.ones(5) * 10, np.ones(5) * 20]
    shares = allocate_shares(capacity, tasks)
    for share, task in zip(shares, tasks):
        assert np.all(share >= task)


def test_oversubscribed_tasks_get_less_than_expectation():
    capacity = np.ones(5) * 10
    tasks = [np.ones(5) * 10, np.ones(5) * 20]
    shares = allocate_shares(capacity, tasks)
    for share, task in zip(shares, tasks):
        assert np.all(share < task)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.lists(
            st.floats(min_value=0.1, max_value=100.0),
            min_size=5,
            max_size=5,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_share_conservation_property(task_vectors):
    capacity = np.ones(5) * 50.0
    tasks = [np.asarray(t) for t in task_vectors]
    shares = allocate_shares(capacity, tasks)
    assert np.allclose(np.sum(shares, axis=0), capacity)
    # shares are proportional: r_j / e_j identical across tasks per dim
    ratios = np.stack([s / t for s, t in zip(shares, tasks)])
    assert np.allclose(ratios, ratios[0])


def test_aggregate_load_sums_expectations():
    tasks = [np.ones(5), np.ones(5) * 2]
    assert np.allclose(aggregate_load(tasks), np.ones(5) * 3)
    assert np.allclose(aggregate_load([]), np.zeros(5))


# ----------------------------------------------------------------------
# VM maintenance overhead (§IV-A: 5% cpu, 10% io, 5% net, 5 MB memory)
# ----------------------------------------------------------------------
def test_effective_capacity_paper_overheads():
    capacity = np.array([10.0, 100.0, 10.0, 240.0, 1000.0])
    eff = effective_capacity(capacity, n_vms=2)
    assert eff[0] == pytest.approx(10.0 * 0.90)  # 2 × 5% cpu
    assert eff[1] == pytest.approx(100.0 * 0.80)  # 2 × 10% io
    assert eff[2] == pytest.approx(10.0 * 0.90)  # 2 × 5% net
    assert eff[3] == pytest.approx(240.0)  # disk free
    assert eff[4] == pytest.approx(1000.0 - 10.0)  # 2 × 5 MB


def test_effective_capacity_zero_vms_is_identity():
    capacity = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    assert np.allclose(effective_capacity(capacity, 0), capacity)


def test_effective_capacity_clamps_at_zero():
    capacity = np.array([10.0, 10.0, 10.0, 10.0, 10.0])
    eff = effective_capacity(capacity, n_vms=50)
    assert np.all(eff >= 0.0)
    assert eff[0] == 0.0  # 50 VMs × 5% >= 100%


def test_custom_overhead():
    overhead = VMOverhead(fractions=(0.5, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))
    capacity = np.ones(5) * 8
    eff = effective_capacity(capacity, 1, overhead)
    assert eff[0] == pytest.approx(4.0)
    assert np.allclose(eff[1:], 8.0)


def test_effective_capacity_batch_matches_scalar_rows():
    """The batch form is row-for-row the scalar function, bit-for-bit."""
    from repro.cloud.psm import effective_capacity_batch

    rng = np.random.default_rng(9)
    caps = rng.uniform(1.0, 100.0, size=(50, 5))
    n_vms = rng.integers(0, 30, size=50)
    batch = effective_capacity_batch(caps, n_vms)
    for row in range(50):
        expected = effective_capacity(caps[row], int(n_vms[row]))
        assert np.array_equal(batch[row], expected)


def test_effective_capacity_batch_custom_overhead():
    from repro.cloud.psm import effective_capacity_batch

    overhead = VMOverhead(fractions=(0.5, 0, 0, 0, 0), flat=(0, 0, 0, 0, 0))
    caps = np.ones((3, 5)) * 8
    batch = effective_capacity_batch(caps, np.array([1, 2, 0]), overhead)
    assert batch[0][0] == pytest.approx(4.0)
    assert batch[1][0] == pytest.approx(0.0)
    assert np.allclose(batch[2], 8.0)
