"""Unit tests for the Poisson workload generator."""

import numpy as np

from repro.cloud.tasks import TaskFactory
from repro.cloud.workload import PoissonWorkload
from repro.sim.engine import Simulator


def make_workload(mean=100.0, seed=0):
    factory = TaskFactory(0.5, np.random.default_rng(seed))
    return PoissonWorkload(factory, np.random.default_rng(seed + 1), mean)


def test_arrival_count_matches_rate():
    sim = Simulator()
    wl = make_workload(mean=100.0)
    tasks = []
    for node in range(20):
        wl.start_node(node, sim, tasks.append, lambda n: True)
    sim.run(until=10_000.0)
    # 20 nodes × 10000/100 = 2000 expected arrivals; allow 4 sigma.
    assert abs(len(tasks) - 2000) < 4 * np.sqrt(2000)
    assert wl.generated == len(tasks)


def test_tasks_carry_origin_and_submit_time():
    sim = Simulator()
    wl = make_workload(mean=50.0)
    tasks = []
    wl.start_node(7, sim, tasks.append, lambda n: True)
    sim.run(until=1000.0)
    assert tasks
    for t in tasks:
        assert t.origin == 7
        assert 0 < t.submit_time <= 1000.0
    assert [t.submit_time for t in tasks] == sorted(t.submit_time for t in tasks)


def test_arrivals_stop_when_node_dies():
    sim = Simulator()
    wl = make_workload(mean=10.0)
    alive = {"up": True}
    tasks = []
    wl.start_node(0, sim, tasks.append, lambda n: alive["up"])
    sim.schedule(500.0, lambda: alive.__setitem__("up", False))
    sim.run(until=5000.0)
    assert tasks
    assert all(t.submit_time <= 500.0 for t in tasks)


def test_independent_nodes_have_different_arrivals():
    sim = Simulator()
    wl = make_workload(mean=100.0)
    times = {0: [], 1: []}
    wl.start_node(0, sim, lambda t: times[0].append(t.submit_time), lambda n: True)
    wl.start_node(1, sim, lambda t: times[1].append(t.submit_time), lambda n: True)
    sim.run(until=2000.0)
    assert times[0] != times[1]
