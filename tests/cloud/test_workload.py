"""Unit tests for the Poisson workload generator and the skewed
(Zipf-popularity, heavy-tailed-width) demand samplers behind the
hot-range scenario (docs/caching.md)."""

import numpy as np
import pytest

from repro.cloud.tasks import TaskFactory, demand_bounds
from repro.cloud.workload import (
    BoundedParetoSampler,
    PoissonWorkload,
    SkewedTaskFactory,
    ZipfRankSampler,
)
from repro.sim.engine import Simulator


def make_workload(mean=100.0, seed=0):
    factory = TaskFactory(0.5, np.random.default_rng(seed))
    return PoissonWorkload(factory, np.random.default_rng(seed + 1), mean)


def test_arrival_count_matches_rate():
    sim = Simulator()
    wl = make_workload(mean=100.0)
    tasks = []
    for node in range(20):
        wl.start_node(node, sim, tasks.append, lambda n: True)
    sim.run(until=10_000.0)
    # 20 nodes × 10000/100 = 2000 expected arrivals; allow 4 sigma.
    assert abs(len(tasks) - 2000) < 4 * np.sqrt(2000)
    assert wl.generated == len(tasks)


def test_tasks_carry_origin_and_submit_time():
    sim = Simulator()
    wl = make_workload(mean=50.0)
    tasks = []
    wl.start_node(7, sim, tasks.append, lambda n: True)
    sim.run(until=1000.0)
    assert tasks
    for t in tasks:
        assert t.origin == 7
        assert 0 < t.submit_time <= 1000.0
    assert [t.submit_time for t in tasks] == sorted(t.submit_time for t in tasks)


def test_arrivals_stop_when_node_dies():
    sim = Simulator()
    wl = make_workload(mean=10.0)
    alive = {"up": True}
    tasks = []
    wl.start_node(0, sim, tasks.append, lambda n: alive["up"])
    sim.schedule(500.0, lambda: alive.__setitem__("up", False))
    sim.run(until=5000.0)
    assert tasks
    assert all(t.submit_time <= 500.0 for t in tasks)


def test_independent_nodes_have_different_arrivals():
    sim = Simulator()
    wl = make_workload(mean=100.0)
    times = {0: [], 1: []}
    wl.start_node(0, sim, lambda t: times[0].append(t.submit_time), lambda n: True)
    wl.start_node(1, sim, lambda t: times[1].append(t.submit_time), lambda n: True)
    sim.run(until=2000.0)
    assert times[0] != times[1]


# ----------------------------------------------------------------------
# Zipf / bounded-Pareto samplers
# ----------------------------------------------------------------------
def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfRankSampler(-0.1, 10)
    with pytest.raises(ValueError):
        ZipfRankSampler(1.0, 0)


def test_zipf_skews_toward_low_ranks():
    sampler = ZipfRankSampler(1.0, 64)
    rng = np.random.default_rng(0)
    draws = np.array([sampler.draw(rng) for _ in range(5000)])
    assert draws.min() >= 0 and draws.max() <= 63
    counts = np.bincount(draws, minlength=64)
    # Zipf s=1 over 64 ranks: rank 0 carries ~21% of the mass, the top
    # quarter ~70%.
    assert counts[0] > counts[16] > counts[-1]
    assert counts[:16].sum() > 0.6 * len(draws)


def test_zipf_s_zero_is_uniform():
    sampler = ZipfRankSampler(0.0, 8)
    rng = np.random.default_rng(1)
    draws = np.array([sampler.draw(rng) for _ in range(8000)])
    counts = np.bincount(draws, minlength=8)
    assert counts.min() > 800  # each rank ~1000 ± noise


def test_bounded_pareto_validation():
    with pytest.raises(ValueError):
        BoundedParetoSampler(0.0, 0.1, 0.5)
    with pytest.raises(ValueError):
        BoundedParetoSampler(1.5, 0.5, 0.1)


def test_bounded_pareto_range_and_tail():
    sampler = BoundedParetoSampler(1.5, 0.02, 0.5)
    rng = np.random.default_rng(2)
    draws = np.array([sampler.draw(rng) for _ in range(5000)])
    assert draws.min() >= 0.02 and draws.max() <= 0.5
    # Heavy-tailed: the median hugs the floor, yet the tail reaches deep.
    assert np.median(draws) < 0.05
    assert draws.max() > 0.3


def test_samplers_consume_one_uniform_per_draw():
    # The RNG-stream-stability contract: a draw advances the stream by
    # exactly one uniform, so sampler internals can change freely without
    # moving any downstream draw.
    r1 = np.random.default_rng(3)
    r2 = np.random.default_rng(3)
    ZipfRankSampler(1.0, 16).draw(r1)
    BoundedParetoSampler(1.5, 0.02, 0.5).draw(r1)
    r2.uniform()
    r2.uniform()
    assert r1.uniform() == r2.uniform()


# ----------------------------------------------------------------------
# SkewedTaskFactory
# ----------------------------------------------------------------------
def test_skewed_demands_stay_in_table_ii_box():
    factory = SkewedTaskFactory(0.5, np.random.default_rng(4))
    lo, hi = demand_bounds(0.5)
    for _ in range(200):
        demand = factory.sample_demand().values
        assert np.all(demand >= lo - 1e-12) and np.all(demand <= hi + 1e-12)


def test_skewed_demands_cluster_on_hot_prototypes():
    factory = SkewedTaskFactory(
        0.5, np.random.default_rng(5), zipf_s=1.2, hot_ranges=8
    )
    lo, hi = demand_bounds(0.5)
    extent = hi - lo
    demands = np.array([factory.sample_demand().values for _ in range(400)])
    # Most draws sit within half the box extent of their nearest
    # prototype — the workload is clustered, not uniform.
    dist = np.abs(demands[:, None, :] - factory._prototypes[None, :, :]) / extent
    nearest = dist.max(axis=2).min(axis=1)
    assert np.median(nearest) < 0.25


def test_skewed_factory_rng_stream_is_stable():
    # Same seed ⇒ same demand stream, and exactly three generator calls
    # per draw: a manual replay of the documented draw sequence matches.
    factory = SkewedTaskFactory(
        0.5, np.random.default_rng(6), zipf_s=1.0, hot_ranges=16
    )
    rng = np.random.default_rng(6)
    TaskFactory(0.5, rng)  # superclass init consumes nothing
    lo, hi = demand_bounds(0.5)
    prototypes = rng.uniform(lo, hi, size=(16, lo.shape[0]))
    assert np.array_equal(prototypes, factory._prototypes)
    rank_sampler = ZipfRankSampler(1.0, 16)
    width_sampler = BoundedParetoSampler(1.5, 0.02, 0.5)
    for _ in range(50):
        demand = factory.sample_demand().values
        rank = rank_sampler.draw(rng)
        width = width_sampler.draw(rng)
        jitter = rng.uniform(-0.5, 0.5, size=lo.shape[0])
        expected = np.clip(prototypes[rank] + jitter * width * (hi - lo), lo, hi)
        assert np.array_equal(demand, expected)


def test_skewed_factory_nominal_times_inherited():
    factory = SkewedTaskFactory(
        0.5, np.random.default_rng(7), mean_nominal_time=3000.0
    )
    task = factory.create(origin=3, submit_time=12.0)
    assert task.origin == 3
    assert task.nominal_time > 0
    assert task.demand.values.shape == demand_bounds(0.5)[0].shape
