"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.can.overlay import CANOverlay
from repro.sim.rng import RngRegistry


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def rng(rngs: RngRegistry) -> np.random.Generator:
    return rngs.stream("test")


def make_overlay(n: int, dims: int, seed: int = 0) -> CANOverlay:
    """A bootstrapped overlay with node ids 0..n-1."""
    overlay = CANOverlay(dims, np.random.default_rng(seed))
    overlay.bootstrap(range(n))
    return overlay


@pytest.fixture
def overlay_2d() -> CANOverlay:
    return make_overlay(32, 2, seed=7)


@pytest.fixture
def overlay_5d() -> CANOverlay:
    return make_overlay(64, 5, seed=7)
