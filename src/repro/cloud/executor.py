"""Event-driven proportional-share task executor (the emulated credit
scheduler of §IV-A).

Shares are piecewise constant between *scheduling points* (a task placement
or completion on the node).  The executor integrates work progress between
points, recomputes PSM shares after every change, and predicts the next
completion time so the simulation can schedule exactly one event per
completion — the same event-count discipline Peersim's event-driven mode
gives the paper.

The executor itself is simulation-agnostic: callers drive it with absolute
timestamps and read back the predicted next completion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cloud.psm import VMOverhead, DEFAULT_OVERHEAD, effective_capacity
from repro.cloud.tasks import Task, N_WORK_DIMS

__all__ = ["NodeExecutor", "RunningTask"]

#: Work below this is treated as done (guards float round-off at completion).
_WORK_EPS = 1e-6


@dataclass(slots=True)
class RunningTask:
    """A resident task plus its current progress rates on the work dims."""

    task: Task
    rates: np.ndarray  # (3,) work units per second


class NodeExecutor:
    """Executes tasks on one host under PSM sharing.

    Usage pattern (driven by the simulation runner)::

        ex.place(task, now)           # or ex.remove(task_id, now)
        t, task = ex.next_completion()
        ... schedule completion event at t ...
        done = ex.complete(task_id, t)
    """

    def __init__(self, capacity: np.ndarray, overhead: VMOverhead = DEFAULT_OVERHEAD):
        self.capacity = np.asarray(capacity, dtype=np.float64)
        self.overhead = overhead
        self._running: dict[int, RunningTask] = {}
        self._last_update = 0.0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_running(self) -> int:
        return len(self._running)

    def running_tasks(self) -> list[Task]:
        return [rt.task for rt in self._running.values()]

    def load(self) -> np.ndarray:
        """``l_i`` — aggregated expectation of resident tasks (§II)."""
        if not self._running:
            return np.zeros_like(self.capacity)
        return np.sum([rt.task.expectation for rt in self._running.values()], axis=0)

    def effective_capacity(self) -> np.ndarray:
        return effective_capacity(self.capacity, len(self._running), self.overhead)

    def availability(self, now: float) -> np.ndarray:
        """``a_i = c_i − l_i`` clipped at zero, with capacity first reduced
        by the VM maintenance overhead of the resident instances."""
        self.advance(now)
        avail = self.effective_capacity() - self.load()
        return np.maximum(avail, 0.0)

    def is_overloaded(self) -> bool:
        """True when some dimension is over-subscribed (shares < demand)."""
        if not self._running:
            return False
        load = self.load()
        eff = self.effective_capacity()
        return bool(np.any(load > eff + 1e-12))

    # ------------------------------------------------------------------
    # progress integration
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate all running tasks' progress up to ``now``."""
        dt = now - self._last_update
        if dt < 0:
            raise ValueError(f"time went backwards: {now} < {self._last_update}")
        if dt > 0:
            for rt in self._running.values():
                rt.task.remaining_work -= rt.rates * dt
                np.maximum(rt.task.remaining_work, 0.0, out=rt.task.remaining_work)
        self._last_update = now

    def _reshare(self) -> None:
        """Recompute PSM shares and per-task progress rates (Eq. 1)."""
        if not self._running:
            return
        eff = self.effective_capacity()
        load = self.load()
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(load > 0, eff / load, 0.0)[:N_WORK_DIMS]
        for rt in self._running.values():
            rt.rates = rt.task.expectation[:N_WORK_DIMS] * scale

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, task: Task, now: float) -> None:
        """Admit ``task``; all resident shares are re-computed."""
        if task.task_id in self._running:
            raise ValueError(f"task {task.task_id} already running here")
        self.advance(now)
        task.start_time = now
        self._running[task.task_id] = RunningTask(task, np.zeros(N_WORK_DIMS))
        self._reshare()

    def remove(self, task_id: int, now: float) -> Task:
        """Evict a task (e.g. node churned out); returns it unfinished."""
        self.advance(now)
        rt = self._running.pop(task_id)
        self._reshare()
        return rt.task

    def complete(self, task_id: int, now: float) -> Task:
        """Finish a task whose predicted completion time has arrived."""
        self.advance(now)
        rt = self._running.pop(task_id)
        if float(rt.task.remaining_work.max()) > 1e-3:
            raise RuntimeError(
                f"task {task_id} completed with work left: {rt.task.remaining_work}"
            )
        rt.task.remaining_work[:] = 0.0
        rt.task.finish_time = now
        self._reshare()
        return rt.task

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def next_completion(self) -> Optional[tuple[float, Task]]:
        """``(time, task)`` of the earliest finishing resident task under the
        *current* shares, or ``None``.  Must be re-queried after any
        place/remove/complete since shares shift at every scheduling point.
        """
        best: Optional[tuple[float, Task]] = None
        for rt in self._running.values():
            t = self._time_to_finish(rt)
            if t is None:
                continue
            when = self._last_update + t
            if best is None or when < best[0]:
                best = (when, rt.task)
        return best

    @staticmethod
    def _time_to_finish(rt: RunningTask) -> Optional[float]:
        remaining = rt.task.remaining_work
        rates = rt.rates
        # A dimension with leftover work but zero rate stalls the task.
        stalled = (remaining > _WORK_EPS) & (rates <= 0)
        if bool(stalled.any()):
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            per_dim = np.where(remaining > _WORK_EPS, remaining / rates, 0.0)
        return float(per_dim.max())
