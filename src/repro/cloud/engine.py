"""Vectorized host-execution engine: one SoA PSM engine for every host.

The seed kept one :class:`NodeExecutor` object per host — a Python dict of
``RunningTask`` records, re-walked on every availability probe, placement,
completion and checkpoint tick.  At paper scale (2000 nodes, one simulated
day) the resident-task backlog makes those per-host Python loops the hot
path of the whole simulation.  This engine replaces the per-host object
graph with structure-of-arrays state shared by *all* hosts:

- **host arrays** — capacities, effective capacities, aggregated loads and
  availabilities in ``(H, d)`` float64 matrices, VM counts and progress
  timestamps in flat arrays;
- **task arrays** — remaining work, progress rates, expectation vectors,
  owning-host rows and a liveness bit in ``(M, ·)`` arrays with lazy
  compaction (completion/eviction only flips the bit; rows are squeezed out
  once dead rows outnumber the live ones, preserving insertion order — the
  same discipline as :class:`repro.core.state.StateCache`);
- a **global completion calendar** — a lazy binary heap holding at most one
  live entry per host, rebuilt per host from the vectorized next-completion
  prediction, so the simulation schedules exactly one event for the
  globally-earliest completion instead of juggling one handle per host.

Shares are piecewise constant between *scheduling points* (a placement,
eviction or completion on the node), so a host's arrays change only at its
own scheduling points — every mutation advances, re-shares (Eq. 1) and
re-predicts **only the dirty host**, as a handful of array ops over that
host's task rows.  Availability (``a_i = c_i − l_i`` clipped at zero, with
capacity first reduced by the per-VM maintenance overhead) does not depend
on task progress at all, so between scheduling points it is served straight
from the cached ``(H, d)`` matrix without integrating anything.

The arithmetic (operation order included) mirrors the scalar executor
exactly; :class:`repro.testing.ReferenceNodeExecutor` is kept verbatim as
the behavioural oracle and ``tests/cloud/test_engine_equivalence.py``
drives randomized schedules through both.

The engine is simulation-agnostic: callers drive it with absolute
timestamps and read back the calendar head.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

import numpy as np

from repro.cloud.psm import DEFAULT_OVERHEAD, VMOverhead, effective_capacity_batch
from repro.cloud.tasks import N_WORK_DIMS, Task

__all__ = ["HostEngine"]

#: Work below this is treated as done (guards float round-off at completion).
_WORK_EPS = 1e-6

#: Initial row capacity of the SoA arrays.
_MIN_CAPACITY = 8

#: Compact once dead task rows outnumber both this floor and the live rows.
_COMPACT_FLOOR = 64


class HostEngine:
    """Executes every host's resident tasks under PSM sharing.

    Usage pattern (driven by the simulation runner)::

        eng.add_host(node_id, capacity)
        eng.place(node_id, task, now)         # or eng.remove / eng.evict_all
        head = eng.peek()                     # (when, host_id, task_id)
        ... schedule one event at head.when ...
        done = eng.complete(host_id, task_id, when)
    """

    def __init__(
        self, overhead: VMOverhead = DEFAULT_OVERHEAD, compact: bool = False
    ):
        self.overhead = overhead
        self._frac, self._flat = overhead.arrays()
        #: Resource dimensionality, fixed by the overhead model's vectors.
        dims = self.dims = int(self._frac.shape[0])
        #: ``compact`` stores the per-host capacity/load/availability
        #: matrices in float32 and the id-like arrays in int32, halving
        #: the storage that actually scales with population.  Availability
        #: screens then run in float32 precision (opt-in; Table-I/II
        #: magnitudes fit comfortably).  The per-task work arrays stay
        #: float64 even in compact mode: they are bounded by concurrent
        #: tasks, not population, and completion-time prediction needs
        #: residuals to integrate to ~0 exactly at the predicted instant.
        #: Absolute timestamps (``_last``, ``_next_when``) and the
        #: calendar generation stamps stay 64-bit regardless — event
        #: ordering must not lose sub-second resolution late in a long
        #: horizon.
        self.compact = compact
        fdt = np.float32 if compact else np.float64
        idt = np.int32 if compact else np.int64
        self._float = fdt
        self._int = idt

        # --- host SoA -------------------------------------------------
        self._host_row: dict[int, int] = {}
        self._host_ids: list[int] = []
        self._cap = np.empty((0, dims), dtype=fdt)
        self._eff = np.empty((0, dims), dtype=fdt)
        self._load = np.empty((0, dims), dtype=fdt)
        self._avail = np.empty((0, dims), dtype=fdt)
        self._nrun = np.empty(0, dtype=idt)
        self._last = np.empty(0, dtype=np.float64)  # last progress integration
        self._host_tasks: list[list[int]] = []  # host row -> task rows, in order
        self._h_n = 0

        # --- task SoA -------------------------------------------------
        self._task_row: dict[int, int] = {}
        self._tasks: list[Optional[Task]] = []  # task row -> Task (None = dead)
        self._t_rem = np.empty((0, N_WORK_DIMS), dtype=np.float64)
        self._t_rates = np.empty((0, N_WORK_DIMS), dtype=np.float64)
        self._t_exp = np.empty((0, dims), dtype=np.float64)
        self._t_host = np.empty(0, dtype=idt)
        self._t_live = np.empty(0, dtype=bool)
        self._t_n = 0
        self._t_dead = 0

        # --- completion calendar -------------------------------------
        # One live heap entry per host; staleness is detected by comparing
        # the entry's generation stamp against the host's current one.
        self._heap: list[tuple[float, int, int]] = []  # (when, gen, host row)
        self._gen = np.empty(0, dtype=np.int64)
        self._next_when = np.empty(0, dtype=np.float64)
        self._next_row = np.empty(0, dtype=np.int64)  # predicted task row
        self._gen_counter = 0

    # ------------------------------------------------------------------
    # storage management
    # ------------------------------------------------------------------
    def _grow_hosts(self, need: int) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._h_n, need)
        n = self._h_n
        for name in ("_cap", "_eff", "_load", "_avail"):
            old = getattr(self, name)
            fresh = np.zeros((capacity, self.dims), dtype=self._float)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)
        for name, dtype, fill in (
            ("_nrun", self._int, 0),
            ("_last", np.float64, 0.0),
            ("_gen", np.int64, 0),
            ("_next_when", np.float64, np.inf),
            ("_next_row", np.int64, -1),
        ):
            old = getattr(self, name)
            fresh = np.full(capacity, fill, dtype=dtype)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)

    def _grow_tasks(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._t_n)
        n = self._t_n
        for name, shape in (
            ("_t_rem", (capacity, N_WORK_DIMS)),
            ("_t_rates", (capacity, N_WORK_DIMS)),
            ("_t_exp", (capacity, self.dims)),
        ):
            old = getattr(self, name)
            fresh = np.zeros(shape, dtype=np.float64)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)
        host = np.full(capacity, -1, dtype=self._int)
        host[:n] = self._t_host[:n]
        self._t_host = host
        live = np.zeros(capacity, dtype=bool)
        live[:n] = self._t_live[:n]
        self._t_live = live

    def _compact_tasks(self) -> None:
        """Squeeze out dead task rows, preserving insertion order."""
        keep = np.flatnonzero(self._t_live[: self._t_n])
        m = int(keep.size)
        if m:
            self._t_rem[:m] = self._t_rem[keep]
            self._t_rates[:m] = self._t_rates[keep]
            self._t_exp[:m] = self._t_exp[keep]
            self._t_host[:m] = self._t_host[keep]
        self._t_live[:m] = True
        self._t_live[m : self._t_n] = False
        tasks = [self._tasks[row] for row in keep]
        self._tasks[:] = tasks
        self._task_row = {task.task_id: row for row, task in enumerate(tasks)}
        # Remap every host's row list and calendar prediction.
        new_row = np.full(self._t_n, -1, dtype=np.int64)
        new_row[keep] = np.arange(m)
        for h in range(self._h_n):
            lst = self._host_tasks[h]
            if lst:
                lst[:] = [int(new_row[r]) for r in lst]
            if self._next_row[h] >= 0:
                self._next_row[h] = new_row[self._next_row[h]]
        self._t_n = m
        self._t_dead = 0

    def _maybe_compact(self) -> None:
        if self._t_dead > _COMPACT_FLOOR and self._t_dead > self._t_n - self._t_dead:
            self._compact_tasks()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_host(self, host_id: int, capacity: np.ndarray) -> None:
        """Register one host with capacity vector ``c_i`` (§II)."""
        capacity = np.asarray(capacity, dtype=np.float64)
        self.add_hosts([host_id], capacity[None, :])

    def add_hosts(self, host_ids: list[int], capacities: np.ndarray) -> None:
        """Bulk host registration — one ``(k, d)`` capacity matrix in, all
        host rows initialized with vectorized array fills."""
        capacities = np.asarray(capacities, dtype=np.float64)
        k = len(host_ids)
        if capacities.shape != (k, self.dims):
            raise ValueError(
                f"expected a ({k}, {self.dims}) capacity matrix, "
                f"got {capacities.shape}"
            )
        if len(set(host_ids)) != k:
            raise ValueError("duplicate host ids in batch")
        for host_id in host_ids:
            if host_id in self._host_row:
                raise ValueError(f"host {host_id} already registered")
        if self._h_n + k > self._cap.shape[0]:
            self._grow_hosts(self._h_n + k)
        rows = slice(self._h_n, self._h_n + k)
        for offset, host_id in enumerate(host_ids):
            self._host_row[host_id] = self._h_n + offset
            self._host_ids.append(host_id)
            self._host_tasks.append([])
        self._cap[rows] = capacities
        self._eff[rows] = effective_capacity_batch(
            capacities, np.zeros(k), self.overhead
        )
        self._load[rows] = 0.0
        self._avail[rows] = self._eff[rows]
        self._nrun[rows] = 0
        self._last[rows] = 0.0
        self._next_when[rows] = np.inf
        self._next_row[rows] = -1
        self._h_n += k

    @property
    def n_hosts(self) -> int:
        return self._h_n

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _row(self, host_id: int) -> int:
        return self._host_row[host_id]

    def n_running(self, host_id: int) -> int:
        return int(self._nrun[self._row(host_id)])

    def running_tasks(self, host_id: int) -> list[Task]:
        """Resident tasks in placement order.  Each task's
        ``remaining_work`` array is synchronized from the engine state, so
        callers (e.g. checkpointing) see current progress."""
        rows = self._host_tasks[self._row(host_id)]
        out = []
        for row in rows:
            task = self._tasks[row]
            task.remaining_work[:] = self._t_rem[row]
            out.append(task)
        return out

    def load(self, host_id: int) -> np.ndarray:
        """``l_i`` — aggregated expectation of resident tasks (§II)."""
        return self._load[self._row(host_id)].copy()

    def effective_capacity(self, host_id: int) -> np.ndarray:
        return self._eff[self._row(host_id)].copy()

    def availability(self, host_id: int) -> np.ndarray:
        """``a_i = c_i − l_i`` clipped at zero, with capacity first reduced
        by the VM maintenance overhead of the resident instances.  Served
        from the cached matrix: availability only changes at the host's own
        scheduling points, never with mere time passage."""
        return self._avail[self._row(host_id)].copy()

    def availability_matrix(self, host_ids: list[int]) -> np.ndarray:
        """``(k, d)`` availabilities for many hosts in one gather."""
        rows = [self._host_row[h] for h in host_ids]
        return self._avail[rows]

    def is_overloaded(self, host_id: int) -> bool:
        """True when some dimension is over-subscribed (shares < demand)."""
        row = self._row(host_id)
        if not self._nrun[row]:
            return False
        return bool(np.any(self._load[row] > self._eff[row] + 1e-12))

    def busy_host_ids(self) -> Iterator[int]:
        """Host ids with at least one resident task."""
        for row in np.flatnonzero(self._nrun[: self._h_n] > 0).tolist():
            yield self._host_ids[row]

    def mean_utilization(self) -> float:
        """Mean fraction of effective capacity in use across all hosts and
        dimensions, in one vectorized pass over the cached SoA matrices —
        no per-host iteration, so it is safe on the metrics sampling path
        at 10^5 hosts."""
        n = self._h_n
        if not n:
            return 0.0
        eff = self._eff[:n]
        load = self._load[:n]
        with np.errstate(divide="ignore", invalid="ignore"):
            util = np.where(eff > 0.0, load / eff, 0.0)
        np.clip(util, 0.0, 1.0, out=util)
        return float(util.mean())

    # ------------------------------------------------------------------
    # memory budget
    # ------------------------------------------------------------------
    def footprint_bytes(self) -> int:
        """Bytes held by the SoA arrays (the dominant storage; the Python
        task list and calendar heap are small by comparison)."""
        total = 0
        for name in (
            "_cap", "_eff", "_load", "_avail", "_nrun", "_last",
            "_gen", "_next_when", "_next_row",
            "_t_rem", "_t_rates", "_t_exp", "_t_host", "_t_live",
        ):
            total += getattr(self, name).nbytes
        return total

    def trim(self) -> int:
        """Release slack: compact dead task rows, shrink every SoA array to
        its live extent, and drop stale calendar entries.  Returns the
        number of bytes released.  Semantics-preserving — only spare
        capacity goes away, never live state."""
        before = self.footprint_bytes()
        if self._t_dead:
            self._compact_tasks()
        t_cap = max(_MIN_CAPACITY, self._t_n)
        if self._t_rem.shape[0] > t_cap:
            for name in ("_t_rem", "_t_rates", "_t_exp", "_t_host", "_t_live"):
                setattr(self, name, getattr(self, name)[:t_cap].copy())
        h_cap = max(_MIN_CAPACITY, self._h_n)
        if self._cap.shape[0] > h_cap:
            for name in (
                "_cap", "_eff", "_load", "_avail", "_nrun", "_last",
                "_gen", "_next_when", "_next_row",
            ):
                setattr(self, name, getattr(self, name)[:h_cap].copy())
        live = [(w, g, h) for (w, g, h) in self._heap if g == self._gen[h]]
        if len(live) < len(self._heap):
            heapq.heapify(live)
            self._heap = live
        return before - self.footprint_bytes()

    # ------------------------------------------------------------------
    # progress integration
    # ------------------------------------------------------------------
    def _advance_host(self, h: int, now: float) -> None:
        """Integrate one host's resident progress up to ``now``."""
        dt = now - self._last[h]
        if dt < 0:
            raise ValueError(f"time went backwards: {now} < {self._last[h]}")
        if dt > 0 and self._host_tasks[h]:
            rows = np.asarray(self._host_tasks[h])
            rem = self._t_rem[rows]
            rem -= self._t_rates[rows] * dt
            np.maximum(rem, 0.0, out=rem)
            self._t_rem[rows] = rem
        self._last[h] = now

    def advance_all(self, now: float) -> None:
        """Integrate every host's progress up to ``now`` in one pass
        (the checkpoint tick; absolute completion predictions are linear in
        time, so the calendar stays valid)."""
        n = self._h_n
        if not n:
            return
        dt = now - self._last[:n]
        if bool((dt < 0).any()):
            worst = float(self._last[:n].max())
            raise ValueError(f"time went backwards: {now} < {worst}")
        rows = np.flatnonzero(self._t_live[: self._t_n])
        if rows.size:
            task_dt = dt[self._t_host[rows]]
            rem = self._t_rem[rows]
            rem -= self._t_rates[rows] * task_dt[:, None]
            np.maximum(rem, 0.0, out=rem)
            self._t_rem[rows] = rem
        self._last[:n] = now

    def _reshare_host(self, h: int) -> None:
        """Recompute the host's PSM shares, load and availability (Eq. 1)."""
        lst = self._host_tasks[h]
        k = len(lst)
        self._nrun[h] = k
        # effective capacity with k VM instances resident (§IV-A overhead)
        eff = self._cap[h] * (1.0 - self._frac * k) - self._flat * k
        np.maximum(eff, 0.0, out=eff)
        if k:
            rows = np.asarray(lst)
            exp = self._t_exp[rows]
            load = exp.sum(axis=0)
            with np.errstate(divide="ignore", invalid="ignore"):
                scale = np.where(load > 0, eff / load, 0.0)[:N_WORK_DIMS]
            self._t_rates[rows] = exp[:, :N_WORK_DIMS] * scale
        else:
            load = np.zeros(self.dims)
        self._eff[h] = eff
        self._load[h] = load
        np.maximum(eff - load, 0.0, out=self._avail[h])

    # ------------------------------------------------------------------
    # completion calendar
    # ------------------------------------------------------------------
    def _predict_host(self, h: int) -> None:
        """Vectorized next-completion prediction for one host; refreshes
        the host's calendar entry."""
        self._gen_counter += 1
        self._gen[h] = self._gen_counter
        lst = self._host_tasks[h]
        if not lst:
            self._next_when[h] = np.inf
            self._next_row[h] = -1
            return
        rows = np.asarray(lst)
        rem = self._t_rem[rows]
        rates = self._t_rates[rows]
        # A dimension with leftover work but zero rate stalls the task.
        stalled = ((rem > _WORK_EPS) & (rates <= 0)).any(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            per_dim = np.where(rem > _WORK_EPS, rem / rates, 0.0)
        finish = per_dim.max(axis=1)
        finish[stalled] = np.inf
        # Pick the winner in *absolute* time: the scalar reference compares
        # ``last_update + t`` with a strict ``<`` (first-placed wins ties),
        # and absolute sums can tie at the float level where the relative
        # finish times still differ by an ulp.  ``lst`` is placement order,
        # so argmin's first-occurrence rule matches the reference exactly.
        whens = self._last[h] + finish
        i = int(np.argmin(whens))
        if not np.isfinite(whens[i]):
            self._next_when[h] = np.inf
            self._next_row[h] = -1
            return
        when = float(whens[i])
        self._next_when[h] = when
        self._next_row[h] = lst[i]
        heapq.heappush(self._heap, (when, self._gen_counter, h))

    def next_completion(self, host_id: int) -> Optional[tuple[float, Task]]:
        """``(time, task)`` of the host's earliest finishing resident task
        under the current shares, or ``None``."""
        h = self._row(host_id)
        if not np.isfinite(self._next_when[h]):
            return None
        return float(self._next_when[h]), self._tasks[int(self._next_row[h])]

    def peek(self) -> Optional[tuple[float, int, int]]:
        """``(when, host_id, task_id)`` of the globally-earliest predicted
        completion, or ``None`` when no host can finish a task.  Stale heap
        entries (superseded predictions) are discarded lazily."""
        heap = self._heap
        while heap:
            when, gen, h = heap[0]
            if gen != self._gen[h]:
                heapq.heappop(heap)
                continue
            task = self._tasks[int(self._next_row[h])]
            return when, self._host_ids[h], task.task_id
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _new_task_row(self, task: Task) -> int:
        if self._t_n >= self._t_rem.shape[0]:
            self._grow_tasks()
        row = self._t_n
        self._t_rem[row] = task.remaining_work
        self._t_rates[row] = 0.0
        self._t_exp[row] = task.expectation
        self._t_live[row] = True
        self._tasks.append(task)
        self._task_row[task.task_id] = row
        self._t_n += 1
        return row

    def _free_task_row(self, row: int, h: int) -> Task:
        task = self._tasks[row]
        self._tasks[row] = None
        del self._task_row[task.task_id]
        self._t_live[row] = False
        self._t_host[row] = -1
        self._t_dead += 1
        self._host_tasks[h].remove(row)
        return task

    def place(self, host_id: int, task: Task, now: float) -> None:
        """Admit ``task`` on ``host_id``; the host's shares are re-computed
        and its calendar entry refreshed."""
        if task.task_id in self._task_row:
            raise ValueError(f"task {task.task_id} already running here")
        h = self._row(host_id)
        self._advance_host(h, now)
        task.start_time = now
        row = self._new_task_row(task)
        self._t_host[row] = h
        self._host_tasks[h].append(row)
        self._reshare_host(h)
        self._predict_host(h)

    def remove(self, host_id: int, task_id: int, now: float) -> Task:
        """Evict a task (e.g. node churned out); returns it unfinished with
        its ``remaining_work`` synchronized."""
        h = self._row(host_id)
        row = self._task_row[task_id]
        if self._t_host[row] != h:
            raise KeyError(f"task {task_id} is not resident on host {host_id}")
        self._advance_host(h, now)
        task = self._free_task_row(row, h)
        task.remaining_work[:] = self._t_rem[row]
        self._reshare_host(h)
        self._predict_host(h)
        self._maybe_compact()
        return task

    def evict_all(self, host_id: int, now: float) -> list[Task]:
        """Evict every resident task (host crashed out), in placement
        order; one re-share instead of one per task."""
        h = self._row(host_id)
        self._advance_host(h, now)
        out = []
        for row in list(self._host_tasks[h]):
            task = self._free_task_row(row, h)
            task.remaining_work[:] = self._t_rem[row]
            out.append(task)
        self._reshare_host(h)
        self._predict_host(h)
        self._maybe_compact()
        return out

    def complete(self, host_id: int, task_id: int, now: float) -> Task:
        """Finish a task whose predicted completion time has arrived."""
        h = self._row(host_id)
        row = self._task_row[task_id]
        if self._t_host[row] != h:
            raise KeyError(f"task {task_id} is not resident on host {host_id}")
        self._advance_host(h, now)
        if float(self._t_rem[row].max()) > 1e-3:
            raise RuntimeError(
                f"task {task_id} completed with work left: {self._t_rem[row]}"
            )
        task = self._free_task_row(row, h)
        task.remaining_work[:] = 0.0
        task.finish_time = now
        self._reshare_host(h)
        self._predict_host(h)
        self._maybe_compact()
        return task
