"""Proportional Share Model allocation (Eq. 1) and VM maintenance overhead.

Under PSM, a node running tasks with expectation vectors ``e_1..e_s`` grants
task ``j`` the share

    r_j = e_j / l · c        where  l = Σ_j e_j   (componentwise)

so shares scale the full capacity proportionally to expectations: when the
node is under-subscribed (``l ⪯ c``) every task receives *more* than it
asked for (the paper's worked example: 13.5 GFlops split 2:3:4 across tasks
expecting 9 total); when over-subscribed, everyone is squeezed below its
expectation — this is exactly the contention failure mode of §I.

Capacity is first reduced by the per-VM maintenance cost measured in [5] and
quoted in §IV-A: 5 % CPU, 10 % I/O, 5 % network per VM instance, plus a flat
5 MB of memory per VM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "VMOverhead",
    "effective_capacity",
    "effective_capacity_batch",
    "allocate_shares",
    "aggregate_load",
]


@dataclass(frozen=True, slots=True)
class VMOverhead:
    """Per-VM-instance capacity losses (fractions of total capacity plus a
    flat amount, per dimension in canonical order cpu/io/net/disk/mem)."""

    fractions: tuple[float, ...] = (0.05, 0.10, 0.05, 0.0, 0.0)
    flat: tuple[float, ...] = (0.0, 0.0, 0.0, 0.0, 5.0)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (
            np.asarray(self.fractions, dtype=np.float64),
            np.asarray(self.flat, dtype=np.float64),
        )


#: Paper defaults (§IV-A).
DEFAULT_OVERHEAD = VMOverhead()


def effective_capacity(
    capacity: np.ndarray, n_vms: int, overhead: VMOverhead = DEFAULT_OVERHEAD
) -> np.ndarray:
    """Capacity remaining for task work with ``n_vms`` VM instances resident.

    Clamped at zero: a node hosting 20 VMs at 5 % CPU overhead apiece has no
    CPU left for work, it does not go negative.
    """
    frac, flat = overhead.arrays()
    eff = capacity * (1.0 - frac * n_vms) - flat * n_vms
    return np.maximum(eff, 0.0)


def effective_capacity_batch(
    capacities: np.ndarray,
    n_vms: np.ndarray,
    overhead: VMOverhead = DEFAULT_OVERHEAD,
) -> np.ndarray:
    """Vectorized :func:`effective_capacity`: ``(H, d)`` capacities and a
    per-host VM-count vector in, ``(H, d)`` effective capacities out.
    Row ``i`` equals ``effective_capacity(capacities[i], n_vms[i])``
    bit-for-bit (same elementwise arithmetic, just broadcast)."""
    frac, flat = overhead.arrays()
    n = np.asarray(n_vms, dtype=np.float64)[:, None]
    eff = np.asarray(capacities, dtype=np.float64) * (1.0 - frac * n) - flat * n
    return np.maximum(eff, 0.0, out=eff)


def aggregate_load(expectations: list[np.ndarray]) -> np.ndarray:
    """``l = Σ e(t_ij)`` — the minimal aggregated load vector of §II."""
    if not expectations:
        return np.zeros(5)
    return np.sum(expectations, axis=0)


def allocate_shares(
    capacity_eff: np.ndarray, expectations: list[np.ndarray]
) -> list[np.ndarray]:
    """Componentwise PSM shares ``r_j = e_j / l · c`` (Eq. 1).

    Dimensions with zero aggregate load are allocated zero (no task wants
    them); dimensions where a task expects work but aggregate load is zero
    cannot occur because every expectation contributes to the aggregate.
    """
    if not expectations:
        return []
    load = aggregate_load(expectations)
    with np.errstate(divide="ignore", invalid="ignore"):
        scale = np.where(load > 0, capacity_eff / load, 0.0)
    return [e * scale for e in expectations]
