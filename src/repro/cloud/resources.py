"""Multi-dimensional resource vector algebra.

The paper models every host capacity, task demand and availability as a
d-vector over the resource types of Table I/II.  The canonical order here is

    (cpu, io, net, disk, mem)

with the first three — the *work dimensions* — driving execution time
(§IV-A: "its execution time is only related to the first three resource
types").  Componentwise dominance ``a ⪰ b`` (Inequality 2) is the partial
order that defines range-query qualification.

Internally everything is float64 numpy; :class:`ResourceVector` is a thin
immutable wrapper for the public API, while hot paths (the PSM executor, the
query matchers) operate on the raw ``.values`` arrays.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "RESOURCE_DIMS",
    "WORK_DIMS",
    "N_DIMS",
    "ResourceVector",
    "dominates",
    "as_array",
]

#: Canonical resource dimension names, in storage order.
RESOURCE_DIMS: tuple[str, ...] = ("cpu", "io", "net", "disk", "mem")
#: The dimensions that carry task *work* and therefore execution time.
WORK_DIMS: tuple[str, ...] = ("cpu", "io", "net")
N_DIMS = len(RESOURCE_DIMS)

#: Tolerance for dominance comparisons; zone coordinates are dyadic exact
#: floats but availability vectors accumulate arithmetic error.
_EPS = 1e-9


def as_array(values: "ResourceVector | Sequence[float] | np.ndarray") -> np.ndarray:
    """Coerce to a float64 numpy array without copying when possible."""
    if isinstance(values, ResourceVector):
        return values.values
    return np.asarray(values, dtype=np.float64)


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """``True`` iff ``a ⪰ b`` componentwise (within tolerance).

    This is the qualification test of Inequality (2): a host with
    availability ``a`` can accept a task demanding ``b``.
    """
    return bool(np.all(as_array(a) >= as_array(b) - _EPS))


class ResourceVector:
    """Immutable named resource vector.

    >>> c = ResourceVector.of(cpu=4, io=40, net=8, disk=120, mem=2048)
    >>> c["cpu"]
    4.0
    >>> (c - c.scaled(0.5)).values.tolist()
    [2.0, 20.0, 4.0, 60.0, 1024.0]
    """

    __slots__ = ("_values",)

    def __init__(self, values: Iterable[float]):
        arr = np.asarray(tuple(values), dtype=np.float64)
        if arr.shape != (N_DIMS,):
            raise ValueError(
                f"expected {N_DIMS} resource components, got shape {arr.shape}"
            )
        arr.setflags(write=False)
        self._values = arr

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def of(cls, **kwargs: float) -> "ResourceVector":
        """Build from named components; all of RESOURCE_DIMS required."""
        missing = set(RESOURCE_DIMS) - set(kwargs)
        extra = set(kwargs) - set(RESOURCE_DIMS)
        if missing or extra:
            raise ValueError(f"missing={sorted(missing)} unknown={sorted(extra)}")
        return cls(kwargs[d] for d in RESOURCE_DIMS)

    @classmethod
    def zeros(cls) -> "ResourceVector":
        return cls(np.zeros(N_DIMS))

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "ResourceVector":
        return cls(arr)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying read-only float64 array (no copy)."""
        return self._values

    def __getitem__(self, dim: str | int) -> float:
        if isinstance(dim, str):
            dim = RESOURCE_DIMS.index(dim)
        return float(self._values[dim])

    def as_dict(self) -> dict[str, float]:
        return {d: float(v) for d, v in zip(RESOURCE_DIMS, self._values)}

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self._values + as_array(other))

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(self._values - as_array(other))

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(self._values * factor)

    def clipped(self, lo: float = 0.0) -> "ResourceVector":
        return ResourceVector(np.maximum(self._values, lo))

    def normalized(self, cmax: "ResourceVector | np.ndarray") -> np.ndarray:
        """Coordinates in ``[0, 1]^d`` relative to the system-wide maximum
        capacity vector — the CAN key space mapping of §III."""
        return np.clip(self._values / as_array(cmax), 0.0, 1.0)

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def dominates(self, other: "ResourceVector | np.ndarray") -> bool:
        """Componentwise ``self ⪰ other`` (Inequality 2)."""
        return dominates(self._values, as_array(other))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.array_equal(self._values, other._values))

    def __hash__(self) -> int:
        return hash(self._values.tobytes())

    def __repr__(self) -> str:
        inner = ", ".join(f"{d}={v:g}" for d, v in self.as_dict().items())
        return f"ResourceVector({inner})"
