"""Checkpoint-based execution fault tolerance (the paper's §VI future work).

    "For the future work, we plan to study the PSM based execution
    fault-tolerance issues using check-pointing technologies on top of
    the HID-CAN protocol."

This module implements that plan: running tasks periodically snapshot
their remaining work vector to their *origin* node (one checkpoint message
per task per period).  When a host crashes out with the
``churn_kills_tasks`` model, each resident task can be **recovered**: its
remaining work is rolled back to the last snapshot (work done since the
snapshot is lost) and the origin re-runs the discovery query to place it
on a fresh host.

The store is deliberately simulation-agnostic: the runner drives it with
timestamps and charges the checkpoint traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.tasks import Task

__all__ = ["CheckpointSnapshot", "CheckpointStore"]


@dataclass(frozen=True, slots=True)
class CheckpointSnapshot:
    """Remaining work of one task at snapshot time."""

    task_id: int
    remaining_work: np.ndarray
    taken_at: float


class CheckpointStore:
    """Latest snapshot per task (the origin node's checkpoint archive)."""

    def __init__(self) -> None:
        self._snapshots: dict[int, CheckpointSnapshot] = {}
        self.taken = 0
        self.restored = 0

    # ------------------------------------------------------------------
    def take(self, task: Task, now: float) -> CheckpointSnapshot:
        """Snapshot ``task``'s progress; replaces any older snapshot."""
        snap = CheckpointSnapshot(
            task_id=task.task_id,
            remaining_work=task.remaining_work.copy(),
            taken_at=now,
        )
        self._snapshots[task.task_id] = snap
        self.taken += 1
        return snap

    def has(self, task_id: int) -> bool:
        return task_id in self._snapshots

    def peek(self, task_id: int) -> CheckpointSnapshot | None:
        return self._snapshots.get(task_id)

    # ------------------------------------------------------------------
    def restore(self, task: Task) -> bool:
        """Roll ``task`` back to its last snapshot (or to a fresh start if
        none was ever taken).  Returns True when a snapshot was applied.

        Progress made after the snapshot is lost — the defining cost of
        checkpoint/restart — but work completed *before* it is preserved,
        so the recovered task never restarts from zero once one checkpoint
        exists.
        """
        snap = self._snapshots.get(task.task_id)
        task.placed_node = None
        task.start_time = None
        if snap is None:
            task.remaining_work = task.work.copy()
            return False
        task.remaining_work = snap.remaining_work.copy()
        self.restored += 1
        return True

    def forget(self, task_id: int) -> None:
        """Drop the snapshot (task finished; archive space reclaimed)."""
        self._snapshots.pop(task_id, None)

    def __len__(self) -> int:
        return len(self._snapshots)
