"""User tasks and their demand model (Table II of the paper).

A task carries a *minimal demand* expectation vector ``e(t)`` sampled, for a
given demand ratio λ, uniformly from::

    cpu   ~ U(1·λ,   25.6·λ)        disk ~ U(20·λ, 240·λ)
    io    ~ U(20·λ,  80·λ)          mem  ~ U(512·λ, 4096·λ)
    net   ~ U(0.1·λ, 10·λ)

and a *nominal runtime* — the execution time the task achieves when granted
exactly its expectation on every work dimension.  Nominal runtimes are drawn
uniformly with mean 3000 s as stated in §IV-A.  The resulting work vector is
``w_k = e_k · T_nominal`` for the three work dimensions; under the
proportional-share model a task's actual per-dimension progress rate is its
allocated share, so completion time is ``max_k w_k / r_k`` integrated over
share changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cloud.machine import CMAX
from repro.cloud.resources import ResourceVector

__all__ = ["Task", "TaskFactory", "DEMAND_RANGES", "demand_bounds"]

#: (low, high) multipliers applied to the demand ratio λ, per dimension.
DEMAND_RANGES: dict[str, tuple[float, float]] = {
    "cpu": (1.0, 25.6),
    "io": (20.0, 80.0),
    "net": (0.1, 10.0),
    "disk": (20.0, 240.0),
    "mem": (512.0, 4096.0),
}

_LOWS = np.array([DEMAND_RANGES[d][0] for d in ("cpu", "io", "net", "disk", "mem")])
_HIGHS = np.array([DEMAND_RANGES[d][1] for d in ("cpu", "io", "net", "disk", "mem")])

#: Work is carried by the first three dimensions (cpu, io, net).
N_WORK_DIMS = 3


@dataclass(slots=True)
class Task:
    """One user task ``t_ij`` and its lifecycle bookkeeping."""

    task_id: int
    origin: int
    demand: ResourceVector
    nominal_time: float
    submit_time: float

    # lifecycle --------------------------------------------------------
    placed_node: Optional[int] = None
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    failed: bool = False
    query_messages: int = 0
    #: Remaining work on (cpu, io, net); initialized from demand × nominal.
    remaining_work: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.remaining_work is None:
            self.remaining_work = (
                self.demand.values[:N_WORK_DIMS] * self.nominal_time
            ).copy()

    # ------------------------------------------------------------------
    @property
    def expectation(self) -> np.ndarray:
        """``e(t)`` as a raw array (alias used by hot paths)."""
        return self.demand.values

    @property
    def work(self) -> np.ndarray:
        """Total work on the three work dimensions."""
        return self.demand.values[:N_WORK_DIMS] * self.nominal_time

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def expected_time(self, mean_capacity: np.ndarray) -> float:
        """Expected execution time for the fairness index (Eq. 4):
        estimated from the task's load amount and the system-wide average
        node capacity, as described in §IV-A."""
        rates = np.asarray(mean_capacity, dtype=np.float64)[:N_WORK_DIMS]
        with np.errstate(divide="ignore"):
            per_dim = np.where(rates > 0, self.work / rates, np.inf)
        return float(per_dim.max())

    def efficiency(self, mean_capacity: np.ndarray) -> float:
        """Execution efficiency ``e_ij`` = expected / actual completion span."""
        if self.finish_time is None or self.start_time is None:
            raise ValueError("task has not finished")
        actual = self.finish_time - self.submit_time
        if actual <= 0:
            return 1.0
        return self.expected_time(mean_capacity) / actual


class TaskFactory:
    """Samples Table-II tasks for a fixed demand ratio λ."""

    def __init__(
        self,
        demand_ratio: float,
        rng: np.random.Generator,
        mean_nominal_time: float = 3000.0,
    ):
        if not 0 < demand_ratio <= 1:
            raise ValueError(f"demand ratio must be in (0, 1], got {demand_ratio}")
        self.demand_ratio = float(demand_ratio)
        self.mean_nominal_time = float(mean_nominal_time)
        self._rng = rng
        self._next_id = 0

    def sample_demand(self) -> ResourceVector:
        """One expectation vector ``e(t)``; always dominated by λ·CMAX."""
        lo = _LOWS * self.demand_ratio
        hi = _HIGHS * self.demand_ratio
        return ResourceVector(self._rng.uniform(lo, hi))

    def sample_nominal_time(self) -> float:
        """Uniform on [0.2, 1.8]×mean — keeps the stated 3000 s average
        while giving the heterogeneous runtimes the evaluation relies on."""
        return float(
            self._rng.uniform(0.2 * self.mean_nominal_time, 1.8 * self.mean_nominal_time)
        )

    def create(self, origin: int, submit_time: float) -> Task:
        task = Task(
            task_id=self._next_id,
            origin=origin,
            demand=self.sample_demand(),
            nominal_time=self.sample_nominal_time(),
            submit_time=submit_time,
        )
        self._next_id += 1
        return task

    @staticmethod
    def demand_upper_bound(demand_ratio: float) -> np.ndarray:
        """The corner λ·cmax of the demand box (used by SoS and tests)."""
        return _HIGHS * demand_ratio


def demand_bounds(demand_ratio: float) -> tuple[np.ndarray, np.ndarray]:
    """The Table-II demand box ``(lo, hi)`` at ratio λ (fresh copies).

    The uniform sampler draws inside this box; the skewed workload
    (:class:`repro.cloud.workload.SkewedTaskFactory`) anchors its hot-range
    prototypes to it so skewed demands stay dominated by λ·CMAX too.
    """
    return _LOWS * demand_ratio, _HIGHS * demand_ratio


def demand_fits_cmax() -> bool:
    """Sanity helper: Table II demand upper bounds equal CMAX at λ=1."""
    return bool(np.allclose(_HIGHS, CMAX))
