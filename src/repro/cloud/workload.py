"""Poisson task arrival process (§IV-A) and the skewed demand workload.

User requests are generated on each node by a Poisson process with mean
inter-arrival time 3000 s, so one simulated day on 2000 nodes yields about
2000 × 86400/3000 ≈ 57600 tasks, matching the paper's accounting.

The hot-range evaluation (docs/caching.md) additionally needs demand
*skew*: real clouds ask for a few popular resource shapes far more often
than the Table-II uniform box suggests.  :class:`SkewedTaskFactory`
replaces the uniform demand sampler with draws near Zipf-popular
prototype ranges of bounded-Pareto width, built on two standalone
inverse-CDF samplers (:class:`ZipfRankSampler`,
:class:`BoundedParetoSampler`).  Each sampler consumes exactly one
``rng.uniform()`` per draw, so the RNG stream is stable across refactors
— the property the workload stability tests pin.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.cloud.resources import ResourceVector
from repro.cloud.tasks import Task, TaskFactory, demand_bounds
from repro.sim.engine import Simulator

__all__ = [
    "PoissonWorkload",
    "ZipfRankSampler",
    "BoundedParetoSampler",
    "SkewedTaskFactory",
]


class ZipfRankSampler:
    """Ranks ``0..k-1`` with probability ∝ ``(rank+1)^-s`` (Zipf's law).

    Inverse-CDF over the precomputed normalized weights: one
    ``rng.uniform()`` per draw, no rejection, so the consuming RNG stream
    position depends only on the number of draws.  ``s=0`` degenerates to
    the uniform distribution over ranks.
    """

    def __init__(self, s: float, k: int):
        if s < 0:
            raise ValueError(f"s must be >= 0, got {s!r}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k!r}")
        self.s = float(s)
        self.k = int(k)
        weights = np.arange(1, k + 1, dtype=np.float64) ** -self.s
        self._cdf = np.cumsum(weights / weights.sum())

    def draw(self, rng: np.random.Generator) -> int:
        u = rng.uniform()
        return min(int(np.searchsorted(self._cdf, u, side="right")), self.k - 1)


class BoundedParetoSampler:
    """Heavy-tailed values on ``[lo, hi]`` via the bounded Pareto
    distribution with shape ``alpha`` (inverse-CDF, one ``rng.uniform()``
    per draw).  Small values dominate; the tail up to ``hi`` stays fat
    enough that occasional draws span a large fraction of the range —
    the classic heavy-tailed width model for range queries."""

    def __init__(self, alpha: float, lo: float, hi: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha!r}")
        if not 0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got {lo!r}, {hi!r}")
        self.alpha = float(alpha)
        self.lo = float(lo)
        self.hi = float(hi)
        self._la = lo**-self.alpha
        self._ha = hi**-self.alpha

    def draw(self, rng: np.random.Generator) -> float:
        u = rng.uniform()
        return float((self._la - u * (self._la - self._ha)) ** (-1.0 / self.alpha))


class SkewedTaskFactory(TaskFactory):
    """Table-II tasks with Zipf-skewed, heavy-tailed-width demand.

    ``hot_ranges`` prototype demand points are drawn once (uniform in the
    λ-scaled Table-II box).  Each task then picks a prototype with
    Zipf(s) popularity, a relative range width from a bounded Pareto, and
    jitters the prototype by ±width/2 of the box extent per dimension
    (clipped back into the box, so demands stay dominated by λ·CMAX and
    every scheduling invariant of the uniform workload holds).

    RNG discipline: ``__init__`` consumes one ``uniform(size=(k, 5))``
    block; every ``sample_demand`` consumes exactly three generator calls
    (rank, width, 5-wide jitter) — stable and cheap.  Nominal-time
    sampling is inherited untouched.
    """

    def __init__(
        self,
        demand_ratio: float,
        rng: np.random.Generator,
        mean_nominal_time: float = 3000.0,
        *,
        zipf_s: float = 1.0,
        hot_ranges: int = 64,
        width_alpha: float = 1.5,
        width_lo: float = 0.02,
        width_hi: float = 0.5,
    ):
        super().__init__(demand_ratio, rng, mean_nominal_time)
        self.zipf_s = float(zipf_s)
        self.hot_ranges = int(hot_ranges)
        self._rank_sampler = ZipfRankSampler(zipf_s, hot_ranges)
        self._width_sampler = BoundedParetoSampler(width_alpha, width_lo, width_hi)
        self._lo, self._hi = demand_bounds(demand_ratio)
        self._extent = self._hi - self._lo
        self._prototypes = rng.uniform(
            self._lo, self._hi, size=(self.hot_ranges, self._lo.shape[0])
        )

    def sample_demand(self) -> ResourceVector:
        rank = self._rank_sampler.draw(self._rng)
        width = self._width_sampler.draw(self._rng)
        jitter = self._rng.uniform(-0.5, 0.5, size=self._lo.shape[0])
        demand = self._prototypes[rank] + jitter * width * self._extent
        return ResourceVector(np.clip(demand, self._lo, self._hi))


class PoissonWorkload:
    """Schedules per-node Poisson task submissions onto a simulator."""

    def __init__(
        self,
        factory: TaskFactory,
        rng: np.random.Generator,
        mean_interarrival: float = 3000.0,
    ):
        self.factory = factory
        self.mean_interarrival = float(mean_interarrival)
        self._rng = rng
        self.generated = 0

    def start_node(
        self,
        node_id: int,
        sim: Simulator,
        submit: Callable[[Task], None],
        is_alive: Callable[[int], bool],
        quantum: float = 0.0,
    ) -> None:
        """Begin the arrival process for ``node_id``.

        The first arrival is offset by a fresh exponential draw, so nodes
        are naturally staggered.  The chain self-terminates once the node is
        no longer alive (churned out) — it simply stops re-arming.

        ``quantum`` > 0 rounds every fire time *up* onto the quantum grid
        (the exponential draws themselves are untouched, so the RNG stream
        position is quantum-independent).  Many nodes' arrivals then share
        delivery instants and the runner's arrival coalescing gets real
        batches instead of singletons.
        """

        def arm() -> None:
            target = sim.now + self._rng.exponential(self.mean_interarrival)
            if quantum > 0.0:
                target = math.ceil(target / quantum) * quantum
            sim.schedule_at(target, fire)

        def fire() -> None:
            if not is_alive(node_id):
                return
            task = self.factory.create(node_id, sim.now)
            self.generated += 1
            submit(task)
            arm()

        arm()
