"""Poisson task arrival process (§IV-A).

User requests are generated on each node by a Poisson process with mean
inter-arrival time 3000 s, so one simulated day on 2000 nodes yields about
2000 × 86400/3000 ≈ 57600 tasks, matching the paper's accounting.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.cloud.tasks import Task, TaskFactory
from repro.sim.engine import Simulator

__all__ = ["PoissonWorkload"]


class PoissonWorkload:
    """Schedules per-node Poisson task submissions onto a simulator."""

    def __init__(
        self,
        factory: TaskFactory,
        rng: np.random.Generator,
        mean_interarrival: float = 3000.0,
    ):
        self.factory = factory
        self.mean_interarrival = float(mean_interarrival)
        self._rng = rng
        self.generated = 0

    def start_node(
        self,
        node_id: int,
        sim: Simulator,
        submit: Callable[[Task], None],
        is_alive: Callable[[int], bool],
        quantum: float = 0.0,
    ) -> None:
        """Begin the arrival process for ``node_id``.

        The first arrival is offset by a fresh exponential draw, so nodes
        are naturally staggered.  The chain self-terminates once the node is
        no longer alive (churned out) — it simply stops re-arming.

        ``quantum`` > 0 rounds every fire time *up* onto the quantum grid
        (the exponential draws themselves are untouched, so the RNG stream
        position is quantum-independent).  Many nodes' arrivals then share
        delivery instants and the runner's arrival coalescing gets real
        batches instead of singletons.
        """

        def arm() -> None:
            target = sim.now + self._rng.exponential(self.mean_interarrival)
            if quantum > 0.0:
                target = math.ceil(target / quantum) * quantum
            sim.schedule_at(target, fire)

        def fire() -> None:
            if not is_alive(node_id):
                return
            task = self.factory.create(node_id, sim.now)
            self.generated += 1
            submit(task)
            arm()

        arm()
