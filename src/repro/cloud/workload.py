"""Poisson task arrival process (§IV-A).

User requests are generated on each node by a Poisson process with mean
inter-arrival time 3000 s, so one simulated day on 2000 nodes yields about
2000 × 86400/3000 ≈ 57600 tasks, matching the paper's accounting.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cloud.tasks import Task, TaskFactory
from repro.sim.engine import Simulator

__all__ = ["PoissonWorkload"]


class PoissonWorkload:
    """Schedules per-node Poisson task submissions onto a simulator."""

    def __init__(
        self,
        factory: TaskFactory,
        rng: np.random.Generator,
        mean_interarrival: float = 3000.0,
    ):
        self.factory = factory
        self.mean_interarrival = float(mean_interarrival)
        self._rng = rng
        self.generated = 0

    def start_node(
        self,
        node_id: int,
        sim: Simulator,
        submit: Callable[[Task], None],
        is_alive: Callable[[int], bool],
    ) -> None:
        """Begin the arrival process for ``node_id``.

        The first arrival is offset by a fresh exponential draw, so nodes
        are naturally staggered.  The chain self-terminates once the node is
        no longer alive (churned out) — it simply stops re-arming.
        """

        def fire() -> None:
            if not is_alive(node_id):
                return
            task = self.factory.create(node_id, sim.now)
            self.generated += 1
            submit(task)
            sim.schedule(self._rng.exponential(self.mean_interarrival), fire)

        sim.schedule(self._rng.exponential(self.mean_interarrival), fire)
