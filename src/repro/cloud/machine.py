"""Host machine configurations (Table I of the paper).

Each participating host samples:

=====================  ==============================
# of processors        1, 2, 4, 8
rate per processor     1, 2, 2.4, 3.2  (units of 10 MI/s)
I/O speed              20, 40, 60, 80 MbPS
memory size            512, 1024, 2048, 4096 MB
disk size              20, 60, 120, 240 GB
network bandwidth      the host's LAN bandwidth, U(5, 10) Mbps
=====================  ==============================

The CPU capacity dimension is ``processors × rate`` (max 25.6), which is
exactly the upper bound of the task CPU demand range in Table II, so the
system-wide maximum capacity vector ``CMAX`` is known in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cloud.resources import ResourceVector

__all__ = [
    "MachineConfig",
    "sample_machine",
    "sample_machines",
    "capacity_matrix",
    "CMAX",
    "CMAX_VECTOR",
]

_PROCESSORS = (1, 2, 4, 8)
_RATES = (1.0, 2.0, 2.4, 3.2)
_IO_SPEEDS = (20.0, 40.0, 60.0, 80.0)
_MEM_SIZES = (512.0, 1024.0, 2048.0, 4096.0)
_DISK_SIZES = (20.0, 60.0, 120.0, 240.0)

#: System-wide maximum capacity per dimension (cpu, io, net, disk, mem).
#: net = 10 Mbps is the top of the LAN bandwidth range.
CMAX_VECTOR = ResourceVector.of(cpu=25.6, io=80.0, net=10.0, disk=240.0, mem=4096.0)
CMAX = CMAX_VECTOR.values


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """One host's physical configuration."""

    processors: int
    rate_per_processor: float
    io_speed: float
    net_bandwidth_mbps: float
    disk_size: float
    memory_size: float

    @property
    def capacity(self) -> ResourceVector:
        """The capacity vector ``c_i`` of §II."""
        return ResourceVector.of(
            cpu=self.processors * self.rate_per_processor,
            io=self.io_speed,
            net=self.net_bandwidth_mbps,
            disk=self.disk_size,
            mem=self.memory_size,
        )


def sample_machine(rng: np.random.Generator, net_bandwidth_mbps: float) -> MachineConfig:
    """Draw one Table-I configuration.

    ``net_bandwidth_mbps`` comes from the network model (the host's LAN),
    keeping the capacity dimension consistent with the transfer-delay model.
    """
    return MachineConfig(
        processors=int(rng.choice(_PROCESSORS)),
        rate_per_processor=float(rng.choice(_RATES)),
        io_speed=float(rng.choice(_IO_SPEEDS)),
        net_bandwidth_mbps=float(net_bandwidth_mbps),
        disk_size=float(rng.choice(_DISK_SIZES)),
        memory_size=float(rng.choice(_MEM_SIZES)),
    )


def sample_machines(
    rng: np.random.Generator, net_bandwidths_mbps: list[float]
) -> list[MachineConfig]:
    """Draw one Table-I configuration per LAN bandwidth entry.

    Stream-compatible with repeated :func:`sample_machine` calls: the
    draws happen machine-by-machine in the exact same order, so a seeded
    population is identical whether it was sampled one host at a time
    (the seed runner) or in one batch (the host-engine runner).
    """
    return [sample_machine(rng, bw) for bw in net_bandwidths_mbps]


def capacity_matrix(machines: list[MachineConfig]) -> np.ndarray:
    """``(H, 5)`` capacity vectors ``c_i``, one row per machine — the
    batch form feeding :meth:`repro.cloud.engine.HostEngine.add_hosts`."""
    return np.stack([m.capacity.values for m in machines])
