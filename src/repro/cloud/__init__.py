"""Self-Organizing Cloud substrate.

Implements §II of the paper: host machines with multi-dimensional resource
capacities (Table I), user tasks with minimal-demand expectation vectors
(Table II), the proportional-share model (Eq. 1) with Xen-style per-VM
maintenance overhead, and the vectorized host-execution engine whose
piecewise constant shares drive actual completion times
(:mod:`repro.cloud.engine`; the seed's scalar per-host executor survives as
:class:`repro.testing.ReferenceNodeExecutor`, the equivalence oracle).
"""

from repro.cloud.resources import (
    RESOURCE_DIMS,
    WORK_DIMS,
    ResourceVector,
    dominates,
)
from repro.cloud.machine import MachineConfig, sample_machine, sample_machines, CMAX
from repro.cloud.tasks import Task, TaskFactory
from repro.cloud.workload import PoissonWorkload
from repro.cloud.psm import (
    effective_capacity,
    effective_capacity_batch,
    allocate_shares,
    VMOverhead,
)
from repro.cloud.engine import HostEngine
from repro.cloud.checkpoint import CheckpointStore, CheckpointSnapshot

__all__ = [
    "RESOURCE_DIMS",
    "WORK_DIMS",
    "ResourceVector",
    "dominates",
    "MachineConfig",
    "sample_machine",
    "sample_machines",
    "CMAX",
    "Task",
    "TaskFactory",
    "PoissonWorkload",
    "effective_capacity",
    "effective_capacity_batch",
    "allocate_shares",
    "VMOverhead",
    "HostEngine",
    "CheckpointStore",
    "CheckpointSnapshot",
]
