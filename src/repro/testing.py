"""Sandbox harness for experimenting with the protocol machinery directly.

:class:`ProtocolSandbox` wires a bootstrapped INSCAN overlay to a live
:class:`~repro.core.context.ProtocolContext` — simulator, network model,
traffic meter, controllable availability and membership — without the full
SOC runner.  It is what the unit tests, the examples and interactive
exploration use to drive Algorithms 1-5 one step at a time::

    sandbox = ProtocolSandbox(n=64, dims=2, seed=7)
    sandbox.plant_record(holder, owner=99, availability=[0.8, 0.9])
    engine = QueryEngine(sandbox.ctx, sandbox.overlay, sandbox.tables,
                         sandbox.caches, sandbox.pilists, QueryParams())
"""

from __future__ import annotations

import numpy as np

from repro.can.inscan import build_index_table
from repro.can.overlay import CANOverlay
from repro.core.context import ProtocolContext
from repro.core.pilist import PIList
from repro.core.state import StateCache, StateRecord
from repro.metrics.traffic import TrafficMeter
from repro.sim.engine import Simulator
from repro.sim.network import NetworkModel, NetworkParams

__all__ = ["ProtocolSandbox", "ReferenceStateCache"]


class ReferenceStateCache:
    """The original scalar dict-of-records implementation of the duty-node
    cache γ, kept verbatim as the behavioural oracle for the vectorized
    :class:`~repro.core.state.StateCache` (equivalence tests and the
    old-vs-new microbenchmark compare against it)."""

    def __init__(self, ttl: float):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self._records: dict[int, StateRecord] = {}

    def put(self, record: StateRecord) -> None:
        existing = self._records.get(record.owner)
        if existing is None or existing.timestamp <= record.timestamp:
            self._records[record.owner] = record

    def evict_owner(self, owner: int) -> None:
        self._records.pop(owner, None)

    def purge(self, now: float) -> None:
        cutoff = now - self.ttl
        stale = [o for o, r in self._records.items() if r.timestamp < cutoff]
        for o in stale:
            del self._records[o]

    def non_empty(self, now: float) -> bool:
        self.purge(now)
        return bool(self._records)

    def records(self, now: float) -> list[StateRecord]:
        self.purge(now)
        return list(self._records.values())

    def qualified(self, demand, now, limit=None, exclude=None) -> list[StateRecord]:
        self.purge(now)
        skip = set(exclude) if exclude is not None else ()
        out: list[StateRecord] = []
        for rec in self._records.values():
            if rec.owner in skip:
                continue
            if rec.qualifies(demand):
                out.append(rec)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def __len__(self) -> int:
        return len(self._records)


class ProtocolSandbox:
    """Overlay + context + per-node protocol state, minus the SOC runner."""

    def __init__(
        self,
        n: int = 32,
        dims: int = 2,
        seed: int = 0,
        cmax: np.ndarray | None = None,
        state_ttl: float = 600.0,
        pilist_ttl: float = 1200.0,
    ):
        self.sim = Simulator()
        rng = np.random.default_rng(seed)
        self.network = NetworkModel(NetworkParams(), np.random.default_rng(seed + 1))
        self.traffic = TrafficMeter()
        self.dead: set[int] = set()
        self.availability: dict[int, np.ndarray] = {}
        self.cmax = np.ones(dims) if cmax is None else np.asarray(cmax, float)

        self.overlay = CANOverlay(dims, rng)
        self.overlay.bootstrap(range(n))
        for node_id in range(n):
            self.network.add_node(node_id)
            self.availability[node_id] = np.zeros(dims)

        self.ctx = ProtocolContext(
            sim=self.sim,
            network=self.network,
            traffic=self.traffic,
            rng=np.random.default_rng(seed + 2),
            cmax=self.cmax,
            availability_of=lambda i: self.availability[i],
            is_alive=lambda i: i not in self.dead,
        )
        self.tables = {
            i: build_index_table(self.overlay, i, np.random.default_rng(seed + 3))
            for i in self.overlay.node_ids()
        }
        self.caches = {i: StateCache(state_ttl) for i in self.overlay.node_ids()}
        self.pilists = {i: PIList(pilist_ttl) for i in self.overlay.node_ids()}

    # ------------------------------------------------------------------
    def plant_record(
        self, holder: int, owner: int, availability, ts: float = 0.0
    ) -> StateRecord:
        """Put a state record for ``owner`` into ``holder``'s cache γ."""
        rec = StateRecord(owner, np.asarray(availability, float), ts)
        self.caches[holder].put(rec)
        return rec

    def duty_of(self, point) -> int:
        """The duty node whose zone encloses ``point``."""
        return self.overlay.owner_of(np.asarray(point, float))

    def kill(self, node_id: int) -> None:
        """Mark a node dead: messages to it are dropped from now on."""
        self.dead.add(node_id)
