"""Sandbox harness and behavioural oracles for the vectorized hot paths.

:class:`ProtocolSandbox` wires a bootstrapped INSCAN overlay to a live
:class:`~repro.core.context.ProtocolContext` — simulator, network model,
traffic meter, controllable availability and membership — without the full
SOC runner.  It is what the unit tests, the examples and interactive
exploration use to drive Algorithms 1-5 one step at a time::

    sandbox = ProtocolSandbox(n=64, dims=2, seed=7)
    sandbox.plant_record(holder, owner=99, availability=[0.8, 0.9])
    engine = QueryEngine(sandbox.ctx, sandbox.overlay, sandbox.tables,
                         sandbox.caches, sandbox.pilists, QueryParams())

The module also keeps the seed's scalar implementations of the
vectorized hot paths, verbatim, as equivalence oracles:

- :class:`ReferenceStateCache` — the dict-of-records duty-node cache γ,
  against :class:`repro.core.state.StateCache`;
- :class:`ReferenceNodeExecutor` / :class:`ReferenceHostEngine` — the
  per-host dict-of-tasks PSM executor (and a thin engine-API shim over a
  fleet of them), against :class:`repro.cloud.engine.HostEngine`;
- :class:`ReferenceZone` / :func:`reference_adjacency_direction` /
  :class:`ReferenceCANOverlay` / :func:`reference_greedy_path` — the
  per-object scalar CAN geometry, per-call adjacency recomputation and
  per-candidate greedy routing loop, against
  :class:`repro.can.geometry.ZoneStore`-backed batched routing (see
  ``docs/can_geometry.md``; :func:`assert_overlays_equivalent` drives
  randomized join/leave/route/diffuse schedules against both);
- :class:`ReferenceDiffusionEngine` — the list-comprehension NINode pool
  filter, against the array-backed
  :class:`repro.core.diffusion.DiffusionEngine` pools;
- :class:`ReferencePIList` — the dict-of-stamps positive index list,
  against the SoA :class:`repro.core.cache.RangeCache` TTL policy that
  now backs :class:`repro.core.pilist.PIList`
  (:func:`assert_cache_off_equivalent` swaps it into whole cache-off
  experiments).
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.can.inscan import build_index_table
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError, greedy_path, greedy_paths
from repro.cloud.psm import DEFAULT_OVERHEAD, VMOverhead, effective_capacity
from repro.cloud.tasks import N_WORK_DIMS, Task
from repro.core.context import ProtocolContext
from repro.core.diffusion import DiffusionEngine
from repro.core.pilist import PIList
from repro.core.state import StateCache, StateRecord
from repro.metrics.traffic import TrafficMeter
from repro.sim.engine import Simulator, next_grid_index
from repro.sim.network import NetworkModel, NetworkParams

__all__ = [
    "ProtocolSandbox",
    "ReferenceStateCache",
    "ReferenceNodeExecutor",
    "ReferenceHostEngine",
    "ReferenceZone",
    "ReferenceCANOverlay",
    "ReferenceDiffusionEngine",
    "ReferenceCohortScheduler",
    "RunningTask",
    "assert_engines_equivalent",
    "assert_overlays_equivalent",
    "reference_adjacency_direction",
    "reference_is_negative_direction_of",
    "reference_distance_to_point",
    "reference_greedy_path",
    "reference_inscan_path",
    "assert_tick_modes_equivalent",
    "ReferenceDeliveryCalendar",
    "ReferencePIList",
    "assert_results_identical",
    "assert_delivery_modes_equivalent",
    "assert_cache_off_equivalent",
]

#: Work below this is treated as done (guards float round-off at completion).
_WORK_EPS = 1e-6


@dataclass(slots=True)
class RunningTask:
    """A resident task plus its current progress rates on the work dims."""

    task: Task
    rates: np.ndarray  # (3,) work units per second


class ReferenceNodeExecutor:
    """The seed's event-driven proportional-share executor for one host
    (the emulated credit scheduler of §IV-A), kept verbatim as the
    behavioural oracle for the vectorized
    :class:`~repro.cloud.engine.HostEngine` — mirroring how
    :class:`ReferenceStateCache` anchors the vectorized state cache.

    Shares are piecewise constant between *scheduling points* (a task
    placement or completion on the node).  The executor integrates work
    progress between points, recomputes PSM shares after every change, and
    predicts the next completion time.
    """

    def __init__(self, capacity: np.ndarray, overhead: VMOverhead = DEFAULT_OVERHEAD):
        self.capacity = np.asarray(capacity, dtype=np.float64)
        self.overhead = overhead
        self._running: dict[int, RunningTask] = {}
        self._last_update = 0.0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_running(self) -> int:
        return len(self._running)

    def running_tasks(self) -> list[Task]:
        return [rt.task for rt in self._running.values()]

    def load(self) -> np.ndarray:
        """``l_i`` — aggregated expectation of resident tasks (§II)."""
        if not self._running:
            return np.zeros_like(self.capacity)
        return np.sum([rt.task.expectation for rt in self._running.values()], axis=0)

    def effective_capacity(self) -> np.ndarray:
        return effective_capacity(self.capacity, len(self._running), self.overhead)

    def availability(self, now: float) -> np.ndarray:
        """``a_i = c_i − l_i`` clipped at zero, with capacity first reduced
        by the VM maintenance overhead of the resident instances."""
        self.advance(now)
        avail = self.effective_capacity() - self.load()
        return np.maximum(avail, 0.0)

    def is_overloaded(self) -> bool:
        """True when some dimension is over-subscribed (shares < demand)."""
        if not self._running:
            return False
        load = self.load()
        eff = self.effective_capacity()
        return bool(np.any(load > eff + 1e-12))

    # ------------------------------------------------------------------
    # progress integration
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate all running tasks' progress up to ``now``."""
        dt = now - self._last_update
        if dt < 0:
            raise ValueError(f"time went backwards: {now} < {self._last_update}")
        if dt > 0:
            for rt in self._running.values():
                rt.task.remaining_work -= rt.rates * dt
                np.maximum(rt.task.remaining_work, 0.0, out=rt.task.remaining_work)
        self._last_update = now

    def _reshare(self) -> None:
        """Recompute PSM shares and per-task progress rates (Eq. 1)."""
        if not self._running:
            return
        eff = self.effective_capacity()
        load = self.load()
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(load > 0, eff / load, 0.0)[:N_WORK_DIMS]
        for rt in self._running.values():
            rt.rates = rt.task.expectation[:N_WORK_DIMS] * scale

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, task: Task, now: float) -> None:
        """Admit ``task``; all resident shares are re-computed."""
        if task.task_id in self._running:
            raise ValueError(f"task {task.task_id} already running here")
        self.advance(now)
        task.start_time = now
        self._running[task.task_id] = RunningTask(task, np.zeros(N_WORK_DIMS))
        self._reshare()

    def remove(self, task_id: int, now: float) -> Task:
        """Evict a task (e.g. node churned out); returns it unfinished."""
        self.advance(now)
        rt = self._running.pop(task_id)
        self._reshare()
        return rt.task

    def complete(self, task_id: int, now: float) -> Task:
        """Finish a task whose predicted completion time has arrived."""
        self.advance(now)
        rt = self._running.pop(task_id)
        if float(rt.task.remaining_work.max()) > 1e-3:
            raise RuntimeError(
                f"task {task_id} completed with work left: {rt.task.remaining_work}"
            )
        rt.task.remaining_work[:] = 0.0
        rt.task.finish_time = now
        self._reshare()
        return rt.task

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def next_completion(self) -> Optional[tuple[float, Task]]:
        """``(time, task)`` of the earliest finishing resident task under the
        *current* shares, or ``None``.  Must be re-queried after any
        place/remove/complete since shares shift at every scheduling point.
        """
        best: Optional[tuple[float, Task]] = None
        for rt in self._running.values():
            t = self._time_to_finish(rt)
            if t is None:
                continue
            when = self._last_update + t
            if best is None or when < best[0]:
                best = (when, rt.task)
        return best

    @staticmethod
    def _time_to_finish(rt: RunningTask) -> Optional[float]:
        remaining = rt.task.remaining_work
        rates = rt.rates
        # A dimension with leftover work but zero rate stalls the task.
        stalled = (remaining > _WORK_EPS) & (rates <= 0)
        if bool(stalled.any()):
            return None
        with np.errstate(divide="ignore", invalid="ignore"):
            per_dim = np.where(remaining > _WORK_EPS, remaining / rates, 0.0)
        return float(per_dim.max())


class ReferenceHostEngine:
    """Scalar oracle for :class:`repro.cloud.engine.HostEngine`: the same
    public API, backed by one :class:`ReferenceNodeExecutor` per host and
    an independently-implemented completion calendar with the identical
    lazy-heap discipline (one generation-stamped entry per host, exactly
    one re-prediction per scheduling point), so equivalence tests and the
    benchmark can swap the two engines under the same driver."""

    def __init__(self, overhead: VMOverhead = DEFAULT_OVERHEAD):
        self.overhead = overhead
        self._exec: dict[int, ReferenceNodeExecutor] = {}
        self._order: list[int] = []
        self._heap: list[tuple[float, int, int]] = []  # (when, gen, host_id)
        self._gen: dict[int, int] = {}
        self._next: dict[int, Optional[tuple[float, Task]]] = {}
        self._gen_counter = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_host(self, host_id: int, capacity: np.ndarray) -> None:
        if host_id in self._exec:
            raise ValueError(f"host {host_id} already registered")
        self._exec[host_id] = ReferenceNodeExecutor(
            np.asarray(capacity, dtype=np.float64), self.overhead
        )
        self._order.append(host_id)
        self._gen[host_id] = 0
        self._next[host_id] = None

    def add_hosts(self, host_ids: list[int], capacities: np.ndarray) -> None:
        for host_id, cap in zip(host_ids, np.asarray(capacities, dtype=np.float64)):
            self.add_host(host_id, cap)

    @property
    def n_hosts(self) -> int:
        return len(self._exec)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def n_running(self, host_id: int) -> int:
        return self._exec[host_id].n_running

    def running_tasks(self, host_id: int) -> list[Task]:
        return self._exec[host_id].running_tasks()

    def load(self, host_id: int) -> np.ndarray:
        return self._exec[host_id].load()

    def effective_capacity(self, host_id: int) -> np.ndarray:
        return self._exec[host_id].effective_capacity()

    def availability(self, host_id: int) -> np.ndarray:
        # Availability never depends on task progress (load is a sum of
        # expectations), so no advance — the same contract as HostEngine.
        ex = self._exec[host_id]
        return np.maximum(ex.effective_capacity() - ex.load(), 0.0)

    def availability_matrix(self, host_ids: list[int]) -> np.ndarray:
        return np.stack([self.availability(h) for h in host_ids])

    def is_overloaded(self, host_id: int) -> bool:
        return self._exec[host_id].is_overloaded()

    def busy_host_ids(self):
        for host_id in self._order:
            if self._exec[host_id].n_running:
                yield host_id

    def mean_utilization(self) -> float:
        """Scalar twin of :meth:`repro.cloud.engine.HostEngine.
        mean_utilization`: per-host/per-dimension load over effective
        capacity, clipped to [0, 1] and averaged."""
        if not self._order:
            return 0.0
        total = 0.0
        dims = 0
        for host_id in self._order:
            ex = self._exec[host_id]
            eff = ex.effective_capacity()
            load = ex.load()
            util = np.where(eff > 0.0, load / np.where(eff > 0.0, eff, 1.0), 0.0)
            total += float(np.clip(util, 0.0, 1.0).sum())
            dims += util.size
        return total / dims

    # ------------------------------------------------------------------
    # progress integration
    # ------------------------------------------------------------------
    def advance_all(self, now: float) -> None:
        for host_id in self._order:
            self._exec[host_id].advance(now)

    # ------------------------------------------------------------------
    # completion calendar
    # ------------------------------------------------------------------
    def _predict(self, host_id: int) -> None:
        self._gen_counter += 1
        self._gen[host_id] = self._gen_counter
        nxt = self._exec[host_id].next_completion()
        self._next[host_id] = nxt
        if nxt is not None:
            heapq.heappush(self._heap, (nxt[0], self._gen_counter, host_id))

    def next_completion(self, host_id: int) -> Optional[tuple[float, Task]]:
        return self._next[host_id]

    def peek(self) -> Optional[tuple[float, int, int]]:
        while self._heap:
            when, gen, host_id = self._heap[0]
            if gen != self._gen[host_id]:
                heapq.heappop(self._heap)
                continue
            return when, host_id, self._next[host_id][1].task_id
        return None

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def place(self, host_id: int, task: Task, now: float) -> None:
        self._exec[host_id].place(task, now)
        self._predict(host_id)

    def remove(self, host_id: int, task_id: int, now: float) -> Task:
        task = self._exec[host_id].remove(task_id, now)
        self._predict(host_id)
        return task

    def evict_all(self, host_id: int, now: float) -> list[Task]:
        ex = self._exec[host_id]
        out = []
        for task in ex.running_tasks():
            out.append(ex.remove(task.task_id, now))
        self._predict(host_id)
        return out

    def complete(self, host_id: int, task_id: int, now: float) -> Task:
        task = self._exec[host_id].complete(task_id, now)
        self._predict(host_id)
        return task


class ReferenceStateCache:
    """The original scalar dict-of-records implementation of the duty-node
    cache γ, kept verbatim as the behavioural oracle for the vectorized
    :class:`~repro.core.state.StateCache` (equivalence tests and the
    old-vs-new microbenchmark compare against it)."""

    def __init__(self, ttl: float):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self._records: dict[int, StateRecord] = {}

    def put(self, record: StateRecord) -> None:
        existing = self._records.get(record.owner)
        if existing is None or existing.timestamp <= record.timestamp:
            self._records[record.owner] = record

    def evict_owner(self, owner: int) -> None:
        self._records.pop(owner, None)

    def purge(self, now: float) -> None:
        cutoff = now - self.ttl
        stale = [o for o, r in self._records.items() if r.timestamp < cutoff]
        for o in stale:
            del self._records[o]

    def non_empty(self, now: float) -> bool:
        self.purge(now)
        return bool(self._records)

    def records(self, now: float) -> list[StateRecord]:
        self.purge(now)
        return list(self._records.values())

    def qualified(self, demand, now, limit=None, exclude=None) -> list[StateRecord]:
        self.purge(now)
        skip = set(exclude) if exclude is not None else ()
        out: list[StateRecord] = []
        for rec in self._records.values():
            if rec.owner in skip:
                continue
            if rec.qualifies(demand):
                out.append(rec)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def __len__(self) -> int:
        return len(self._records)


def assert_engines_equivalent(
    seed: int,
    n_hosts: int = 16,
    steps: int = 300,
    atol: float = 1e-9,
    churn: bool = True,
) -> dict:
    """Drive :class:`repro.cloud.engine.HostEngine` and
    :class:`ReferenceHostEngine` through one randomized schedule of
    place / remove / complete / evict-all / join / advance-all operations
    and assert they stay indistinguishable: identical completion order
    (host and task ids exact, times within ``atol``) and identical
    availabilities (within ``atol``).

    Raises ``AssertionError`` on the first divergence; returns summary
    counters (used by the equivalence tests and the pre-commit smoke).
    """
    from repro.cloud.engine import HostEngine
    from repro.cloud.machine import capacity_matrix, sample_machines
    from repro.cloud.tasks import TaskFactory

    rng = np.random.default_rng(seed)
    vec = HostEngine()
    ref = ReferenceHostEngine()
    # Identically-seeded factories give each engine its own (mutable) copy
    # of every task.
    fac_vec = TaskFactory(0.5, np.random.default_rng(seed + 1))
    fac_ref = TaskFactory(0.5, np.random.default_rng(seed + 1))

    machine_rng = np.random.default_rng(seed + 2)
    bandwidths = machine_rng.uniform(5.0, 10.0, n_hosts).tolist()
    machines = sample_machines(machine_rng, bandwidths)
    host_ids = list(range(n_hosts))
    caps = capacity_matrix(machines)
    vec.add_hosts(host_ids, caps)
    ref.add_hosts(host_ids, caps)

    now = 0.0
    next_host_id = n_hosts
    resident: dict[int, int] = {}  # task_id -> host_id
    stats = {"placed": 0, "completed": 0, "removed": 0, "evicted": 0, "joined": 0}

    def check_host(host_id: int) -> None:
        a = vec.availability(host_id)
        b = ref.availability(host_id)
        assert np.allclose(a, b, atol=atol, rtol=0.0), (
            f"availability diverged on host {host_id}: {a} vs {b}"
        )
        assert vec.n_running(host_id) == ref.n_running(host_id)
        assert vec.is_overloaded(host_id) == ref.is_overloaded(host_id)

    for _ in range(steps):
        now += float(rng.exponential(50.0))
        op = rng.random()
        if op < 0.45:  # place a fresh task on a random host
            host_id = host_ids[int(rng.integers(len(host_ids)))]
            task_vec = fac_vec.create(host_id, now)
            task_ref = fac_ref.create(host_id, now)
            vec.place(host_id, task_vec, now)
            ref.place(host_id, task_ref, now)
            resident[task_vec.task_id] = host_id
            stats["placed"] += 1
        elif op < 0.80:  # drain the globally-earliest completion
            head_vec = vec.peek()
            head_ref = ref.peek()
            if head_vec is None or head_ref is None:
                assert head_vec == head_ref, (
                    f"calendar heads diverged: {head_vec} vs {head_ref}"
                )
                continue
            assert head_vec[1:] == head_ref[1:], (
                f"calendar heads diverged: {head_vec} vs {head_ref}"
            )
            assert abs(head_vec[0] - head_ref[0]) <= atol
            when, host_id, task_id = head_vec
            now = max(now, when)
            done_vec = vec.complete(host_id, task_id, now)
            done_ref = ref.complete(host_id, task_id, now)
            assert done_vec.finish_time == done_ref.finish_time == now
            del resident[task_id]
            stats["completed"] += 1
        elif op < 0.88 and resident:  # evict one random resident task
            task_id = sorted(resident)[int(rng.integers(len(resident)))]
            host_id = resident.pop(task_id)
            out_vec = vec.remove(host_id, task_id, now)
            out_ref = ref.remove(host_id, task_id, now)
            assert np.allclose(
                out_vec.remaining_work, out_ref.remaining_work, atol=atol, rtol=0.0
            ), "evicted task progress diverged"
            stats["removed"] += 1
        elif op < 0.94 and churn:  # a host crashes out, losing every task
            host_id = host_ids[int(rng.integers(len(host_ids)))]
            out_vec = vec.evict_all(host_id, now)
            out_ref = ref.evict_all(host_id, now)
            assert [t.task_id for t in out_vec] == [t.task_id for t in out_ref]
            for task in out_vec:
                del resident[task.task_id]
            stats["evicted"] += len(out_vec)
        elif op < 0.97 and churn:  # a fresh host joins mid-run
            machine = sample_machines(machine_rng, [7.5])[0]
            vec.add_host(next_host_id, machine.capacity.values)
            ref.add_host(next_host_id, machine.capacity.values)
            host_ids.append(next_host_id)
            next_host_id += 1
            stats["joined"] += 1
        else:  # the checkpoint tick's bulk progress integration
            vec.advance_all(now)
            ref.advance_all(now)

        for host_id in rng.choice(host_ids, size=min(4, len(host_ids)), replace=False):
            check_host(int(host_id))

    # final drain: every remaining completion must agree in order and time
    while True:
        head_vec = vec.peek()
        head_ref = ref.peek()
        if head_vec is None or head_ref is None:
            assert head_vec == head_ref
            break
        assert head_vec[1:] == head_ref[1:]
        assert abs(head_vec[0] - head_ref[0]) <= atol
        when, host_id, task_id = head_vec
        now = max(now, when)
        vec.complete(host_id, task_id, now)
        ref.complete(host_id, task_id, now)
        del resident[task_id]
        stats["completed"] += 1

    for host_id in host_ids:
        check_host(host_id)
    return stats


# ----------------------------------------------------------------------
# scalar CAN geometry / routing oracles (the seed implementations,
# preserved verbatim)
# ----------------------------------------------------------------------
class ReferenceZone:
    """The seed's per-object scalar zone predicates, kept verbatim as the
    behavioural oracle for :class:`repro.can.geometry.ZoneStore`: plain
    tuple arithmetic, dimension-ordered gap accumulation, ``acc ** 0.5``."""

    __slots__ = ("lo", "hi", "_lo", "_hi")

    def __init__(self, lo, hi):
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("lo/hi must be 1-D arrays of equal length")
        if bool(np.any(hi <= lo)):
            raise ValueError(f"degenerate zone lo={lo} hi={hi}")
        self.lo = lo
        self.hi = hi
        self._lo = tuple(lo.tolist())
        self._hi = tuple(hi.tolist())

    def contains(self, point) -> bool:
        """Half-open containment; the unit cube's top faces are closed."""
        lo, hi = self._lo, self._hi
        for k in range(len(lo)):
            v = point[k]
            if v < lo[k]:
                return False
            if v >= hi[k] and not (v == hi[k] == 1.0):
                return False
        return True

    def distance_to_point(self, point) -> float:
        return reference_distance_to_point(self, point)


def reference_distance_to_point(zone, point) -> float:
    """The seed's scalar box distance (any object exposing ``_lo``/``_hi``
    tuples — :class:`repro.can.zone.Zone` or :class:`ReferenceZone`)."""
    lo, hi = zone._lo, zone._hi
    acc = 0.0
    for k in range(len(lo)):
        v = point[k]
        if v < lo[k]:
            gap = lo[k] - v
        elif v > hi[k]:
            gap = v - hi[k]
        else:
            continue
        acc += gap * gap
    return acc ** 0.5


def reference_adjacency_direction(a, b) -> Optional[tuple[int, int]]:
    """The seed's scalar CAN-neighborship test, verbatim."""
    a_lo, a_hi = a._lo, a._hi
    b_lo, b_hi = b._lo, b._hi
    abut_dim: Optional[tuple[int, int]] = None
    for k in range(len(a_lo)):
        if a_hi[k] == b_lo[k]:
            sign = +1
        elif b_hi[k] == a_lo[k]:
            sign = -1
        else:
            # must openly overlap on this dimension
            if a_lo[k] < b_hi[k] and b_lo[k] < a_hi[k]:
                continue
            return None
        if abut_dim is not None:
            return None  # abuts on two dimensions: corner contact only
        abut_dim = (k, sign)
    return abut_dim


def reference_is_negative_direction_of(b, a) -> bool:
    """The seed's scalar negative-direction test (§III-A), verbatim."""
    b_lo, a_hi = b._lo, a._hi
    for k in range(len(b_lo)):
        if b_lo[k] >= a_hi[k]:
            return False
    return True


class ReferenceCANOverlay(CANOverlay):
    """Scalar oracle overlay: identical membership/tree mechanics, but
    adjacency is recomputed per call and per candidate with the verbatim
    scalar predicate — no batched geometry, no cached edge directions.
    Routed with :func:`reference_greedy_path` it reproduces the seed's
    behaviour end to end; the lockstep equivalence suites drive it next
    to the vectorized :class:`~repro.can.overlay.CANOverlay`."""

    _caches_directions = False

    def directional_neighbors(
        self, node_id: int, dim: int, sign: int
    ) -> list[int]:
        node = self.nodes[node_id]
        out = []
        for m in node.neighbors:
            d = reference_adjacency_direction(node.zone, self.nodes[m].zone)
            if d is not None and d == (dim, sign):
                out.append(m)
        out.sort()
        return out

    def _rebind_neighbors(self, node_id: int, candidates: set[int]) -> None:
        node = self.nodes[node_id]
        for cand_id in candidates:
            if cand_id == node_id:
                continue
            cand = self.nodes.get(cand_id)
            if cand is None:
                continue
            if reference_adjacency_direction(node.zone, cand.zone) is not None:
                node.neighbors.add(cand_id)
                cand.neighbors.add(node_id)
            else:
                node.neighbors.discard(cand_id)
                cand.neighbors.discard(node_id)


def reference_greedy_path(
    overlay: CANOverlay,
    start_id: int,
    point: np.ndarray,
    max_hops: Optional[int] = None,
    extra_links: Optional[Callable[[int], list[int]]] = None,
) -> list[int]:
    """The seed's per-candidate greedy forwarding loop, verbatim: one
    scalar ``distance_to_point`` per candidate per hop, lowest-id
    tie-break, scalar perimeter walk.  Runs against either overlay class
    (it only reads zones and neighbor sets)."""
    # Plain floats: the per-hop distance predicates index the point
    # element-wise, where np.float64 boxing costs more than the math.
    p = tuple(float(x) for x in np.asarray(point, dtype=np.float64))
    if max_hops is None:
        max_hops = 4 * (len(overlay) + 1)

    current = overlay.nodes[start_id]
    path = [start_id]
    current_dist = reference_distance_to_point(current.zone, p)

    while not current.zone.contains(p):
        if current_dist == 0.0:
            # p sits on the boundary of the current zone: finish with a
            # perimeter walk across the zero-distance cluster.
            path.extend(_reference_perimeter_hops(overlay, current.node_id, p))
            return path
        candidates = list(current.neighbors)
        if extra_links is not None:
            candidates.extend(extra_links(current.node_id))
        best_id = -1
        best_dist = np.inf
        for cand_id in candidates:
            cand = overlay.nodes.get(cand_id)
            if cand is None:
                continue  # stale long link (churn); skip
            d = reference_distance_to_point(cand.zone, p)
            if d < best_dist or (d == best_dist and cand_id < best_id):
                best_dist = d
                best_id = cand_id
        if best_id < 0 or best_dist >= current_dist:
            raise RoutingError(
                f"no progress at node {current.node_id} toward {p} "
                f"(dist {current_dist}, best neighbor {best_dist})"
            )
        current = overlay.nodes[best_id]
        current_dist = best_dist
        path.append(best_id)
        if len(path) > max_hops:
            raise RoutingError(f"exceeded {max_hops} hops toward {p}")
    return path


def _reference_perimeter_hops(
    overlay: CANOverlay, start_id: int, point
) -> list[int]:
    """The seed's scalar boundary walk, verbatim."""
    owner_id = overlay.owner_of(point)
    if owner_id == start_id:
        return []
    seen = {start_id}
    queue: deque[tuple[int, list[int]]] = deque([(start_id, [])])
    budget = 4 ** overlay.dims  # generous cap on the incident cluster size
    while queue and budget > 0:
        node_id, hops = queue.popleft()
        for m in sorted(overlay.nodes[node_id].neighbors):
            if m in seen:
                continue
            zone = overlay.nodes[m].zone
            if reference_distance_to_point(zone, point) != 0.0:
                continue
            seen.add(m)
            budget -= 1
            if m == owner_id:
                return hops + [m]
            queue.append((m, hops + [m]))
    # Backstop: jump straight to the owner (counts as one hop).
    return [owner_id]


def reference_inscan_path(
    overlay: CANOverlay,
    tables: dict,
    start_id: int,
    point: np.ndarray,
    max_hops: Optional[int] = None,
) -> list[int]:
    """The seed's INSCAN routing, verbatim: greedy over neighbors ∪ the
    per-node pointer-table links supplied through the callback form."""

    def extra(node_id: int) -> list[int]:
        table = tables.get(node_id)
        return table.all_links() if table is not None else []

    return reference_greedy_path(
        overlay, start_id, point, max_hops=max_hops, extra_links=extra
    )


class ReferenceDiffusionEngine(DiffusionEngine):
    """Scalar oracle for the diffusion engine's NINode selection: the
    seed's list-comprehension pool filter, verbatim (same RNG draw
    discipline, so identically-seeded engines stay stream-compatible
    with the array-backed production path)."""

    def _pick_ninodes(self, node: int, dim: int, k: int, exclude: int) -> list[int]:
        table = self.tables.get(node)
        if table is None:
            return []
        pool = [
            t
            for t in table.negative_index_nodes(dim)
            if t != exclude and t != node and self.ctx.is_alive(t)
        ]
        if not pool:
            return []
        if len(pool) <= k:
            return list(pool)
        idx = self.ctx.rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in idx]


# ----------------------------------------------------------------------
# randomized overlay lockstep schedule
# ----------------------------------------------------------------------
def _diffusion_rig(overlay: CANOverlay, engine_cls, seed: int, dead: set[int]):
    """A DiffusionEngine over ``overlay``'s freshly-built tables with its
    own deterministic context (twin rigs share ``dead`` and seeds)."""
    sim = Simulator()
    ctx = ProtocolContext(
        sim=sim,
        network=NetworkModel(NetworkParams(), np.random.default_rng(seed + 1)),
        traffic=TrafficMeter(),
        rng=np.random.default_rng(seed + 2),
        cmax=np.ones(overlay.dims),
        availability_of=lambda i: np.zeros(overlay.dims),
        is_alive=lambda i: i not in dead,
    )
    tables = {
        i: build_index_table(overlay, i, np.random.default_rng(seed + 3 + i))
        for i in sorted(overlay.nodes)
    }
    pilists = {i: PIList(1200.0) for i in sorted(overlay.nodes)}
    return engine_cls(ctx, tables, pilists, overlay.dims, L=2), tables


def assert_overlays_equivalent(
    seed: int,
    n: int = 32,
    dims: int = 3,
    steps: int = 60,
    routes_per_check: int = 8,
) -> dict:
    """Drive the vectorized :class:`~repro.can.overlay.CANOverlay` and the
    scalar :class:`ReferenceCANOverlay` through one identically-seeded
    randomized schedule of joins, leaves, greedy/INSCAN routes (single and
    batched, including exact-boundary targets) and SID/HID diffusion
    triggers, asserting they stay indistinguishable: identical adjacency
    sets, directional neighbor lists, routing paths (hop for hop) and
    diffusion recipients/messages/depth.

    Raises ``AssertionError`` on the first divergence; returns summary
    counters (used by the equivalence tests and the pre-commit smoke).
    """
    rng = np.random.default_rng(seed)
    vec = CANOverlay(dims, np.random.default_rng(seed + 1))
    ref = ReferenceCANOverlay(dims, np.random.default_rng(seed + 1))
    vec.bootstrap(range(n))
    ref.bootstrap(range(n))
    next_id = n
    stats = {"joined": 0, "left": 0, "routes": 0, "boundary_routes": 0,
             "diffusions": 0}

    def check_structure() -> None:
        assert set(vec.nodes) == set(ref.nodes)
        for node_id in vec.nodes:
            assert vec.nodes[node_id].neighbors == ref.nodes[node_id].neighbors, (
                f"adjacency diverged at node {node_id}"
            )
            for dim in range(dims):
                for sign in (+1, -1):
                    assert (
                        vec.directional_neighbors(node_id, dim, sign)
                        == ref.directional_neighbors(node_id, dim, sign)
                    ), f"directional neighbors diverged at {node_id}"
        vec.check_invariants()

    def check_routes() -> None:
        ids = sorted(vec.nodes)
        starts = [ids[int(rng.integers(len(ids)))] for _ in range(routes_per_check)]
        points = rng.uniform(0, 1, (routes_per_check, dims))
        # a couple of exact-boundary targets to force perimeter walks
        for j in range(min(2, routes_per_check)):
            points[j] = np.round(points[j] * 4) / 4
            stats["boundary_routes"] += 1
        vec_tables = {
            i: build_index_table(vec, i, np.random.default_rng(seed + 7 + i))
            for i in ids
        }
        ref_tables = {
            i: build_index_table(ref, i, np.random.default_rng(seed + 7 + i))
            for i in ids
        }
        for s, p in zip(starts, points):
            got = greedy_path(vec, s, p)
            want = reference_greedy_path(ref, s, p)
            assert got == want, f"greedy path diverged from {s} to {p}"
            got = greedy_path(vec, s, p, link_tables=vec_tables)
            want = reference_inscan_path(ref, ref_tables, s, p)
            assert got == want, f"inscan path diverged from {s} to {p}"
            stats["routes"] += 2
        batch = greedy_paths(vec, starts, points, link_tables=vec_tables)
        singles = [
            greedy_path(vec, s, p, link_tables=vec_tables)
            for s, p in zip(starts, points)
        ]
        assert batch == singles, "batched routing diverged from single-route"

    def check_diffusion() -> None:
        dead: set[int] = set()
        ids = sorted(vec.nodes)
        if len(ids) > 4:
            dead.add(ids[int(rng.integers(len(ids)))])
        vec_engine, vec_tables = _diffusion_rig(
            vec, DiffusionEngine, seed + 11, dead
        )
        ref_engine, ref_tables = _diffusion_rig(
            ref, ReferenceDiffusionEngine, seed + 11, dead
        )
        for node_id in ids:
            assert (
                vec_tables[node_id].links == ref_tables[node_id].links
            ), f"pointer table diverged at {node_id}"
        for origin in ids[:: max(1, len(ids) // 6)]:
            for method in ("hid", "sid"):
                got = vec_engine.diffuse(origin, method)
                want = ref_engine.diffuse(origin, method)
                assert got.recipients == want.recipients, (
                    f"{method} recipients diverged from {origin}"
                )
                assert got.messages == want.messages
                assert got.max_depth == want.max_depth
                stats["diffusions"] += 1

    check_structure()
    for step in range(steps):
        op = rng.random()
        if op < 0.5 or len(vec) <= 2:
            point = rng.uniform(0, 1, dims)
            vec.join(next_id, point)
            ref.join(next_id, point)
            next_id += 1
            stats["joined"] += 1
        else:
            ids = sorted(vec.nodes)
            victim = ids[int(rng.integers(len(ids)))]
            vec.leave(victim)
            ref.leave(victim)
            stats["left"] += 1
        if step % 7 == 0:
            check_structure()
            check_routes()
    check_structure()
    check_routes()
    check_diffusion()
    return stats


class ProtocolSandbox:
    """Overlay + context + per-node protocol state, minus the SOC runner."""

    def __init__(
        self,
        n: int = 32,
        dims: int = 2,
        seed: int = 0,
        cmax: np.ndarray | None = None,
        state_ttl: float = 600.0,
        pilist_ttl: float = 1200.0,
        overlay_cls: type | None = None,
    ):
        self.sim = Simulator()
        rng = np.random.default_rng(seed)
        self.network = NetworkModel(NetworkParams(), np.random.default_rng(seed + 1))
        self.traffic = TrafficMeter()
        self.dead: set[int] = set()
        self.availability: dict[int, np.ndarray] = {}
        self.cmax = np.ones(dims) if cmax is None else np.asarray(cmax, float)

        self.overlay = (overlay_cls or CANOverlay)(dims, rng)
        self.overlay.bootstrap(range(n))
        for node_id in range(n):
            self.network.add_node(node_id)
            self.availability[node_id] = np.zeros(dims)

        self.ctx = ProtocolContext(
            sim=self.sim,
            network=self.network,
            traffic=self.traffic,
            rng=np.random.default_rng(seed + 2),
            cmax=self.cmax,
            availability_of=lambda i: self.availability[i],
            is_alive=lambda i: i not in self.dead,
        )
        self.tables = {
            i: build_index_table(self.overlay, i, np.random.default_rng(seed + 3))
            for i in self.overlay.node_ids()
        }
        self.caches = {i: StateCache(state_ttl) for i in self.overlay.node_ids()}
        self.pilists = {i: PIList(pilist_ttl) for i in self.overlay.node_ids()}

    # ------------------------------------------------------------------
    def plant_record(
        self, holder: int, owner: int, availability, ts: float = 0.0
    ) -> StateRecord:
        """Put a state record for ``owner`` into ``holder``'s cache γ."""
        rec = StateRecord(owner, np.asarray(availability, float), ts)
        self.caches[holder].put(rec)
        return rec

    def duty_of(self, point) -> int:
        """The duty node whose zone encloses ``point``."""
        return self.overlay.owner_of(np.asarray(point, float))

    def kill(self, node_id: int) -> None:
        """Mark a node dead: messages to it are dropped from now on."""
        self.dead.add(node_id)


# ----------------------------------------------------------------------
# Cohort ticking oracle (docs/coalescing.md)
# ----------------------------------------------------------------------
class ReferenceCohortScheduler:
    """Per-member grid chains: the oracle :class:`repro.sim.engine.
    CohortTimer` must be delivery-identical to.

    Every member gets its own self-rechaining timer firing at
    ``epoch + k * interval`` (the same multiplicative grid the cohort
    timer uses, via :func:`repro.sim.engine.next_grid_index`), and the
    callback receives a one-member batch ``fn((member,))``.  Because
    members are armed in insertion order and the simulator heap breaks
    time ties by schedule sequence, the global ``(time, member)``
    delivery log of N per-member chains equals one cohort timer's — the
    contract the hypothesis machine in ``tests/sim`` drives.

    The one caveat is the measure-zero straggler edge: a member added
    *exactly* at a grid instant, in an event ordered after that
    instant's tick, first fires one period later here but at the pending
    instant under the cohort timer.  Drive comparisons with off-grid
    add times (e.g. half-integer advances) to stay out of it.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        fn,
        epoch: float | None = None,
        priority: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = float(interval)
        self.fn = fn
        self.epoch = sim.now if epoch is None else float(epoch)
        self.priority = priority
        # member -> chain generation.  A discard orphans the member's
        # pending chain event; a later re-add starts a *new* chain with a
        # fresh generation, and the orphan self-terminates on its
        # generation check — otherwise add/discard/add would leave two
        # live chains delivering the member twice per round.
        self._gen: dict[int, int] = {}
        self._next_gen = 0

    def __len__(self) -> int:
        return len(self._gen)

    def __contains__(self, member: int) -> bool:
        return member in self._gen

    def add(self, member: int) -> None:
        if member in self._gen:
            return
        gen = self._next_gen
        self._next_gen += 1
        self._gen[member] = gen
        self._arm(
            member, next_grid_index(self.epoch, self.interval, self.sim.now), gen
        )

    def discard(self, member: int) -> None:
        self._gen.pop(member, None)

    def cancel(self) -> None:
        self._gen.clear()

    def _arm(self, member: int, k: int, gen: int) -> None:
        self.sim.schedule_at(
            self.epoch + k * self.interval,
            self._tick,
            member,
            k,
            gen,
            priority=self.priority,
        )

    def _tick(self, member: int, k: int, gen: int) -> None:
        if self._gen.get(member) != gen:
            return
        self.fn((member,))
        self._arm(member, k + 1, gen)


def assert_tick_modes_equivalent(config, *, abort_after: float | None = None):
    """Run ``config`` once per tick mode and assert the runs are
    metric- and series-identical.

    ``config`` must carry quantized phases (``phase_buckets >= 1``) so
    the per-node grid chains and the cohort timers share fire instants;
    this helper flips only ``pidcan.tick_mode``.  Equality is exact —
    not approx — because cohort coalescing is a pure event-batching
    transform: same RNG streams, same instants, same delivery order.

    Returns the ``(per_node, cohort)`` result pair so callers can make
    further assertions (e.g. ``generated > 0``).
    """
    from dataclasses import replace

    from repro.experiments.runner import SOCSimulation

    if config.pidcan.phase_buckets < 1:
        raise ValueError("assert_tick_modes_equivalent needs phase_buckets >= 1")

    results = []
    for mode in ("per-node", "cohort"):
        cfg = replace(config, pidcan=replace(config.pidcan, tick_mode=mode))
        sim = SOCSimulation(cfg)
        if abort_after is not None:
            sim.sim.schedule(abort_after, sim.sim.stop)
        results.append(sim.run())
    per_node, cohort = results
    assert_results_identical(per_node, cohort)
    return per_node, cohort


def assert_results_identical(a, b) -> None:
    """Assert two :class:`SimulationResult` runs are metric- and
    series-identical.  Equality is exact — not approx — because every
    coalescing lever (cohort ticking, arrival batching, delivery
    batching) is a pure event-batching transform: same RNG streams, same
    instants, same delivery order."""
    assert a.generated == b.generated
    assert a.finished == b.finished
    assert a.failed == b.failed
    assert a.placed == b.placed
    assert a.evicted == b.evicted
    assert a.recovered == b.recovered
    assert a.query_timeouts == b.query_timeouts
    assert a.peak_population == b.peak_population
    assert a.traffic_by_kind == b.traffic_by_kind
    assert a.traffic_total == b.traffic_total
    assert a.balance == b.balance
    assert a.query_latency == b.query_latency
    assert a.efficiencies == b.efficiencies
    assert set(a.series) == set(b.series)
    for name, series in a.series.items():
        other = b.series[name]
        assert series.times == other.times, f"{name} sample times diverge"
        # Exact equality, but NaN == NaN (early fairness samples are NaN
        # before any task finishes).
        assert np.array_equal(
            np.asarray(series.values), np.asarray(other.values), equal_nan=True
        ), f"{name} sample values diverge"


class ReferencePIList:
    """The seed's scalar PIList (§III-B), verbatim — dict of insertion
    stamps, ``min()``-scan eviction — kept as the behavioural oracle for
    the :class:`repro.core.cache.RangeCache` TTL policy that now backs
    :class:`repro.core.pilist.PIList`."""

    def __init__(self, ttl: float, max_size: int = 64):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self.max_size = int(max_size)
        self._added_at: dict[int, float] = {}
        #: Latest simulation time this list has observed; ``__len__`` and
        #: ``__contains__`` expire against it so they agree with the most
        #: recent ``entries()``/``sample()`` view (sim time is monotonic).
        self._clock = 0.0

    def _observe(self, now: float) -> None:
        if now > self._clock:
            self._clock = now

    def add(self, node_id: int, now: float) -> None:
        """Insert or refresh an index; evict the stalest when full."""
        self._observe(now)
        self._added_at[node_id] = now
        if len(self._added_at) > self.max_size:
            oldest = min(self._added_at, key=lambda k: (self._added_at[k], k))
            del self._added_at[oldest]

    def discard(self, node_id: int) -> None:
        self._added_at.pop(node_id, None)

    def purge(self, now: float) -> None:
        self._observe(now)
        cutoff = now - self.ttl
        stale = [k for k, t in self._added_at.items() if t < cutoff]
        for k in stale:
            del self._added_at[k]

    def entries(self, now: float) -> list[int]:
        self.purge(now)
        return sorted(self._added_at)

    def sample(self, k: int, now: float, rng: np.random.Generator) -> list[int]:
        """Up to ``k`` distinct indexes, uniformly at random (Algorithm 4
        line 1)."""
        pool = self.entries(now)
        if len(pool) <= k:
            return pool
        picked = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in picked]

    def __len__(self) -> int:
        """Live entry count as of the latest observed time (stale entries
        are not reported, matching ``entries()``/``sample()``)."""
        self.purge(self._clock)
        return len(self._added_at)

    def __contains__(self, node_id: int) -> bool:
        added = self._added_at.get(node_id)
        return added is not None and added >= self._clock - self.ttl


def assert_cache_off_equivalent(config):
    """Run ``config`` (which must have the hot-range cache off) twice —
    once stock, once with every protocol PIList swapped for the scalar
    :class:`ReferencePIList` — and assert the runs are metric- and
    series-identical.

    This pins the cache-off contract of docs/caching.md from both ends:
    the RangeCache-backed PIList is draw-for-draw the seed implementation,
    and with ``cache_policy=None`` no other cache code runs at all.
    Returns the ``(stock, reference)`` result pair.
    """
    from repro.core import protocol as protocol_mod
    from repro.experiments.runner import SOCSimulation

    if config.cache_policy is not None:
        raise ValueError("assert_cache_off_equivalent needs cache_policy=None")

    stock = SOCSimulation(config).run()
    original = protocol_mod.PIList
    protocol_mod.PIList = ReferencePIList
    try:
        reference = SOCSimulation(config).run()
    finally:
        protocol_mod.PIList = original
    assert_results_identical(stock, reference)
    return stock, reference


class ReferenceDeliveryCalendar:
    """Per-message scheduling behind the calendar API, kept as the
    behavioural oracle for :class:`repro.sim.delivery.DeliveryCalendar`:
    every ``deliver`` is its own heap event, exactly the pre-calendar
    discipline.  Counters mirror the calendar's (each delivery is its own
    flush) so accounting comparisons read symmetrically."""

    __slots__ = ("sim", "quantum", "deliveries", "flushes")

    def __init__(self, sim: Simulator, quantum: float = 0.0):
        if quantum < 0:
            raise ValueError("quantum must be >= 0")
        self.sim = sim
        self.quantum = float(quantum)
        self.deliveries = 0
        self.flushes = 0

    def deliver(self, delay: float, fn: Callable, *args) -> None:
        self.deliver_at(self.sim.now + delay, fn, *args)

    def deliver_at(self, when: float, fn: Callable, *args) -> None:
        if self.quantum > 0.0:
            when = math.ceil(when / self.quantum) * self.quantum
        self.deliveries += 1
        self.flushes += 1
        self.sim.schedule_at(when, fn, *args)


def assert_delivery_modes_equivalent(config, *, abort_after: float | None = None):
    """Run ``config`` once per delivery mode (per-message vs coalesced,
    quantum 0) and assert the runs are metric- and series-identical.

    Coalescing at quantum 0 batches only genuinely same-instant
    deliveries and replays each batch in enqueue order, so the runs must
    match exactly.  Returns the ``(per_message, coalesced)`` result pair
    so callers can make further assertions (e.g. ``generated > 0``).
    """
    from dataclasses import replace

    from repro.experiments.runner import SOCSimulation

    results = []
    for coalesce in (False, True):
        cfg = replace(
            config, coalesce_deliveries=coalesce, delivery_quantum=0.0
        )
        sim = SOCSimulation(cfg)
        if abort_after is not None:
            sim.sim.schedule(abort_after, sim.sim.stop)
        results.append(sim.run())
    per_message, coalesced = results
    assert_results_identical(per_message, coalesced)
    return per_message, coalesced
