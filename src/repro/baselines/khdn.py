"""KHDN-CAN — the K-Hop DHT-Neighbor range-query baseline (§IV-A).

The paper describes it as RT-CAN [22] tailor-made for the SOC setting (and
"converted from INSCAN-RQ"): once a state message reaches its duty node it
is *spread to negative CAN neighbors within K hops*, so queries arriving at
the minimal-demand zone can find qualified records by checking the duty node
and a sample of its K-hop positive neighborhood.

Replication trades state-update traffic for query locality — the exact
opposite trade to PID-CAN's constant-ω index diffusion, which is the
comparison §IV draws.  ``replication_fanout`` bounds the per-hop spread so
total traffic can be tuned close to PID-CAN's (the paper tunes K for
traffic parity).

Query state (found records, message count, the failsafe timeout that
resolves probe chains lost to churn) lives in the shared
:class:`~repro.core.lifecycle.QueryLifecycle`; probe messages carry only
the query id plus the remaining probe list.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.can_base import CANStateBaseline
from repro.can.inscan import inscan_path
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.lifecycle import QueryRuntime
from repro.core.protocol import PIDCANParams
from repro.core.state import StateRecord

__all__ = ["KHDNProtocol"]


class KHDNProtocol(CANStateBaseline):
    """K-hop negative replication + positive probing on INSCAN."""

    name = "khdn-can"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        k_hops: int = 2,
        replication_fanout: int = 2,
        max_probes: int = 12,
        overlay_cls: type | None = None,
    ):
        super().__init__(ctx, params, overlay_cls=overlay_cls)
        self.k_hops = k_hops
        self.replication_fanout = replication_fanout
        self.max_probes = max_probes

    # ------------------------------------------------------------------
    # K-hop negative replication of delivered state
    # ------------------------------------------------------------------
    def _on_state_stored(self, duty: int, record: StateRecord) -> None:
        # Spread to sampled negative neighbors within K hops; each tree edge
        # is one replication message, charged in bulk.
        replicas = self._sampled_frontier(duty, sign=-1)
        if not replicas:
            return
        self.ctx.charge_local("state-replication", duty, len(replicas))
        for replica in replicas:
            target = self.caches.get(replica)
            if target is not None:
                target.put(record)

    def _sampled_frontier(self, start: int, sign: int) -> list[int]:
        """Sampled BFS through ``sign``-direction adjacent neighbors, up to
        ``k_hops`` deep with per-node fanout ``replication_fanout``."""
        seen = {start}
        frontier = [start]
        out: list[int] = []
        for _ in range(self.k_hops):
            nxt: list[int] = []
            for node in frontier:
                if node not in self.overlay:
                    continue
                candidates: list[int] = []
                for dim in range(self.overlay.dims):
                    candidates.extend(
                        self.overlay.directional_neighbors(node, dim, sign)
                    )
                candidates = [c for c in candidates if c not in seen]
                if not candidates:
                    continue
                k = min(self.replication_fanout, len(candidates))
                picked = self.ctx.rng.choice(len(candidates), size=k, replace=False)
                for i in picked:
                    c = candidates[i]
                    seen.add(c)
                    nxt.append(c)
                    out.append(c)
            frontier = nxt
        return out

    # ------------------------------------------------------------------
    # query: duty node + sampled positive probing
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        rt = self.lifecycle.begin(demand, requester, callback)
        point = self.ctx.normalize(rt.demand)
        try:
            path = inscan_path(self.overlay, self.tables, requester, point)
        except (RoutingError, KeyError):
            self.lifecycle.finalize(rt)
            return
        rt.messages += len(path) - 1
        self.ctx.send_path("duty-query", path, self._on_duty, rt.qid, path[-1])

    def _on_duty(self, qid: int, duty: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        now = self.ctx.sim.now
        cache = self.caches.get(duty)
        if cache is not None:
            rt.found.extend(
                cache.qualified(rt.demand, now, limit=self.params.delta)
            )
        if len(rt.found) >= self.params.delta:
            self.lifecycle.finalize(rt)
            return
        probes = self._sampled_frontier(duty, sign=+1)[: self.max_probes]
        self._probe_chain(rt, duty, probes)

    def _probe_chain(
        self, rt: QueryRuntime, current: int, probes: list[int]
    ) -> None:
        # one record per owner in ``rt.found`` (owner-keyed caches +
        # exclusion)
        if not probes or len(rt.found) >= self.params.delta:
            self.lifecycle.finalize(rt)
            return
        nxt = probes.pop(0)
        rt.messages += 1
        self.ctx.send(
            "probe-query", current, nxt, self._on_probe, rt.qid, nxt, probes
        )

    def _on_probe(self, qid: int, me: int, probes: list[int]) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        cache = self.caches.get(me)
        if cache is not None and len(cache):
            need = self.params.delta - len(rt.found)
            if need > 0:
                rt.found.extend(
                    cache.qualified(
                        rt.demand, self.ctx.sim.now, limit=need,
                        exclude={r.owner for r in rt.found},
                    )
                )
        self._probe_chain(rt, me, probes)
