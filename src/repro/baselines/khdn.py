"""KHDN-CAN — the K-Hop DHT-Neighbor range-query baseline (§IV-A).

The paper describes it as RT-CAN [22] tailor-made for the SOC setting (and
"converted from INSCAN-RQ"): once a state message reaches its duty node it
is *spread to negative CAN neighbors within K hops*, so queries arriving at
the minimal-demand zone can find qualified records by checking the duty node
and a sample of its K-hop positive neighborhood.

Replication trades state-update traffic for query locality — the exact
opposite trade to PID-CAN's constant-ω index diffusion, which is the
comparison §IV draws.  ``replication_fanout`` bounds the per-hop spread so
total traffic can be tuned close to PID-CAN's (the paper tunes K for
traffic parity).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.can.inscan import IndexPointerTable, build_index_table, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.protocol import DiscoveryProtocol, PIDCANParams
from repro.core.state import StateCache, StateRecord

__all__ = ["KHDNProtocol"]


class KHDNProtocol(DiscoveryProtocol):
    """K-hop negative replication + positive probing on INSCAN."""

    name = "khdn-can"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        k_hops: int = 2,
        replication_fanout: int = 2,
        max_probes: int = 12,
    ):
        self.ctx = ctx
        self.params = params
        self.k_hops = k_hops
        self.replication_fanout = replication_fanout
        self.max_probes = max_probes
        self.overlay = CANOverlay(params.resource_dims, ctx.rng)
        self.caches: dict[int, StateCache] = {}
        self.tables: dict[int, IndexPointerTable] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        self.overlay.bootstrap(node_ids)
        for node_id in node_ids:
            self.caches[node_id] = StateCache(self.params.state_ttl)
        for node_id in node_ids:
            self.tables[node_id] = build_index_table(self.overlay, node_id, self.ctx.rng)
        for node_id in node_ids:
            self._arm_state_updates(node_id)

    def on_join(self, node_id: int) -> None:
        self.overlay.join(node_id)
        self.caches[node_id] = StateCache(self.params.state_ttl)
        table = build_index_table(self.overlay, node_id, self.ctx.rng)
        self.tables[node_id] = table
        self.ctx.charge_local("maintenance", node_id, table.build_messages)
        self._arm_state_updates(node_id)

    def on_leave(self, node_id: int) -> None:
        if node_id in self.overlay:
            self.overlay.leave(node_id)
        self.caches.pop(node_id, None)
        self.tables.pop(node_id, None)

    # ------------------------------------------------------------------
    # state updates with K-hop negative replication
    # ------------------------------------------------------------------
    def _arm_state_updates(self, node_id: int) -> None:
        period = self.params.state_period

        def tick() -> None:
            if not self.ctx.is_alive(node_id) or node_id not in self.overlay:
                return
            self._state_update(node_id)
            self.ctx.sim.schedule(period, tick)

        self.ctx.sim.schedule(self.ctx.rng.uniform(0, period), tick)

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        point = self.ctx.normalize(availability)
        try:
            path = inscan_path(self.overlay, self.tables, node_id, point)
        except (RoutingError, KeyError):
            return
        self.ctx.send_path("state-update", path, self._deliver_state, path[-1], record)

    def _deliver_state(self, duty: int, record: StateRecord) -> None:
        cache = self.caches.get(duty)
        if cache is None:
            return
        cache.put(record)
        # Spread to sampled negative neighbors within K hops; each tree edge
        # is one replication message.
        for replica in self._sampled_frontier(duty, sign=-1):
            self.ctx.charge_local("state-replication", duty)
            target = self.caches.get(replica)
            if target is not None:
                target.put(record)

    def _sampled_frontier(self, start: int, sign: int) -> list[int]:
        """Sampled BFS through ``sign``-direction adjacent neighbors, up to
        ``k_hops`` deep with per-node fanout ``replication_fanout``."""
        seen = {start}
        frontier = [start]
        out: list[int] = []
        for _ in range(self.k_hops):
            nxt: list[int] = []
            for node in frontier:
                if node not in self.overlay:
                    continue
                candidates: list[int] = []
                for dim in range(self.overlay.dims):
                    candidates.extend(
                        self.overlay.directional_neighbors(node, dim, sign)
                    )
                candidates = [c for c in candidates if c not in seen]
                if not candidates:
                    continue
                k = min(self.replication_fanout, len(candidates))
                picked = self.ctx.rng.choice(len(candidates), size=k, replace=False)
                for i in picked:
                    c = candidates[i]
                    seen.add(c)
                    nxt.append(c)
                    out.append(c)
            frontier = nxt
        return out

    # ------------------------------------------------------------------
    # query: duty node + sampled positive probing
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        demand = np.asarray(demand, dtype=np.float64)
        point = self.ctx.normalize(demand)
        try:
            path = inscan_path(self.overlay, self.tables, requester, point)
        except (RoutingError, KeyError):
            callback([], 0)
            return
        messages = len(path) - 1
        self.ctx.send_path(
            "duty-query", path, self._on_duty, path[-1], demand, messages, callback
        )

    def _on_duty(
        self,
        duty: int,
        demand: np.ndarray,
        messages: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        now = self.ctx.sim.now
        found: list[StateRecord] = []
        cache = self.caches.get(duty)
        if cache is not None:
            found.extend(cache.qualified(demand, now, limit=self.params.delta))
        if len(found) >= self.params.delta:
            callback(found, messages)
            return
        probes = self._sampled_frontier(duty, sign=+1)[: self.max_probes]
        self._probe_chain(duty, probes, demand, found, messages, callback)

    def _probe_chain(
        self,
        current: int,
        probes: list[int],
        demand: np.ndarray,
        found: list[StateRecord],
        messages: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        # one record per owner in ``found`` (owner-keyed caches + exclusion)
        if not probes or len(found) >= self.params.delta:
            callback(found, messages)
            return
        nxt = probes.pop(0)
        self.ctx.send(
            "probe-query", current, nxt,
            self._on_probe, nxt, probes, demand, found, messages + 1, callback,
        )

    def _on_probe(
        self,
        me: int,
        probes: list[int],
        demand: np.ndarray,
        found: list[StateRecord],
        messages: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        cache = self.caches.get(me)
        if cache is not None and len(cache):
            need = self.params.delta - len(found)
            if need > 0:
                found.extend(
                    cache.qualified(
                        demand, self.ctx.sim.now, limit=need,
                        exclude={r.owner for r in found},
                    )
                )
        self._probe_chain(me, probes, demand, found, messages, callback)
