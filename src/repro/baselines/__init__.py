"""Comparator protocols from §IV-A and §III-A.

- :mod:`repro.baselines.newscast` — the Newscast gossip protocol [26]:
  unstructured partial views, fan-out limited to log2(n).
- :mod:`repro.baselines.khdn` — KHDN-CAN: K-hop DHT-neighbor replication
  with positive-direction probing (the paper's RT-CAN stand-in).
- :mod:`repro.baselines.inscan_rq` — INSCAN-RQ flooding range query: the
  complete-result strategy whose delay is ≤ 2·log2 n but whose traffic is
  log2 n + N − 1 (§III-A).
- :mod:`repro.baselines.randomwalk` — random-walk probing after duty-node
  location, the §III-A strawman.
"""

from repro.baselines.newscast import NewscastProtocol
from repro.baselines.khdn import KHDNProtocol
from repro.baselines.randomwalk import RandomWalkProtocol
from repro.baselines.inscan_rq import INSCANRangeQuery, RangeQueryResult

__all__ = [
    "NewscastProtocol",
    "KHDNProtocol",
    "RandomWalkProtocol",
    "INSCANRangeQuery",
    "RangeQueryResult",
]
