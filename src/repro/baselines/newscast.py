"""Newscast gossip discovery (reference [26]; §IV-A baseline).

Each node keeps a partial view of ``⌈log2 n⌉`` entries — (peer, availability,
timestamp) — and periodically exchanges views with one random live peer;
both sides keep the freshest entries of the union (plus a fresh self entry),
which is the standard Newscast membership dynamic.

Queries are "completely random over the partial-view cache" (§IV-B): a
random walk of ``⌈log2 n⌉`` hops; every visited node contributes fresh view
entries whose availability dominates the demand, and the walk proceeds to a
random view peer.  This gives the baseline its characteristic behaviour:
good dispersal (entries are uniformly random, so light demands spread over
the whole system) but a poor matching rate for demanding queries (no
structure directs the walk toward qualified records).

Query state (found records, message count, the failsafe timeout that
resolves walks lost to churn) lives in the shared
:class:`~repro.core.lifecycle.QueryLifecycle`; walk messages carry only
the query id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.context import ProtocolContext
from repro.core.lifecycle import QueryLifecycle
from repro.core.protocol import DiscoveryProtocol, PIDCANParams
from repro.core.state import StateRecord

__all__ = ["NewscastProtocol", "ViewEntry"]


@dataclass(frozen=True, slots=True)
class ViewEntry:
    """One cache line of a Newscast partial view."""

    peer: int
    availability: np.ndarray
    timestamp: float


class NewscastProtocol(DiscoveryProtocol):
    """Unstructured gossip comparator."""

    name = "newscast"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        view_size: int | None = None,
        walk_hops: int | None = None,
    ):
        self.ctx = ctx
        self.params = params
        self._view_size = view_size
        self._walk_hops = walk_hops
        self.views: dict[int, list[ViewEntry]] = {}
        self._population = 0
        self.lifecycle = QueryLifecycle(ctx, params.query_timeout)

    # ------------------------------------------------------------------
    # sizing (fan-out limited to log2 n, §IV-A)
    # ------------------------------------------------------------------
    def view_size(self) -> int:
        if self._view_size is not None:
            return self._view_size
        return max(2, int(np.ceil(np.log2(max(self._population, 2)))))

    def walk_hops(self) -> int:
        if self._walk_hops is not None:
            return self._walk_hops
        return max(2, int(np.ceil(np.log2(max(self._population, 2)))))

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        ids = list(node_ids)
        self._population = len(ids)
        now = self.ctx.sim.now
        size = self.view_size()
        for node_id in ids:
            peers = [p for p in ids if p != node_id]
            k = min(size, len(peers))
            picked = self.ctx.rng.choice(len(peers), size=k, replace=False) if k else []
            self.views[node_id] = [
                ViewEntry(peers[i], self.ctx.availability_of(peers[i]), now)
                for i in picked
            ]
            self._arm_gossip(node_id)

    def on_join(self, node_id: int) -> None:
        self._population = max(self._population, len(self.views) + 1)
        # A joiner learns an introducer at random — its view seeds from one
        # live node's view, matching Newscast's join-by-contact.
        intro = self.ctx.choice(sorted(self.views))
        self.views[node_id] = list(self.views.get(intro, []))[: self.view_size()]
        self._arm_gossip(node_id)

    def on_leave(self, node_id: int) -> None:
        self.views.pop(node_id, None)
        # Stale entries pointing at the departed node age out of other
        # views through the freshness truncation.

    # ------------------------------------------------------------------
    # gossip cycle
    # ------------------------------------------------------------------
    def _arm_gossip(self, node_id: int) -> None:
        self.ctx.start_periodic(
            self.params.state_period,
            lambda: self._gossip_once(node_id),
            alive=lambda: self.ctx.is_alive(node_id),
        )

    def _gossip_once(self, node_id: int) -> None:
        view = self.views.get(node_id, [])
        peer_ids = [e.peer for e in view if self.ctx.is_alive(e.peer)]
        target = self.ctx.choice(peer_ids)
        if target is None:
            return
        now = self.ctx.sim.now
        my_view = self._with_self(node_id, view, now)
        # Request + reply are charged; the merge happens at both ends after
        # one round-trip delay.
        self.ctx.send("gossip", node_id, target, self._on_gossip, node_id, target, my_view)

    def _on_gossip(self, src: int, me: int, their_view: list[ViewEntry]) -> None:
        now = self.ctx.sim.now
        my_view = self._with_self(me, self.views.get(me, []), now)
        self.views[me] = self._merge(my_view, their_view)
        # reply with our (pre-merge) view
        self.ctx.send("gossip", me, src, self._on_gossip_reply, src, my_view)

    def _on_gossip_reply(self, me: int, their_view: list[ViewEntry]) -> None:
        my_view = self.views.get(me)
        if my_view is None:
            return
        self.views[me] = self._merge(my_view, their_view)

    def _with_self(
        self, node_id: int, view: list[ViewEntry], now: float
    ) -> list[ViewEntry]:
        entry = ViewEntry(node_id, self.ctx.availability_of(node_id), now)
        return [entry] + [e for e in view if e.peer != node_id]

    def _merge(self, a: list[ViewEntry], b: list[ViewEntry]) -> list[ViewEntry]:
        freshest: dict[int, ViewEntry] = {}
        for e in list(a) + list(b):
            old = freshest.get(e.peer)
            if old is None or old.timestamp < e.timestamp:
                freshest[e.peer] = e
        merged = sorted(
            freshest.values(), key=lambda e: (-e.timestamp, e.peer)
        )
        return merged[: self.view_size()]

    # ------------------------------------------------------------------
    # query: random walk over views
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        rt = self.lifecycle.begin(demand, requester, callback)
        self._walk(rt.qid, requester, self.walk_hops())

    def _walk(self, qid: int, node_id: int, hops_left: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        now = self.ctx.sim.now
        view = self.views.get(node_id, [])
        fresh_cutoff = now - self.params.state_ttl
        for entry in view:
            if entry.timestamp < fresh_cutoff:
                continue
            if bool(np.all(entry.availability >= rt.demand - 1e-9)):
                rt.found.append(
                    StateRecord(entry.peer, entry.availability, entry.timestamp)
                )
        if len({r.owner for r in rt.found}) >= self.params.delta or hops_left <= 0:
            self.lifecycle.finalize(rt)
            return
        nxt = self.ctx.choice(
            [e.peer for e in view if e.timestamp >= fresh_cutoff and self.ctx.is_alive(e.peer)]
        )
        if nxt is None:
            self.lifecycle.finalize(rt)
            return
        rt.messages += 1
        self.ctx.send(
            "walk-query", node_id, nxt, self._walk, qid, nxt, hops_left - 1
        )
