"""Random-walk query routing after duty-node location — the §III-A strawman.

"A straightforward solution is using a random-walk query routing method
after locating the boundary-corner node.  However, in the situation with
scarce available resources, random-walk query routing may hardly find
qualified resources, significantly degrading resource matching rate."

State updates route to duty nodes exactly as in PID-CAN, but there is *no*
index diffusion: the query walks randomly through positive-direction
neighbors hoping to stumble on caches holding qualified records.  Kept as
an ablation showing what the proactive index diffusion buys.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.can.inscan import IndexPointerTable, build_index_table, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.protocol import DiscoveryProtocol, PIDCANParams
from repro.core.state import StateCache, StateRecord

__all__ = ["RandomWalkProtocol"]


class RandomWalkProtocol(DiscoveryProtocol):
    """Duty-node location + positive-direction random walk."""

    name = "randomwalk-can"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        walk_hops: int = 12,
    ):
        self.ctx = ctx
        self.params = params
        self.walk_hops = walk_hops
        self.overlay = CANOverlay(params.resource_dims, ctx.rng)
        self.caches: dict[int, StateCache] = {}
        self.tables: dict[int, IndexPointerTable] = {}

    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        self.overlay.bootstrap(node_ids)
        for node_id in node_ids:
            self.caches[node_id] = StateCache(self.params.state_ttl)
        for node_id in node_ids:
            self.tables[node_id] = build_index_table(self.overlay, node_id, self.ctx.rng)
        for node_id in node_ids:
            self._arm_state_updates(node_id)

    def on_join(self, node_id: int) -> None:
        self.overlay.join(node_id)
        self.caches[node_id] = StateCache(self.params.state_ttl)
        self.tables[node_id] = build_index_table(self.overlay, node_id, self.ctx.rng)
        self._arm_state_updates(node_id)

    def on_leave(self, node_id: int) -> None:
        if node_id in self.overlay:
            self.overlay.leave(node_id)
        self.caches.pop(node_id, None)
        self.tables.pop(node_id, None)

    def _arm_state_updates(self, node_id: int) -> None:
        period = self.params.state_period

        def tick() -> None:
            if not self.ctx.is_alive(node_id) or node_id not in self.overlay:
                return
            self._state_update(node_id)
            self.ctx.sim.schedule(period, tick)

        self.ctx.sim.schedule(self.ctx.rng.uniform(0, period), tick)

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        try:
            path = inscan_path(
                self.overlay, self.tables, node_id, self.ctx.normalize(availability)
            )
        except (RoutingError, KeyError):
            return
        self.ctx.send_path(
            "state-update", path, self._deliver_state, path[-1], record
        )

    def _deliver_state(self, duty: int, record: StateRecord) -> None:
        cache = self.caches.get(duty)
        if cache is not None:
            cache.put(record)

    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        demand = np.asarray(demand, dtype=np.float64)
        try:
            path = inscan_path(
                self.overlay, self.tables, requester, self.ctx.normalize(demand)
            )
        except (RoutingError, KeyError):
            callback([], 0)
            return
        messages = len(path) - 1
        self.ctx.send_path(
            "duty-query", path,
            self._on_step, path[-1], demand, self.walk_hops, [], messages, callback,
        )

    def _on_step(
        self,
        me: int,
        demand: np.ndarray,
        hops_left: int,
        found: list[StateRecord],
        messages: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        cache = self.caches.get(me)
        if cache is not None and len(cache):
            # ``found`` holds one record per owner (each cache is owner-keyed
            # and every scan excludes the owners already found).
            need = self.params.delta - len(found)
            if need > 0:
                found.extend(
                    cache.qualified(
                        demand, self.ctx.sim.now, limit=need,
                        exclude={r.owner for r in found},
                    )
                )
        if hops_left <= 0 or len(found) >= self.params.delta:
            callback(found, messages)
            return
        candidates: list[int] = []
        if me in self.overlay:
            for dim in range(self.overlay.dims):
                candidates.extend(self.overlay.directional_neighbors(me, dim, +1))
        nxt = self.ctx.choice(candidates)
        if nxt is None:
            callback(found, messages)
            return
        self.ctx.send(
            "walk-query", me, nxt,
            self._on_step, nxt, demand, hops_left - 1, found, messages + 1, callback,
        )
