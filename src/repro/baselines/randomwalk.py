"""Random-walk query routing after duty-node location — the §III-A strawman.

"A straightforward solution is using a random-walk query routing method
after locating the boundary-corner node.  However, in the situation with
scarce available resources, random-walk query routing may hardly find
qualified resources, significantly degrading resource matching rate."

State updates route to duty nodes exactly as in PID-CAN, but there is *no*
index diffusion: the query walks randomly through positive-direction
neighbors hoping to stumble on caches holding qualified records.  Kept as
an ablation showing what the proactive index diffusion buys.

Query state (found records, message count, the failsafe timeout that
resolves walks lost to churn) lives in the shared
:class:`~repro.core.lifecycle.QueryLifecycle`; the walk messages carry
only the query id.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines.can_base import CANStateBaseline
from repro.can.inscan import inscan_path
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.protocol import PIDCANParams
from repro.core.state import StateRecord

__all__ = ["RandomWalkProtocol"]


class RandomWalkProtocol(CANStateBaseline):
    """Duty-node location + positive-direction random walk."""

    name = "randomwalk-can"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        walk_hops: int = 12,
        overlay_cls: type | None = None,
    ):
        super().__init__(ctx, params, overlay_cls=overlay_cls)
        self.walk_hops = walk_hops

    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        rt = self.lifecycle.begin(demand, requester, callback)
        try:
            path = inscan_path(
                self.overlay, self.tables, requester, self.ctx.normalize(rt.demand)
            )
        except (RoutingError, KeyError):
            self.lifecycle.finalize(rt)
            return
        rt.messages += len(path) - 1
        self.ctx.send_path(
            "duty-query", path, self._on_step, rt.qid, path[-1], self.walk_hops
        )

    def _on_step(self, qid: int, me: int, hops_left: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        cache = self.caches.get(me)
        if cache is not None and len(cache):
            # ``rt.found`` holds one record per owner (each cache is
            # owner-keyed and every scan excludes the owners already found).
            need = self.params.delta - len(rt.found)
            if need > 0:
                rt.found.extend(
                    cache.qualified(
                        rt.demand, self.ctx.sim.now, limit=need,
                        exclude={r.owner for r in rt.found},
                    )
                )
        if hops_left <= 0 or len(rt.found) >= self.params.delta:
            self.lifecycle.finalize(rt)
            return
        candidates: list[int] = []
        if me in self.overlay:
            for dim in range(self.overlay.dims):
                candidates.extend(self.overlay.directional_neighbors(me, dim, +1))
        nxt = self.ctx.choice(candidates)
        if nxt is None:
            self.lifecycle.finalize(rt)
            return
        rt.messages += 1
        self.ctx.send(
            "walk-query", me, nxt, self._on_step, qid, nxt, hops_left - 1
        )
