"""Mercury-style attribute-hub range queries (related work [15], §V).

Mercury (Bharambe, Agrawal, Seshan — SIGCOMM 2004) supports multi-attribute
range queries with one *attribute hub* per dimension: an order-preserving
ring of nodes, each owning a contiguous value arc.  Records are replicated
into **every** hub (indexed there by that hub's attribute); a query is sent
to the *most selective* hub only, routed to the arc containing its range
start, and then walks successor arcs collecting records that qualify on all
attributes.

The paper's §V critique, which this implementation lets the benches verify:

- the order-preserving hubs are an *extra* structure to maintain, and every
  state update costs d hub insertions (vs one duty-node route in PID-CAN);
- range-walking the successor arcs makes query cost grow with the range —
  the same N-dependence INSCAN-RQ suffers, softened by the walk budget.

Ring routing uses successor fingers at 2^k arc distances, the standard
Mercury/Chord-style long links, giving O(log n) hops to any value.

Query state (found records, message count, the failsafe timeout that
resolves range walks lost to churn) lives in the shared
:class:`~repro.core.lifecycle.QueryLifecycle`; walk messages carry only
the query id plus the hub/budget coordinates.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional

import numpy as np

from repro.core.context import ProtocolContext
from repro.core.lifecycle import QueryLifecycle
from repro.core.protocol import DiscoveryProtocol, PIDCANParams
from repro.core.state import StateCache, StateRecord

__all__ = ["MercuryProtocol", "HubRing"]


class HubRing:
    """One attribute hub: an order-preserving ring over ``[0, 1]``.

    Members own half-open arcs ``[position_i, position_{i+1})``; the last
    arc wraps to 1.0 (values ≥ the last position).  Lookups are by binary
    search; hop counts model finger routing: reaching an arc ``k`` steps of
    successor distance away costs ``popcount(k)`` hops via 2^i fingers.
    """

    def __init__(self, attribute: int):
        self.attribute = attribute
        self._positions: list[float] = []
        self._members: list[int] = []

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def members(self) -> list[int]:
        return list(self._members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._members

    def add(self, node_id: int, position: float) -> None:
        """Join at ``position``, splitting the covering arc."""
        if node_id in self._members:
            raise ValueError(f"node {node_id} already in hub {self.attribute}")
        position = float(np.clip(position, 0.0, 1.0))
        idx = bisect.bisect_left(self._positions, position)
        self._positions.insert(idx, position)
        self._members.insert(idx, node_id)

    def remove(self, node_id: int) -> None:
        """Leave; the predecessor arc absorbs the vacated range."""
        idx = self._members.index(node_id)
        del self._members[idx]
        del self._positions[idx]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def owner_index(self, value: float) -> int:
        """Index of the member whose arc contains ``value``."""
        if not self._members:
            raise LookupError("empty hub")
        value = float(np.clip(value, 0.0, 1.0))
        idx = bisect.bisect_right(self._positions, value) - 1
        return idx % len(self._members)  # values below the first arc wrap

    def owner_of(self, value: float) -> int:
        return self._members[self.owner_index(value)]

    def successor(self, node_id: int) -> Optional[int]:
        """The next member in ascending value order (wrapping), or None
        when alone."""
        if len(self._members) <= 1:
            return None
        idx = self._members.index(node_id)
        return self._members[(idx + 1) % len(self._members)]

    def successor_no_wrap(self, node_id: int) -> Optional[int]:
        """Ascending successor, or None at the top of the value range —
        range walks stop here (values below the range start cannot
        qualify)."""
        idx = self._members.index(node_id)
        if idx + 1 >= len(self._members):
            return None
        return self._members[idx + 1]

    def routing_hops(self, src: int, value: float) -> int:
        """Finger-routing hop count from ``src``'s arc to the arc owning
        ``value``: popcount of the successor distance (2^k fingers)."""
        if src not in self._members:
            # entry from outside the hub costs one bootstrap hop to a
            # random member plus in-ring routing from there
            return 1 + int(np.ceil(np.log2(max(len(self._members), 2))))
        src_idx = self._members.index(src)
        dst_idx = self.owner_index(value)
        distance = (dst_idx - src_idx) % max(len(self._members), 1)
        return int(distance).bit_count()


class MercuryProtocol(DiscoveryProtocol):
    """Multi-attribute hub discovery; records replicated to every hub."""

    name = "mercury"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        walk_budget: int = 12,
    ):
        self.ctx = ctx
        self.params = params
        self.walk_budget = walk_budget
        self.dims = params.resource_dims
        self.hubs = [HubRing(k) for k in range(self.dims)]
        self.hub_of: dict[int, int] = {}
        self.caches: dict[int, StateCache] = {}
        self.lifecycle = QueryLifecycle(ctx, params.query_timeout)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        for node_id in node_ids:
            self._join(node_id)
        for node_id in node_ids:
            self._arm_state_updates(node_id)

    def on_join(self, node_id: int) -> None:
        self._join(node_id)
        self._arm_state_updates(node_id)

    def on_leave(self, node_id: int) -> None:
        hub_idx = self.hub_of.pop(node_id, None)
        if hub_idx is not None:
            self.hubs[hub_idx].remove(node_id)
        self.caches.pop(node_id, None)

    def _join(self, node_id: int) -> None:
        # keep hubs balanced: join the smallest, at a random arc position
        hub = min(self.hubs, key=len)
        hub.add(node_id, float(self.ctx.rng.uniform()))
        self.hub_of[node_id] = hub.attribute
        self.caches[node_id] = StateCache(
            self.params.state_ttl, compact=self.params.compact_dtypes
        )

    # ------------------------------------------------------------------
    # state updates: one insertion per hub (Mercury's replication)
    # ------------------------------------------------------------------
    def _arm_state_updates(self, node_id: int) -> None:
        self.ctx.start_periodic(
            self.params.state_period,
            lambda: self._state_update(node_id),
            alive=lambda: self.ctx.is_alive(node_id),
        )

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        point = self.ctx.normalize(availability)
        for hub in self.hubs:
            if len(hub) == 0:
                continue
            target = hub.owner_of(point[hub.attribute])
            hops = hub.routing_hops(node_id, point[hub.attribute])
            self.ctx.charge_local("state-update", node_id, max(hops, 1))
            delay = hops * self.ctx.network.delay(node_id, target)
            self.ctx.deliver_after(delay, target, self._deliver_state, target, record)

    def _deliver_state(self, target: int, record: StateRecord) -> None:
        cache = self.caches.get(target)
        if cache is not None:
            cache.put(record)

    # ------------------------------------------------------------------
    # query: route within the most selective hub, walk successors
    # ------------------------------------------------------------------
    def _most_selective_hub(self, point: np.ndarray) -> HubRing:
        """The hub whose attribute has the highest normalized demand —
        fewest records above the range start, so the shortest walk."""
        populated = [hub for hub in self.hubs if len(hub) > 0]
        if not populated:
            raise LookupError("no populated hubs")
        return max(populated, key=lambda hub: point[hub.attribute])

    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        rt = self.lifecycle.begin(demand, requester, callback)
        point = self.ctx.normalize(rt.demand)
        try:
            hub = self._most_selective_hub(point)
        except LookupError:
            self.lifecycle.finalize(rt)
            return
        value = point[hub.attribute]
        entry = hub.owner_of(value)
        hops = hub.routing_hops(requester, value)
        self.ctx.charge_local("duty-query", requester, max(hops, 1))
        rt.messages += max(hops, 1)
        delay = hops * self.ctx.network.delay(requester, entry)
        self.ctx.deliver_after(
            delay, entry, self._walk, rt.qid, hub.attribute, entry, self.walk_budget
        )

    def _walk(self, qid: int, hub_idx: int, node_id: int, budget: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        hub = self.hubs[hub_idx]
        if self.ctx.is_alive(node_id):
            cache = self.caches.get(node_id)
            if cache is not None and len(cache):
                # one record per owner in ``rt.found`` (owner-keyed caches +
                # exclusion on every scan)
                need = self.params.delta - len(rt.found)
                if need > 0:
                    rt.found.extend(
                        cache.qualified(
                            rt.demand, self.ctx.sim.now, limit=need,
                            exclude={r.owner for r in rt.found},
                        )
                    )
        if budget <= 0 or len(rt.found) >= self.params.delta:
            self.lifecycle.finalize(rt)
            return
        nxt = hub.successor_no_wrap(node_id) if node_id in hub else None
        if nxt is None:
            self.lifecycle.finalize(rt)
            return
        rt.messages += 1
        self.ctx.send(
            "walk-query", node_id, nxt, self._walk, qid, hub_idx, nxt, budget - 1
        )
