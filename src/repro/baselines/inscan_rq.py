"""INSCAN-RQ — the complete-result flooding range query of §III-A.

Routes to the boundary-corner duty node of the demand vector, then floods
every *responsible node* — every node whose zone overlaps the positive box
``[v_norm, 1]^d`` — collecting all qualified records.  The paper proves:

- query delay upper bound ``2·log2 n`` (route + flood depth), and
- per-query traffic ``log2 n + N − 1`` where N is the number of
  responsible nodes,

and uses the heavy N-dependent traffic to motivate PID-CAN's single-message
constraint.  :class:`INSCANRangeQuery` is the standalone engine the §III-A
benchmark drives synchronously; :class:`InscanRQProtocol` (registered as
``inscan-rq``) adapts it to the :class:`~repro.core.protocol.
DiscoveryProtocol` interface — state updates route to duty nodes exactly
as in PID-CAN, a query routes to its duty node and floods from there —
so the flooding baseline can run inside the SOC simulation and the churn
campaigns.  The paper does not evaluate it there; we do, to expose its
N-dependent traffic under the same workloads as every other protocol.

Query state (found records, message count, the failsafe timeout that
resolves queries whose duty route died mid-churn) lives in the shared
:class:`~repro.core.lifecycle.QueryLifecycle`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.can_base import CANStateBaseline
from repro.can.inscan import IndexPointerTable, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.protocol import PIDCANParams
from repro.core.state import StateCache, StateRecord

__all__ = ["INSCANRangeQuery", "InscanRQProtocol", "RangeQueryResult"]


@dataclass(frozen=True, slots=True)
class RangeQueryResult:
    """Outcome of one flooding range query."""

    records: tuple[StateRecord, ...]
    messages: int  # route hops + flood tree edges
    route_hops: int
    flood_depth: int
    responsible_nodes: int  # N of the traffic formula


class INSCANRangeQuery:
    """Complete multi-dimensional range query over INSCAN."""

    def __init__(
        self,
        overlay: CANOverlay,
        tables: dict[int, IndexPointerTable],
        caches: dict[int, StateCache],
    ):
        self.overlay = overlay
        self.tables = tables
        self.caches = caches

    def query(
        self,
        requester: int,
        demand: np.ndarray,
        demand_point: np.ndarray,
        now: float,
    ) -> RangeQueryResult:
        """All records dominating ``demand``; ``demand_point`` is the
        normalized corner of the query box."""
        demand = np.asarray(demand, dtype=np.float64)
        lo = np.asarray(demand_point, dtype=np.float64)
        hi = np.ones_like(lo)

        path = inscan_path(self.overlay, self.tables, requester, lo)
        duty = path[-1]
        route_hops = len(path) - 1

        # BFS flood across all zones overlapping [lo, 1]^d.
        records: list[StateRecord] = []
        seen = {duty}
        frontier = [duty]
        depth = 0
        edges = 0
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                cache = self.caches.get(node)
                if cache is not None and len(cache):
                    records.extend(cache.qualified(demand, now))
                for m in sorted(self.overlay.nodes[node].neighbors):
                    if m in seen:
                        continue
                    zone = self.overlay.nodes[m].zone
                    if not zone.overlaps_box(lo, hi) and not zone.contains(lo):
                        continue
                    seen.add(m)
                    edges += 1
                    nxt.append(m)
            frontier = nxt
            if frontier:
                depth += 1
        return RangeQueryResult(
            records=tuple(records),
            messages=route_hops + edges,
            route_hops=route_hops,
            flood_depth=depth,
            responsible_nodes=len(seen),
        )


class InscanRQProtocol(CANStateBaseline):
    """SOC adapter for the flooding range query (§III-A baseline).

    Complete results at N-dependent cost: the query routes to its duty
    node, the duty node floods every responsible zone in-process (each
    tree edge charged as ``flood-query`` traffic) and sends one
    ``query-end`` back to the requester carrying everything found.
    Membership and the §IV-A state-update regime come from
    :class:`~repro.baselines.can_base.CANStateBaseline`.
    """

    name = "inscan-rq"

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        overlay_cls: type | None = None,
    ):
        super().__init__(ctx, params, overlay_cls=overlay_cls)
        self.engine = INSCANRangeQuery(self.overlay, self.tables, self.caches)

    # ------------------------------------------------------------------
    # query: route to the duty node, flood from there
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        rt = self.lifecycle.begin(demand, requester, callback)
        point = self.ctx.normalize(rt.demand)
        try:
            path = inscan_path(self.overlay, self.tables, requester, point)
        except (RoutingError, KeyError):
            self.lifecycle.finalize(rt)
            return
        rt.messages += len(path) - 1
        self.ctx.send_path("duty-query", path, self._on_duty, rt.qid, path[-1])

    def _on_duty(self, qid: int, duty: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        point = self.ctx.normalize(rt.v)
        try:
            # The flood starts at the duty node, so its route prefix is
            # empty; every flood-tree edge is charged to the duty node.
            result = self.engine.query(duty, rt.demand, point, self.ctx.sim.now)
        except (RoutingError, KeyError):
            # Overlay mid-repair under churn; the failsafe resolves us.
            return
        self.ctx.charge_local("flood-query", duty, result.messages)
        rt.messages += result.messages
        rt.found.extend(result.records)
        rt.messages += 1
        self.ctx.send("query-end", duty, rt.requester, self._on_end, qid)

    def _on_end(self, qid: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        self.lifecycle.finalize(rt)
