"""INSCAN-RQ — the complete-result flooding range query of §III-A.

Routes to the boundary-corner duty node of the demand vector, then floods
every *responsible node* — every node whose zone overlaps the positive box
``[v_norm, 1]^d`` — collecting all qualified records.  The paper proves:

- query delay upper bound ``2·log2 n`` (route + flood depth), and
- per-query traffic ``log2 n + N − 1`` where N is the number of
  responsible nodes,

and uses the heavy N-dependent traffic to motivate PID-CAN's single-message
constraint.  This engine is used standalone by the §III-A benchmark; it is
not wired into the SOC simulation (the paper does not evaluate it there
either).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.can.inscan import IndexPointerTable, inscan_path
from repro.can.overlay import CANOverlay
from repro.core.state import StateCache, StateRecord

__all__ = ["INSCANRangeQuery", "RangeQueryResult"]


@dataclass(frozen=True, slots=True)
class RangeQueryResult:
    """Outcome of one flooding range query."""

    records: tuple[StateRecord, ...]
    messages: int  # route hops + flood tree edges
    route_hops: int
    flood_depth: int
    responsible_nodes: int  # N of the traffic formula


class INSCANRangeQuery:
    """Complete multi-dimensional range query over INSCAN."""

    def __init__(
        self,
        overlay: CANOverlay,
        tables: dict[int, IndexPointerTable],
        caches: dict[int, StateCache],
    ):
        self.overlay = overlay
        self.tables = tables
        self.caches = caches

    def query(
        self,
        requester: int,
        demand: np.ndarray,
        demand_point: np.ndarray,
        now: float,
    ) -> RangeQueryResult:
        """All records dominating ``demand``; ``demand_point`` is the
        normalized corner of the query box."""
        demand = np.asarray(demand, dtype=np.float64)
        lo = np.asarray(demand_point, dtype=np.float64)
        hi = np.ones_like(lo)

        path = inscan_path(self.overlay, self.tables, requester, lo)
        duty = path[-1]
        route_hops = len(path) - 1

        # BFS flood across all zones overlapping [lo, 1]^d.
        records: list[StateRecord] = []
        seen = {duty}
        frontier = [duty]
        depth = 0
        edges = 0
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                cache = self.caches.get(node)
                if cache is not None and len(cache):
                    records.extend(cache.qualified(demand, now))
                for m in sorted(self.overlay.nodes[node].neighbors):
                    if m in seen:
                        continue
                    zone = self.overlay.nodes[m].zone
                    if not zone.overlaps_box(lo, hi) and not zone.contains(lo):
                        continue
                    seen.add(m)
                    edges += 1
                    nxt.append(m)
            frontier = nxt
            if frontier:
                depth += 1
        return RangeQueryResult(
            records=tuple(records),
            messages=route_hops + edges,
            route_hops=route_hops,
            flood_depth=depth,
            responsible_nodes=len(seen),
        )
