"""Shared CAN substrate for the duty-cache baselines.

``randomwalk-can``, ``khdn-can`` and ``inscan-rq`` all keep the same
per-node state as PID-CAN minus the index diffusion: a CAN overlay,
per-node state caches γ, INSCAN pointer tables, and the §IV-A periodic
state updates routed to duty nodes.  This base centralizes that
membership and state-update plumbing in one place (it had drifted across
per-baseline copies — e.g. whether a churn join charges maintenance
traffic); subclasses add their query strategy on top and may hook
:meth:`_on_state_stored` (KHDN's K-hop replication).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.can.inscan import (
    IndexPointerTable, build_index_table, inscan_path, inscan_paths,
)
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.lifecycle import QueryLifecycle
from repro.core.protocol import (
    DiscoveryProtocol, PIDCANParams, arm_grid_chain, quantize_phase,
)
from repro.core.state import StateCache, StateRecord

__all__ = ["CANStateBaseline"]


class CANStateBaseline(DiscoveryProtocol):
    """Overlay + duty caches + periodic state updates, no diffusion.

    ``overlay_cls`` swaps the CAN substrate (vectorized default or the
    scalar :class:`repro.testing.ReferenceCANOverlay` oracle).
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        overlay_cls: type | None = None,
    ):
        self.ctx = ctx
        self.params = params
        if overlay_cls is not None:
            self.overlay = overlay_cls(params.resource_dims, ctx.rng)
        else:
            self.overlay = CANOverlay(
                params.resource_dims, ctx.rng, compact=params.compact_dtypes
            )
        self.caches: dict[int, StateCache] = {}
        self.tables: dict[int, IndexPointerTable] = {}
        self.lifecycle = QueryLifecycle(ctx, params.query_timeout)
        #: phase -> shared state-update CohortTimer (cohort mode only).
        self._cohorts: dict[float, "object"] = {}
        self._memberships: dict[int, list] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        self.overlay.bootstrap(node_ids)
        for node_id in node_ids:
            self.caches[node_id] = StateCache(
                self.params.state_ttl, compact=self.params.compact_dtypes
            )
        # Tables are built after the full overlay exists (uncharged, like
        # PID-CAN's bootstrap).
        for node_id in node_ids:
            self.tables[node_id] = build_index_table(self.overlay, node_id, self.ctx.rng)
        self._arm_all(node_ids)

    def on_join(self, node_id: int) -> None:
        self.overlay.join(node_id)
        self.caches[node_id] = StateCache(
            self.params.state_ttl, compact=self.params.compact_dtypes
        )
        table = build_index_table(self.overlay, node_id, self.ctx.rng)
        self.tables[node_id] = table
        self.ctx.charge_local("maintenance", node_id, table.build_messages)
        self._arm_all([node_id])

    def on_leave(self, node_id: int) -> None:
        if node_id in self.overlay:
            self.overlay.leave(node_id)
        self.caches.pop(node_id, None)
        self.tables.pop(node_id, None)
        for timer in self._memberships.pop(node_id, ()):
            timer.discard(node_id)

    # ------------------------------------------------------------------
    # periodic state updates (self-chaining so they die with the node)
    # ------------------------------------------------------------------
    def _arm_all(self, node_ids: Sequence[int]) -> None:
        """Single-activity twin of ``PIDCANProtocol._arm_all``: phase
        draws stay node-major, and with buckets the nodes share grid
        instants across both tick modes."""
        params = self.params
        period = params.state_period
        if params.phase_buckets == 0:
            for node_id in node_ids:
                self._arm_state_updates(node_id)
            return
        for node_id in node_ids:
            phase = quantize_phase(
                self.ctx.rng.uniform(0, period), period, params.phase_buckets
            )
            if params.tick_mode == "cohort":
                timer = self._cohorts.get(phase)
                if timer is None:
                    timer = self.ctx.sim.periodic_cohort(
                        period, self._state_round, epoch=phase
                    )
                    self._cohorts[phase] = timer
                timer.add(node_id)
                self._memberships.setdefault(node_id, []).append(timer)
            else:
                arm_grid_chain(
                    self.ctx.sim, period, phase,
                    lambda node_id=node_id: (
                        self.ctx.is_alive(node_id) and node_id in self.overlay
                    ),
                    lambda node_id=node_id: self._state_update(node_id),
                )

    def _arm_state_updates(self, node_id: int) -> None:
        self.ctx.start_periodic(
            self.params.state_period,
            lambda: self._state_update(node_id),
            alive=lambda: (
                self.ctx.is_alive(node_id) and node_id in self.overlay
            ),
        )

    def _state_round(self, members: Sequence[int]) -> None:
        """One cohort state-update round: records in member order, routes
        in one batched :func:`inscan_paths` pass, sends in member order —
        event-identical to per-node ticking at the same instants."""
        live = [
            m for m in members
            if self.ctx.is_alive(m) and m in self.overlay
        ]
        if not live:
            return
        now = self.ctx.sim.now
        avail = self.ctx.availability_matrix(live)
        records = [
            StateRecord(node_id, avail[i].copy(), now)
            for i, node_id in enumerate(live)
        ]
        points = np.clip(avail / self.ctx.cmax, 0.0, 1.0)
        paths = inscan_paths(
            self.overlay, self.tables, live, points, on_error="none",
        )
        routed = [
            (record, path) for record, path in zip(records, paths)
            if path is not None  # overlay mid-repair; next round retries
        ]
        if routed:
            self.ctx.send_path_batch(
                "state-update",
                [path for _, path in routed],
                self._deliver_state,
                [(path[-1], record) for record, path in routed],
            )

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        try:
            path = inscan_path(
                self.overlay, self.tables, node_id, self.ctx.normalize(availability)
            )
        except (RoutingError, KeyError):
            return  # overlay mid-repair; next cycle retries
        self.ctx.send_path(
            "state-update", path, self._deliver_state, path[-1], record
        )

    def _deliver_state(self, duty: int, record: StateRecord) -> None:
        cache = self.caches.get(duty)
        if cache is None:
            return
        cache.put(record)
        self._on_state_stored(duty, record)

    def _on_state_stored(self, duty: int, record: StateRecord) -> None:
        """Hook invoked after a state record lands in ``duty``'s cache
        (KHDN replicates it to the negative K-hop frontier here)."""
