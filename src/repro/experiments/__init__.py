"""Experiment harness: configuration presets, the SOC simulation runner,
per-figure scenario builders and ASCII reporting."""

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import SOCSimulation, SimulationResult
from repro.experiments.scenarios import SCENARIOS, run_protocol, run_scenario

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "SOCSimulation",
    "SimulationResult",
    "SCENARIOS",
    "run_protocol",
    "run_scenario",
]
