"""Experiment harness: configuration presets, the SOC simulation runner,
per-figure scenario builders, parallel campaign grids and ASCII reporting."""

from repro.experiments.campaign import (
    CampaignSpec,
    campaign_status,
    campaign_summary,
    load_campaign_cells,
    run_campaign,
)
from repro.experiments.config import (
    SCALES,
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.runner import SimulationResult, SOCSimulation, run_config
from repro.experiments.scenarios import (
    SCENARIO_CONFIGS,
    SCENARIOS,
    run_protocol,
    run_scenario,
    scenario_configs,
)

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "config_from_dict",
    "config_to_dict",
    "SOCSimulation",
    "SimulationResult",
    "run_config",
    "SCENARIOS",
    "SCENARIO_CONFIGS",
    "run_protocol",
    "run_scenario",
    "scenario_configs",
    "CampaignSpec",
    "run_campaign",
    "campaign_status",
    "campaign_summary",
    "load_campaign_cells",
]
