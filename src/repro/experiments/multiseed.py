"""Multi-seed replication support.

The paper reports single simulation runs; for a reproduction it is worth
knowing how stable each claim is across random seeds.  This module runs a
configuration across seeds and aggregates the end-of-run metrics into
mean / standard deviation / a normal-approximation confidence interval,
plus a pairwise comparison helper that asserts an ordering holds in most
replicas rather than by luck of one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SimulationResult, SOCSimulation

__all__ = [
    "MetricStats",
    "MultiSeedResult",
    "run_seeds",
    "ordering_confidence",
    "stats_from_metric_docs",
]


@dataclass(frozen=True, slots=True)
class MetricStats:
    """Aggregate of one scalar metric over seeds."""

    name: str
    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if len(self.values) > 1 else 0.0

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval of the mean."""
        half = 1.96 * self.std / np.sqrt(len(self.values))
        return (self.mean - half, self.mean + half)

    def __repr__(self) -> str:
        lo, hi = self.ci95()
        return f"{self.name}: {self.mean:.4f} ± {self.std:.4f} [{lo:.4f}, {hi:.4f}]"


@dataclass(frozen=True)
class MultiSeedResult:
    """All replicas of one configuration plus aggregated metrics."""

    config: ExperimentConfig
    results: tuple[SimulationResult, ...]

    def metric(self, name: str) -> MetricStats:
        getter: Callable[[SimulationResult], float] = {
            "t_ratio": lambda r: r.t_ratio,
            "f_ratio": lambda r: r.f_ratio,
            "fairness": lambda r: r.fairness,
            "msg_per_node": lambda r: r.per_node_msg_cost,
            "placement_fairness": lambda r: r.balance.placement_fairness,
            "hotspot_share": lambda r: r.balance.hotspot_share,
            "query_timeouts": lambda r: float(r.query_timeouts),
            "messages_per_query": lambda r: r.messages_per_query,
            "cache_hit_ratio": lambda r: r.cache_hit_ratio,
            "cache_regret": lambda r: r.cache_regret,
            "cache_hits": lambda r: float(r.cache_hits),
        }.get(name)
        if getter is None:
            raise ValueError(f"unknown metric {name!r}")
        return MetricStats(name, tuple(getter(r) for r in self.results))

    def summary(self) -> dict[str, MetricStats]:
        return {
            name: self.metric(name)
            for name in (
                "t_ratio", "f_ratio", "fairness", "msg_per_node",
                "query_timeouts", "messages_per_query", "cache_hit_ratio",
            )
        }


def run_seeds(
    config: ExperimentConfig, seeds: Sequence[int]
) -> MultiSeedResult:
    """Run ``config`` once per seed (everything else held fixed)."""
    if not seeds:
        raise ValueError("need at least one seed")
    results = tuple(
        SOCSimulation(replace(config, seed=seed)).run() for seed in seeds
    )
    return MultiSeedResult(config=config, results=results)


def stats_from_metric_docs(
    metric_docs: Sequence[Mapping[str, float]],
    names: Sequence[str] = (
        "t_ratio", "f_ratio", "fairness", "per_node_msg_cost",
        "query_timeouts", "messages_per_query", "cache_hit_ratio",
    ),
) -> dict[str, MetricStats]:
    """Aggregate stored ``metrics`` sections (one per replica, e.g. the
    seeds of one campaign cell group) into :class:`MetricStats` — the
    persisted-document twin of :meth:`MultiSeedResult.summary`.  A name
    missing from any document (e.g. ``query_timeouts`` in pre-PR-3
    documents) is skipped rather than erroring."""
    if not metric_docs:
        raise ValueError("need at least one metrics document")
    return {
        name: MetricStats(name, tuple(float(doc[name]) for doc in metric_docs))
        for name in names
        if all(name in doc for doc in metric_docs)
    }


def ordering_confidence(
    a: MultiSeedResult,
    b: MultiSeedResult,
    metric: str,
    direction: str = "less",
) -> float:
    """Fraction of seed pairs in which ``a``'s metric is less/greater than
    ``b``'s — a distribution-free check that a claimed ordering is not a
    single-seed accident (1.0 = holds for every pairing)."""
    if direction not in ("less", "greater"):
        raise ValueError("direction must be 'less' or 'greater'")
    va = a.metric(metric).values
    vb = b.metric(metric).values
    wins = 0
    total = 0
    for x in va:
        for y in vb:
            total += 1
            if (x < y) if direction == "less" else (x > y):
                wins += 1
    return wins / total if total else float("nan")
