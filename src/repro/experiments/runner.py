"""The full Self-Organizing Cloud simulation (§IV-A's experimental setup).

Wires together every substrate:

- hosts with Table-I machines on the shared vectorized PSM host engine
  (:mod:`repro.cloud`),
- the LAN/WAN network model and discrete-event engine (:mod:`repro.sim`),
- a pluggable discovery protocol (:mod:`repro.core` / :mod:`repro.baselines`),
- Poisson task arrivals (Table II),
- node churn (Fig. 8), and
- the §IV metrics (T-Ratio, F-Ratio, Jain fairness, traffic).

Task lifecycle: generated at its origin → multi-dimensional range query via
the protocol → best-fit selection among returned records → placement message
to the chosen host → PSM execution (shares re-computed at every scheduling
point) → completion ack to the origin.  Under the default ``admission=
"none"`` policy a selected host always accepts, so analogous queries that
pick the same host *contend*: every resident task's share drops below its
expectation and completion times stretch — exactly the §I failure mode that
T-Ratio measures.  ``admission="strict"`` (re-check Inequality 2 at
placement) is the ablation alternative.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.cloud.checkpoint import CheckpointStore
from repro.cloud.engine import HostEngine
from repro.cloud.machine import (
    CMAX,
    MachineConfig,
    capacity_matrix,
    sample_machine,
    sample_machines,
)
from repro.cloud.resources import dominates
from repro.cloud.tasks import N_WORK_DIMS, Task, TaskFactory
from repro.cloud.workload import PoissonWorkload, SkewedTaskFactory
from repro.core.aggregation import gossip_aggregate
from repro.core.context import ProtocolContext
from repro.core.protocol import make_protocol
from repro.core.selection import select_record
from repro.core.state import StateRecord
from repro.experiments.config import ExperimentConfig
from repro.metrics.balance import BalanceReport, PlacementBalance
from repro.metrics.fairness import EfficiencyAccumulator
from repro.metrics.latency import LatencyReport, QueryLatency
from repro.metrics.collector import MetricsCollector
from repro.metrics.ratios import RatioTracker
from repro.metrics.traffic import TrafficMeter
from repro.sim.delivery import DeliveryCalendar
from repro.sim.engine import EventHandle, Simulator
from repro.sim.network import NetworkModel
from repro.sim.rng import RngRegistry
from repro.sim.stats import TimeSeries
from repro.sim.tracing import Tracer

__all__ = ["SOCSimulation", "SimulationResult", "HostNode", "run_config"]

#: Task dispatch ships input data, not just control traffic (64 KB).
PLACEMENT_MSG_BITS = 8 * 64 * 1024


@dataclass(slots=True)
class HostNode:
    """One participating host.  Execution state (resident tasks, shares,
    availability, predicted completion) lives in the shared
    :class:`~repro.cloud.engine.HostEngine`, keyed by ``node_id``."""

    node_id: int
    machine: MachineConfig
    alive: bool = True


@dataclass
class SimulationResult:
    """Everything the benchmarks and reports consume."""

    config: ExperimentConfig
    series: dict[str, TimeSeries]
    generated: int
    finished: int
    failed: int
    placed: int
    evicted: int
    recovered: int
    traffic_by_kind: dict[str, int]
    traffic_total: int
    per_node_msg_cost: float
    peak_population: int
    balance: BalanceReport
    query_latency: LatencyReport
    efficiencies: list[float] = field(repr=False, default_factory=list)
    wall_clock_s: float = 0.0
    #: Queries resolved by the requester-side failsafe timeout (chains
    #: lost to churn) — the explicit-failure path that keeps every
    #: protocol's ``submit_many`` from hanging.
    query_timeouts: int = 0
    #: Hot-range path-cache counters (docs/caching.md); all zero when the
    #: cache is off or the protocol has none.
    cache_lookups: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stale_hits: int = 0
    cache_relay_hits: int = 0
    replications: int = 0

    @property
    def t_ratio(self) -> float:
        return self.finished / self.generated if self.generated else 0.0

    @property
    def f_ratio(self) -> float:
        return self.failed / self.generated if self.generated else 0.0

    @property
    def fairness(self) -> float:
        from repro.metrics.fairness import jain_index

        return jain_index(self.efficiencies)

    @property
    def messages_per_query(self) -> float:
        """Mean protocol messages per resolved query (the Fig. 6/7 cost
        axis; NaN when no query resolved)."""
        return self.query_latency.mean_messages

    @property
    def cache_hit_ratio(self) -> float:
        """Served lookups (requester + relay) over requester consults;
        NaN when the cache never ran."""
        if not self.cache_lookups:
            return float("nan")
        return (self.cache_hits + self.cache_relay_hits) / self.cache_lookups

    @property
    def cache_regret(self) -> float:
        """Staleness-induced best-fit regret: the fraction of served
        lookups whose cached duty disagreed with the ground-truth owner
        of the query point.  NaN when nothing was served."""
        served = self.cache_hits + self.cache_relay_hits
        if not served:
            return float("nan")
        return self.cache_stale_hits / served

    def summary(self) -> dict[str, float]:
        return {
            "t_ratio": self.t_ratio,
            "f_ratio": self.f_ratio,
            "fairness": self.fairness,
            "per_node_msg_cost": self.per_node_msg_cost,
            "generated": float(self.generated),
            "finished": float(self.finished),
            "failed": float(self.failed),
            "query_timeouts": float(self.query_timeouts),
            "messages_per_query": self.messages_per_query,
            "cache_hit_ratio": self.cache_hit_ratio,
            "cache_regret": self.cache_regret,
            "cache_hits": float(self.cache_hits),
        }


def run_config(config: ExperimentConfig) -> SimulationResult:
    """Build and run one simulation for ``config``.

    A module-level function (unlike ``SOCSimulation(config).run()``) so it
    can cross a ``ProcessPoolExecutor`` boundary — campaign workers import
    and call it by reference.
    """
    return SOCSimulation(config).run()


class SOCSimulation:
    """Builds and runs one configured SOC experiment.

    ``engine`` defaults to the vectorized :class:`HostEngine`; tests pass
    :class:`repro.testing.ReferenceHostEngine` to cross-check the scalar
    execution substrate under the identical driver.  ``overlay_cls``
    likewise swaps the CAN overlay substrate on every CAN-routing
    protocol: the vectorized default or
    :class:`repro.testing.ReferenceCANOverlay` for the scalar
    cross-check.
    """

    def __init__(self, config: ExperimentConfig, engine=None, overlay_cls=None):
        self.config = config
        self.rngs = RngRegistry(config.seed)
        self.sim = Simulator()
        self.network = NetworkModel(config.network, self.rngs.stream("network"))
        self.traffic = TrafficMeter()
        self.ratios = RatioTracker()
        self.balance = PlacementBalance()
        self.latency = QueryLatency()
        self.tracer = Tracer(enabled=config.trace_tasks)
        self.engine = (
            HostEngine(compact=config.compact_dtypes) if engine is None
            else engine
        )
        #: Same-instant delivery batching (docs/coalescing.md): one heap
        #: event per delivery instant; ``None`` = per-message scheduling.
        self.delivery: Optional[DeliveryCalendar] = (
            DeliveryCalendar(self.sim, quantum=config.delivery_quantum)
            if config.coalesce_deliveries else None
        )
        self.hosts: dict[int, HostNode] = {}
        self._alive: set[int] = set()
        self._next_node_id = 0
        self._peak_population = 0
        self._tasks: list[Task] = []
        #: The single simulator event backing the engine's completion
        #: calendar, plus the head it was scheduled for.
        self._completion_handle: Optional[EventHandle] = None
        self._completion_key: Optional[tuple[float, int, int]] = None

        # --- hosts (batch-sampled, batch-registered) -------------------
        machine_rng = self.rngs.stream("machines")
        self._machine_rng = machine_rng
        node_ids = list(range(config.n_nodes))
        self._next_node_id = config.n_nodes
        for node_id in node_ids:
            self.network.add_node(node_id)
        machines = sample_machines(
            machine_rng, [self.network.node_bandwidth_mbps(i) for i in node_ids]
        )
        capacities = capacity_matrix(machines)
        self.engine.add_hosts(node_ids, capacities)
        for node_id, machine in zip(node_ids, machines):
            self.hosts[node_id] = HostNode(node_id, machine)
            self._alive.add(node_id)
        self._peak_population = len(self._alive)

        # --- capacity statistics --------------------------------------
        self.mean_capacity = capacities.mean(axis=0)
        self.efficiency = EfficiencyAccumulator(self.mean_capacity[:N_WORK_DIMS])
        self.cmax = self._resolve_cmax()

        # --- protocol --------------------------------------------------
        self.ctx = ProtocolContext(
            sim=self.sim,
            network=self.network,
            traffic=self.traffic,
            rng=self.rngs.stream("protocol"),
            cmax=self.cmax,
            availability_of=self._availability_of,
            is_alive=self.is_alive,
            availability_matrix_of=self._availability_matrix_of,
            delivery=self.delivery,
        )
        pidcan = config.pidcan
        if config.compact_dtypes:
            pidcan = replace(pidcan, compact_dtypes=True)
        if config.cache_policy is not None:
            pidcan = replace(
                pidcan,
                cache_policy=config.cache_policy,
                cache_size=config.cache_size,
                cache_ttl=config.cache_ttl,
                cache_replication=config.cache_replication,
                replication_threshold=config.replication_threshold,
                replication_window=config.replication_window,
            )
        self.protocol = make_protocol(
            config.protocol, self.ctx, pidcan,
            overlay_cls=overlay_cls, **config.protocol_kwargs
        )
        if self.protocol.lifecycle is not None:
            # Timeout-failure accounting: each query resolved by the
            # protocol's failsafe (chain lost to churn) counts exactly once.
            self.protocol.lifecycle.on_expire = lambda rt: self.ratios.on_query_timeout()
        self.protocol.bootstrap(sorted(self._alive))

        # --- workload ---------------------------------------------------
        if config.zipf_s > 0:
            # Zipf-skewed hot-range demand (docs/caching.md); zipf_s=0
            # keeps the Table-II uniform sampler and its RNG stream
            # byte-for-byte.
            self.factory: TaskFactory = SkewedTaskFactory(
                config.demand_ratio,
                self.rngs.stream("tasks"),
                config.mean_nominal_time,
                zipf_s=config.zipf_s,
                hot_ranges=config.hot_ranges,
                width_alpha=config.range_width_alpha,
            )
        else:
            self.factory = TaskFactory(
                config.demand_ratio,
                self.rngs.stream("tasks"),
                config.mean_nominal_time,
            )
        self.workload = PoissonWorkload(
            self.factory, self.rngs.stream("arrivals"), config.effective_interarrival
        )
        for node_id in sorted(self._alive):
            self.workload.start_node(
                node_id, self.sim, self._submit_task, self.is_alive,
                quantum=config.arrival_quantum,
            )
        #: Same-instant arrival buffer (``coalesce_arrivals``): the first
        #: enqueue schedules a zero-delay flush, which runs after every
        #: arrival event of the instant and hands the protocol one batch.
        self._arrival_buffer: list[tuple[Task, object]] = []

        # --- churn --------------------------------------------------------
        if config.churn_degree > 0:
            self._churn_rng = self.rngs.stream("churn")
            rate = config.churn_degree * config.n_nodes / config.churn_lifetime
            self._churn_interval = 1.0 / rate
            self.sim.schedule(
                self._churn_rng.exponential(self._churn_interval), self._churn_event
            )

        # --- checkpointing (§VI future work) -------------------------------
        self.checkpoints: Optional[CheckpointStore] = None
        self.recovered_tasks = 0
        if config.checkpoint_enabled:
            self.checkpoints = CheckpointStore()
            self.sim.periodic(config.checkpoint_period, self._checkpoint_tick)

        # --- memory budget (docs/coalescing.md) ---------------------------
        if config.memory_budget_mb is not None:
            self.sim.periodic(config.memory_sweep_period, self._memory_sweep)

        # --- metrics ---------------------------------------------------------
        self.collector = MetricsCollector(
            self.sim, self.ratios, self.efficiency.values, config.sample_period,
            utilization_source=getattr(self.engine, "mean_utilization", None),
        )
        self.collector.start()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def _create_host(self, machine_rng: np.random.Generator) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        self.network.add_node(node_id)
        machine = sample_machine(machine_rng, self.network.node_bandwidth_mbps(node_id))
        self.engine.add_host(node_id, machine.capacity.values)
        self.hosts[node_id] = HostNode(node_id, machine)
        self._alive.add(node_id)
        self._peak_population = max(self._peak_population, len(self._alive))
        return node_id

    def is_alive(self, node_id: int) -> bool:
        host = self.hosts.get(node_id)
        return host is not None and host.alive

    def _availability_of(self, node_id: int) -> np.ndarray:
        # An array-row view of the engine's cached availability matrix:
        # availability only changes at a host's own scheduling points, so
        # no progress integration happens on the query path.
        if not self.is_alive(node_id):
            return np.zeros_like(CMAX)
        return self.engine.availability(node_id)

    def _availability_matrix_of(self, node_ids) -> np.ndarray:
        # Batched twin of _availability_of: one SoA gather for the whole
        # cohort, rows bitwise-equal to the scalar lookups (dead nodes,
        # if any slip through, read as zero availability just the same).
        ids = list(node_ids)
        alive = [self.is_alive(n) for n in ids]
        if all(alive):
            return self.engine.availability_matrix(ids)
        rows = np.zeros((len(ids),) + np.shape(CMAX))
        live_idx = [i for i, ok in enumerate(alive) if ok]
        if live_idx:
            rows[live_idx] = self.engine.availability_matrix(
                [ids[i] for i in live_idx]
            )
        return rows

    def _resolve_cmax(self) -> np.ndarray:
        if self.config.cmax_mode == "exact":
            return CMAX.copy()
        # Gossip estimation (reference [23]); messages are charged evenly.
        values = {
            h.node_id: h.machine.capacity.values for h in self.hosts.values()
        }
        result = gossip_aggregate(values, "max", self.rngs.stream("aggregation"))
        ids = sorted(values)
        for i in range(result.messages):
            self.traffic.charge("aggregation", ids[i % len(ids)])
        return result.consensus()

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def _dispatch_query(self, task: Task, on_records) -> None:
        """Run ``task``'s range query with the requester-side failsafe.

        The single home of the timeout convention shared by first
        submission and checkpoint recovery: a protocol chain lost to churn
        must not leak the task, so a failsafe fires with an empty result
        after ``query_failsafe_timeout`` unless the protocol answered
        first; whichever fires second is a no-op.

        With ``coalesce_arrivals`` the query is buffered instead and every
        query of the instant goes to the protocol as one ``submit_bulk``
        batch — same submission instant, same failsafes, same per-query
        callbacks, so results are event-identical to direct dispatch.
        """
        if self.config.coalesce_arrivals:
            self._enqueue_query(task, on_records)
            return
        self.protocol.submit_query(
            task.expectation, task.origin, self._failsafe_wrap(on_records)
        )

    def _failsafe_wrap(self, on_records):
        """Arm the runner-side failsafe and return the exactly-once
        callback that races it against the protocol's own resolution."""
        done = {"fired": False}

        def on_result(records: list[StateRecord], messages: int) -> None:
            if done["fired"]:
                return
            done["fired"] = True
            failsafe.cancel()
            on_records(records, messages)

        failsafe = self.sim.schedule(
            self.config.query_failsafe_timeout, on_result, [], 0
        )
        return on_result

    def _enqueue_query(self, task: Task, on_records) -> None:
        if not self._arrival_buffer:
            # Zero-delay => higher heap sequence than every arrival event
            # already queued for this instant, so the flush runs once all
            # of them have buffered.
            self.sim.schedule(0.0, self._flush_arrivals)
        self._arrival_buffer.append((task, on_records))

    def _flush_arrivals(self) -> None:
        batch, self._arrival_buffer = self._arrival_buffer, []
        items = [
            (task.expectation, task.origin, self._failsafe_wrap(on_records))
            for task, on_records in batch
        ]
        self.protocol.submit_bulk(items)

    def _submit_task(self, task: Task) -> None:
        self.ratios.on_generated()
        self._tasks.append(task)
        self.tracer.emit(self.sim.now, "generated", task.task_id, task.origin)

        if self.config.local_first:
            if self.is_alive(task.origin) and dominates(
                self.engine.availability(task.origin), task.expectation
            ):
                self._admit(task, task.origin)
                return

        submitted_at = self.sim.now

        def on_records(records: list[StateRecord], messages: int) -> None:
            task.query_messages = messages
            self.latency.observe(self.sim.now - submitted_at, messages)
            self._on_query_result(task, records)

        self._dispatch_query(task, on_records)

    def _on_query_result(self, task: Task, records: list[StateRecord]) -> None:
        if not records:
            task.failed = True
            self.ratios.on_failed()
            self.tracer.emit(self.sim.now, "query-failed", task.task_id)
            return
        self.tracer.emit(
            self.sim.now, "query-ok", task.task_id,
            candidates=len({r.owner for r in records}),
            messages=task.query_messages,
        )
        self._try_place(task, list(records), self.config.placement_retries)

    def _try_place(
        self, task: Task, records: list[StateRecord], retries_left: int
    ) -> None:
        pick = select_record(
            records,
            task.expectation,
            self.cmax,
            self.rngs.stream("selection"),
            self.config.selection_policy,
        )
        if pick is None:
            task.failed = True
            self.ratios.on_failed()
            self.tracer.emit(self.sim.now, "rejected", task.task_id)
            return
        remaining = [r for r in records if r.owner != pick.owner]
        delay = self.network.delay(task.origin, pick.owner, PLACEMENT_MSG_BITS)
        self.traffic.charge("placement", task.origin)
        if self.delivery is not None:
            self.delivery.deliver(
                delay, self._arrive_placement, task, pick.owner, remaining,
                retries_left,
            )
        else:
            self.sim.schedule(
                delay, self._arrive_placement, task, pick.owner, remaining,
                retries_left,
            )

    def _arrive_placement(
        self,
        task: Task,
        target: int,
        remaining: list[StateRecord],
        retries_left: int,
    ) -> None:
        accept = self.is_alive(target)
        if accept and self.config.admission == "strict":
            accept = dominates(
                self.engine.availability(target), task.expectation
            )
        if not accept:
            if remaining and retries_left > 0:
                self._try_place(task, remaining, retries_left - 1)
            else:
                task.failed = True
                self.ratios.on_failed()
                self.tracer.emit(self.sim.now, "rejected", task.task_id, target)
            return
        self._admit(task, target)

    def _admit(self, task: Task, target: int) -> None:
        self.engine.place(target, task, self.sim.now)
        task.placed_node = target
        self.ratios.on_placed()
        self.balance.on_place(target)
        self.tracer.emit(self.sim.now, "admitted", task.task_id, target)
        self._sync_completions()

    # ------------------------------------------------------------------
    # execution events (the engine's global completion calendar)
    # ------------------------------------------------------------------
    def _sync_completions(self) -> None:
        """Keep exactly one simulator event armed for the calendar head.

        Any scheduling point on any host may move the globally-earliest
        completion; re-arming only when the head actually changed keeps
        simulator-heap churn far below the seed's one-cancel-plus-push per
        host mutation.
        """
        head = self.engine.peek()
        if head == self._completion_key and self._completion_handle is not None:
            return
        if self._completion_handle is not None:
            self._completion_handle.cancel()
            self._completion_handle = None
        self._completion_key = head
        if head is None:
            return
        when, _host_id, _task_id = head
        self._completion_handle = self.sim.schedule_at(
            max(when, self.sim.now), self._fire_completion
        )

    def _fire_completion(self) -> None:
        self._completion_handle = None
        self._completion_key = None
        head = self.engine.peek()
        if head is None:
            return
        when, node_id, task_id = head
        if when > self.sim.now:
            # The head moved later without a scheduling point in between —
            # cannot happen today, but re-arming is always safe.
            self._sync_completions()
            return
        task = self.engine.complete(node_id, task_id, self.sim.now)
        self.ratios.on_finished()
        self.balance.on_remove(node_id)
        self.tracer.emit(self.sim.now, "completed", task.task_id, node_id)
        self.efficiency.observe(task.work, task.submit_time, task.finish_time)
        if self.checkpoints is not None:
            self.checkpoints.forget(task_id)
        if task.origin != node_id:
            # completion ack back to the origin (charged, no handler needed)
            self.traffic.charge("completion-ack", node_id)
        self._sync_completions()

    # ------------------------------------------------------------------
    # checkpoint/restart (§VI future work)
    # ------------------------------------------------------------------
    def _checkpoint_tick(self) -> None:
        """Snapshot every running task to its origin's checkpoint archive;
        one checkpoint transfer message is charged per task.  One
        vectorized progress integration covers the whole population."""
        assert self.checkpoints is not None
        now = self.sim.now
        self.engine.advance_all(now)
        for node_id in list(self.engine.busy_host_ids()):
            # Dead hosts keep executing but no longer checkpoint (the seed
            # convention: the archive lives on the discovery overlay).
            if not self.is_alive(node_id):
                continue
            tasks = self.engine.running_tasks(node_id)
            for task in tasks:
                self.checkpoints.take(task, now)
            self.traffic.charge("checkpoint", node_id, n=len(tasks))

    def _recover(self, task: Task) -> None:
        """Roll a killed task back to its snapshot and re-run discovery."""
        assert self.checkpoints is not None
        self.checkpoints.restore(task)
        self.recovered_tasks += 1
        self.tracer.emit(self.sim.now, "recovered", task.task_id, task.origin)

        def on_records(records: list[StateRecord], messages: int) -> None:
            task.query_messages += messages
            self._on_query_result(task, records)

        self._dispatch_query(task, on_records)

    # ------------------------------------------------------------------
    # memory budget
    # ------------------------------------------------------------------
    def _memory_stores(self) -> list:
        """The trimmable SoA substrates: the host engine plus the CAN
        overlay's zone geometry when the protocol has one (overlay-less
        protocols and the scalar reference substrates are skipped)."""
        stores = []
        if hasattr(self.engine, "footprint_bytes"):
            stores.append(self.engine)
        geometry = getattr(
            getattr(self.protocol, "overlay", None), "geometry", None
        )
        if geometry is not None and hasattr(geometry, "footprint_bytes"):
            stores.append(geometry)
        return stores

    def _memory_sweep(self) -> None:
        """Trim slack SoA capacity when the footprint exceeds the budget.

        Trimming compacts dead rows and releases spare array capacity —
        strictly semantics-preserving, so the sweep may fire (or not) at
        any cadence without changing a single metric.
        """
        stores = self._memory_stores()
        budget = self.config.memory_budget_mb * 1024 * 1024
        if sum(store.footprint_bytes() for store in stores) <= budget:
            return
        for store in stores:
            store.trim()

    # ------------------------------------------------------------------
    # churn (Fig. 8)
    # ------------------------------------------------------------------
    def _churn_event(self) -> None:
        # One node departs abruptly and a fresh node joins, keeping the
        # population constant as in the paper's dynamic-degree setup.
        victim_id = self._pick_churn_victim()
        if victim_id is not None:
            self._depart(victim_id)
            newcomer = self._create_host(self._machine_rng)
            self.protocol.on_join(newcomer)
            self.workload.start_node(
                newcomer, self.sim, self._submit_task, self.is_alive,
                quantum=self.config.arrival_quantum,
            )
        self.sim.schedule(
            self._churn_rng.exponential(self._churn_interval), self._churn_event
        )

    def _pick_churn_victim(self) -> Optional[int]:
        alive = sorted(self._alive)
        if len(alive) <= 2:
            return None
        return alive[int(self._churn_rng.integers(len(alive)))]

    def _depart(self, node_id: int) -> None:
        host = self.hosts[node_id]
        host.alive = False
        self._alive.discard(node_id)
        if self.config.churn_kills_tasks:
            evicted = self.engine.evict_all(node_id, self.sim.now)
            self.balance.on_remove_many(node_id, len(evicted))
            for task in evicted:
                self.ratios.on_evicted()
                self.tracer.emit(self.sim.now, "evicted", task.task_id, node_id)
                if self.checkpoints is not None and self.is_alive(task.origin):
                    self._recover(task)
            if evicted:
                self._sync_completions()
        # else: the node drops off the overlay but its resident tasks run
        # to completion (the paper's churn model; see config docstring).
        self.protocol.on_leave(node_id)
        self.network.remove_node(node_id)

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        started = time.perf_counter()
        self.sim.run(until=self.config.duration)
        wall = time.perf_counter() - started
        path_cache = getattr(self.protocol, "path_cache", None)
        cache_stats = path_cache.stats if path_cache is not None else None
        return SimulationResult(
            config=self.config,
            series=self.collector.series(),
            generated=self.ratios.generated,
            finished=self.ratios.finished,
            failed=self.ratios.failed,
            placed=self.ratios.placed,
            evicted=self.ratios.evicted,
            recovered=self.recovered_tasks,
            traffic_by_kind=self.traffic.kind_snapshot(),
            traffic_total=self.traffic.total(),
            per_node_msg_cost=self.traffic.per_node_cost(self._peak_population),
            peak_population=self._peak_population,
            balance=self.balance.report(self._peak_population),
            query_latency=self.latency.report(),
            efficiencies=self.efficiency.values().tolist(),
            wall_clock_s=wall,
            query_timeouts=self.ratios.query_timeouts,
            cache_lookups=cache_stats.lookups if cache_stats else 0,
            cache_hits=cache_stats.hits if cache_stats else 0,
            cache_misses=cache_stats.misses if cache_stats else 0,
            cache_stale_hits=cache_stats.stale_hits if cache_stats else 0,
            cache_relay_hits=cache_stats.relay_hits if cache_stats else 0,
            replications=cache_stats.replications if cache_stats else 0,
        )
