"""ASCII rendering of the paper's figures and tables.

The paper's figures are hour-resolution line plots; here each becomes a
column-per-protocol table of the sampled metric, and Table III becomes the
same four-metric table the paper prints.  Campaign summaries render as
mean ± 95% CI tables over the per-seed replicas.
"""

from __future__ import annotations

from typing import Mapping

from repro.experiments.multiseed import MetricStats
from repro.experiments.runner import SimulationResult

__all__ = [
    "series_table",
    "summary_table",
    "scalability_table",
    "latency_table",
    "render_scenario",
    "campaign_table",
    "render_campaign",
]


def _fmt(value: float, width: int = 9) -> str:
    if value != value:  # NaN
        return "nan".rjust(width)
    return f"{value:.3f}".rjust(width)


def series_table(
    results: Mapping[str, SimulationResult], metric: str, title: str = ""
) -> str:
    """One metric's time series for every protocol, hour by hour."""
    labels = list(results)
    if not labels:
        return "(no results)"
    first = results[labels[0]].series[metric]
    lines = []
    if title:
        lines.append(title)
    header = "hour".rjust(6) + "".join(label.rjust(16) for label in labels)
    lines.append(header)
    lines.append("-" * len(header))
    for i, t in enumerate(first.times):
        row = f"{t / 3600:6.1f}"
        for label in labels:
            series = results[label].series[metric]
            value = series.values[i] if i < len(series.values) else float("nan")
            row += _fmt(value, 16)
        lines.append(row)
    return "\n".join(lines)


def summary_table(results: Mapping[str, SimulationResult], title: str = "") -> str:
    """Final T-Ratio / F-Ratio / fairness / traffic / timeout failures
    per protocol, plus the per-query message cost and path-cache hit
    ratio (``nan`` when the cell ran cache-off)."""
    lines = []
    if title:
        lines.append(title)
    header = (
        "protocol".ljust(16)
        + "T-Ratio".rjust(9)
        + "F-Ratio".rjust(9)
        + "fairness".rjust(9)
        + "msg/node".rjust(10)
        + "tasks".rjust(8)
        + "q-t/o".rjust(7)
        + "msgs/q".rjust(9)
        + "hit%".rjust(9)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, res in results.items():
        hit = res.cache_hit_ratio
        lines.append(
            label.ljust(16)
            + _fmt(res.t_ratio)
            + _fmt(res.f_ratio)
            + _fmt(res.fairness)
            + f"{res.per_node_msg_cost:10.1f}"
            + f"{res.generated:8d}"
            + f"{res.query_timeouts:7d}"
            + _fmt(res.messages_per_query)
            + ("nan".rjust(9) if hit != hit else f"{hit:8.1%}".rjust(9))
        )
    return "\n".join(lines)


def scalability_table(results: Mapping[str, SimulationResult]) -> str:
    """Table III layout: metrics as rows, populations as columns."""
    ns = list(results)
    header = "metric / scale".ljust(22) + "".join(n.rjust(10) for n in ns)
    lines = [header, "-" * len(header)]
    rows = [
        ("throughput ratio", lambda r: f"{r.t_ratio:.3f}"),
        ("failed task ratio", lambda r: f"{r.f_ratio:.1%}"),
        ("fairness index", lambda r: f"{r.fairness:.3f}"),
        ("msg delivery cost", lambda r: f"{r.per_node_msg_cost:.0f}"),
    ]
    for name, getter in rows:
        lines.append(
            name.ljust(22) + "".join(getter(results[n]).rjust(10) for n in ns)
        )
    return "\n".join(lines)


def latency_table(results: Mapping[str, SimulationResult], title: str = "") -> str:
    """Per-query delay distribution and message cost per protocol — the
    headline metrics of the high-throughput burst scenario."""
    lines = []
    if title:
        lines.append(title)
    header = (
        "protocol".ljust(16)
        + "queries".rjust(9)
        + "mean s".rjust(9)
        + "p50 s".rjust(9)
        + "p95 s".rjust(9)
        + "max s".rjust(9)
        + "msgs/q".rjust(9)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, res in results.items():
        rep = res.query_latency
        lines.append(
            label.ljust(16)
            + f"{rep.queries:9d}"
            + _fmt(rep.mean_s)
            + _fmt(rep.p50_s)
            + _fmt(rep.p95_s)
            + _fmt(rep.max_s)
            + _fmt(rep.mean_messages)
        )
    return "\n".join(lines)


def campaign_table(
    stats_by_label: Mapping[str, Mapping[str, MetricStats]],
    title: str = "",
) -> str:
    """Mean ± 95% CI half-width per curve, one column per metric.

    ``stats_by_label`` is one ``(scenario, scale)`` group of
    :func:`repro.experiments.campaign.campaign_summary`; the replica
    count (seeds aggregated) is appended per row.
    """
    lines = []
    if title:
        lines.append(title)
    labels = list(stats_by_label)
    if not labels:
        return "(no cells)"
    metrics = list(stats_by_label[labels[0]])
    col = 19
    header = "curve".ljust(16) + "".join(m.rjust(col) for m in metrics) + "  seeds"
    lines.append(header)
    lines.append("-" * len(header))
    for label, stats in stats_by_label.items():
        row = label.ljust(16)
        n = 0
        for metric in metrics:
            st = stats.get(metric)
            if st is None:
                row += "-".rjust(col)
                continue
            n = len(st.values)
            half = (st.ci95()[1] - st.ci95()[0]) / 2
            row += f"{st.mean:9.3f} ±{half:7.3f}".rjust(col)
        row += f"{n:7d}"
        lines.append(row)
    return "\n".join(lines)


def render_campaign(
    summary: Mapping[tuple[str, str], Mapping[str, Mapping[str, MetricStats]]],
) -> str:
    """One :func:`campaign_table` per (scenario, scale) group."""
    if not summary:
        return "(no cells persisted yet)"
    blocks = []
    for (scenario, scale), stats_by_label in sorted(summary.items()):
        blocks.append(
            campaign_table(stats_by_label, f"{scenario} @ {scale}: mean ± 95% CI")
        )
    return "\n\n".join(blocks)


def render_scenario(name: str, results: Mapping[str, SimulationResult]) -> str:
    """Render a scenario the way the paper presents it."""
    if name == "table3":
        return scalability_table(results)
    blocks = []
    if name.startswith("fig4"):
        blocks.append(series_table(results, "t_ratio", f"{name}: throughput ratio"))
    else:
        for metric, label in (
            ("t_ratio", "throughput ratio"),
            ("f_ratio", "failed task ratio"),
            ("fairness", "fairness index"),
        ):
            blocks.append(series_table(results, metric, f"{name}: {label}"))
    blocks.append(summary_table(results, f"{name}: end-of-run summary"))
    if name == "burst":
        blocks.append(latency_table(results, "burst: query delay / message cost"))
    return "\n\n".join(blocks)
