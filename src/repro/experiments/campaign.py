"""Parallel experiment campaigns over the scenario × scale × seed grid.

The paper's evaluation (§IV, Figs. 4-8, Table III) is a grid of runs; a
:class:`CampaignSpec` declares such a grid (which scenarios, at which
scales, across which seeds, optionally filtered to a protocol subset) and
:func:`run_campaign` executes it cell-by-cell on a
``ProcessPoolExecutor``.  One *cell* is one simulation run — a single
curve of a figure at a single seed — identified by a stable content hash
of its full configuration, so the unit of parallelism, persistence and
resume is the same thing.

Each finished cell is written immediately (atomically, via
:func:`repro.experiments.store.save_cell_doc`) as one JSON document under
``<campaign dir>/cells/``.  Re-running the same spec skips every cell
whose document already exists — a killed campaign continues where it left
off, and growing the seed list only runs the new seeds.
:func:`campaign_summary` aggregates the persisted documents (no
re-simulation) across seeds into per-curve mean ± 95% CI via
:class:`repro.experiments.multiseed.MetricStats`.

CLI: ``python -m repro campaign run|status|report`` (see
``docs/experiments.md``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional

from repro.experiments.config import (
    SCALES,
    ExperimentConfig,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.multiseed import MetricStats, stats_from_metric_docs
from repro.experiments.runner import run_config
from repro.experiments.scenarios import SCENARIO_CONFIGS, scenario_configs
from repro.experiments.store import load_cell_doc, result_to_dict, save_cell_doc

__all__ = [
    "CampaignSpec",
    "CampaignCell",
    "CampaignReport",
    "CampaignStatus",
    "run_campaign",
    "campaign_status",
    "load_campaign_cells",
    "campaign_summary",
    "SPEC_FILENAME",
]

#: The spec written alongside the cells, so ``status`` can compare the
#: declared grid against what's on disk without re-passing the spec.
SPEC_FILENAME = "campaign.json"

#: Metrics aggregated in campaign summaries (keys of the stored
#: ``metrics`` section; see ``docs/experiments.md`` for the schema).
#: ``query_timeouts`` surfaces each protocol's churn-induced timeout
#: failures next to its success ratios; ``messages_per_query`` and
#: ``cache_hit_ratio`` carry the hot-range caching evaluation
#: (docs/caching.md).  Documents persisted before a metric existed simply
#: omit its column.
SUMMARY_METRICS = (
    "t_ratio", "f_ratio", "fairness", "per_node_msg_cost",
    "query_timeouts", "messages_per_query", "cache_hit_ratio",
)


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9]+", "-", text).strip("-").lower() or "cell"


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a single simulation run with its coordinates."""

    scenario: str
    scale: str
    seed: int
    label: str  # the curve label within the scenario (protocol, churn %, n)
    config: ExperimentConfig

    @property
    def cell_id(self) -> str:
        """Stable content hash: same coordinates + config → same id across
        processes and sessions (this keys the on-disk document)."""
        payload = json.dumps(
            {
                "scenario": self.scenario,
                "scale": self.scale,
                "seed": self.seed,
                "label": self.label,
                "config": config_to_dict(self.config),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    @property
    def filename(self) -> str:
        return (
            f"{self.scenario}-{self.scale}-seed{self.seed}-"
            f"{_slug(self.label)}-{self.cell_id}.json"
        )

    def meta(self) -> dict[str, Any]:
        """The ``cell`` section of the stored document."""
        return {
            "id": self.cell_id,
            "scenario": self.scenario,
            "scale": self.scale,
            "seed": self.seed,
            "label": self.label,
        }


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative scenario × scale × seed grid.

    ``protocols`` optionally restricts every scenario to the curves whose
    config uses one of the named protocols (churn/scalability sweeps of a
    single protocol are unaffected unless that protocol is excluded).
    ``overrides`` are extra :class:`ExperimentConfig` fields applied to
    every cell — e.g. ``{"n_nodes": 60, "duration": 3600}`` to shrink a
    smoke campaign below the named scales.
    """

    name: str = "campaign"
    scenarios: tuple[str, ...] = ("fig5",)
    scales: tuple[str, ...] = ("small",)
    seeds: tuple[int, ...] = (42,)
    protocols: Optional[tuple[str, ...]] = None
    overrides: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists; normalize before validating.
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        object.__setattr__(self, "scales", tuple(self.scales))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if self.protocols is not None:
            object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "overrides", dict(self.overrides))
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.scenarios or not self.scales or not self.seeds:
            raise ValueError("scenarios, scales and seeds must be non-empty")
        unknown = set(self.scenarios) - set(SCENARIO_CONFIGS)
        if unknown:
            raise ValueError(
                f"unknown scenarios {sorted(unknown)}; "
                f"expected among {sorted(SCENARIO_CONFIGS)}"
            )
        unknown = set(self.scales) - set(SCALES)
        if unknown:
            raise ValueError(
                f"unknown scales {sorted(unknown)}; expected among {sorted(SCALES)}"
            )
        fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
        unknown = set(self.overrides) - fields
        if unknown:
            raise ValueError(f"unknown override fields: {sorted(unknown)}")
        reserved = {"seed": "seeds", "protocol": "protocols"}
        for key, grid_field in reserved.items():
            if key in self.overrides:
                raise ValueError(
                    f"override {key!r} conflicts with the grid; "
                    f"use the {grid_field!r} spec field instead"
                )
        # Expand the grid once so bad override *values* (e.g. n_nodes=1)
        # fail here, at spec construction, not mid-campaign.
        self.cells()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "scales": list(self.scales),
            "seeds": list(self.seeds),
            "overrides": dict(self.overrides),
        }
        if self.protocols is not None:
            doc["protocols"] = list(self.protocols)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "CampaignSpec":
        data = dict(doc)
        known = {"name", "scenarios", "scales", "seeds", "protocols", "overrides"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign spec fields: {sorted(unknown)}")
        return cls(**data)

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    def cells(self) -> list[CampaignCell]:
        """Expand the grid into per-run cells (protocol filter applied)."""
        out: list[CampaignCell] = []
        for scenario in self.scenarios:
            for scale in self.scales:
                for seed in self.seeds:
                    grid = scenario_configs(
                        scenario, scale=scale, seed=seed, **self.overrides
                    )
                    for label, config in grid.items():
                        if (
                            self.protocols is not None
                            and config.protocol not in self.protocols
                        ):
                            continue
                        out.append(
                            CampaignCell(scenario, scale, seed, label, config)
                        )
        return out


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _run_cell(config_doc: dict[str, Any]) -> tuple[dict[str, Any], int]:
    """Worker entry point: rebuild the config from its JSON document (the
    same round-trip the store relies on), run it, return the result
    document plus the worker's pid (parallelism evidence in the doc)."""
    result = run_config(config_from_dict(config_doc))
    return result_to_dict(result), os.getpid()


def _cells_dir(directory: str | Path) -> Path:
    return Path(directory) / "cells"


@dataclass(frozen=True)
class CampaignReport:
    """What one ``run_campaign`` invocation did."""

    ran: tuple[str, ...]  # cell ids executed this invocation
    skipped: tuple[str, ...]  # cell ids already complete on disk
    worker_pids: tuple[int, ...]  # distinct pids that produced new cells
    failed: tuple[tuple[str, str], ...] = ()  # (cell id, error) pairs

    @property
    def total(self) -> int:
        return len(self.ran) + len(self.skipped)


def run_campaign(
    spec: CampaignSpec,
    directory: str | Path,
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignReport:
    """Execute every missing cell of ``spec`` under ``directory``.

    Cells whose document already exists (and parses) are skipped — calling
    this again after a crash or with a grown grid only runs the remainder.
    Each finished cell is persisted immediately, so progress survives a
    kill at any point; a cell that *raises* is recorded in the report's
    ``failed`` list without discarding the other cells' results.
    """
    directory = Path(directory)
    cells_dir = _cells_dir(directory)
    cells_dir.mkdir(parents=True, exist_ok=True)
    directory.joinpath(SPEC_FILENAME).write_text(
        json.dumps(spec.to_dict(), indent=1, sort_keys=True)
    )

    say = progress or (lambda _msg: None)
    pending: list[CampaignCell] = []
    skipped: list[str] = []
    for cell in spec.cells():
        path = cells_dir / cell.filename
        if path.exists():
            try:
                load_cell_doc(path)
            except (ValueError, json.JSONDecodeError):
                path.unlink()  # half-written / stale schema: redo
            else:
                skipped.append(cell.cell_id)
                continue
        pending.append(cell)

    say(
        f"campaign {spec.name!r}: {len(pending)} cell(s) to run, "
        f"{len(skipped)} already complete"
    )
    if not pending:
        return CampaignReport(ran=(), skipped=tuple(skipped), worker_pids=())

    workers = max_workers or min(len(pending), os.cpu_count() or 1)
    ran: list[str] = []
    failed: list[tuple[str, str]] = []
    pids: set[int] = set()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {
            pool.submit(_run_cell, config_to_dict(cell.config)): cell
            for cell in pending
        }
        for future in as_completed(futures):
            cell = futures[future]
            done = len(ran) + len(failed) + 1
            try:
                run_doc, pid = future.result()
            except Exception as exc:  # persist the rest; report at the end
                failed.append((cell.cell_id, f"{type(exc).__name__}: {exc}"))
                say(
                    f"[{done}/{len(pending)}] {cell.scenario}/{cell.scale} "
                    f"seed {cell.seed} {cell.label} FAILED: {exc}"
                )
                continue
            pids.add(pid)
            meta = cell.meta()
            meta["worker_pid"] = pid
            save_cell_doc(cells_dir / cell.filename, meta, run_doc)
            ran.append(cell.cell_id)
            say(
                f"[{done}/{len(pending)}] {cell.scenario}/{cell.scale} "
                f"seed {cell.seed} {cell.label} "
                f"(t_ratio={run_doc['metrics']['t_ratio']:.3f}, pid {pid})"
            )
    return CampaignReport(
        ran=tuple(ran),
        skipped=tuple(skipped),
        worker_pids=tuple(sorted(pids)),
        failed=tuple(failed),
    )


# ----------------------------------------------------------------------
# status / aggregation (persisted documents only — no simulation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignStatus:
    """Disk state of a campaign directory against its declared grid."""

    spec: CampaignSpec
    done: tuple[str, ...]  # cell ids with a document on disk
    missing: tuple[CampaignCell, ...]

    @property
    def total(self) -> int:
        return len(self.done) + len(self.missing)

    @property
    def complete(self) -> bool:
        return not self.missing


def campaign_status(
    directory: str | Path, spec: Optional[CampaignSpec] = None
) -> CampaignStatus:
    """Compare the declared grid against the cell documents on disk.

    ``spec`` defaults to the one persisted by the last ``run`` (the
    ``campaign.json`` next to the cells).
    """
    directory = Path(directory)
    if spec is None:
        spec_path = directory / SPEC_FILENAME
        if not spec_path.exists():
            raise FileNotFoundError(
                f"no {SPEC_FILENAME} under {directory}; pass a spec or run first"
            )
        spec = CampaignSpec.from_json(spec_path)
    cells_dir = _cells_dir(directory)
    done: list[str] = []
    missing: list[CampaignCell] = []
    for cell in spec.cells():
        if (cells_dir / cell.filename).exists():
            done.append(cell.cell_id)
        else:
            missing.append(cell)
    return CampaignStatus(spec=spec, done=tuple(done), missing=tuple(missing))


def load_campaign_cells(
    directory: str | Path, spec: Optional[CampaignSpec] = None
) -> list[dict[str, Any]]:
    """Persisted cell documents under ``directory`` (sorted by file name
    for stable output).

    Without a ``spec``, every document is returned.  With one, only
    documents belonging to its grid (matched by content-hash cell id)
    are returned — this is how reports exclude stale cells left behind
    by an earlier configuration that shared the directory, which would
    otherwise be averaged into the same (scenario, scale, label) group.
    """
    cells_dir = _cells_dir(directory)
    if not cells_dir.is_dir():
        raise FileNotFoundError(f"no cells directory under {directory}")
    docs = [load_cell_doc(path) for path in sorted(cells_dir.glob("*.json"))]
    if spec is not None:
        valid = {cell.cell_id for cell in spec.cells()}
        docs = [doc for doc in docs if doc["cell"]["id"] in valid]
    return docs


def campaign_summary(
    docs: list[dict[str, Any]],
    metrics: tuple[str, ...] = SUMMARY_METRICS,
) -> dict[tuple[str, str], dict[str, dict[str, MetricStats]]]:
    """Aggregate cell documents across seeds.

    Returns ``{(scenario, scale): {label: {metric: MetricStats}}}`` —
    each leaf carries the per-seed values, mean and 95% CI for one curve
    of one figure.  Pure document processing: re-rendering a report never
    re-runs a simulation.
    """
    groups: dict[tuple[str, str], dict[str, list[dict[str, Any]]]] = {}
    for doc in docs:
        cell = doc["cell"]
        key = (cell["scenario"], cell["scale"])
        groups.setdefault(key, {}).setdefault(cell["label"], []).append(
            doc["run"]["metrics"]
        )
    return {
        key: {
            label: stats_from_metric_docs(metric_docs, names=metrics)
            for label, metric_docs in by_label.items()
        }
        for key, by_label in groups.items()
    }
