"""Command-line entry point.

Two families of invocation: single scenarios (one figure/table, run
serially, printed and discarded) and campaigns (a scenario × scale × seed
grid, run in parallel, persisted cell-by-cell, resumable)::

    python -m repro fig5 --scale tiny
    python -m repro table3 --scale small --seed 7
    python -m repro campaign run --scenarios fig4a fig5 --scales tiny --seeds 1 2 3
    python -m repro campaign status --dir campaigns/campaign
    python -m repro campaign report --dir campaigns/campaign

See ``docs/experiments.md`` for the persistence layout and workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any

from repro.experiments.campaign import (
    SPEC_FILENAME,
    CampaignSpec,
    campaign_status,
    campaign_summary,
    load_campaign_cells,
    run_campaign,
)
from repro.experiments.config import SCALES
from repro.experiments.reporting import render_campaign, render_scenario
from repro.experiments.scenarios import SCENARIOS, run_scenario

__all__ = ["main", "build_parser", "build_campaign_parser", "parse_cli"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the evaluation of 'Probabilistic Best-fit "
            "Multi-dimensional Range Query in Self-Organizing Cloud' "
            "(ICPP 2011)."
        ),
    )
    parser.add_argument(
        "scenario",
        choices=sorted(SCENARIOS),
        help="paper figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="population/horizon preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII line charts of the series (mirrors the figures)",
    )
    parser.add_argument(
        "--burst-factor",
        type=float,
        default=None,
        metavar="X",
        help="arrival-rate multiplier for the burst scenario (default: 8)",
    )
    return parser


def build_campaign_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description=(
            "Run, inspect and aggregate a persisted scenario × scale × seed "
            "campaign grid (see docs/experiments.md)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute every missing cell of the grid")
    run.add_argument("--spec", help="JSON campaign spec file (CLI flags override it)")
    run.add_argument("--name", help="campaign name (default: campaign)")
    run.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIOS), help="grid scenarios"
    )
    run.add_argument(
        "--scales", nargs="+", choices=sorted(SCALES), help="grid scale presets"
    )
    run.add_argument("--seeds", nargs="+", type=int, help="grid seeds")
    run.add_argument(
        "--protocols", nargs="+", help="restrict scenarios to these protocol curves"
    )
    run.add_argument(
        "--override",
        nargs="*",
        default=[],
        metavar="FIELD=VALUE",
        help="ExperimentConfig overrides applied to every cell "
        "(e.g. n_nodes=60 duration=3600)",
    )
    run.add_argument(
        "--dir", help="campaign directory (default: campaigns/<name>)"
    )
    run.add_argument(
        "--workers", type=int, default=None, help="process pool size "
        "(default: min(cells, cpu count))"
    )

    status = sub.add_parser("status", help="compare the grid against disk")
    status.add_argument("--dir", required=True, help="campaign directory")
    status.add_argument(
        "--spec", help="JSON spec (default: the campaign.json persisted by run)"
    )

    report = sub.add_parser(
        "report", help="aggregate persisted cells into mean ± CI tables"
    )
    report.add_argument("--dir", required=True, help="campaign directory")
    report.add_argument(
        "--chart",
        action="store_true",
        help="also chart the seed-averaged T-Ratio series per scenario",
    )
    return parser


def parse_cli(argv: list[str]) -> argparse.Namespace:
    """Parse any supported command line (raises SystemExit on bad input).

    The single entry point the docs-consistency tests use to check that
    every command quoted in README/docs actually parses.
    """
    if argv and argv[0] == "campaign":
        return build_campaign_parser().parse_args(argv[1:])
    return build_parser().parse_args(argv)


# ----------------------------------------------------------------------
# campaign subcommands
# ----------------------------------------------------------------------
def _parse_overrides(pairs: list[str]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"override {pair!r} is not FIELD=VALUE")
        try:
            out[key] = json.loads(value)
        except json.JSONDecodeError:
            out[key] = value  # bare strings (e.g. protocol=hid-can)
    return out


def _resolve_spec(args: argparse.Namespace) -> CampaignSpec:
    doc: dict[str, Any] = {}
    if args.spec:
        doc = json.loads(Path(args.spec).read_text())
    if args.name:
        doc["name"] = args.name
    if args.scenarios:
        doc["scenarios"] = args.scenarios
    if args.scales:
        doc["scales"] = args.scales
    if args.seeds:
        doc["seeds"] = args.seeds
    if args.protocols:
        doc["protocols"] = args.protocols
    if args.override:
        doc["overrides"] = {**doc.get("overrides", {}), **_parse_overrides(args.override)}
    return CampaignSpec.from_dict(doc)


def _campaign_run(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    try:
        spec = _resolve_spec(args)
    except (ValueError, OSError) as exc:
        print(f"invalid campaign spec: {exc}", file=sys.stderr)
        return 2
    directory = args.dir or f"campaigns/{spec.name}"
    started = time.perf_counter()
    report = run_campaign(
        spec, directory, max_workers=args.workers, progress=print
    )
    print(
        f"\n{len(report.ran)} cell(s) run, {len(report.skipped)} skipped "
        f"(already complete) across {len(report.worker_pids)} worker(s); "
        f"{time.perf_counter() - started:.1f}s wall clock"
    )
    print(f"cells persisted under {directory}/cells — "
          f"next: python -m repro campaign report --dir {directory}")
    if report.failed:
        print(f"\n{len(report.failed)} cell(s) FAILED:", file=sys.stderr)
        for cell_id, error in report.failed:
            print(f"  {cell_id}: {error}", file=sys.stderr)
        print("re-run the same command to retry them", file=sys.stderr)
        return 1
    return 0


def _campaign_status(args: argparse.Namespace) -> int:
    spec = CampaignSpec.from_json(args.spec) if args.spec else None
    try:
        status = campaign_status(args.dir, spec)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    by_group: dict[tuple[str, str], list[int]] = {}
    for cell in status.spec.cells():
        done = (cell.cell_id in status.done)
        counts = by_group.setdefault((cell.scenario, cell.scale), [0, 0])
        counts[0] += done
        counts[1] += 1
    print(f"campaign {status.spec.name!r} under {args.dir}:")
    for (scenario, scale), (done, total) in sorted(by_group.items()):
        print(f"  {scenario} @ {scale}: {done}/{total} cells")
    print(
        f"{len(status.done)}/{status.total} complete"
        + ("" if status.complete else
           " — resume with: python -m repro campaign run "
           f"--spec {args.dir}/campaign.json --dir {args.dir}")
    )
    return 0


def _campaign_report(args: argparse.Namespace) -> int:
    try:
        all_docs = load_campaign_cells(args.dir)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 2
    docs = all_docs
    spec_path = Path(args.dir) / SPEC_FILENAME
    if spec_path.exists():
        spec = CampaignSpec.from_json(spec_path)
        valid = {cell.cell_id for cell in spec.cells()}
        docs = [doc for doc in all_docs if doc["cell"]["id"] in valid]
        stale = len(all_docs) - len(docs)
        if stale:
            print(
                f"(excluding {stale} stale cell(s) not in the current "
                f"{SPEC_FILENAME} grid)\n"
            )
    print(render_campaign(campaign_summary(docs)))
    if args.chart:
        from repro.experiments.plots import mean_series_chart

        groups: dict[tuple[str, str], dict[str, list[dict[str, Any]]]] = {}
        for doc in docs:
            cell = doc["cell"]
            series = doc["run"]["series"].get("t_ratio")
            if series is None:
                continue
            key = (cell["scenario"], cell["scale"])
            groups.setdefault(key, {}).setdefault(cell["label"], []).append(series)
        for (scenario, scale), by_label in sorted(groups.items()):
            print()
            print(
                mean_series_chart(
                    by_label, title=f"{scenario} @ {scale}: mean T-Ratio"
                )
            )
    return 0


def campaign_main(argv: list[str]) -> int:
    args = build_campaign_parser().parse_args(argv)
    handler = {
        "run": _campaign_run,
        "status": _campaign_status,
        "report": _campaign_report,
    }[args.command]
    return handler(args)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "campaign":
        return campaign_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.burst_factor is not None and args.scenario != "burst":
        print("--burst-factor only applies to the burst scenario", file=sys.stderr)
        return 2
    if args.burst_factor is not None and args.burst_factor < 1.0:
        print("--burst-factor must be >= 1", file=sys.stderr)
        return 2
    extra = (
        {"burst_factor": args.burst_factor} if args.burst_factor is not None else {}
    )
    started = time.perf_counter()
    results = run_scenario(args.scenario, scale=args.scale, seed=args.seed, **extra)
    if args.chart and args.scenario != "table3":
        from repro.experiments.plots import scenario_charts

        metrics = ("t_ratio",) if args.scenario.startswith("fig4") else (
            "t_ratio", "f_ratio", "fairness",
        )
        print(scenario_charts(results, metrics=metrics))
        print()
    print(render_scenario(args.scenario, results))
    print(
        f"\n[{args.scenario} @ {args.scale}, seed {args.seed}: "
        f"{time.perf_counter() - started:.1f}s wall clock]"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
