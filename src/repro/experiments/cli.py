"""Command-line entry point.

Examples::

    pidcan fig5 --scale tiny
    pidcan table3 --scale small --seed 7
    python -m repro fig4b
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import SCALES
from repro.experiments.reporting import render_scenario
from repro.experiments.scenarios import SCENARIOS, run_scenario

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pidcan",
        description=(
            "Reproduce the evaluation of 'Probabilistic Best-fit "
            "Multi-dimensional Range Query in Self-Organizing Cloud' "
            "(ICPP 2011)."
        ),
    )
    parser.add_argument(
        "scenario",
        choices=sorted(SCENARIOS),
        help="paper figure/table to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="small",
        help="population/horizon preset (default: small)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="render ASCII line charts of the series (mirrors the figures)",
    )
    parser.add_argument(
        "--burst-factor",
        type=float,
        default=None,
        metavar="X",
        help="arrival-rate multiplier for the burst scenario (default: 8)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.burst_factor is not None and args.scenario != "burst":
        print("--burst-factor only applies to the burst scenario", file=sys.stderr)
        return 2
    if args.burst_factor is not None and args.burst_factor < 1.0:
        print("--burst-factor must be >= 1", file=sys.stderr)
        return 2
    extra = (
        {"burst_factor": args.burst_factor} if args.burst_factor is not None else {}
    )
    started = time.perf_counter()
    results = run_scenario(args.scenario, scale=args.scale, seed=args.seed, **extra)
    if args.chart and args.scenario != "table3":
        from repro.experiments.plots import scenario_charts

        metrics = ("t_ratio",) if args.scenario.startswith("fig4") else (
            "t_ratio", "f_ratio", "fairness",
        )
        print(scenario_charts(results, metrics=metrics))
        print()
    print(render_scenario(args.scenario, results))
    print(
        f"\n[{args.scenario} @ {args.scale}, seed {args.seed}: "
        f"{time.perf_counter() - started:.1f}s wall clock]"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
