"""Experiment configuration and scale presets.

``paper`` matches §IV-A (2000 nodes, one simulated day); ``small`` and
``tiny`` shrink the population and horizon while keeping the *per-node*
load regime identical (same arrival process, same demand distributions),
which preserves protocol orderings and crossovers — the properties the
benchmarks assert.  Select with ``ExperimentConfig.at_scale`` or the
``REPRO_SCALE`` environment variable in the benches.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.protocol import PIDCANParams
from repro.sim.network import NetworkParams

__all__ = [
    "ExperimentConfig",
    "SCALES",
    "env_scale",
    "config_to_dict",
    "config_from_dict",
]


#: (n_nodes, duration_seconds) per named scale.
SCALES: dict[str, tuple[int, float]] = {
    "paper": (2000, 86400.0),
    "small": (400, 21600.0),
    "tiny": (120, 7200.0),
}


def env_scale(default: str = "small") -> str:
    """The scale requested via ``REPRO_SCALE`` (benches honour this)."""
    scale = os.environ.get("REPRO_SCALE", default)
    if scale not in SCALES:
        raise ValueError(f"REPRO_SCALE={scale!r}; expected one of {sorted(SCALES)}")
    return scale


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Everything one SOC simulation run needs."""

    # population / horizon ---------------------------------------------
    n_nodes: int = 400
    duration: float = 21600.0
    seed: int = 42

    # workload (§IV-A / Table II) --------------------------------------
    demand_ratio: float = 1.0
    mean_interarrival: float = 3000.0
    mean_nominal_time: float = 3000.0
    #: Arrival-rate multiplier for high-throughput burst scenarios: every
    #: node submits ``burst_factor`` times more often than the Table II
    #: regime (the per-node Poisson process keeps its shape, only its rate
    #: scales), stressing concurrent query chains and duty-cache scans.
    burst_factor: float = 1.0

    # protocol ----------------------------------------------------------
    protocol: str = "hid-can"
    pidcan: PIDCANParams = field(default_factory=PIDCANParams)
    protocol_kwargs: dict[str, Any] = field(default_factory=dict)

    # scheduling policy (DESIGN.md §5) -----------------------------------
    admission: str = "none"  # "none" | "strict"
    local_first: bool = False
    selection_policy: str = "best-fit"
    placement_retries: int = 2
    query_failsafe_timeout: float = 180.0

    # churn (Fig. 8) -----------------------------------------------------
    churn_degree: float = 0.0  # fraction of nodes churning per lifetime
    churn_lifetime: float = 3000.0
    #: The paper's churn disconnects nodes from the *overlay* (discovery
    #: state is lost) while resident tasks run to completion — Fig. 8's
    #: near-flat T-Ratio at 25-50% churn is impossible otherwise, and
    #: execution fault tolerance is explicitly future work (§VI).  Set
    #: True to also kill resident tasks (ablation).
    churn_kills_tasks: bool = False
    #: §VI future work: checkpoint/restart on top of the discovery
    #: protocol.  Only meaningful with ``churn_kills_tasks=True``: killed
    #: tasks roll back to their last snapshot and re-run the query.
    checkpoint_enabled: bool = False
    checkpoint_period: float = 600.0

    # event coalescing (docs/coalescing.md) ------------------------------
    #: Buffer query arrivals landing at the same delivery instant and hand
    #: them to the protocol as one ``submit_bulk`` batch.  Event-identical
    #: to uncoalesced submission; the win is batched duty-query routing.
    coalesce_arrivals: bool = False
    #: Round task arrival times *up* onto this grid (0 = off).  The
    #: exponential draws are untouched — only the fire instants snap — so
    #: many arrivals share an instant and coalesce into real batches.
    arrival_quantum: float = 0.0
    #: Batch same-instant message deliveries into one heap event per
    #: delivery instant (:class:`repro.sim.delivery.DeliveryCalendar`).
    #: Bit-identical to per-message scheduling when ``delivery_quantum``
    #: is 0; event accounting is preserved either way.
    coalesce_deliveries: bool = False
    #: Round message delivery instants *up* onto this grid (0 = off) so
    #: independent messages collide into real batches.  Deterministic but
    #: no longer identical to the un-quantized run (bounded added latency
    #: per message) — the delivery-side twin of ``arrival_quantum``.
    delivery_quantum: float = 0.0
    #: Soft ceiling on the SoA storage of the host engine + overlay
    #: geometry; a periodic sweep trims slack capacity when exceeded
    #: (None = never trim).  Semantics-preserving at any value.
    memory_budget_mb: float | None = None
    #: How often the memory sweep checks the footprint.
    memory_sweep_period: float = 600.0
    #: Store overlay geometry, duty caches and host-engine state in
    #: compact dtypes (float32 values, int32 ids) to halve the SoA memory
    #: ceiling.  Zone bounds are dyadic rationals so the overlay stays
    #: bit-identical; cache/engine float32 state is approximate — default
    #: off keeps today's float64 path byte-for-byte.
    compact_dtypes: bool = False

    # hot-range path caching + replication (docs/caching.md) -------------
    #: None = cache off (bit-identical to the pre-cache protocol, pinned
    #: by equivalence tests); else one of
    #: :data:`repro.core.cache.CACHE_POLICIES` ("ttl", "lru", "lfu",
    #: "adaptive").  The runner threads these knobs into ``pidcan``.
    cache_policy: str | None = None
    cache_size: int = 128
    cache_ttl: float = 1200.0
    #: Diffuse a hot duty node's record partition to adjacent zones when
    #: its windowed service count crosses ``replication_threshold``.
    cache_replication: bool = False
    replication_threshold: int = 8
    replication_window: float = 400.0

    # skewed query workload (docs/caching.md) ----------------------------
    #: 0 = the Table II uniform demand sampler, byte-for-byte.  > 0 draws
    #: each task's demand near one of ``hot_ranges`` prototype ranges with
    #: Zipf(s)-distributed popularity and bounded-Pareto range widths.
    zipf_s: float = 0.0
    hot_ranges: int = 64
    range_width_alpha: float = 1.5

    # environment ---------------------------------------------------------
    network: NetworkParams = field(default_factory=NetworkParams)
    cmax_mode: str = "exact"  # "exact" | "gossip"
    sample_period: float = 3600.0
    #: Emit one TraceEvent per task lifecycle transition (repro.sim.tracing).
    trace_tasks: bool = False

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.admission not in ("none", "strict"):
            raise ValueError(f"admission must be none|strict, got {self.admission}")
        if self.cmax_mode not in ("exact", "gossip"):
            raise ValueError(f"cmax_mode must be exact|gossip, got {self.cmax_mode}")
        if not 0.0 <= self.churn_degree < 1.0:
            raise ValueError("churn_degree must be in [0, 1)")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.arrival_quantum < 0.0:
            raise ValueError("arrival_quantum must be >= 0")
        if self.delivery_quantum < 0.0:
            raise ValueError("delivery_quantum must be >= 0")
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be positive (or None)")
        if self.memory_sweep_period <= 0:
            raise ValueError("memory_sweep_period must be positive")
        if self.cache_policy is not None:
            from repro.core.cache import CACHE_POLICIES

            if self.cache_policy not in CACHE_POLICIES:
                raise ValueError(
                    f"cache_policy must be None or one of {CACHE_POLICIES}, "
                    f"got {self.cache_policy!r}"
                )
        if self.cache_ttl <= 0:
            raise ValueError("cache_ttl must be positive")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if self.replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        if self.replication_window <= 0:
            raise ValueError("replication_window must be positive")
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.hot_ranges < 1:
            raise ValueError("hot_ranges must be >= 1")
        if self.range_width_alpha <= 0:
            raise ValueError("range_width_alpha must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def at_scale(cls, scale: str = "small", **overrides: Any) -> "ExperimentConfig":
        """A config at a named scale with field overrides applied."""
        try:
            n_nodes, duration = SCALES[scale]
        except KeyError:
            raise ValueError(f"unknown scale {scale!r}; expected {sorted(SCALES)}") from None
        base = cls(n_nodes=n_nodes, duration=duration)
        return replace(base, **overrides) if overrides else base

    @property
    def effective_interarrival(self) -> float:
        """Per-node mean inter-arrival after the burst multiplier."""
        return self.mean_interarrival / self.burst_factor

    def with_protocol(self, protocol: str, **kwargs: Any) -> "ExperimentConfig":
        return replace(self, protocol=protocol,
                       protocol_kwargs={**self.protocol_kwargs, **kwargs})

    def describe(self) -> str:
        return (
            f"{self.protocol} n={self.n_nodes} λ={self.demand_ratio} "
            f"T={self.duration / 3600:.0f}h seed={self.seed}"
            + (f" churn={self.churn_degree:.0%}" if self.churn_degree else "")
            + (f" burst={self.burst_factor:g}x" if self.burst_factor != 1.0 else "")
        )


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """A JSON-ready dict for ``config`` (nested params become dicts).

    The inverse of :func:`config_from_dict`:
    ``config_from_dict(config_to_dict(c)) == c`` for any JSON-representable
    configuration — the property campaign persistence and the result store
    rely on.
    """
    doc = dataclasses.asdict(config)
    # Coerce any non-JSON scalar (e.g. numpy numbers in protocol_kwargs)
    # to its closest JSON type so the document survives a disk round-trip.
    return json.loads(json.dumps(doc, default=float))


def config_from_dict(doc: Mapping[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict`
    output (e.g. the ``config`` section of a stored result document)."""
    data = dict(doc)
    known = {f.name for f in dataclasses.fields(ExperimentConfig)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    if isinstance(data.get("pidcan"), Mapping):
        data["pidcan"] = PIDCANParams(**data["pidcan"])
    if isinstance(data.get("network"), Mapping):
        data["network"] = NetworkParams(**data["network"])
    return ExperimentConfig(**data)
