"""Persistence for experiment results.

Serializes :class:`SimulationResult` to a stable JSON document (config,
end-of-run metrics, hourly series, traffic breakdown) so runs can be
archived, diffed across code versions, and re-rendered without re-running
the simulations — the workflow behind ``docs/experiments.md``.  Campaign
cells (:mod:`repro.experiments.campaign`) persist through the same
document layout, one file per cell, written atomically so a killed
campaign never leaves a half-written cell behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

from repro.experiments.config import config_to_dict
from repro.experiments.runner import SimulationResult

__all__ = [
    "result_to_dict",
    "save_results",
    "load_results",
    "diff_results",
    "save_cell_doc",
    "load_cell_doc",
]

#: Bump when the document layout changes.
SCHEMA_VERSION = 1


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """A JSON-ready document for one run."""
    return {
        "schema": SCHEMA_VERSION,
        "config": config_to_dict(result.config),
        "metrics": {
            "t_ratio": result.t_ratio,
            "f_ratio": result.f_ratio,
            "fairness": result.fairness,
            "per_node_msg_cost": result.per_node_msg_cost,
            "generated": result.generated,
            "finished": result.finished,
            "failed": result.failed,
            "placed": result.placed,
            "evicted": result.evicted,
            "recovered": result.recovered,
            "peak_population": result.peak_population,
            "query_timeouts": result.query_timeouts,
            "messages_per_query": result.messages_per_query,
            "cache_hit_ratio": result.cache_hit_ratio,
            "cache_regret": result.cache_regret,
            "cache_hits": result.cache_hits,
            "cache_lookups": result.cache_lookups,
            "replications": result.replications,
        },
        "balance": result.balance.as_dict(),
        "query_latency": result.query_latency.as_dict(),
        "traffic_by_kind": dict(result.traffic_by_kind),
        "series": {
            name: series.as_dict() for name, series in result.series.items()
        },
        "wall_clock_s": result.wall_clock_s,
    }


def save_results(
    results: Mapping[str, SimulationResult], path: str | Path
) -> Path:
    """Write ``{label: result}`` to ``path`` as one JSON document."""
    path = Path(path)
    doc = {
        "schema": SCHEMA_VERSION,
        "runs": {label: result_to_dict(res) for label, res in results.items()},
    }
    path.write_text(json.dumps(doc, indent=1, sort_keys=True, allow_nan=True))
    return path


def load_results(path: str | Path) -> dict[str, dict[str, Any]]:
    """Load the raw run documents keyed by label (no object rehydration —
    the document is the analysis interface)."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported results schema {doc.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    return doc["runs"]


def save_cell_doc(
    path: str | Path, cell: Mapping[str, Any], run: Mapping[str, Any]
) -> Path:
    """Atomically write one campaign-cell document.

    ``cell`` is the grid coordinate (scenario/scale/seed/label/id, plus
    anything the campaign wants to record, e.g. the worker pid); ``run``
    is a :func:`result_to_dict` document.  Write-then-rename keeps resume
    safe: a cell file either exists complete or not at all.
    """
    path = Path(path)
    doc = {"schema": SCHEMA_VERSION, "cell": dict(cell), "run": dict(run)}
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=1, sort_keys=True, allow_nan=True))
    os.replace(tmp, path)
    return path


def load_cell_doc(path: str | Path) -> dict[str, Any]:
    """Load one campaign-cell document (schema-checked, no rehydration)."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported cell schema {doc.get('schema')!r}; "
            f"expected {SCHEMA_VERSION}"
        )
    if "cell" not in doc or "run" not in doc:
        raise ValueError(f"malformed cell document {path}")
    return doc


def diff_results(
    old: Mapping[str, Mapping[str, Any]],
    new: Mapping[str, Mapping[str, Any]],
    metrics: tuple[str, ...] = ("t_ratio", "f_ratio", "fairness"),
    tolerance: float = 0.0,
) -> list[str]:
    """Metric-level differences between two saved documents.

    Returns human-readable difference lines (empty = identical within
    ``tolerance``); labels present on only one side are reported too.
    """
    lines: list[str] = []
    for label in sorted(set(old) | set(new)):
        if label not in old:
            lines.append(f"{label}: only in new")
            continue
        if label not in new:
            lines.append(f"{label}: only in old")
            continue
        for metric in metrics:
            a = old[label]["metrics"].get(metric)
            b = new[label]["metrics"].get(metric)
            if a is None or b is None:
                continue
            if a != a and b != b:  # both NaN
                continue
            if abs(a - b) > tolerance:
                lines.append(f"{label}.{metric}: {a:.4f} -> {b:.4f}")
    return lines
