"""Per-figure/table scenario builders (the experiment index of DESIGN.md §4).

Each scenario runs one `SOCSimulation` per curve of the corresponding paper
figure and returns ``{label: SimulationResult}``.  Scale presets shrink the
population/horizon but keep the per-node load regime, preserving the
qualitative shapes the paper reports (who wins, where the crossovers are).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import SimulationResult, SOCSimulation

__all__ = [
    "run_protocol",
    "run_scenario",
    "SCENARIOS",
    "FIG4_PROTOCOLS",
    "FIG567_PROTOCOLS",
    "BURST_PROTOCOLS",
    "CHURN_DEGREES",
    "scalability_populations",
]

#: Fig. 4 compares the unstructured, replication and diffusion families.
FIG4_PROTOCOLS = ("newscast", "sid-can", "khdn-can")

#: Figs. 5-7 compare the six §IV-B variants.
FIG567_PROTOCOLS = (
    "sid-can",
    "hid-can",
    "sid-can+sos",
    "hid-can+sos",
    "sid-can+vd",
    "newscast",
)

#: Fig. 8 dynamic degrees (fraction of nodes churning per 3000 s lifetime).
CHURN_DEGREES = (0.0, 0.25, 0.50, 0.75, 0.95)

#: The burst (high-throughput) scenario compares the main diffusion
#: variants against the replication and unstructured families under a
#: many-concurrent-queries regime.
BURST_PROTOCOLS = ("hid-can", "sid-can", "khdn-can", "newscast")


def scalability_populations(scale: str) -> list[int]:
    """Table III population sweep, scaled: the paper uses 2000..12000."""
    base, _ = SCALES[scale]
    return [base * m for m in (1, 2, 3, 4, 5, 6)]


def run_protocol(
    protocol: str,
    scale: str = "small",
    demand_ratio: float = 1.0,
    seed: int = 42,
    **overrides: Any,
) -> SimulationResult:
    """Run a single protocol curve and return its result."""
    config = ExperimentConfig.at_scale(
        scale, protocol=protocol, demand_ratio=demand_ratio, seed=seed, **overrides
    )
    return SOCSimulation(config).run()


# ----------------------------------------------------------------------
# scenario builders
# ----------------------------------------------------------------------
def fig4a(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """T-Ratio over a day at demand ratio 0.84 (wide demands)."""
    return {
        p: run_protocol(p, scale, demand_ratio=0.84, seed=seed)
        for p in FIG4_PROTOCOLS
    }


def fig4b(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Same at demand ratio 0.25 — the Newscast/SID-CAN crossover."""
    return {
        p: run_protocol(p, scale, demand_ratio=0.25, seed=seed)
        for p in FIG4_PROTOCOLS
    }


def _fig567(demand_ratio: float, scale: str, seed: int) -> dict[str, SimulationResult]:
    return {
        p: run_protocol(p, scale, demand_ratio=demand_ratio, seed=seed)
        for p in FIG567_PROTOCOLS
    }


def fig5(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=1 (T-Ratio, F-Ratio, fairness series)."""
    return _fig567(1.0, scale, seed)


def fig6(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=0.5."""
    return _fig567(0.5, scale, seed)


def fig7(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=0.25 (HID's near-zero failed tasks)."""
    return _fig567(0.25, scale, seed)


def fig8(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """HID-CAN under churn, λ=0.5 (dynamic degree sweep)."""
    out: dict[str, SimulationResult] = {}
    for degree in CHURN_DEGREES:
        label = "static" if degree == 0 else f"dynamic {degree:.0%}"
        out[label] = run_protocol(
            "hid-can", scale, demand_ratio=0.5, seed=seed, churn_degree=degree
        )
    return out


def burst(
    scale: str = "small", seed: int = 42, burst_factor: float = 8.0
) -> dict[str, SimulationResult]:
    """High-throughput stress: every node submits ``burst_factor`` times
    more often than the Table II regime (λ=0.5), so many query chains are
    in flight concurrently and duty-node caches are scanned at production
    rates.  Not a paper figure — a scale scenario for the vectorized
    cache and the query engine's concurrency behaviour."""
    return {
        p: run_protocol(
            p, scale, demand_ratio=0.5, seed=seed, burst_factor=burst_factor
        )
        for p in BURST_PROTOCOLS
    }


def table3(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """HID-CAN scalability sweep (λ=0.5): four metrics vs population."""
    _, duration = SCALES[scale]
    out: dict[str, SimulationResult] = {}
    for n in scalability_populations(scale):
        config = ExperimentConfig.at_scale(
            scale, protocol="hid-can", demand_ratio=0.5, seed=seed
        )
        config = replace(config, n_nodes=n, duration=duration)
        out[str(n)] = SOCSimulation(config).run()
    return out


SCENARIOS: dict[str, Callable[..., dict[str, SimulationResult]]] = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "burst": burst,
    "table3": table3,
}


def run_scenario(
    name: str, scale: str = "small", seed: int = 42, **kwargs: Any
) -> dict[str, SimulationResult]:
    """Dispatch a scenario by its paper figure/table id (extra keyword
    arguments are forwarded to the builder, e.g. ``burst_factor``)."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
    return builder(scale=scale, seed=seed, **kwargs)
