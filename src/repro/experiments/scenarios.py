"""Per-figure/table scenario builders (the experiment index of DESIGN.md §4).

Each scenario describes one paper figure/table as a ``{label: config}``
grid — one :class:`ExperimentConfig` per curve — built by
:func:`scenario_configs`.  :func:`run_scenario` runs every curve serially
and returns ``{label: SimulationResult}``; the campaign layer
(:mod:`repro.experiments.campaign`) runs the same grids cell-by-cell in
parallel with persistence.  Scale presets shrink the population/horizon
but keep the per-node load regime, preserving the qualitative shapes the
paper reports (who wins, where the crossovers are).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.core.protocol import PIDCANParams
from repro.experiments.config import ExperimentConfig, SCALES
from repro.experiments.runner import SimulationResult, SOCSimulation

__all__ = [
    "run_protocol",
    "run_scenario",
    "scenario_configs",
    "SCENARIOS",
    "SCENARIO_CONFIGS",
    "FIG4_PROTOCOLS",
    "FIG567_PROTOCOLS",
    "BURST_PROTOCOLS",
    "CHURN_DEGREES",
    "CHURN_SWEEP_PROTOCOLS",
    "CHURN_SWEEP_DEGREES",
    "HOTRANGE_POLICIES",
    "MEGA_POPULATIONS",
    "MEGA_DURATIONS",
    "MEGA2_POPULATIONS",
    "MEGA2_DURATIONS",
    "scalability_populations",
]

#: Fig. 4 compares the unstructured, replication and diffusion families.
FIG4_PROTOCOLS = ("newscast", "sid-can", "khdn-can")

#: Figs. 5-7 compare the six §IV-B variants.
FIG567_PROTOCOLS = (
    "sid-can",
    "hid-can",
    "sid-can+sos",
    "hid-can+sos",
    "sid-can+vd",
    "newscast",
)

#: Fig. 8 dynamic degrees (fraction of nodes churning per 3000 s lifetime).
CHURN_DEGREES = (0.0, 0.25, 0.50, 0.75, 0.95)

#: The burst (high-throughput) scenario compares the main diffusion
#: variants against the replication and unstructured families under a
#: many-concurrent-queries regime.
BURST_PROTOCOLS = ("hid-can", "sid-can", "khdn-can", "newscast")

#: The churn comparison grid runs the full protocol axis — one
#: representative of every family, including the previously timeout-less
#: baselines (randomwalk/khdn/mercury) — under Fig. 8-style dynamic
#: membership.  Only possible because every protocol now shares the
#: requester-side query lifecycle (``repro.core.lifecycle``): a chain
#: lost to churn resolves as an explicit timeout failure instead of
#: hanging batched submission.
CHURN_SWEEP_PROTOCOLS = (
    "hid-can",
    "sid-can",
    "newscast",
    "khdn-can",
    "randomwalk-can",
    "mercury",
    "inscan-rq",
)

#: Dynamic degrees of the churn comparison grid (moderate + extreme).
CHURN_SWEEP_DEGREES = (0.25, 0.75)

#: Eviction policies swept by the hotrange scenario (docs/caching.md).
HOTRANGE_POLICIES = ("ttl", "lru", "lfu", "adaptive")

#: Population per scale of the ``mega`` tier.  Unlike the figure
#: scenarios (which use :data:`~repro.experiments.config.SCALES`), mega
#: exists to exercise the coalesced event path at populations the
#: per-node ticking engine cannot reach — 10^5 nodes at ``paper``.
MEGA_POPULATIONS: dict[str, int] = {
    "paper": 100_000,
    "small": 20_000,
    "tiny": 4_000,
}

#: Horizon per scale of the ``mega`` tier: short (tens of state rounds),
#: because the point is round throughput at scale, not day-long series.
MEGA_DURATIONS: dict[str, float] = {
    "paper": 1800.0,
    "small": 1500.0,
    "tiny": 1200.0,
}

#: Population per scale of the ``mega2`` tier: the next rung toward 10^6
#: nodes, reachable only with delivery coalescing + compact dtypes on
#: top of mega's levers — 3x10^5 nodes at ``paper``.
MEGA2_POPULATIONS: dict[str, int] = {
    "paper": 300_000,
    "small": 40_000,
    "tiny": 8_000,
}

#: Horizon per scale of the ``mega2`` tier (same rationale as mega).
MEGA2_DURATIONS: dict[str, float] = {
    "paper": 1800.0,
    "small": 1500.0,
    "tiny": 1200.0,
}


def scalability_populations(scale: str, base_n: int | None = None) -> list[int]:
    """Table III population sweep, scaled: the paper uses 2000..12000.

    ``base_n`` overrides the sweep's base population (default: the named
    scale's) while keeping the 1x..6x shape.
    """
    base = base_n if base_n is not None else SCALES[scale][0]
    return [base * m for m in (1, 2, 3, 4, 5, 6)]


def run_protocol(
    protocol: str,
    scale: str = "small",
    demand_ratio: float = 1.0,
    seed: int = 42,
    **overrides: Any,
) -> SimulationResult:
    """Run a single protocol curve and return its result."""
    config = ExperimentConfig.at_scale(
        scale, protocol=protocol, demand_ratio=demand_ratio, seed=seed, **overrides
    )
    return SOCSimulation(config).run()


# ----------------------------------------------------------------------
# config grids (one ExperimentConfig per figure curve)
# ----------------------------------------------------------------------
def _protocol_grid(
    protocols: tuple[str, ...],
    scale: str,
    default_demand_ratio: float,
    seed: int,
    **overrides: Any,
) -> dict[str, ExperimentConfig]:
    # Overrides win over the scenario's default regime (demand-ratio
    # ablations) but never over what the grid itself sweeps (protocol)
    # or the per-cell seed.
    params = {"demand_ratio": default_demand_ratio, **overrides}
    params.pop("protocol", None)
    params.pop("seed", None)
    return {
        p: ExperimentConfig.at_scale(scale, protocol=p, seed=seed, **params)
        for p in protocols
    }


def fig4a_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """T-Ratio over a day at demand ratio 0.84 (wide demands)."""
    return _protocol_grid(FIG4_PROTOCOLS, scale, 0.84, seed, **overrides)


def fig4b_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Same at demand ratio 0.25 — the Newscast/SID-CAN crossover."""
    return _protocol_grid(FIG4_PROTOCOLS, scale, 0.25, seed, **overrides)


def fig5_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Six protocols at λ=1 (T-Ratio, F-Ratio, fairness series)."""
    return _protocol_grid(FIG567_PROTOCOLS, scale, 1.0, seed, **overrides)


def fig6_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Six protocols at λ=0.5."""
    return _protocol_grid(FIG567_PROTOCOLS, scale, 0.5, seed, **overrides)


def fig7_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Six protocols at λ=0.25 (HID's near-zero failed tasks)."""
    return _protocol_grid(FIG567_PROTOCOLS, scale, 0.25, seed, **overrides)


def fig8_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """HID-CAN under churn, λ=0.5 (dynamic degree sweep)."""
    if "churn_degree" in overrides:
        raise ValueError(
            "fig8 sweeps churn_degree; drop the override or exclude fig8"
        )
    params = {"protocol": "hid-can", "demand_ratio": 0.5, **overrides}
    params.pop("seed", None)
    out: dict[str, ExperimentConfig] = {}
    for degree in CHURN_DEGREES:
        label = "static" if degree == 0 else f"dynamic {degree:.0%}"
        out[label] = ExperimentConfig.at_scale(
            scale, seed=seed, churn_degree=degree, **params
        )
    return out


def churn_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Churn-hardened protocol comparison (λ=0.5): the full protocol axis
    × dynamic degree, one cell per (protocol, degree).

    Beyond Fig. 8 (which sweeps churn for HID-CAN only): every baseline
    runs under the same dynamic membership, and their failsafe-timeout
    failures are compared through the ``query_timeouts`` metric.
    """
    if "churn_degree" in overrides:
        raise ValueError(
            "churn sweeps churn_degree; drop the override or exclude churn"
        )
    params = {"demand_ratio": 0.5, **overrides}
    params.pop("protocol", None)
    params.pop("seed", None)
    out: dict[str, ExperimentConfig] = {}
    for degree in CHURN_SWEEP_DEGREES:
        for protocol in CHURN_SWEEP_PROTOCOLS:
            out[f"{protocol} @ {degree:.0%}"] = ExperimentConfig.at_scale(
                scale, protocol=protocol, seed=seed, churn_degree=degree,
                **params,
            )
    return out


def burst_configs(
    scale: str = "small",
    seed: int = 42,
    burst_factor: float = 8.0,
    **overrides: Any,
) -> dict[str, ExperimentConfig]:
    """High-throughput stress: every node submits ``burst_factor`` times
    more often than the Table II regime (λ=0.5), so many query chains are
    in flight concurrently and duty-node caches are scanned at production
    rates.  Not a paper figure — a scale scenario for the vectorized
    cache and the query engine's concurrency behaviour."""
    return _protocol_grid(
        BURST_PROTOCOLS, scale, 0.5, seed, burst_factor=burst_factor, **overrides
    )


def hotrange_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """Hot-range caching grid (docs/caching.md): HID-CAN under
    Zipf-skewed demand (s=1, λ=0.5, burst ×8 so caches warm within the
    horizon), one cell per eviction policy × replication on/off, plus the
    cache-off control every cell is compared against.

    The sweep's own axes (``cache_policy``, ``cache_replication``) cannot
    be overridden; everything else (``zipf_s`` for the skew ablation,
    ``n_nodes``/``duration`` for smokes) applies verbatim.
    """
    params: dict[str, Any] = {
        "protocol": "hid-can",
        "demand_ratio": 0.5,
        "burst_factor": 8.0,
        "zipf_s": 1.0,
        "cache_ttl": 2400.0,
        **overrides,
    }
    for swept in ("cache_policy", "cache_replication", "seed"):
        params.pop(swept, None)
    out: dict[str, ExperimentConfig] = {
        "off": ExperimentConfig.at_scale(scale, seed=seed, **params)
    }
    for policy in HOTRANGE_POLICIES:
        out[policy] = ExperimentConfig.at_scale(
            scale, seed=seed, cache_policy=policy, **params
        )
        out[f"{policy}+repl"] = ExperimentConfig.at_scale(
            scale, seed=seed, cache_policy=policy, cache_replication=True,
            **params,
        )
    return out


def table3_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """HID-CAN scalability sweep (λ=0.5): four metrics vs population.

    An ``n_nodes`` override rebases the sweep (1x..6x of the override)
    instead of being applied verbatim — shrunk campaigns shrink the whole
    sweep rather than silently ignoring the override.
    """
    params = {"protocol": "hid-can", "demand_ratio": 0.5, **overrides}
    base_n = params.pop("n_nodes", None)
    params.pop("seed", None)
    base = ExperimentConfig.at_scale(scale, seed=seed, **params)
    return {
        str(n): replace(base, n_nodes=n)
        for n in scalability_populations(scale, base_n)
    }


def mega_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """The coalesced 10^5-node tier (docs/coalescing.md): HID-CAN at
    λ=0.5 with cohort ticking, quantized+coalesced arrivals and a memory
    budget — every batching lever on at once.

    Populations/horizons come from :data:`MEGA_POPULATIONS` /
    :data:`MEGA_DURATIONS` rather than the figure scales: ``paper`` is
    100 000 nodes over a short horizon.  Overrides (``n_nodes``,
    ``duration``, ...) apply verbatim, so smokes can shrink a cell.
    """
    if scale not in MEGA_POPULATIONS:
        raise ValueError(
            f"unknown scale {scale!r}; expected {sorted(MEGA_POPULATIONS)}"
        )
    params: dict[str, Any] = {
        "n_nodes": MEGA_POPULATIONS[scale],
        "duration": MEGA_DURATIONS[scale],
        "protocol": "hid-can",
        "demand_ratio": 0.5,
        "pidcan": PIDCANParams(tick_mode="cohort", phase_buckets=16),
        "coalesce_arrivals": True,
        "arrival_quantum": 1.0,
        "coalesce_deliveries": True,
        "delivery_quantum": 0.1,
        "memory_budget_mb": 768.0,
        "memory_sweep_period": 300.0,
        "sample_period": 300.0,
        **overrides,
    }
    params.pop("seed", None)
    return {"hid-can": ExperimentConfig(seed=seed, **params)}


def mega2_configs(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, ExperimentConfig]:
    """The 3x10^5-node tier: every mega lever plus compact (float32/int32)
    state arrays, pushing the same short-horizon HID-CAN cell toward 10^6
    nodes.  Populations come from :data:`MEGA2_POPULATIONS`; overrides
    apply verbatim, so smokes can shrink a cell.
    """
    if scale not in MEGA2_POPULATIONS:
        raise ValueError(
            f"unknown scale {scale!r}; expected {sorted(MEGA2_POPULATIONS)}"
        )
    params: dict[str, Any] = {
        "n_nodes": MEGA2_POPULATIONS[scale],
        "duration": MEGA2_DURATIONS[scale],
        "compact_dtypes": True,
        **overrides,
    }
    return mega_configs(scale, seed=seed, **params)


#: Scenario name → config-grid builder (labels follow the paper's curves).
SCENARIO_CONFIGS: dict[str, Callable[..., dict[str, ExperimentConfig]]] = {
    "fig4a": fig4a_configs,
    "fig4b": fig4b_configs,
    "fig5": fig5_configs,
    "fig6": fig6_configs,
    "fig7": fig7_configs,
    "fig8": fig8_configs,
    "churn": churn_configs,
    "burst": burst_configs,
    "hotrange": hotrange_configs,
    "table3": table3_configs,
    "mega": mega_configs,
    "mega2": mega2_configs,
}


def scenario_configs(
    name: str, scale: str = "small", seed: int = 42, **kwargs: Any
) -> dict[str, ExperimentConfig]:
    """The ``{label: config}`` grid of one scenario, without running it.

    Extra keyword arguments become config overrides (``burst_factor`` for
    the burst scenario, anything :class:`ExperimentConfig` accepts for the
    rest) — the hook campaigns use to shrink cells.
    """
    try:
        builder = SCENARIO_CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIO_CONFIGS)}"
        ) from None
    return builder(scale=scale, seed=seed, **kwargs)


# ----------------------------------------------------------------------
# serial scenario runners (the legacy `python -m repro <scenario>` path)
# ----------------------------------------------------------------------
def _run_grid(configs: dict[str, ExperimentConfig]) -> dict[str, SimulationResult]:
    return {label: SOCSimulation(cfg).run() for label, cfg in configs.items()}


def fig4a(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """T-Ratio over a day at demand ratio 0.84 (wide demands)."""
    return _run_grid(fig4a_configs(scale, seed))


def fig4b(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Same at demand ratio 0.25 — the Newscast/SID-CAN crossover."""
    return _run_grid(fig4b_configs(scale, seed))


def fig5(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=1 (T-Ratio, F-Ratio, fairness series)."""
    return _run_grid(fig5_configs(scale, seed))


def fig6(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=0.5."""
    return _run_grid(fig6_configs(scale, seed))


def fig7(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Six protocols at λ=0.25 (HID's near-zero failed tasks)."""
    return _run_grid(fig7_configs(scale, seed))


def fig8(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """HID-CAN under churn, λ=0.5 (dynamic degree sweep)."""
    return _run_grid(fig8_configs(scale, seed))


def churn(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """Churn-hardened comparison across the full protocol axis (see
    :func:`churn_configs`)."""
    return _run_grid(churn_configs(scale, seed))


def burst(
    scale: str = "small", seed: int = 42, burst_factor: float = 8.0
) -> dict[str, SimulationResult]:
    """High-throughput stress (see :func:`burst_configs`)."""
    return _run_grid(burst_configs(scale, seed, burst_factor=burst_factor))


def hotrange(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, SimulationResult]:
    """Hot-range caching grid (see :func:`hotrange_configs`).  Extra
    keyword arguments are config overrides (``zipf_s``, ``n_nodes``,
    ``duration``, ...) so ablations and smokes can reshape the cells."""
    return _run_grid(hotrange_configs(scale, seed, **overrides))


def table3(scale: str = "small", seed: int = 42) -> dict[str, SimulationResult]:
    """HID-CAN scalability sweep (λ=0.5): four metrics vs population."""
    return _run_grid(table3_configs(scale, seed))


def mega(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, SimulationResult]:
    """The coalesced 10^5-node tier (see :func:`mega_configs`).  Extra
    keyword arguments are config overrides (``n_nodes``, ``duration``,
    ...) so smokes can shrink the cell."""
    return _run_grid(mega_configs(scale, seed, **overrides))


def mega2(
    scale: str = "small", seed: int = 42, **overrides: Any
) -> dict[str, SimulationResult]:
    """The compact-dtype 3x10^5-node tier (see :func:`mega2_configs`).
    Extra keyword arguments are config overrides (``n_nodes``,
    ``duration``, ...) so smokes can shrink the cell."""
    return _run_grid(mega2_configs(scale, seed, **overrides))


SCENARIOS: dict[str, Callable[..., dict[str, SimulationResult]]] = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "churn": churn,
    "burst": burst,
    "hotrange": hotrange,
    "table3": table3,
    "mega": mega,
    "mega2": mega2,
}


def run_scenario(
    name: str, scale: str = "small", seed: int = 42, **kwargs: Any
) -> dict[str, SimulationResult]:
    """Dispatch a scenario by its paper figure/table id (extra keyword
    arguments are forwarded to the builder, e.g. ``burst_factor``)."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
    return builder(scale=scale, seed=seed, **kwargs)
