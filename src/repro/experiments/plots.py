"""ASCII line charts for the paper's time-series figures.

Renders the hour-resolution metric series of several protocols into one
terminal chart (distinct glyph per curve), so ``python -m repro fig5 --chart``
visually mirrors Fig. 5 instead of printing a table of numbers.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.experiments.runner import SimulationResult

__all__ = ["ascii_chart", "scenario_charts", "mean_series_chart"]

#: Curve glyphs, assigned in label order.
GLYPHS = "*o+x#@%&"


def ascii_chart(
    curves: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Plot ``{label: (xs, ys)}`` curves on one grid.

    The y-range is padded to [0, max] when all values are non-negative
    (ratio metrics), otherwise spans the data.
    """
    if not curves:
        return "(no curves)"
    all_x = [x for xs, _ in curves.values() for x in xs]
    all_y = [y for _, ys in curves.values() for y in ys if y == y]  # drop NaN
    if not all_x or not all_y:
        return "(empty curves)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = min(0.0, min(all_y))
    y_hi = max(all_y) or 1.0
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, (xs, ys)) in enumerate(curves.items()):
        glyph = GLYPHS[idx % len(GLYPHS)]
        for x, y in zip(xs, ys):
            if y != y:
                continue
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:.2f}"
    bottom_label = f"{y_lo:.2f}"
    margin = max(len(top_label), len(bottom_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(margin)
        elif i == height - 1:
            prefix = bottom_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(prefix + "|" + "".join(row))
    axis = " " * margin + "+" + "-" * width
    lines.append(axis)
    lines.append(
        " " * margin
        + f"{x_lo:.0f}".ljust(width // 2)
        + f"{x_hi:.0f}".rjust(width // 2)
        + ("  " + y_label if y_label else "")
    )
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={label}" for i, label in enumerate(curves)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)


def mean_series_chart(
    series_by_label: Mapping[str, Sequence[Mapping[str, Any]]],
    title: str = "",
    width: int = 64,
    height: int = 14,
) -> str:
    """Chart the pointwise mean of stored time series.

    ``series_by_label`` maps each curve label to the stored series
    documents (``{"times": [...], "values": [...]}``) of its replicas —
    e.g. one per campaign seed.  Replicas are aligned by sample index
    (they share the sampling period) and truncated to the shortest; NaN
    samples are ignored per point.
    """
    curves: dict[str, tuple[list[float], list[float]]] = {}
    for label, docs in series_by_label.items():
        docs = [d for d in docs if d.get("times")]
        if not docs:
            continue
        length = min(len(d["times"]) for d in docs)
        hours = [docs[0]["times"][i] / 3600.0 for i in range(length)]
        means = []
        for i in range(length):
            vals = [d["values"][i] for d in docs if d["values"][i] == d["values"][i]]
            means.append(sum(vals) / len(vals) if vals else float("nan"))
        curves[label] = (hours, means)
    return ascii_chart(curves, width=width, height=height, title=title, y_label="hours")


def scenario_charts(
    results: Mapping[str, SimulationResult],
    metrics: Sequence[str] = ("t_ratio", "f_ratio", "fairness"),
    width: int = 64,
    height: int = 14,
) -> str:
    """One chart per metric, protocols overlaid — the Fig. 5-8 layout."""
    blocks = []
    titles = {
        "t_ratio": "throughput ratio (T-Ratio)",
        "f_ratio": "failed task ratio (F-Ratio)",
        "fairness": "fairness index",
    }
    for metric in metrics:
        curves = {}
        for label, res in results.items():
            series = res.series[metric]
            hours = [t / 3600.0 for t in series.times]
            curves[label] = (hours, list(series.values))
        blocks.append(
            ascii_chart(
                curves,
                width=width,
                height=height,
                title=titles.get(metric, metric),
                y_label="hours",
            )
        )
    return "\n\n".join(blocks)
