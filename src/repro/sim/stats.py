"""Lightweight counters and time-series recorders for simulation metrics."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

__all__ = ["Counter", "TimeSeries"]


class Counter:
    """String-keyed accumulator with a stable snapshot view."""

    def __init__(self) -> None:
        self._counts: defaultdict[str, float] = defaultdict(float)

    def add(self, key: str, amount: float = 1.0) -> None:
        self._counts[key] += amount

    def get(self, key: str) -> float:
        return self._counts.get(key, 0.0)

    def total(self) -> float:
        return sum(self._counts.values())

    def snapshot(self) -> dict[str, float]:
        return dict(sorted(self._counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.snapshot()})"


class TimeSeries:
    """Append-only ``(time, value)`` series with convenience accessors."""

    def __init__(self, name: str = ""):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1]:
            raise ValueError("time series must be appended in time order")
        self.times.append(time)
        self.values.append(value)

    def last(self) -> float:
        if not self.values:
            raise IndexError("empty time series")
        return self.values[-1]

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterable[tuple[float, float]]:
        return iter(zip(self.times, self.values))

    def as_dict(self) -> dict[str, list[float]]:
        return {"times": list(self.times), "values": list(self.values)}
