"""The discrete-event simulator core.

Single-threaded binary-heap scheduler with deterministic total event
ordering, O(1) lazy cancellation and periodic timers.  The API mirrors the
handful of Peersim facilities the paper's evaluation relies on: an event
clock, per-protocol periodic cycles, and message delivery callbacks.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, Hashable, Optional

from repro.sim.events import Event, PRIORITY_DEFAULT

__all__ = [
    "Simulator",
    "EventHandle",
    "CohortTimer",
    "SimulationError",
    "next_grid_index",
]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling into the past)."""


def next_grid_index(epoch: float, interval: float, now: float) -> int:
    """Smallest integer ``k >= 0`` with ``epoch + k * interval >= now``.

    Grid instants are always computed multiplicatively (``epoch + k *
    interval``, never by repeated addition), so a timer armed late joins
    the exact float instants of one armed at the epoch — the property the
    cohort scheduler and its per-node reference path both rely on to stay
    tick-for-tick identical.
    """
    if interval <= 0:
        raise SimulationError(f"non-positive interval {interval!r}")
    if now <= epoch:
        return 0
    k = math.ceil((now - epoch) / interval)
    # Guard the float division in both directions.
    while k > 0 and epoch + (k - 1) * interval >= now:
        k -= 1
    while epoch + k * interval < now:
        k += 1
    return k


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Keeps a reference to the underlying heap entry so the caller can cancel
    it without the engine scanning the heap.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.done:
                self._sim._pending -= 1


class CohortTimer:
    """One heap entry shared by a whole cohort of periodic members.

    Created via :meth:`Simulator.periodic_cohort`.  The timer fires at the
    grid instants ``epoch + k * interval`` and delivers the tuple of
    current member ids (insertion order) to a single callback — one heap
    pop per round instead of one per member.  Membership changes are O(1)
    dict operations:

    - :meth:`add` during the creating event (e.g. a protocol bootstrap)
      inserts the member directly: it is part of the very next batch.
    - :meth:`add` from any later event schedules a one-shot *straggler*
      delivery ``fn((member,))`` at the timer's pending fire instant and
      merges the member into the batch afterwards.  This reproduces the
      exact event ordering of a per-member timer armed at the add time
      (the straggler's heap sequence number is allocated at the same
      moment a per-member chain's first event would be), so cohort and
      per-member scheduling stay interleaving-identical even for members
      that join mid-round.
    - :meth:`discard` removes a member (and cancels its pending
      straggler, if any) without touching the heap.

    Each batched fire charges ``len(members)`` event units against
    ``Simulator.run(max_events=...)`` budgets via
    :meth:`Simulator.charge_events` (an empty fire counts as one unit —
    the tick itself); stragglers are ordinary single-unit events.  The
    timer keeps firing while empty until :meth:`cancel` is called.
    """

    __slots__ = (
        "_sim", "interval", "epoch", "_fn", "_priority", "_members",
        "_pending", "_handle", "_cancelled", "_k", "_fire_count",
        "_created_serial",
    )

    def __init__(
        self,
        sim: "Simulator",
        interval: float,
        fn: Callable[[tuple], Any],
        epoch: float = 0.0,
        priority: int = PRIORITY_DEFAULT,
    ):
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        self._sim = sim
        self.interval = float(interval)
        self.epoch = float(epoch)
        self._fn = fn
        self._priority = priority
        self._members: dict[Hashable, None] = {}
        self._pending: dict[Hashable, EventHandle] = {}
        self._cancelled = False
        self._k = next_grid_index(self.epoch, self.interval, sim.now)
        self._fire_count = 0
        self._created_serial = sim.event_serial
        self._handle = sim.schedule_at(
            self.next_fire_time, self._tick, priority=priority
        )

    # ------------------------------------------------------------------
    @property
    def next_fire_time(self) -> float:
        """Absolute time of the pending batched fire."""
        return self.epoch + self._k * self.interval

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __len__(self) -> int:
        return len(self._members) + len(self._pending)

    def __contains__(self, member: Hashable) -> bool:
        return member in self._members or member in self._pending

    def members(self) -> tuple:
        """Current batch members in insertion order (pending stragglers
        are excluded until their solo delivery merges them)."""
        return tuple(self._members)

    # ------------------------------------------------------------------
    def add(self, member: Hashable) -> None:
        """Register ``member`` for periodic delivery (O(1))."""
        if self._cancelled:
            raise SimulationError("cohort timer is cancelled")
        if member in self._members or member in self._pending:
            return
        if self._fire_count == 0 and self._created_serial == self._sim.event_serial:
            # Same event (or same pre-run setup phase) as the timer's
            # creation: the member is a founder and rides the first batch.
            self._members[member] = None
            return
        self._pending[member] = self._sim.schedule_at(
            self.next_fire_time, self._straggle, member, priority=self._priority
        )

    def discard(self, member: Hashable) -> None:
        """Remove ``member`` if present (O(1); no heap traffic)."""
        self._members.pop(member, None)
        handle = self._pending.pop(member, None)
        if handle is not None:
            handle.cancel()

    def cancel(self) -> None:
        """Stop the timer permanently (pending stragglers included)."""
        self._cancelled = True
        self._handle.cancel()
        for handle in self._pending.values():
            handle.cancel()
        self._pending.clear()

    # ------------------------------------------------------------------
    def _straggle(self, member: Hashable) -> None:
        self._pending.pop(member, None)
        # Merge first so a discard() from inside ``fn`` sticks.
        self._members[member] = None
        self._fn((member,))

    def _tick(self) -> None:
        self._fire_count += 1
        batch = tuple(self._members)
        if len(batch) > 1:
            self._sim.charge_events(len(batch) - 1)
        self._fn(batch)
        if self._cancelled:
            return
        self._k += 1
        self._handle = self._sim.schedule_at(
            self.next_fire_time, self._tick, priority=self._priority
        )


class Simulator:
    """Deterministic discrete-event loop.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "a")
    >>> _ = sim.schedule(1.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._pending = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        self._extra_units = 0
        self._event_serial = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_serial(self) -> int:
        """Serial number of the currently-executing event (0 before the
        first event runs).  Unlike ``events_processed`` it is not
        weighted by :meth:`charge_events`, so two distinct events never
        share a serial — the cohort timer uses it to detect same-event
        founder adds."""
        return self._event_serial

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): a live-event counter maintained on push, pop and cancel —
        monitoring code polls this at paper scale, where scanning the whole
        heap per poll would be quadratic.
        """
        return self._pending

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        when: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} < now {self._now}"
            )
        event = Event(when, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event, self)

    def periodic(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        first_at: Optional[float] = None,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Run ``fn(*args)`` every ``interval`` seconds, starting at
        ``first_at`` (defaults to ``now + interval``).

        The returned handle is rebound internally on every re-arm, so
        cancelling it stops the periodic task permanently — including when
        ``cancel()`` is called from inside ``fn`` itself (the cancellation
        is checked before the timer re-arms).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        start = self._now + interval if first_at is None else first_at

        # A small indirection: the handle's underlying event is swapped on
        # every re-arm so handle.cancel() always hits the live entry.
        handle_box: list[EventHandle] = []

        def tick() -> None:
            fn(*args)
            # ``fn`` may have cancelled the handle (whose event is the one
            # firing right now); re-arming would silently resurrect the
            # timer by rebinding the handle to a fresh, uncancelled event.
            if handle_box and handle_box[0]._event.cancelled:
                return
            nxt = self.schedule(interval, tick, priority=priority)
            if handle_box:
                handle_box[0]._event = nxt._event

        first = self.schedule_at(start, tick, priority=priority)
        handle_box.append(first)
        return first

    def periodic_cohort(
        self,
        interval: float,
        fn: Callable[[tuple], Any],
        epoch: float = 0.0,
        priority: int = PRIORITY_DEFAULT,
    ) -> CohortTimer:
        """One shared periodic timer for a whole cohort of members.

        Fires ``fn(members_tuple)`` at every grid instant ``epoch + k *
        interval`` (the first being the smallest such instant ``>= now``),
        keeping exactly one heap entry regardless of cohort size.  See
        :class:`CohortTimer` for the membership API, the straggler rule
        for late joiners, and the ordering/accounting contract
        (``docs/coalescing.md``).
        """
        return CohortTimer(self, interval, fn, epoch=epoch, priority=priority)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def charge_events(self, extra: int) -> None:
        """Count ``extra`` additional event units for the event currently
        executing.

        A coalesced cohort tick performs the work of many per-member
        events in one callback; charging its member count keeps
        ``events_processed`` and ``run(max_events=...)`` budgets
        comparable across tick modes instead of silently deflating by the
        batch size.  Outside of event execution the charge is a no-op
        (the unit bookkeeping resets when the next event starts).
        """
        if extra < 0:
            raise SimulationError(f"negative event charge {extra!r}")
        self._extra_units += extra
    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue is empty, ``until`` is reached, or
        at least ``max_events`` event units have been processed.

        Event units are 1 per event plus whatever the event charged via
        :meth:`charge_events` (a coalesced cohort tick charges its member
        count), so budgets keep their meaning across tick modes.  The
        budget check runs after each event: a batched tick may overshoot
        the bound by its batch size, never split mid-batch.

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so periodic metric
        samplers observe a consistent end-of-run timestamp.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed_here = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                event.done = True
                self._pending -= 1
                self._now = event.time
                self._event_serial += 1
                self._extra_units = 0
                event.fn(*event.args)
                units = 1 + self._extra_units
                self._extra_units = 0
                self.events_processed += units
                processed_here += units
                if max_events is not None and processed_here >= max_events:
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
