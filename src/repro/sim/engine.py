"""The discrete-event simulator core.

Single-threaded binary-heap scheduler with deterministic total event
ordering, O(1) lazy cancellation and periodic timers.  The API mirrors the
handful of Peersim facilities the paper's evaluation relies on: an event
clock, per-protocol periodic cycles, and message delivery callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event, PRIORITY_DEFAULT

__all__ = ["Simulator", "EventHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduling misuse (e.g. scheduling into the past)."""


class EventHandle:
    """Opaque handle returned by :meth:`Simulator.schedule`.

    Keeps a reference to the underlying heap entry so the caller can cancel
    it without the engine scanning the heap.
    """

    __slots__ = ("_event", "_sim")

    def __init__(self, event: Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Mark the event as cancelled; it is skipped when popped."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if not event.done:
                self._sim._pending -= 1


class Simulator:
    """Deterministic discrete-event loop.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(5.0, out.append, "a")
    >>> _ = sim.schedule(1.0, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._pending = 0
        self._running = False
        self._stopped = False
        self.events_processed = 0

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.

        O(1): a live-event counter maintained on push, pop and cancel —
        monitoring code polls this at paper scale, where scanning the whole
        heap per poll would be quadratic.
        """
        return self._pending

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        when: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} < now {self._now}"
            )
        event = Event(when, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event, self)

    def periodic(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        first_at: Optional[float] = None,
        priority: int = PRIORITY_DEFAULT,
    ) -> EventHandle:
        """Run ``fn(*args)`` every ``interval`` seconds, starting at
        ``first_at`` (defaults to ``now + interval``).

        The returned handle is rebound internally on every re-arm, so
        cancelling it stops the periodic task permanently — including when
        ``cancel()`` is called from inside ``fn`` itself (the cancellation
        is checked before the timer re-arms).
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")
        start = self._now + interval if first_at is None else first_at

        # A small indirection: the handle's underlying event is swapped on
        # every re-arm so handle.cancel() always hits the live entry.
        handle_box: list[EventHandle] = []

        def tick() -> None:
            fn(*args)
            # ``fn`` may have cancelled the handle (whose event is the one
            # firing right now); re-arming would silently resurrect the
            # timer by rebinding the handle to a fresh, uncancelled event.
            if handle_box and handle_box[0]._event.cancelled:
                return
            nxt = self.schedule(interval, tick, priority=priority)
            if handle_box:
                handle_box[0]._event = nxt._event

        first = self.schedule_at(start, tick, priority=priority)
        handle_box.append(first)
        return first

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event completes."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue is empty, ``until`` is reached, or
        ``max_events`` events have been processed.

        When ``until`` is given the clock is advanced to exactly ``until``
        on return even if the queue drained earlier, so periodic metric
        samplers observe a consistent end-of-run timestamp.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stopped = False
        processed_here = 0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                event.done = True
                self._pending -= 1
                self._now = event.time
                event.fn(*event.args)
                self.events_processed += 1
                processed_here += 1
                if max_events is not None and processed_here >= max_events:
                    break
            if until is not None and self._now < until and not self._stopped:
                self._now = until
        finally:
            self._running = False
