"""Structured task-lifecycle tracing.

When enabled (``ExperimentConfig(trace_tasks=True)``) the SOC runner emits
one event per lifecycle transition:

    generated → query-ok / query-failed → admitted / rejected
              → completed | evicted [→ recovered → ...]

Traces serve two purposes: downstream users debug protocol behaviour task
by task, and the integration tests validate global invariants ("every
generated task reaches a terminal state", "no admission without a
preceding query-ok") that aggregate counters cannot express.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["TraceEvent", "Tracer", "LIFECYCLE_KINDS"]

#: Every lifecycle kind the runner emits, in no particular order.
LIFECYCLE_KINDS = (
    "generated",
    "query-ok",
    "query-failed",
    "admitted",
    "rejected",
    "completed",
    "evicted",
    "recovered",
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One lifecycle transition of one task."""

    time: float
    kind: str
    task_id: int
    node: Optional[int] = None
    detail: dict = field(default_factory=dict)


class Tracer:
    """Append-only event log with per-task and per-kind views."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list[TraceEvent] = []
        self._by_task: defaultdict[int, list[TraceEvent]] = defaultdict(list)

    # ------------------------------------------------------------------
    def emit(
        self,
        time: float,
        kind: str,
        task_id: int,
        node: Optional[int] = None,
        **detail,
    ) -> None:
        if not self.enabled:
            return
        if kind not in LIFECYCLE_KINDS:
            raise ValueError(f"unknown trace kind {kind!r}")
        event = TraceEvent(time, kind, task_id, node, detail)
        self.events.append(event)
        self._by_task[task_id].append(event)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def for_task(self, task_id: int) -> list[TraceEvent]:
        return list(self._by_task.get(task_id, []))

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def task_ids(self) -> list[int]:
        return sorted(self._by_task)

    def timeline(self, task_id: int) -> list[str]:
        """Human-readable one-liner per event for a task."""
        return [
            f"t={e.time:9.1f}  {e.kind:12s}"
            + (f" @node {e.node}" if e.node is not None else "")
            + (f"  {e.detail}" if e.detail else "")
            for e in self.for_task(task_id)
        ]

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def terminal_kind(self, task_id: int) -> Optional[str]:
        """The task's latest terminal state, if any."""
        terminal = {"completed", "query-failed", "rejected", "evicted"}
        for event in reversed(self._by_task.get(task_id, [])):
            if event.kind in terminal:
                return event.kind
        return None

    def validate(self, task_ids: Optional[Iterable[int]] = None) -> None:
        """Assert per-task causal ordering.

        - the first event is ``generated``;
        - ``admitted`` is preceded by a ``query-ok`` (or ``recovered``);
        - ``completed`` is preceded by ``admitted``;
        - timestamps are non-decreasing.
        """
        ids = self.task_ids() if task_ids is None else task_ids
        for task_id in ids:
            events = self._by_task.get(task_id, [])
            assert events, f"task {task_id} has no events"
            assert events[0].kind == "generated", (
                f"task {task_id} starts with {events[0].kind}"
            )
            times = [e.time for e in events]
            assert times == sorted(times), f"task {task_id} time disorder"
            seen: set[str] = set()
            for event in events:
                if event.kind == "admitted":
                    assert "query-ok" in seen or "recovered" in seen, (
                        f"task {task_id} admitted without query-ok"
                    )
                if event.kind == "completed":
                    assert "admitted" in seen, (
                        f"task {task_id} completed without admission"
                    )
                seen.add(event.kind)

    def __len__(self) -> int:
        return len(self.events)
