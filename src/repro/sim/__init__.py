"""Discrete-event simulation kernel.

A small, deterministic, single-threaded event engine that stands in for the
Peersim simulator used by the paper.  Messages between overlay nodes are
modelled with a LAN/WAN latency + bandwidth delay model; multi-hop overlay
routes are computed in-process and charged per-hop to the traffic meter, so
the event volume stays proportional to protocol-level messages rather than
physical hops.
"""

from repro.sim.engine import CohortTimer, EventHandle, Simulator, next_grid_index
from repro.sim.events import Event, PRIORITY_DEFAULT, PRIORITY_HIGH, PRIORITY_LOW
from repro.sim.network import NetworkModel, NetworkParams
from repro.sim.rng import RngRegistry
from repro.sim.stats import Counter, TimeSeries

__all__ = [
    "Simulator",
    "EventHandle",
    "CohortTimer",
    "next_grid_index",
    "Event",
    "PRIORITY_DEFAULT",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "NetworkModel",
    "NetworkParams",
    "RngRegistry",
    "Counter",
    "TimeSeries",
]
