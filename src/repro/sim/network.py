"""LAN/WAN network model (Table I, rows 7-8 of the paper).

Nodes are grouped into LANs; intra-LAN transfers use the LAN bandwidth
(uniform 5-10 Mbps) and a small local latency, while cross-LAN transfers go
over the WAN (uniform 0.2-2 Mbps per node) with ~200 ms latency — the value
the paper cites for one WAN network delay.  A message's delivery delay is
``latency + size / bottleneck_bandwidth``.

The model is deliberately simple: control messages in the protocols are
small (≈1 KB) so latency dominates, matching the paper's assumption that a
hop costs "about 200 milliseconds on the WAN".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkParams", "NetworkModel", "CONTROL_MSG_BITS", "STATE_MSG_BITS"]

#: Size of a routing / query / index control message (1 KB).
CONTROL_MSG_BITS = 8 * 1024
#: Size of a state-update record message (512 B — one resource vector + id).
STATE_MSG_BITS = 4 * 1024


@dataclass(frozen=True, slots=True)
class NetworkParams:
    """Physical-network constants (defaults follow the paper's Table I)."""

    lan_size: int = 20
    lan_bw_mbps_lo: float = 5.0
    lan_bw_mbps_hi: float = 10.0
    wan_bw_mbps_lo: float = 0.2
    wan_bw_mbps_hi: float = 2.0
    lan_latency_s: float = 0.005
    wan_latency_s: float = 0.2


class NetworkModel:
    """Assigns nodes to LANs and computes point-to-point transfer delays.

    Node ids are arbitrary hashable ints; joining nodes are assigned to the
    least-populated LAN (keeps LAN sizes near ``lan_size`` under churn).
    """

    def __init__(self, params: NetworkParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        self._lan_of: dict[int, int] = {}
        self._lan_members: dict[int, int] = {}
        self._lan_bw: dict[int, float] = {}
        self._wan_bw: dict[int, float] = {}
        # Dense mirrors of the dicts, indexed by node id / LAN id, so
        # batched delay computation gathers with array indexing instead
        # of per-hop dict lookups.  ``-1`` marks an absent node; absent
        # WAN cells hold the ``wan_bw_mbps_lo`` fallback the scalar path
        # uses for churned-out endpoints.
        self._lan_arr = np.full(0, -1, dtype=np.int64)
        self._wan_arr = np.zeros(0, dtype=np.float64)
        self._lanbw_arr = np.zeros(0, dtype=np.float64)

    def _ensure_capacity(self, node_id: int) -> None:
        n = self._lan_arr.shape[0]
        if node_id < n:
            return
        new = max(node_id + 1, 2 * n, 64)
        lan_arr = np.full(new, -1, dtype=np.int64)
        lan_arr[:n] = self._lan_arr
        self._lan_arr = lan_arr
        wan_arr = np.full(new, self.params.wan_bw_mbps_lo, dtype=np.float64)
        wan_arr[:n] = self._wan_arr
        self._wan_arr = wan_arr

    def _ensure_lan_capacity(self, lan: int) -> None:
        n = self._lanbw_arr.shape[0]
        if lan < n:
            return
        new = max(lan + 1, 2 * n, 16)
        arr = np.ones(new, dtype=np.float64)
        arr[:n] = self._lanbw_arr
        self._lanbw_arr = arr

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """Register a node, assigning it a LAN and a WAN uplink bandwidth."""
        if node_id in self._lan_of:
            return
        lan = self._pick_lan()
        self._lan_of[node_id] = lan
        self._lan_members[lan] = self._lan_members.get(lan, 0) + 1
        if lan not in self._lan_bw:
            bw = float(
                self._rng.uniform(self.params.lan_bw_mbps_lo, self.params.lan_bw_mbps_hi)
            )
            self._lan_bw[lan] = bw
            self._ensure_lan_capacity(lan)
            self._lanbw_arr[lan] = bw
        wan = float(
            self._rng.uniform(self.params.wan_bw_mbps_lo, self.params.wan_bw_mbps_hi)
        )
        self._wan_bw[node_id] = wan
        if node_id >= 0:
            self._ensure_capacity(node_id)
            self._lan_arr[node_id] = lan
            self._wan_arr[node_id] = wan

    def remove_node(self, node_id: int) -> None:
        lan = self._lan_of.pop(node_id, None)
        if lan is not None:
            self._lan_members[lan] -= 1
        self._wan_bw.pop(node_id, None)
        if 0 <= node_id < self._lan_arr.shape[0]:
            self._lan_arr[node_id] = -1
            self._wan_arr[node_id] = self.params.wan_bw_mbps_lo

    def _pick_lan(self) -> int:
        n_lans = len(self._lan_members)
        if n_lans == 0:
            return 0
        # Fill partially-empty LANs first; open a new LAN when all are full.
        lan, count = min(self._lan_members.items(), key=lambda kv: (kv[1], kv[0]))
        if count >= self.params.lan_size:
            return n_lans
        return lan

    def lan_of(self, node_id: int) -> int:
        return self._lan_of[node_id]

    def node_bandwidth_mbps(self, node_id: int) -> float:
        """The node's LAN bandwidth — its network-capacity dimension."""
        return self._lan_bw[self._lan_of[node_id]]

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------
    def delay(self, src: int, dst: int, size_bits: float = CONTROL_MSG_BITS) -> float:
        """One-way transfer delay in seconds for ``size_bits`` of payload."""
        if src == dst:
            return 0.0
        p = self.params
        # A removed endpoint has no LAN; ``None == None`` must not take the
        # intra-LAN branch (two churned-out nodes would KeyError on the LAN
        # bandwidth lookup) — in-flight traffic falls back to the WAN path.
        lan_src = self._lan_of.get(src)
        if lan_src is not None and lan_src == self._lan_of.get(dst):
            bw = self._lan_bw[lan_src]
            return p.lan_latency_s + size_bits / (bw * 1e6)
        bw = min(self._wan_bw.get(src, p.wan_bw_mbps_lo), self._wan_bw.get(dst, p.wan_bw_mbps_lo))
        return p.wan_latency_s + size_bits / (bw * 1e6)

    def path_delay(self, path: list[int], size_bits: float = CONTROL_MSG_BITS) -> float:
        """Total delay of forwarding a message hop-by-hop along ``path``."""
        return sum(
            self.delay(a, b, size_bits) for a, b in zip(path[:-1], path[1:])
        )

    def path_delays(
        self, paths: list[list[int]], size_bits: float = CONTROL_MSG_BITS
    ) -> list[float]:
        """Total per-path delays for a batch of paths in one vectorized
        pass — value-identical to calling :meth:`path_delay` per path.

        All hops are concatenated, each hop's delay computed with the
        exact elementwise expressions of :meth:`delay`, and each path's
        hops summed left-to-right (matching the scalar accumulation
        order, so not even the float rounding differs).
        """
        hops_src: list[int] = []
        hops_dst: list[int] = []
        counts: list[int] = []
        for path in paths:
            hops_src.extend(path[:-1])
            hops_dst.extend(path[1:])
            counts.append(len(path) - 1)
        if not hops_src:
            return [0.0] * len(paths)
        p = self.params
        n = len(hops_src)
        s = np.asarray(hops_src, dtype=np.int64)
        d = np.asarray(hops_dst, dtype=np.int64)
        if int(min(s.min(), d.min())) < 0:
            # Exotic (negative) ids live only in the dicts — take the
            # scalar path rather than special-casing the dense mirrors.
            return [self.path_delay(list(path), size_bits) for path in paths]
        self._ensure_capacity(int(max(s.max(), d.max())))
        # Gather endpoint attributes from the dense mirrors ...
        lan_s = self._lan_arr[s]
        same_lan = (lan_s >= 0) & (lan_s == self._lan_arr[d])
        if same_lan.any():
            lan_bw = np.where(
                same_lan, self._lanbw_arr[np.where(same_lan, lan_s, 0)], 1.0
            )
        else:
            lan_bw = np.ones(n)
        # ... then one vectorized delay expression per hop.
        lan_val = p.lan_latency_s + size_bits / (lan_bw * 1e6)
        wan_val = p.wan_latency_s + size_bits / (
            np.minimum(self._wan_arr[s], self._wan_arr[d]) * 1e6
        )
        hop = np.where(same_lan, lan_val, wan_val)
        loop = s == d
        if loop.any():
            hop = np.where(loop, 0.0, hop)
        hop_list = hop.tolist()
        out: list[float] = []
        i = 0
        for count in counts:
            total = 0.0
            for j in range(i, i + count):
                total += hop_list[j]
            out.append(total)
            i += count
        return out
