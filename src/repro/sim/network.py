"""LAN/WAN network model (Table I, rows 7-8 of the paper).

Nodes are grouped into LANs; intra-LAN transfers use the LAN bandwidth
(uniform 5-10 Mbps) and a small local latency, while cross-LAN transfers go
over the WAN (uniform 0.2-2 Mbps per node) with ~200 ms latency — the value
the paper cites for one WAN network delay.  A message's delivery delay is
``latency + size / bottleneck_bandwidth``.

The model is deliberately simple: control messages in the protocols are
small (≈1 KB) so latency dominates, matching the paper's assumption that a
hop costs "about 200 milliseconds on the WAN".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NetworkParams", "NetworkModel", "CONTROL_MSG_BITS", "STATE_MSG_BITS"]

#: Size of a routing / query / index control message (1 KB).
CONTROL_MSG_BITS = 8 * 1024
#: Size of a state-update record message (512 B — one resource vector + id).
STATE_MSG_BITS = 4 * 1024


@dataclass(frozen=True, slots=True)
class NetworkParams:
    """Physical-network constants (defaults follow the paper's Table I)."""

    lan_size: int = 20
    lan_bw_mbps_lo: float = 5.0
    lan_bw_mbps_hi: float = 10.0
    wan_bw_mbps_lo: float = 0.2
    wan_bw_mbps_hi: float = 2.0
    lan_latency_s: float = 0.005
    wan_latency_s: float = 0.2


class NetworkModel:
    """Assigns nodes to LANs and computes point-to-point transfer delays.

    Node ids are arbitrary hashable ints; joining nodes are assigned to the
    least-populated LAN (keeps LAN sizes near ``lan_size`` under churn).
    """

    def __init__(self, params: NetworkParams, rng: np.random.Generator):
        self.params = params
        self._rng = rng
        self._lan_of: dict[int, int] = {}
        self._lan_members: dict[int, int] = {}
        self._lan_bw: dict[int, float] = {}
        self._wan_bw: dict[int, float] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        """Register a node, assigning it a LAN and a WAN uplink bandwidth."""
        if node_id in self._lan_of:
            return
        lan = self._pick_lan()
        self._lan_of[node_id] = lan
        self._lan_members[lan] = self._lan_members.get(lan, 0) + 1
        if lan not in self._lan_bw:
            self._lan_bw[lan] = float(
                self._rng.uniform(self.params.lan_bw_mbps_lo, self.params.lan_bw_mbps_hi)
            )
        self._wan_bw[node_id] = float(
            self._rng.uniform(self.params.wan_bw_mbps_lo, self.params.wan_bw_mbps_hi)
        )

    def remove_node(self, node_id: int) -> None:
        lan = self._lan_of.pop(node_id, None)
        if lan is not None:
            self._lan_members[lan] -= 1
        self._wan_bw.pop(node_id, None)

    def _pick_lan(self) -> int:
        n_lans = len(self._lan_members)
        if n_lans == 0:
            return 0
        # Fill partially-empty LANs first; open a new LAN when all are full.
        lan, count = min(self._lan_members.items(), key=lambda kv: (kv[1], kv[0]))
        if count >= self.params.lan_size:
            return n_lans
        return lan

    def lan_of(self, node_id: int) -> int:
        return self._lan_of[node_id]

    def node_bandwidth_mbps(self, node_id: int) -> float:
        """The node's LAN bandwidth — its network-capacity dimension."""
        return self._lan_bw[self._lan_of[node_id]]

    # ------------------------------------------------------------------
    # delays
    # ------------------------------------------------------------------
    def delay(self, src: int, dst: int, size_bits: float = CONTROL_MSG_BITS) -> float:
        """One-way transfer delay in seconds for ``size_bits`` of payload."""
        if src == dst:
            return 0.0
        p = self.params
        # A removed endpoint has no LAN; ``None == None`` must not take the
        # intra-LAN branch (two churned-out nodes would KeyError on the LAN
        # bandwidth lookup) — in-flight traffic falls back to the WAN path.
        lan_src = self._lan_of.get(src)
        if lan_src is not None and lan_src == self._lan_of.get(dst):
            bw = self._lan_bw[lan_src]
            return p.lan_latency_s + size_bits / (bw * 1e6)
        bw = min(self._wan_bw.get(src, p.wan_bw_mbps_lo), self._wan_bw.get(dst, p.wan_bw_mbps_lo))
        return p.wan_latency_s + size_bits / (bw * 1e6)

    def path_delay(self, path: list[int], size_bits: float = CONTROL_MSG_BITS) -> float:
        """Total delay of forwarding a message hop-by-hop along ``path``."""
        return sum(
            self.delay(a, b, size_bits) for a, b in zip(path[:-1], path[1:])
        )
