"""Deterministic named random substreams.

Every stochastic component of the simulation draws from its own named
substream derived from a single master seed.  This keeps runs reproducible
and lets components be added or removed without perturbing each other's
random sequences — a requirement for the A/B protocol comparisons in the
paper's evaluation (same machines, same tasks, different protocol).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2b so that the mapping is stable across Python versions and
    processes (``hash()`` is salted and unsuitable).
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF


class RngRegistry:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(42)
    >>> a = rngs.stream("workload")
    >>> b = rngs.stream("workload")   # same object, cached
    >>> a is b
    True
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.master_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(master_seed={self.master_seed}, streams={sorted(self._streams)})"
