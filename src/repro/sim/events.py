"""Event records for the discrete-event engine.

Events are ordered by ``(time, priority, seq)``.  The monotonically
increasing sequence number makes ordering total and deterministic even when
many events share a timestamp — crucial for reproducibility of the
simulation, since protocol behaviour (e.g. which of two simultaneous task
placements lands first) must not depend on heap tie-breaking accidents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "PRIORITY_HIGH", "PRIORITY_DEFAULT", "PRIORITY_LOW"]

#: Runs before same-time default events (e.g. overlay repair before routing).
PRIORITY_HIGH = 0
PRIORITY_DEFAULT = 5
#: Runs after same-time default events (e.g. metric sampling).
PRIORITY_LOW = 9


@dataclass(slots=True)
class Event:
    """A scheduled callback.

    ``cancelled`` is checked at pop time; cancellation is O(1) and lazy
    (the entry stays in the heap until its timestamp).
    """

    time: float
    priority: int
    seq: int
    fn: Callable[..., Any]
    args: tuple = ()
    cancelled: bool = field(default=False, compare=False)
    #: Set once the event has been popped for execution — a late ``cancel()``
    #: on an already-fired event must not touch the live-event counter.
    done: bool = field(default=False, compare=False)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)
