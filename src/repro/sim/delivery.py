"""Delivery-event coalescing: one heap entry per delivery instant.

At 10⁵ nodes the per-*message* heap events become the next bottleneck
after cohort ticking (see ``docs/coalescing.md``): every state update,
walk hop and placement message costs one ``Simulator.schedule`` — a heap
push, a heap pop and a Python callback — even though whole cohorts send
at the same instant and their messages land at instants that collide
once delays are quantized.

:class:`DeliveryCalendar` batches same-instant deliveries the way
:class:`~repro.sim.engine.CohortTimer` batches same-instant cycles: the
first message bound for an instant schedules **one** flush event; later
messages for the same instant append to its batch.  The flush replays
the batch in enqueue order and charges ``len(batch) - 1`` extra event
units (:meth:`~repro.sim.engine.Simulator.charge_events`), so
``events_processed`` and ``run(max_events=...)`` budgets count exactly
what per-message scheduling would have counted.

Ordering contract: within a batch, deliveries run in enqueue order —
which is exactly the order per-message scheduling would have used,
because the event heap breaks time ties by scheduling sequence.  With
``quantum == 0`` instants coalesce only when delay sums collide at the
float level (rare but possible — e.g. LAN-local hops with equal
bandwidth draws), and the whole transform is *bit-identical* to
per-message scheduling.  A ``quantum > 0`` rounds each delivery instant
**up** onto the quantum grid (never into the past), trading bounded
added latency for real batches; results remain deterministic but are no
longer identical to the un-quantized run — the same contract stance as
``arrival_quantum``.

The per-message reference discipline is preserved verbatim as
:class:`repro.testing.ReferenceDeliveryCalendar`, and the equivalence
suites (``tests/sim/test_delivery.py``,
``tests/experiments/test_coalescing.py``) pin the identity end to end.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.sim.engine import Simulator

__all__ = ["DeliveryCalendar"]


class DeliveryCalendar:
    """Coalesces same-instant message deliveries into single heap events.

    Drop-in for the ``sim.schedule(delay, fn, *args)`` delivery idiom::

        calendar = DeliveryCalendar(sim, quantum=0.1)
        calendar.deliver(delay, handler, payload)   # relative, like schedule
        calendar.deliver_at(when, handler, payload) # absolute, like schedule_at
    """

    __slots__ = ("sim", "quantum", "_batches", "deliveries", "flushes")

    def __init__(self, sim: Simulator, quantum: float = 0.0):
        if quantum < 0:
            raise ValueError(f"quantum must be >= 0, got {quantum!r}")
        self.sim = sim
        self.quantum = float(quantum)
        #: Absolute delivery instant -> [(fn, args), ...] in enqueue order.
        self._batches: dict[float, list[tuple[Callable, tuple[Any, ...]]]] = {}
        #: Messages delivered (one per enqueued message).
        self.deliveries = 0
        #: Heap events spent delivering them (one per distinct instant).
        self.flushes = 0

    def deliver(self, delay: float, fn: Callable, *args: Any) -> None:
        """Deliver ``fn(*args)`` after ``delay`` simulated seconds."""
        self.deliver_at(self.sim.now + delay, fn, *args)

    def deliver_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Deliver ``fn(*args)`` at absolute instant ``when`` (possibly
        rounded up onto the quantum grid)."""
        if self.quantum > 0.0:
            # Round *up*: a delivery may arrive later than its un-quantized
            # instant but never earlier, and never before ``now`` (the
            # un-quantized instant is >= now, and ceil only moves it
            # forward).  Same idiom as the workload's arrival quantum.
            when = math.ceil(when / self.quantum) * self.quantum
        batch = self._batches.get(when)
        if batch is None:
            self._batches[when] = [(fn, args)]
            self.sim.schedule_at(when, self._flush, when)
        else:
            batch.append((fn, args))

    def _flush(self, when: float) -> None:
        # Pop *before* delivering: a delivery that sends again for this
        # same instant must open a fresh batch (and a fresh heap event,
        # scheduled at ``now``) — exactly like per-message scheduling,
        # where such a send lands behind every already-queued event.
        batch = self._batches.pop(when)
        if len(batch) > 1:
            self.sim.charge_events(len(batch) - 1)
        self.flushes += 1
        self.deliveries += len(batch)
        for fn, args in batch:
            fn(*args)
