"""PID-CAN — reproduction of *Probabilistic Best-fit Multi-dimensional Range
Query in Self-Organizing Cloud* (Di, Wang, Zhang, Cheng — ICPP 2011).

The package is organized as:

- :mod:`repro.sim` — discrete-event simulation kernel (Peersim substitute)
  plus task-lifecycle tracing.
- :mod:`repro.cloud` — Self-Organizing Cloud substrate: machines, tasks,
  proportional-share execution, checkpoint/restart fault tolerance.
- :mod:`repro.can` — CAN overlay substrate: zones, partition tree, routing,
  INSCAN index pointers.
- :mod:`repro.core` — the paper's contribution: proactive index diffusion
  (SID/HID), the three-phase randomized range query, SoS and VD variants.
- :mod:`repro.baselines` — Newscast gossip, KHDN-CAN, INSCAN-RQ flooding and
  random-walk comparators.
- :mod:`repro.metrics` — T-Ratio / F-Ratio, Jain fairness, traffic and
  placement-balance accounting.
- :mod:`repro.experiments` — configuration presets, the full SOC simulation
  runner, per-figure scenario builders, parallel resumable campaign grids,
  multi-seed statistics, JSON persistence, ASCII charts.
- :mod:`repro.testing` — ProtocolSandbox for driving the algorithms directly.

Start at ``README.md`` for the quickstart and ``docs/architecture.md`` for
the guided tour; ``python -m repro`` is the CLI.
"""

from repro.cloud.resources import ResourceVector, RESOURCE_DIMS
from repro.cloud.tasks import Task
from repro.core.protocol import PIDCANParams, make_protocol, PROTOCOL_NAMES
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation, SimulationResult
from repro.experiments.scenarios import run_protocol, run_scenario, SCENARIOS
from repro.experiments.multiseed import run_seeds
from repro.testing import ProtocolSandbox

__version__ = "0.1.0"

__all__ = [
    "ResourceVector",
    "RESOURCE_DIMS",
    "Task",
    "PIDCANParams",
    "make_protocol",
    "PROTOCOL_NAMES",
    "ExperimentConfig",
    "SOCSimulation",
    "SimulationResult",
    "run_protocol",
    "run_scenario",
    "SCENARIOS",
    "run_seeds",
    "CampaignSpec",
    "run_campaign",
    "ProtocolSandbox",
    "__version__",
]
