"""Placement-balance metrics — quantifying contention dispersal.

The paper's central design goal is *contention minimization*: analogous
uncoordinated queries must not funnel their tasks onto the same few hosts
(§I, §III-C).  T-Ratio only measures the downstream effect; these metrics
measure the cause directly, from the distribution of task placements over
hosts:

- **placement fairness** — Jain's index over per-host placement counts
  (1 = perfectly dispersed; 1/n = everything on one host);
- **hotspot share** — fraction of all placements absorbed by the busiest
  5% of hosts;
- **peak concurrency** — the largest number of tasks simultaneously
  resident on any host (oversubscription pressure).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.metrics.fairness import jain_index

__all__ = ["PlacementBalance", "BalanceReport"]


@dataclass(frozen=True, slots=True)
class BalanceReport:
    """Snapshot of placement dispersal over the whole run."""

    placements: int
    hosts_used: int
    placement_fairness: float
    hotspot_share: float
    peak_concurrency: int

    def as_dict(self) -> dict[str, float]:
        return {
            "placements": float(self.placements),
            "hosts_used": float(self.hosts_used),
            "placement_fairness": self.placement_fairness,
            "hotspot_share": self.hotspot_share,
            "peak_concurrency": float(self.peak_concurrency),
        }


class PlacementBalance:
    """Accumulates placement/removal events during a simulation."""

    def __init__(self) -> None:
        self._placed: defaultdict[int, int] = defaultdict(int)
        self._resident: defaultdict[int, int] = defaultdict(int)
        self._peak = 0

    # ------------------------------------------------------------------
    def on_place(self, node_id: int) -> None:
        self._placed[node_id] += 1
        self._resident[node_id] += 1
        self._peak = max(self._peak, self._resident[node_id])

    def on_remove(self, node_id: int) -> None:
        if self._resident.get(node_id, 0) <= 0:
            raise ValueError(f"no resident task to remove on node {node_id}")
        self._resident[node_id] -= 1

    def on_remove_many(self, node_id: int, count: int) -> None:
        """Bulk removal — a host eviction clears all residents at once."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if self._resident.get(node_id, 0) < count:
            raise ValueError(
                f"cannot remove {count} tasks from node {node_id}: "
                f"only {self._resident.get(node_id, 0)} resident"
            )
        self._resident[node_id] -= count

    # ------------------------------------------------------------------
    def report(self, population: int) -> BalanceReport:
        """Balance over ``population`` hosts (unused hosts count as zero —
        a protocol that only ever uses ten hosts is *not* balanced)."""
        if population <= 0:
            raise ValueError("population must be positive")
        counts = list(self._placed.values())
        total = sum(counts)
        if total == 0:
            return BalanceReport(0, 0, float("nan"), float("nan"), 0)
        padded = counts + [0] * max(0, population - len(counts))
        # Jain over zeros is ill-behaved; use counts+1 smoothing on the
        # padded vector so "never used" still penalizes the index.
        fairness = jain_index([c + 1e-9 for c in padded])
        ordered = sorted(counts, reverse=True)
        top = max(1, int(np.ceil(population * 0.05)))
        hotspot = sum(ordered[:top]) / total
        return BalanceReport(
            placements=total,
            hosts_used=len(counts),
            placement_fairness=fairness,
            hotspot_share=hotspot,
            peak_concurrency=self._peak,
        )
