"""Task outcome ratios (§II):

- **F-Ratio(t)** — tasks that could not find any qualified node, over tasks
  generated up to ``t`` (the resource matching rate's complement);
- **T-Ratio(t)** — tasks finished over tasks generated up to ``t`` (the
  implicit contention indicator: fewer contended nodes → faster finishes).

Timeout-failure accounting: ``query_timeouts`` counts queries resolved by
the requester-side failsafe (a chain lost to churn) rather than by their
own chain.  The runner wires it to the protocol lifecycle's ``on_expire``
hook, so each timed-out query is counted exactly once — a timed-out query
that returned no usable records additionally becomes a failed task through
the normal empty-result path (it contributes to F-Ratio), never twice.
"""

from __future__ import annotations

__all__ = ["RatioTracker"]


class RatioTracker:
    """Running counters for generated / finished / failed tasks."""

    def __init__(self) -> None:
        self.generated = 0
        self.finished = 0
        self.failed = 0
        self.placed = 0
        self.evicted = 0
        self.query_timeouts = 0

    # ------------------------------------------------------------------
    def on_generated(self) -> None:
        self.generated += 1

    def on_finished(self) -> None:
        self.finished += 1

    def on_failed(self) -> None:
        self.failed += 1

    def on_placed(self) -> None:
        self.placed += 1

    def on_evicted(self) -> None:
        self.evicted += 1

    def on_query_timeout(self) -> None:
        self.query_timeouts += 1

    # ------------------------------------------------------------------
    def t_ratio(self) -> float:
        """Throughput ratio; 0 before any task is generated."""
        return self.finished / self.generated if self.generated else 0.0

    def f_ratio(self) -> float:
        """Failed task ratio; 0 before any task is generated."""
        return self.failed / self.generated if self.generated else 0.0

    def check(self) -> None:
        """Internal consistency: outcomes never exceed generation."""
        assert self.finished + self.failed <= self.generated, (
            self.finished,
            self.failed,
            self.generated,
        )
