"""Jain's fairness index (Eq. 4 of the paper, after [28]).

    ϕ = (Σ e_ij)² / (m · Σ e_ij²)

over the execution efficiencies ``e_ij`` of finished tasks, where the
efficiency is the task's *expected* execution time (estimated from its load
and the system-wide average capacity) divided by its *real* completion span.
ϕ ∈ (0, 1]; 1 means all tasks were treated equally.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["jain_index"]


def jain_index(efficiencies: Sequence[float]) -> float:
    """Jain's index of the given efficiency samples; NaN for no samples."""
    e = np.asarray(list(efficiencies), dtype=np.float64)
    if e.size == 0:
        return float("nan")
    if bool(np.any(e < 0)):
        raise ValueError("efficiencies must be non-negative")
    denom = e.size * float(np.sum(e * e))
    if denom == 0:
        return float("nan")
    return float(np.sum(e)) ** 2 / denom
