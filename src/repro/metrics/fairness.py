"""Jain's fairness index (Eq. 4 of the paper, after [28]).

    ϕ = (Σ e_ij)² / (m · Σ e_ij²)

over the execution efficiencies ``e_ij`` of finished tasks, where the
efficiency is the task's *expected* execution time (estimated from its load
and the system-wide average capacity) divided by its *real* completion span.
ϕ ∈ (0, 1]; 1 means all tasks were treated equally.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["jain_index", "EfficiencyAccumulator"]


def jain_index(efficiencies: Sequence[float]) -> float:
    """Jain's index of the given efficiency samples; NaN for no samples."""
    e = np.asarray(efficiencies, dtype=np.float64)
    if e.size == 0:
        return float("nan")
    if bool(np.any(e < 0)):
        raise ValueError("efficiencies must be non-negative")
    denom = e.size * float(np.sum(e * e))
    if denom == 0:
        return float("nan")
    return float(np.sum(e)) ** 2 / denom


class EfficiencyAccumulator:
    """Execution efficiencies of finished tasks, accumulated in bulk.

    The seed runner called ``task.efficiency(mean_capacity)`` per
    completion — half a dozen small numpy allocations each — and appended
    to a Python list.  Here the mean-capacity work rates are folded in
    once at construction, each observation is pure scalar arithmetic, and
    samples land in an amortized-doubling float64 buffer whose live view
    feeds :func:`jain_index` directly (Eq. 4) with no list round-trip.
    """

    def __init__(self, mean_work_rates: Sequence[float]):
        self._rates = [float(r) for r in mean_work_rates]
        if any(r <= 0 for r in self._rates):
            raise ValueError("mean work rates must be positive")
        self._buf = np.empty(256, dtype=np.float64)
        self._n = 0

    def observe(self, work: Sequence[float], submit_time: float, finish_time: float) -> float:
        """Record one finished task given its work vector (the work dims of
        ``e(t) · T_nominal``) and its submit→finish span; returns the
        efficiency sample ``e_ij`` = expected / actual completion span."""
        actual = finish_time - submit_time
        if actual <= 0:
            eff = 1.0
        else:
            expected = max(float(w) / r for w, r in zip(work, self._rates))
            eff = expected / actual
        if self._n >= self._buf.size:
            grown = np.empty(2 * self._buf.size, dtype=np.float64)
            grown[: self._n] = self._buf
            self._buf = grown
        self._buf[self._n] = eff
        self._n += 1
        return eff

    def values(self) -> np.ndarray:
        """Live view of all samples so far (do not mutate)."""
        return self._buf[: self._n]

    def jain(self) -> float:
        return jain_index(self.values())

    def __len__(self) -> int:
        return self._n
