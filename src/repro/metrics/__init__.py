"""Evaluation metrics of §IV: T-Ratio, F-Ratio, Jain fairness, traffic."""

from repro.metrics.traffic import TrafficMeter
from repro.metrics.fairness import jain_index
from repro.metrics.ratios import RatioTracker
from repro.metrics.collector import MetricsCollector
from repro.metrics.balance import PlacementBalance, BalanceReport

__all__ = [
    "TrafficMeter",
    "jain_index",
    "RatioTracker",
    "MetricsCollector",
    "PlacementBalance",
    "BalanceReport",
]
