"""Periodic metric sampling for the hour-resolution series in Figs. 4-8."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.metrics.fairness import jain_index
from repro.metrics.ratios import RatioTracker
from repro.sim.engine import Simulator
from repro.sim.stats import TimeSeries

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Samples T-Ratio / F-Ratio / fairness on a fixed period.

    ``efficiency_source`` returns the efficiency samples of all finished
    tasks so far (the runner computes them against the mean capacity).

    Scale audit (10^5-node tier): every sample must stay loop-free over
    the population.  The ratio reads are O(1) counters, the fairness read
    is one vectorized :func:`jain_index` over the efficiency buffer, and
    the optional ``utilization_source`` must be a cached-SoA reduction
    (the runner wires :meth:`repro.cloud.engine.HostEngine.
    mean_utilization`, one array pass over the load/effective-capacity
    matrices) — never a per-node Python loop.
    """

    def __init__(
        self,
        sim: Simulator,
        ratios: RatioTracker,
        efficiency_source: Callable[[], Sequence[float]],
        period: float = 3600.0,
        *,
        utilization_source: Optional[Callable[[], float]] = None,
    ):
        self.sim = sim
        self.ratios = ratios
        self.efficiency_source = efficiency_source
        self.utilization_source = utilization_source
        self.period = float(period)
        self.t_ratio = TimeSeries("t_ratio")
        self.f_ratio = TimeSeries("f_ratio")
        self.fairness = TimeSeries("fairness")
        self.utilization = TimeSeries("utilization")

    def start(self) -> None:
        self.sim.periodic(self.period, self.sample)

    def sample(self) -> None:
        now = self.sim.now
        self.ratios.check()
        self.t_ratio.append(now, self.ratios.t_ratio())
        self.f_ratio.append(now, self.ratios.f_ratio())
        self.fairness.append(now, jain_index(self.efficiency_source()))
        if self.utilization_source is not None:
            self.utilization.append(now, self.utilization_source())

    def series(self) -> dict[str, TimeSeries]:
        out = {
            "t_ratio": self.t_ratio,
            "f_ratio": self.f_ratio,
            "fairness": self.fairness,
        }
        if self.utilization_source is not None:
            out["utilization"] = self.utilization
        return out

