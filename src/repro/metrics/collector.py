"""Periodic metric sampling for the hour-resolution series in Figs. 4-8."""

from __future__ import annotations

from typing import Callable, Sequence

from repro.metrics.fairness import jain_index
from repro.metrics.ratios import RatioTracker
from repro.sim.engine import Simulator
from repro.sim.stats import TimeSeries

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Samples T-Ratio / F-Ratio / fairness on a fixed period.

    ``efficiency_source`` returns the efficiency samples of all finished
    tasks so far (the runner computes them against the mean capacity).
    """

    def __init__(
        self,
        sim: Simulator,
        ratios: RatioTracker,
        efficiency_source: Callable[[], Sequence[float]],
        period: float = 3600.0,
    ):
        self.sim = sim
        self.ratios = ratios
        self.efficiency_source = efficiency_source
        self.period = float(period)
        self.t_ratio = TimeSeries("t_ratio")
        self.f_ratio = TimeSeries("f_ratio")
        self.fairness = TimeSeries("fairness")

    def start(self) -> None:
        self.sim.periodic(self.period, self.sample)

    def sample(self) -> None:
        now = self.sim.now
        self.ratios.check()
        self.t_ratio.append(now, self.ratios.t_ratio())
        self.f_ratio.append(now, self.ratios.f_ratio())
        self.fairness.append(now, jain_index(self.efficiency_source()))

    def series(self) -> dict[str, TimeSeries]:
        return {
            "t_ratio": self.t_ratio,
            "f_ratio": self.f_ratio,
            "fairness": self.fairness,
        }
