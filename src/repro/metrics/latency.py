"""Query-delay accounting.

The paper's abstract claims PID-CAN keeps "low query delay and traffic
overhead"; traffic is covered by :mod:`repro.metrics.traffic`, this module
covers delay: the wall-clock (simulated) time from query submission to the
requester's final callback, plus the message count of the chain.

Delays combine routing (O(log2 n) hops over INSCAN) with the sequential
index-agent/index-jump phases, so the distribution — not just the mean —
matters: a long tail means some requesters wait on nearly-exhausted chains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QueryLatency", "LatencyReport"]


@dataclass(frozen=True, slots=True)
class LatencyReport:
    """Distribution summary of per-query delays (seconds) and messages."""

    queries: int
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float
    mean_messages: float

    def as_dict(self) -> dict[str, float]:
        return {
            "queries": float(self.queries),
            "mean_s": self.mean_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
            "mean_messages": self.mean_messages,
        }


class QueryLatency:
    """Accumulates (delay, messages) samples, one per resolved query."""

    def __init__(self) -> None:
        self._delays: list[float] = []
        self._messages: list[int] = []

    def observe(self, delay_s: float, messages: int) -> None:
        if delay_s < 0:
            raise ValueError(f"negative delay {delay_s}")
        self._delays.append(float(delay_s))
        self._messages.append(int(messages))

    def __len__(self) -> int:
        return len(self._delays)

    def report(self) -> LatencyReport:
        if not self._delays:
            nan = float("nan")
            return LatencyReport(0, nan, nan, nan, nan, nan)
        delays = np.asarray(self._delays)
        return LatencyReport(
            queries=len(delays),
            mean_s=float(delays.mean()),
            p50_s=float(np.percentile(delays, 50)),
            p95_s=float(np.percentile(delays, 95)),
            max_s=float(delays.max()),
            mean_messages=float(np.mean(self._messages)),
        )
