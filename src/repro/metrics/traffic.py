"""Message delivery cost accounting.

The paper's Table III reports "message delivery cost": the summed number of
messages (state-update, duty-query, index-jump, index-agent, ...) sent or
forwarded **per node** over the simulated day.  Every protocol charges each
hop to its forwarding node through this meter.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["TrafficMeter"]


class TrafficMeter:
    """Counts messages by kind and by sending node."""

    def __init__(self) -> None:
        self.by_kind: defaultdict[str, int] = defaultdict(int)
        self.by_node: defaultdict[int, int] = defaultdict(int)

    def charge(self, kind: str, node_id: int, n: int = 1) -> None:
        if n < 0:
            raise ValueError("cannot charge negative messages")
        self.by_kind[kind] += n
        self.by_node[node_id] += n

    def total(self) -> int:
        return sum(self.by_kind.values())

    def per_node_cost(self, population: int) -> float:
        """Average messages sent/forwarded per node (Table III's metric).

        ``population`` is the number of nodes that participated — the
        caller supplies it since churn makes "number of nodes" a modelling
        choice (we use the peak alive count, matching the paper's fixed-n
        accounting)."""
        if population <= 0:
            raise ValueError("population must be positive")
        return self.total() / population

    def kind_snapshot(self) -> dict[str, int]:
        return dict(sorted(self.by_kind.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrafficMeter(total={self.total()}, kinds={self.kind_snapshot()})"
