"""INSCAN: CAN augmented with 2^k-hop index pointers (§III-A).

Every node keeps, per dimension and direction, pointers to sampled nodes at
hop distances 1, 2, 4, ... 2^K reached by a randomized directional walk
through adjacent neighbors (the paper refreshes these "by flooding the
querying messages to its neighbors along the d dimensions until reaching the
edge of the CAN space").  With the pointers as extra greedy-routing links,
lookups take O(log2 n) hops instead of CAN's O(n^(1/d)).

The same tables supply the *negative-index nodes* (NINodes) that the
proactive index diffusion of §III-B sends to: targets at distance 2^k,
k ≥ 1, in the negative direction of a dimension.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.can.overlay import CANOverlay
from repro.can.routing import greedy_path, greedy_paths

__all__ = [
    "IndexPointerTable",
    "build_index_table",
    "inscan_path",
    "inscan_paths",
    "max_pointer_exponent",
]


def max_pointer_exponent(n_nodes: int, dims: int) -> int:
    """``⌊log2 n^(1/d)⌋`` — the paper's bound on the pointer exponent k."""
    if n_nodes < 2:
        return 0
    per_dim = n_nodes ** (1.0 / dims)
    return max(0, int(np.floor(np.log2(per_dim))))


class IndexPointerTable:
    """Per-node directional long-link table.

    ``links[(dim, sign)]`` is the list of node ids at walk distances
    ``2^0, 2^1, ...`` (index = exponent k).  Entries may go stale under
    churn; routing skips dead ids and the table is refreshed periodically.
    """

    __slots__ = ("node_id", "links", "build_messages", "_neg_pools",
                 "_neg_tuples")

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.links: dict[tuple[int, int], list[int]] = {}
        #: directional-walk steps spent building the table (traffic charge)
        self.build_messages = 0
        #: lazily-built ``dim -> int64 array`` / tuple mirrors of the
        #: negative pointer chains (the diffusion engine's NINode pools);
        #: a table is immutable once built, so neither goes stale.
        self._neg_pools: dict[int, np.ndarray] = {}
        self._neg_tuples: dict[int, tuple[int, ...]] = {}

    def pointers(self, dim: int, sign: int) -> list[int]:
        return self.links.get((dim, sign), [])

    def all_links(self) -> list[int]:
        out: list[int] = []
        for ids in self.links.values():
            out.extend(ids)
        return out

    def negative_index_nodes(self, dim: int, min_exponent: int = 0) -> list[int]:
        """NINodes along ``dim``: negative-direction pointers at distances
        2^k, k ≥ ``min_exponent``.

        The k=0 (adjacent) pointer is part of the set: Theorem 1's binary
        decomposition of relay distances (13 = 8 + 4 + 1) requires the
        2^0 link, otherwise odd distances would be unreachable."""
        return self.pointers(dim, -1)[min_exponent:]

    def negative_pool(self, dim: int) -> np.ndarray:
        """The NINode chain along ``dim`` as an int64 array (chain order
        preserved) — the array-backed pool the diffusion engine filters
        with vectorized liveness/exclusion masks."""
        pool = self._neg_pools.get(dim)
        if pool is None:
            pool = np.asarray(self.pointers(dim, -1), dtype=np.int64)
            self._neg_pools[dim] = pool
        return pool

    def negative_pool_tuple(self, dim: int) -> tuple[int, ...]:
        """The same chain as a cached tuple of ints — the scalar-filter
        view the diffusion engine uses below its vectorization cutover
        (avoids the per-call list slice of ``negative_index_nodes``)."""
        pool = self._neg_tuples.get(dim)
        if pool is None:
            pool = tuple(self.pointers(dim, -1))
            self._neg_tuples[dim] = pool
        return pool


def build_index_table(
    overlay: CANOverlay,
    node_id: int,
    rng: np.random.Generator,
    max_exponent: Optional[int] = None,
) -> IndexPointerTable:
    """Build the pointer table for ``node_id`` by randomized directional
    walks; the walk length is charged as ``build_messages``."""
    if max_exponent is None:
        max_exponent = max_pointer_exponent(len(overlay), overlay.dims)
    table = IndexPointerTable(node_id)
    for dim in range(overlay.dims):
        for sign in (+1, -1):
            chain: list[int] = []
            current = node_id
            target_hops = 1 << max_exponent
            hop = 0
            while hop < target_hops:
                nxt = _step_directional(overlay, current, dim, sign, rng)
                if nxt is None:
                    break  # reached the edge of the CAN space
                hop += 1
                table.build_messages += 1
                current = nxt
                if hop == (1 << len(chain)):
                    chain.append(current)
            if chain:
                table.links[(dim, sign)] = chain
    return table


def _step_directional(
    overlay: CANOverlay,
    node_id: int,
    dim: int,
    sign: int,
    rng: np.random.Generator,
) -> Optional[int]:
    """One randomized hop across the ``(dim, sign)`` face, or None at the
    space edge."""
    candidates = overlay.directional_neighbors(node_id, dim, sign)
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    return int(candidates[int(rng.integers(len(candidates)))])


def inscan_path(
    overlay: CANOverlay,
    tables: dict[int, IndexPointerTable],
    start_id: int,
    point: np.ndarray,
    max_hops: Optional[int] = None,
) -> list[int]:
    """Greedy routing over neighbors ∪ index pointers — O(log2 n) hops."""
    return greedy_path(
        overlay, start_id, point, max_hops=max_hops, link_tables=tables
    )


def inscan_paths(
    overlay: CANOverlay,
    tables: dict[int, IndexPointerTable],
    starts: Sequence[int],
    points: np.ndarray,
    max_hops: Optional[int] = None,
    on_error: str = "raise",
) -> list[Optional[list[int]]]:
    """Batched :func:`inscan_path` — one lockstep routing pass for a whole
    burst of queries (see :func:`repro.can.routing.greedy_paths`)."""
    return greedy_paths(
        overlay, starts, points,
        max_hops=max_hops, link_tables=tables, on_error=on_error,
    )
