"""SoA zone geometry — the vectorized substrate behind the CAN overlay.

:class:`ZoneStore` mirrors every live zone's ``[lo, hi)`` box in
structure-of-arrays form: one ``(capacity, d)`` float64 matrix per bound
with parallel node-id / liveness arrays, a ``node_id -> row`` map (dict
plus a dense id-indexed lookup array for vectorized gathers), and lazy
compaction — the same storage discipline as
:class:`~repro.core.state.StateCache` and the cloud
:class:`~repro.cloud.engine.HostEngine`.  The geometric predicates of
:mod:`repro.can.zone` are served as batched array operations over
candidate id sets, which is what lets greedy routing evaluate a whole
hop's candidate set in one shot and lets neighbor rebinding classify a
whole candidate neighborhood at once.

Exactness contract
------------------
Zone boundaries are dyadic rationals, so every predicate here is exact —
and, more strongly, **bit-identical** to the scalar reference kept in
:mod:`repro.testing`:

- ``squared_distances`` clips the point into each box and accumulates the
  squared per-dimension gaps *in dimension order* (sequential column
  adds, never a pairwise-tree reduction), reproducing the scalar loop's
  float semantics term by term (adding an in-range dimension's exact
  ``0.0`` is the identity, so skipped-vs-added zero terms cannot
  diverge).
- Routing screens candidates on these squared accumulators, then makes
  the decisive comparisons in the seed's ``acc ** 0.5`` space: the
  square root *merges* accumulators a couple of ulps apart into exact
  ties (lowest id wins), so candidates within a narrow relative window
  of the minimum are re-compared with the identical Python ``** 0.5``
  the scalar loop used — paths and tie-breaks match the seed bit for
  bit, merges included.  ``distances`` returns ``np.sqrt`` values,
  which on some libms may differ from ``acc ** 0.5`` by one ulp; only
  the routing layer needs (and implements) pow-exactness.

``epoch`` increments on every mutation; derived caches (the routing
candidate pools, cached adjacency directions) use it to invalidate.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.can.zone import Zone

__all__ = ["ZoneStore"]

#: Initial row capacity of the SoA arrays.
_MIN_CAPACITY = 8

#: Compact once dead rows outnumber both this floor and the live rows.
_COMPACT_FLOOR = 32


def _sequential_row_sums(sq: np.ndarray) -> np.ndarray:
    """Sum ``sq`` over its last axis strictly left-to-right (dimension
    order), matching the scalar accumulation loop bit for bit.  numpy's
    own axis reduction switches to pairwise summation for rows of eight
    or more elements, so the columns are added explicitly."""
    acc = sq[:, 0].copy() if sq.shape[1] == 1 else sq[:, 0] + sq[:, 1]
    for k in range(2, sq.shape[1]):
        np.add(acc, sq[:, k], out=acc)
    return acc


class ZoneStore:
    """All live zones' bounds in ``(N, d)`` matrices, keyed by node id."""

    __slots__ = (
        "dims", "epoch", "compact", "_float", "_int", "_lo", "_hi", "_ids",
        "_live", "_row_of", "_row_by_id", "_n", "_dead",
    )

    def __init__(self, dims: int, compact: bool = False):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        #: ``compact`` halves the SoA footprint (float32 bounds, int32
        #: ids).  Zone bounds are dyadic rationals with a handful of
        #: significant bits per dimension (splits cycle through the
        #: dimensions), so float32 represents them exactly and every
        #: predicate — served against float64 points, which upcast the
        #: bounds bit-exactly — stays identical to the float64 store.
        #: ``add``/``update`` verify exactness and raise otherwise.
        self.compact = compact
        self._float = np.float32 if compact else np.float64
        self._int = np.int32 if compact else np.int64
        #: Mutation counter; bumped by add/update/remove (and compaction).
        self.epoch = 0
        self._lo = np.empty((_MIN_CAPACITY, dims), dtype=self._float)
        self._hi = np.empty((_MIN_CAPACITY, dims), dtype=self._float)
        self._ids = np.empty(_MIN_CAPACITY, dtype=self._int)
        self._live = np.zeros(_MIN_CAPACITY, dtype=bool)
        self._row_of: dict[int, int] = {}
        #: Dense id -> row lookup (-1 = absent) for vectorized gathers.
        self._row_by_id = np.full(_MIN_CAPACITY, -1, dtype=self._int)
        self._n = 0  # rows in use (live + dead holes)
        self._dead = 0  # dead holes among the first _n rows

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._row_of

    def node_ids(self) -> list[int]:
        return list(self._row_of)

    # ------------------------------------------------------------------
    # storage management
    # ------------------------------------------------------------------
    def _grow_rows(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._n)
        for name in ("_lo", "_hi"):
            arr = np.empty((capacity, self.dims), dtype=self._float)
            arr[: self._n] = getattr(self, name)[: self._n]
            setattr(self, name, arr)
        ids = np.empty(capacity, dtype=self._int)
        ids[: self._n] = self._ids[: self._n]
        self._ids = ids
        live = np.zeros(capacity, dtype=bool)
        live[: self._n] = self._live[: self._n]
        self._live = live

    def _grow_id_map(self, node_id: int) -> None:
        size = len(self._row_by_id)
        while node_id >= size:
            size *= 2
        grown = np.full(size, -1, dtype=self._int)
        grown[: len(self._row_by_id)] = self._row_by_id
        self._row_by_id = grown

    def _compact(self) -> None:
        """Squeeze out dead rows, preserving insertion order."""
        keep = np.flatnonzero(self._live[: self._n])
        m = int(keep.size)
        if m:
            self._lo[:m] = self._lo[keep]
            self._hi[:m] = self._hi[keep]
            self._ids[:m] = self._ids[keep]
        self._live[:m] = True
        self._live[m : self._n] = False
        self._row_of = {int(self._ids[row]): row for row in range(m)}
        self._row_by_id[:] = -1
        self._row_by_id[self._ids[:m]] = np.arange(m)
        self._n = m
        self._dead = 0

    def _maybe_compact(self) -> None:
        if self._dead > _COMPACT_FLOOR and self._dead > self._n - self._dead:
            self._compact()

    def footprint_bytes(self) -> int:
        """Bytes held by the SoA arrays (bounds, ids, liveness, dense id
        map — the dominant storage at overlay scale)."""
        return (
            self._lo.nbytes + self._hi.nbytes + self._ids.nbytes
            + self._live.nbytes + self._row_by_id.nbytes
        )

    def trim(self) -> int:
        """Release slack: compact dead rows and shrink the bound/id arrays
        and the dense id map to their live extents.  Returns the number of
        bytes released.  Bumps ``epoch`` only when rows actually moved, so
        derived caches invalidate exactly when geometry layout changed."""
        before = self.footprint_bytes()
        if self._dead:
            self._compact()
            self.epoch += 1
        capacity = max(_MIN_CAPACITY, self._n)
        if self._lo.shape[0] > capacity:
            self._lo = self._lo[:capacity].copy()
            self._hi = self._hi[:capacity].copy()
            self._ids = self._ids[:capacity].copy()
            self._live = self._live[:capacity].copy()
        id_span = _MIN_CAPACITY
        if self._n:
            id_span = max(id_span, int(self._ids[: self._n].max()) + 1)
        size = _MIN_CAPACITY
        while size < id_span:
            size *= 2
        if len(self._row_by_id) > size:
            self._row_by_id = self._row_by_id[:size].copy()
        return before - self.footprint_bytes()

    # ------------------------------------------------------------------
    # mutation (the overlay calls these whenever a leaf binding changes)
    # ------------------------------------------------------------------
    def add(self, node_id: int, zone: Zone) -> None:
        if node_id in self._row_of:
            raise ValueError(f"node {node_id} already in store")
        if zone.dims != self.dims:
            raise ValueError(f"zone dims {zone.dims} != store dims {self.dims}")
        if self._n >= self._lo.shape[0]:
            self._grow_rows()
        if node_id >= len(self._row_by_id):
            self._grow_id_map(node_id)
        row = self._n
        self._store_bounds(row, zone)
        self._ids[row] = node_id
        self._live[row] = True
        self._row_of[node_id] = row
        self._row_by_id[node_id] = row
        self._n += 1
        self.epoch += 1

    def update(self, node_id: int, zone: Zone) -> None:
        """Rewrite ``node_id``'s bounds in place (zone grew/shrank/moved)."""
        row = self._row_of[node_id]
        self._store_bounds(row, zone)
        self.epoch += 1

    def _store_bounds(self, row: int, zone: Zone) -> None:
        self._lo[row] = zone.lo
        self._hi[row] = zone.hi
        if self.compact and not (
            np.array_equal(self._lo[row], zone.lo)
            and np.array_equal(self._hi[row], zone.hi)
        ):
            raise ValueError(
                "zone bounds are not exactly representable in float32 "
                "(partition deeper than 24 splits per dimension); use a "
                "non-compact ZoneStore"
            )

    def remove(self, node_id: int) -> None:
        row = self._row_of.pop(node_id)
        self._live[row] = False
        self._row_by_id[node_id] = -1
        self._dead += 1
        self.epoch += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # row lookup
    # ------------------------------------------------------------------
    def rows_of(self, ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Row index per id, ``-1`` for ids not in the store (stale long
        links, churned-out nodes, ids never seen)."""
        arr = np.asarray(ids, dtype=np.int64)
        rows = np.full(arr.shape, -1, dtype=np.int64)
        in_range = (arr >= 0) & (arr < len(self._row_by_id))
        rows[in_range] = self._row_by_id[arr[in_range]]
        return rows

    def bounds_of(self, node_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of ``(lo, hi)`` for one node."""
        row = self._row_of[node_id]
        return self._lo[row].copy(), self._hi[row].copy()

    def gather_bounds(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(lo, hi)`` matrices for the given store rows."""
        return self._lo[rows], self._hi[rows]

    # ------------------------------------------------------------------
    # batched predicates
    # ------------------------------------------------------------------
    def squared_distances_rows(
        self, points: np.ndarray, rows: np.ndarray
    ) -> np.ndarray:
        """Squared box distance per (point row, store row) pair —
        bit-identical to the scalar gap loop (see module docstring).
        ``points`` may be one ``(d,)`` point broadcast over all rows or a
        ``(len(rows), d)`` matrix pairing each row with its own point."""
        lo = self._lo[rows]
        hi = self._hi[rows]
        clipped = np.clip(points, lo, hi)
        np.subtract(clipped, points, out=clipped)
        np.multiply(clipped, clipped, out=clipped)
        return _sequential_row_sums(clipped)

    def squared_distances(
        self, point: np.ndarray, ids: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(acc, present)``: squared distance from ``point`` to each
        candidate's box plus a mask of ids actually in the store (absent
        ids get ``inf``)."""
        rows = self.rows_of(ids)
        present = rows >= 0
        acc = np.full(rows.shape, np.inf)
        if present.any():
            acc[present] = self.squared_distances_rows(
                np.asarray(point, dtype=np.float64), rows[present]
            )
        return acc, present

    def distances(
        self, point: np.ndarray, ids: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Euclidean box distances (``sqrt`` of :meth:`squared_distances`)."""
        acc, present = self.squared_distances(point, ids)
        return np.sqrt(acc, out=acc), present

    def contains_mask(
        self, point: np.ndarray, ids: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Half-open containment per candidate (top faces of the unit
        cube closed), ``False`` for absent ids."""
        rows = self.rows_of(ids)
        present = rows >= 0
        out = np.zeros(rows.shape, dtype=bool)
        if not present.any():
            return out
        p = np.asarray(point, dtype=np.float64)
        lo = self._lo[rows[present]]
        hi = self._hi[rows[present]]
        ok_lo = (p >= lo).all(axis=1)
        ok_hi = ((p < hi) | ((p == hi) & (hi == 1.0))).all(axis=1)
        out[present] = ok_lo & ok_hi
        return out

    def touching_mask(
        self, point: np.ndarray, ids: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Closed-box incidence (squared distance exactly zero), ``False``
        for absent ids — the perimeter walk's membership test.

        Computed as the direct closed-interval test ``lo <= p <= hi`` on
        every dimension, which is exactly the zero-distance predicate
        (the clipped gap is zero iff the point is inside the closed box)
        at a fraction of the arithmetic."""
        rows = self.rows_of(ids)
        present = rows >= 0
        out = np.zeros(rows.shape, dtype=bool)
        if present.any():
            p = np.asarray(point, dtype=np.float64)
            rp = rows[present]
            out[present] = (
                (p >= self._lo[rp]) & (p <= self._hi[rp])
            ).all(axis=1)
        return out

    def contains_rows(self, points: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Half-open containment per (point row, store row) pair — the
        row-paired twin of :meth:`contains_mask` (top faces of the unit
        cube closed)."""
        lo = self._lo[rows]
        hi = self._hi[rows]
        p = np.asarray(points, dtype=np.float64)
        ok_lo = (p >= lo).all(axis=1)
        ok_hi = ((p < hi) | ((p == hi) & (hi == 1.0))).all(axis=1)
        return ok_lo & ok_hi

    def adjacency(
        self, node_id: int, ids: Sequence[int] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched CAN neighborship of ``node_id`` against candidates.

        Returns ``(adjacent, dims, signs)``: a bool mask plus, for rows
        where it is set, the shared-face dimension and the side
        (``+1`` = candidate on the positive side).  ``dims``/``signs``
        are unspecified where ``adjacent`` is false (absent ids
        included).  Exact dyadic comparisons — identical to
        :func:`repro.can.zone.adjacency_direction` per pair."""
        rows = self.rows_of(ids)
        present = rows >= 0
        n = rows.shape[0]
        adjacent = np.zeros(n, dtype=bool)
        dims = np.zeros(n, dtype=np.int64)
        signs = np.ones(n, dtype=np.int64)
        if not present.any():
            return adjacent, dims, signs
        me = self._row_of[node_id]
        a_lo, a_hi = self._lo[me], self._hi[me]
        b_lo = self._lo[rows[present]]
        b_hi = self._hi[rows[present]]
        abut_pos = a_hi == b_lo
        abut_neg = b_hi == a_lo
        abut = abut_pos | abut_neg
        overlap = (a_lo < b_hi) & (b_lo < a_hi)
        ok = (abut | overlap).all(axis=1) & (abut.sum(axis=1) == 1)
        face = abut.argmax(axis=1)
        adjacent[present] = ok
        dims[present] = face
        signs[present] = np.where(
            abut_pos[np.arange(face.shape[0]), face], 1, -1
        )
        return adjacent, dims, signs

    def negative_direction_mask(
        self, node_id: int, ids: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """§III-A batched: candidate ``b`` is a negative-direction node of
        ``node_id`` iff ``b.lo < a.hi`` on every dimension (``False`` for
        absent ids)."""
        rows = self.rows_of(ids)
        present = rows >= 0
        out = np.zeros(rows.shape, dtype=bool)
        if present.any():
            a_hi = self._hi[self._row_of[node_id]]
            out[present] = (self._lo[rows[present]] < a_hi).all(axis=1)
        return out

    # ------------------------------------------------------------------
    # invariants (test support)
    # ------------------------------------------------------------------
    def check_invariants(self, zones: dict[int, Zone] | None = None) -> None:
        """Structural validation; with ``zones`` given, also assert every
        stored row matches the authoritative zone objects 1:1."""
        assert len(self._row_of) == self._n - self._dead
        assert int(self._live[: self._n].sum()) == len(self._row_of)
        assert not self._live[self._n :].any()
        for node_id, row in self._row_of.items():
            assert self._live[row], f"row of {node_id} marked dead"
            assert int(self._ids[row]) == node_id, f"id mismatch at row {row}"
            assert int(self._row_by_id[node_id]) == row, "dense map stale"
        dense_live = np.flatnonzero(self._row_by_id >= 0)
        assert {int(i) for i in dense_live} == set(self._row_of)
        if zones is not None:
            assert set(zones) == set(self._row_of), "membership drift"
            for node_id, zone in zones.items():
                row = self._row_of[node_id]
                assert np.array_equal(self._lo[row], zone.lo), (
                    f"lo drift for node {node_id}"
                )
                assert np.array_equal(self._hi[row], zone.hi), (
                    f"hi drift for node {node_id}"
                )

    # ------------------------------------------------------------------
    @classmethod
    def from_zones(cls, dims: int, zones: Iterable[tuple[int, Zone]]) -> "ZoneStore":
        store = cls(dims)
        for node_id, zone in zones:
            store.add(node_id, zone)
        return store
