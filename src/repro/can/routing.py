"""Greedy CAN routing over the SoA zone store.

Standard CAN forwarding: each hop moves to the neighbor whose zone is
closest (box distance) to the target point.  Because zones tile the space,
the minimum over neighbors is strictly smaller than the current distance
whenever that distance is positive, so the path terminates in
O(d·n^(1/d)) hops.

A hop's whole candidate set — adjacent neighbors plus, for INSCAN
routing, the node's 2^k long links — is evaluated in **one vectorized
distance computation** against the overlay's
:class:`~repro.can.geometry.ZoneStore` instead of a Python loop per
candidate.  Per-node candidate blocks (sorted ids plus gathered bounds)
are cached in a CSR-style pool invalidated by the store's mutation epoch
and the per-node pointer-table identity, so steady-state hops touch no
Python-level geometry at all.  Candidates are screened on *squared*
distances; the decisive comparisons happen in the seed's ``acc ** 0.5``
space (near-tied accumulators are re-compared with the identical Python
pow, which merges values a couple of ulps apart into exact ties, lowest
id winning) — see ``docs/can_geometry.md`` for the bit-exactness
contract against the scalar reference
(:func:`repro.testing.reference_greedy_path`).

:func:`greedy_paths` routes a whole batch of queries in lockstep rounds
— all active routes' candidate blocks are concatenated and resolved by
segmented reductions, amortizing the numpy dispatch overhead that bounds
the single-route path.  Batched submission (``submit_many`` bursts) and
the routing benchmarks use it; results are bit-identical to routing each
query alone.

Boundary targets need care: Table-I capacities are discrete, so normalized
coordinates like 12.8/25.6 = 0.5 land *exactly* on zone boundaries, where
several zones are at box distance zero but only one owns the half-open box.
Real CAN resolves this with perimeter forwarding around the touching zones;
we walk the zero-distance cluster through face neighbors (``_perimeter_hops``)
which is bounded by the point's incident zones.

Paths are computed in-process from the global overlay view; the simulation
charges one message per hop and sums per-hop network delays, which matches
Peersim-style hop accounting without paying one event per hop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional, Sequence

import numpy as np

from repro.can.geometry import _sequential_row_sums
from repro.can.overlay import CANOverlay
from repro.can.zone import Zone

__all__ = ["greedy_path", "greedy_paths", "RoutingError"]

_INT64_MAX = np.iinfo(np.int64).max

#: Candidates whose squared distances sit within this relative window of
#: the minimum are re-compared in the seed's ``acc ** 0.5`` space: the
#: square root merges accumulators a couple of ulps apart into exact
#: ties (lowest id wins), so deciding purely on squared values would
#: diverge from the scalar path in that window.  2^-40 is astronomically
#: wider than the ~2-ulp merge radius yet never catches genuinely
#: distinct distances, so the slow exact resolve stays rare.
_NEAR_TIE = 1.0 + 2.0 ** -40


def _probe_pow_half() -> bool:
    """Does ``np.sqrt(x)`` reproduce Python's ``x ** 0.5`` bit for bit?

    The decisive routing comparisons are contractually in the seed's
    scalar ``acc ** 0.5`` space.  numpy's sqrt is the IEEE correctly-
    rounded root; CPython's ``**`` goes through libm ``pow``, which on
    every libm we target (glibc >= 2.28 pow is correctly rounded; before
    that npy/libm still special-case the exponent 0.5) agrees exactly —
    but that is a platform property, so it is *probed once at import*
    over a deterministic sample plus the specials, and the vectorized
    root is only used where the probe passed.  The per-element Python
    pow loop remains as the fallback (and the contract's definition).
    """
    rng = np.random.default_rng(0x5EED_D157)
    xs = np.concatenate([
        rng.uniform(0.0, 4.0, size=4096),
        rng.uniform(0.0, 1e-30, size=256),
        rng.uniform(1e20, 1e30, size=256),
        [0.0, 0.25, 0.5, 1.0, 2.0, 4.0, np.inf],
    ])
    roots = np.sqrt(xs)
    return all(
        r == x ** 0.5 for r, x in zip(roots.tolist(), xs.tolist())
    )


_SQRT_MATCHES_POW = _probe_pow_half()


def _pow_half(accs: np.ndarray) -> np.ndarray:
    """``acc ** 0.5`` per element, vectorized when the platform sqrt is
    bit-equal to the scalar pow (see :func:`_probe_pow_half`)."""
    if _SQRT_MATCHES_POW:
        return np.sqrt(accs)
    return np.array([a ** 0.5 for a in accs.tolist()])


def _pow_space_best(accs: np.ndarray, ids) -> tuple[float, int]:
    """The seed's ``(distance, id)``-lexicographic candidate selection:
    screen on the squared accumulators, resolve near-ties by evaluating
    the scalar path's ``acc ** 0.5`` per tied candidate.  ``ids`` is any
    indexable of candidate ids aligned with ``accs``."""
    i = int(np.argmin(accs))
    best_acc = float(accs[i])
    near = accs <= best_acc * _NEAR_TIE
    if int(near.sum()) > 1:
        return min(
            (float(accs[j]) ** 0.5, int(ids[j]))
            for j in np.flatnonzero(near).tolist()
        )
    return best_acc ** 0.5, int(ids[i])


class RoutingError(RuntimeError):
    """Routing failed to make progress (overlay inconsistency)."""


def _squared_distance(zone: Zone, point: Sequence[float]) -> float:
    """The scalar gap loop of the seed's ``Zone.distance_to_point``,
    without the final square root — the exactness yardstick for the
    vectorized kernel."""
    lo, hi = zone._lo, zone._hi
    acc = 0.0
    for k in range(len(lo)):
        v = point[k]
        if v < lo[k]:
            gap = lo[k] - v
        elif v > hi[k]:
            gap = v - hi[k]
        else:
            continue
        acc += gap * gap
    return acc


# ----------------------------------------------------------------------
# candidate block pool
# ----------------------------------------------------------------------
class _RouteBlockPool:
    """CSR pool of per-node candidate blocks (sorted ids + bounds).

    One pool per (overlay geometry, pointer-table dict) pair.  Blocks are
    filled lazily on first visit and stay valid until the zone store's
    epoch moves (any membership/zone change) or the node's pointer table
    is replaced by a refresh; superseded blocks are counted as waste and
    the pool rebuilds itself lazily once waste dominates.
    """

    __slots__ = ("store", "tables", "epoch", "index", "ids", "lo", "hi",
                 "n", "waste", "generation")

    def __init__(self, store, tables):
        self.store = store
        self.tables = tables
        self.ids = np.empty(256, dtype=np.int64)
        self.lo = np.empty((256, store.dims), dtype=np.float64)
        self.hi = np.empty((256, store.dims), dtype=np.float64)
        self.generation = 0
        self.reset()

    def reset(self) -> None:
        self.epoch = self.store.epoch
        #: node_id -> (start, count, table object the block was built from)
        self.index: dict[int, tuple[int, int, object]] = {}
        self.n = 0
        self.waste = 0
        #: Bumped on every reset: previously-issued block offsets become
        #: invalid (rows are reused from 0), so batched lookups that span
        #: a reset must re-resolve their blocks.
        self.generation += 1

    def _grow(self, needed: int) -> None:
        capacity = len(self.ids)
        while capacity < needed:
            capacity *= 2
        for name in ("ids", "lo", "hi"):
            old = getattr(self, name)
            shape = (capacity,) + old.shape[1:]
            arr = np.empty(shape, dtype=old.dtype)
            arr[: self.n] = old[: self.n]
            setattr(self, name, arr)

    def lookup(self, overlay: CANOverlay, node_id: int) -> tuple[int, int]:
        """``(start, count)`` of the node's current candidate block."""
        table = None if self.tables is None else self.tables.get(node_id)
        entry = self.index.get(node_id)
        if entry is not None and entry[2] is table:
            return entry[0], entry[1]
        return self.fill(overlay, node_id, table)

    def fill(self, overlay: CANOverlay, node_id: int, table) -> tuple[int, int]:
        """Build (or rebuild) the node's candidate block."""
        entry = self.index.get(node_id)
        if entry is not None:
            self.waste += entry[1]
            if self.waste > max(256, self.n // 2):
                self.reset()
        node = overlay.nodes[node_id]
        cand = set(node.neighbors)
        if table is not None:
            cand.update(table.all_links())
        cids = sorted(cand)
        rows = self.store.rows_of(cids)
        present = rows >= 0
        rows = rows[present]
        m = int(rows.shape[0])
        if self.n + m > len(self.ids):
            self._grow(self.n + m)
        start = self.n
        if m:
            self.ids[start : start + m] = np.asarray(cids, dtype=np.int64)[present]
            lo, hi = self.store.gather_bounds(rows)
            self.lo[start : start + m] = lo
            self.hi[start : start + m] = hi
        self.n += m
        self.index[node_id] = (start, m, table)
        return start, m


def _pool_for(overlay: CANOverlay, tables) -> _RouteBlockPool:
    key = "plain" if tables is None else id(tables)
    pool = overlay._route_pools.get(key)
    if (
        pool is None
        or pool.store is not overlay.geometry
        or (tables is not None and pool.tables is not tables)
    ):
        if tables is not None:
            # A production overlay routes over one long-lived tables dict;
            # fresh dicts per pass (tests, benches) must not accumulate
            # dead pools — and each pool pins its tables dict alive, so
            # an id() key can never be reused while its pool exists.
            for k in [k for k in overlay._route_pools if k != "plain"]:
                if k != key:
                    del overlay._route_pools[k]
        pool = _RouteBlockPool(overlay.geometry, tables)
        overlay._route_pools[key] = pool
    if pool.epoch != overlay.geometry.epoch:
        pool.reset()
    return pool


# ----------------------------------------------------------------------
# single-route greedy forwarding
# ----------------------------------------------------------------------
def greedy_path(
    overlay: CANOverlay,
    start_id: int,
    point: np.ndarray,
    max_hops: Optional[int] = None,
    extra_links: Optional[Callable[[int], list[int]]] = None,
    link_tables: Optional[dict] = None,
) -> list[int]:
    """Route from ``start_id`` to the owner of ``point``.

    Returns the node-id path including both endpoints (length 1 when the
    start node already owns the point).  ``link_tables`` supplies the
    INSCAN pointer tables whose long links augment each hop's candidates
    (the cached fast path); ``extra_links`` is the generic per-node
    callback form for arbitrary additional links (uncacheable — each
    hop's candidate ids are resolved against the store on the fly).
    """
    p = np.asarray(point, dtype=np.float64)
    pt = tuple(float(x) for x in p)
    if max_hops is None:
        max_hops = 4 * (len(overlay) + 1)

    current_id = start_id
    path = [start_id]
    dist = _squared_distance(overlay.nodes[start_id].zone, pt) ** 0.5

    if extra_links is not None:
        return _greedy_generic(
            overlay, current_id, p, pt, dist, path, max_hops, extra_links,
            link_tables,
        )

    pool = _pool_for(overlay, link_tables)
    while dist != 0.0:
        start, m = pool.lookup(overlay, current_id)
        if m == 0:
            raise RoutingError(
                f"no progress at node {current_id} toward {pt} "
                f"(dist {dist}, no candidates)"
            )
        lo = pool.lo[start : start + m]
        hi = pool.hi[start : start + m]
        clipped = np.clip(p, lo, hi)
        np.subtract(clipped, p, out=clipped)
        np.multiply(clipped, clipped, out=clipped)
        accs = _sequential_row_sums(clipped)
        best_dist, best_id = _pow_space_best(accs, pool.ids[start : start + m])
        if best_dist >= dist:
            raise RoutingError(
                f"no progress at node {current_id} toward {pt} "
                f"(dist {dist}, best candidate {best_dist})"
            )
        current_id = best_id
        dist = best_dist
        path.append(current_id)
        if len(path) > max_hops:
            raise RoutingError(f"exceeded {max_hops} hops toward {pt}")
    return _finish_on_boundary(overlay, current_id, p, pt, path)


def _greedy_generic(
    overlay: CANOverlay,
    current_id: int,
    p: np.ndarray,
    pt: tuple,
    dist: float,
    path: list[int],
    max_hops: int,
    extra_links: Callable[[int], list[int]],
    link_tables: Optional[dict],
) -> list[int]:
    """Per-hop candidate assembly for callback-supplied extra links
    (stale ids are dropped by the store lookup, like the scalar path
    skipped dead candidates)."""
    store = overlay.geometry
    while dist != 0.0:
        cand_ids = list(overlay.nodes[current_id].neighbors)
        if link_tables is not None:
            table = link_tables.get(current_id)
            if table is not None:
                cand_ids.extend(table.all_links())
        cand_ids.extend(extra_links(current_id))
        accs, _present = store.squared_distances(p, cand_ids)
        best_acc = float(accs.min()) if cand_ids else np.inf
        if not np.isfinite(best_acc):
            raise RoutingError(
                f"no progress at node {current_id} toward {pt} "
                f"(dist {dist}, no live candidates)"
            )
        best_dist, best_id = _pow_space_best(accs, cand_ids)
        if best_dist >= dist:
            raise RoutingError(
                f"no progress at node {current_id} toward {pt} "
                f"(dist {dist}, best candidate {best_dist})"
            )
        current_id = best_id
        dist = best_dist
        path.append(current_id)
        if len(path) > max_hops:
            raise RoutingError(f"exceeded {max_hops} hops toward {pt}")
    return _finish_on_boundary(overlay, current_id, p, pt, path)


def _finish_on_boundary(
    overlay: CANOverlay, current_id: int, p: np.ndarray, pt: tuple,
    path: list[int],
) -> list[int]:
    """Distance hit zero: done if the half-open box owns the point, else
    walk the zero-distance cluster."""
    if overlay.nodes[current_id].zone.contains(pt):
        return path
    path.extend(_perimeter_hops(overlay, current_id, p))
    return path


# ----------------------------------------------------------------------
# batched greedy forwarding
# ----------------------------------------------------------------------
def greedy_paths(
    overlay: CANOverlay,
    starts: Sequence[int],
    points: np.ndarray,
    max_hops: Optional[int] = None,
    link_tables: Optional[dict] = None,
    on_error: str = "raise",
) -> list[Optional[list[int]]]:
    """Route a batch of queries in lockstep, one vectorized round per hop
    front: every active route's candidate block is concatenated and the
    per-route winners come out of two segmented reductions.  Paths are
    bit-identical to calling :func:`greedy_path` per query.

    ``on_error="none"`` records ``None`` for routes that fail (unknown
    start node, no greedy progress, hop budget exceeded) instead of
    raising — batched query submission uses it so one lost query cannot
    poison the burst.
    """
    if on_error not in ("raise", "none"):
        raise ValueError(f"on_error must be 'raise' or 'none', got {on_error!r}")
    n_routes = len(starts)
    if n_routes == 0:
        return []
    P = np.asarray(points, dtype=np.float64).reshape(n_routes, -1)
    if max_hops is None:
        max_hops = 4 * (len(overlay) + 1)

    paths: list[Optional[list[int]]] = [None] * n_routes
    errors: list[Optional[Exception]] = [None] * n_routes
    cur = np.zeros(n_routes, dtype=np.int64)
    dist = np.zeros(n_routes, dtype=np.float64)
    nhops = np.zeros(n_routes, dtype=np.int64)
    boundary: list[int] = []
    initially_active = []
    known: list[int] = []
    for r in range(n_routes):
        sid = int(starts[r])
        if sid not in overlay.nodes:
            errors[r] = KeyError(sid)
            continue
        paths[r] = [sid]
        cur[r] = sid
        known.append(r)
    if known:
        # One batched start-distance pass (store rows mirror the node
        # zones; the row kernel is bit-identical to the scalar gap loop).
        accs = overlay.geometry.squared_distances_rows(
            P[known], overlay.geometry.rows_of(cur[known])
        )
        for r, d in zip(known, _pow_half(accs).tolist()):
            dist[r] = d
            if d == 0.0:
                boundary.append(r)
            else:
                initially_active.append(r)

    pool = _pool_for(overlay, link_tables)
    active = np.asarray(initially_active, dtype=np.intp)
    hop_log: list[tuple[np.ndarray, np.ndarray]] = []
    pool_index = pool.index
    tables = link_tables
    while active.size:
        n_active = active.size
        # Hot per-route loop: plain-python lists beat per-element numpy
        # stores; entries are (start, count, table-identity) tuples.  A
        # waste-driven pool reset mid-pass invalidates offsets resolved
        # earlier in the same pass (rows restart from 0), so re-resolve
        # the whole front when the generation moved — a fresh pool fills
        # without waste, so the second pass cannot reset again.
        cur_front = cur[active].tolist()
        while True:
            generation = pool.generation
            starts_l: list[int] = []
            counts_l: list[int] = []
            for nid in cur_front:
                table = None if tables is None else tables.get(nid)
                entry = pool_index.get(nid)
                if entry is None or entry[2] is not table:
                    pool.fill(overlay, nid, table)
                    pool_index = pool.index  # fill may reset the pool
                    entry = pool_index[nid]
                starts_l.append(entry[0])
                counts_l.append(entry[1])
            if pool.generation == generation:
                break
            pool_index = pool.index
        block_start = np.asarray(starts_l, dtype=np.intp)
        cnt = np.asarray(counts_l, dtype=np.intp)
        if (cnt == 0).any():
            # Candidate-less routes cannot progress (and would corrupt the
            # segmented reductions): fail them, keep the rest going.
            starved = cnt == 0
            for r in active[starved].tolist():
                errors[r] = RoutingError(
                    f"no progress at node {int(cur[r])} toward "
                    f"{tuple(P[r])} (dist {dist[r]}, no candidates)"
                )
            active = active[~starved]
            block_start = block_start[~starved]
            cnt = cnt[~starved]
            if not active.size:
                break
            n_active = active.size
        total = int(cnt.sum())
        offs = np.zeros(n_active, dtype=np.intp)
        np.cumsum(cnt[:-1], out=offs[1:])
        seg = np.repeat(np.arange(n_active, dtype=np.intp), cnt)
        idx = block_start[seg] + (np.arange(total, dtype=np.intp) - offs[seg])
        lo = pool.lo[idx]
        hi = pool.hi[idx]
        # One fancy-index (route row per candidate) instead of gathering
        # the active rows and re-gathering per segment.
        p_seg = P[active[seg]]
        clipped = np.clip(p_seg, lo, hi)
        np.subtract(clipped, p_seg, out=clipped)
        np.multiply(clipped, clipped, out=clipped)
        accs = _sequential_row_sums(clipped)
        ids_at = pool.ids[idx]
        best_acc = np.minimum.reduceat(accs, offs)
        near = accs <= best_acc[seg] * _NEAR_TIE
        masked_ids = np.where(near, ids_at, _INT64_MAX)
        best_id = np.minimum.reduceat(masked_ids, offs)
        # The decisive comparisons live in the seed's ``** 0.5`` space;
        # segments with more than one near-tied candidate re-run the
        # scalar (dist, id)-lexicographic selection exactly.
        best_dist = _pow_half(best_acc)
        n_near = np.add.reduceat(near.astype(np.int64), offs)
        for j in np.flatnonzero(n_near > 1).tolist():
            s0 = int(offs[j])
            s1 = s0 + int(cnt[j])
            d, b = min(
                (float(accs[t]) ** 0.5, int(ids_at[t]))
                for t in (np.flatnonzero(near[s0:s1]) + s0).tolist()
            )
            best_dist[j] = d
            best_id[j] = b

        progressed = best_dist < dist[active]
        for r in active[~progressed].tolist():
            errors[r] = RoutingError(
                f"no progress at node {int(cur[r])} toward {tuple(P[r])}"
            )
        adv = active[progressed]
        adv_ids = best_id[progressed]
        adv_dist = best_dist[progressed]
        cur[adv] = adv_ids
        dist[adv] = adv_dist
        nhops[adv] += 1
        hop_log.append((adv, adv_ids))
        overflow = nhops[adv] + 1 > max_hops
        for r in adv[overflow].tolist():
            errors[r] = RoutingError(f"exceeded {max_hops} hops toward {tuple(P[r])}")
        finished = adv_dist == 0.0
        boundary.extend(adv[finished & ~overflow].tolist())
        active = adv[~finished & ~overflow]

    for adv, adv_ids in hop_log:
        for r, b in zip(adv.tolist(), adv_ids.tolist()):
            if errors[r] is None:
                paths[r].append(b)
    landed = [r for r in boundary if errors[r] is None]
    if landed:
        # Batched half-open ownership test; only the (rare) routes that
        # stalled on a zone face walk the perimeter.
        owned = overlay.geometry.contains_rows(
            P[landed],
            overlay.geometry.rows_of([paths[r][-1] for r in landed]),
        )
        # Memoize the perimeter walks within this batch: Table-I
        # capacities are discrete, so stalled routes repeat the exact
        # same (landing zone, boundary point) pairs — and the overlay is
        # immutable for the duration of the call, so a cached walk is
        # exact, not approximate.
        memo: dict[tuple[int, tuple[float, ...]], list[int]] = {}
        for r, ok in zip(landed, owned.tolist()):
            if not ok:
                key = (paths[r][-1], tuple(P[r].tolist()))
                hops = memo.get(key)
                if hops is None:
                    hops = _perimeter_hops(overlay, paths[r][-1], P[r])
                    memo[key] = hops
                paths[r].extend(hops)

    if on_error == "raise":
        for err in errors:
            if err is not None:
                raise err
    else:
        for r, err in enumerate(errors):
            if err is not None:
                paths[r] = None
    return paths


# ----------------------------------------------------------------------
# boundary perimeter walk
# ----------------------------------------------------------------------
def _perimeter_hops(
    overlay: CANOverlay, start_id: int, point: np.ndarray
) -> list[int]:
    """BFS through face neighbors whose closed zones touch ``point`` until
    reaching the (unique) half-open owner.  The zero-distance cluster is the
    set of zones incident to the point — at most 2^d for regular corners —
    so this stays local; a global owner lookup backstops pathological
    irregular tilings (one extra charged hop, mirroring CAN's perimeter
    forwarding).  Each BFS node's whole sorted neighborhood is classified
    by one batched incidence test, visiting in the identical order to the
    scalar reference."""
    owner_id = overlay.owner_of(point)
    if owner_id == start_id:
        return []
    if owner_id in overlay.nodes[start_id].neighbors:
        # The owner's closed zone contains the point by construction, so
        # it always passes the incidence test: the level-1 BFS scan would
        # return ``[owner_id]`` no matter how its siblings sort.  This is
        # the overwhelmingly common case (state-update points land on a
        # face of the duty zone next door) — skip the scan.
        return [owner_id]
    store = overlay.geometry
    seen = {start_id}
    queue: deque[tuple[int, list[int]]] = deque([(start_id, [])])
    budget = 4 ** overlay.dims  # generous cap on the incident cluster size
    while queue and budget > 0:
        node_id, hops = queue.popleft()
        nbrs = sorted(overlay.nodes[node_id].neighbors)
        touching = store.touching_mask(point, nbrs)
        for m, touch in zip(nbrs, touching.tolist()):
            if m in seen:
                continue
            if not touch:
                continue
            seen.add(m)
            budget -= 1
            if m == owner_id:
                return hops + [m]
            queue.append((m, hops + [m]))
    # Backstop: jump straight to the owner (counts as one hop).
    return [owner_id]
