"""Greedy CAN routing.

Standard CAN forwarding: each hop moves to the neighbor whose zone is
closest (box distance) to the target point.  Because zones tile the space,
the minimum over neighbors is strictly smaller than the current distance
whenever that distance is positive, so the path terminates in
O(d·n^(1/d)) hops.

Boundary targets need care: Table-I capacities are discrete, so normalized
coordinates like 12.8/25.6 = 0.5 land *exactly* on zone boundaries, where
several zones are at box distance zero but only one owns the half-open box.
Real CAN resolves this with perimeter forwarding around the touching zones;
we walk the zero-distance cluster through face neighbors (``_perimeter_hops``)
which is bounded by the point's incident zones.

Paths are computed in-process from the global overlay view; the simulation
charges one message per hop and sums per-hop network delays, which matches
Peersim-style hop accounting without paying one event per hop.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

import numpy as np

from repro.can.overlay import CANOverlay

__all__ = ["greedy_path", "RoutingError"]


class RoutingError(RuntimeError):
    """Routing failed to make progress (overlay inconsistency)."""


def greedy_path(
    overlay: CANOverlay,
    start_id: int,
    point: np.ndarray,
    max_hops: Optional[int] = None,
    extra_links: Optional[Callable[[int], list[int]]] = None,
) -> list[int]:
    """Route from ``start_id`` to the owner of ``point``.

    Returns the node-id path including both endpoints (length 1 when the
    start node already owns the point).  ``extra_links`` optionally supplies
    additional candidate next-hops per node (used by INSCAN index pointers).
    """
    # Plain floats: the per-hop distance predicates index the point
    # element-wise, where np.float64 boxing costs more than the math.
    p = tuple(float(x) for x in np.asarray(point, dtype=np.float64))
    if max_hops is None:
        max_hops = 4 * (len(overlay) + 1)

    current = overlay.nodes[start_id]
    path = [start_id]
    current_dist = current.zone.distance_to_point(p)

    while not current.zone.contains(p):
        if current_dist == 0.0:
            # p sits on the boundary of the current zone: finish with a
            # perimeter walk across the zero-distance cluster.
            path.extend(_perimeter_hops(overlay, current.node_id, p))
            return path
        candidates = list(current.neighbors)
        if extra_links is not None:
            candidates.extend(extra_links(current.node_id))
        best_id = -1
        best_dist = np.inf
        for cand_id in candidates:
            cand = overlay.nodes.get(cand_id)
            if cand is None:
                continue  # stale long link (churn); skip
            d = cand.zone.distance_to_point(p)
            if d < best_dist or (d == best_dist and cand_id < best_id):
                best_dist = d
                best_id = cand_id
        if best_id < 0 or best_dist >= current_dist:
            raise RoutingError(
                f"no progress at node {current.node_id} toward {p} "
                f"(dist {current_dist}, best neighbor {best_dist})"
            )
        current = overlay.nodes[best_id]
        current_dist = best_dist
        path.append(best_id)
        if len(path) > max_hops:
            raise RoutingError(f"exceeded {max_hops} hops toward {p}")
    return path


def _perimeter_hops(
    overlay: CANOverlay, start_id: int, point: np.ndarray
) -> list[int]:
    """BFS through face neighbors whose closed zones touch ``point`` until
    reaching the (unique) half-open owner.  The zero-distance cluster is the
    set of zones incident to the point — at most 2^d for regular corners —
    so this stays local; a global owner lookup backstops pathological
    irregular tilings (one extra charged hop, mirroring CAN's perimeter
    forwarding)."""
    owner_id = overlay.owner_of(point)
    if owner_id == start_id:
        return []
    seen = {start_id}
    queue: deque[tuple[int, list[int]]] = deque([(start_id, [])])
    budget = 4 ** overlay.dims  # generous cap on the incident cluster size
    while queue and budget > 0:
        node_id, hops = queue.popleft()
        for m in sorted(overlay.nodes[node_id].neighbors):
            if m in seen:
                continue
            zone = overlay.nodes[m].zone
            if zone.distance_to_point(point) != 0.0:
                continue
            seen.add(m)
            budget -= 1
            if m == owner_id:
                return hops + [m]
            queue.append((m, hops + [m]))
    # Backstop: jump straight to the owner (counts as one hop).
    return [owner_id]
