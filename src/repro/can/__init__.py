"""CAN overlay substrate.

Implements the Content-Addressable Network of Ratnasamy et al. [14] as used
by the paper: a d-dimensional unit key space dynamically partitioned into
per-node zones via a binary partition tree, face-adjacency neighbor sets,
greedy routing, the binary-partition-tree leave/takeover repair, and the
INSCAN extension (2^k-hop index pointers giving O(log n) routing, §III-A).

The key space is *not* toroidal: the paper's backward index diffusion
propagates "until reaching the edge of the CAN space", so directions are
meaningful and absolute.

Zone geometry is served twice: authoritative :class:`Zone` objects hang
off the partition tree, while the overlay's :class:`ZoneStore` mirrors
every live zone in SoA matrices so routing and neighbor rebinding run as
batched array operations (see ``docs/can_geometry.md``).
"""

from repro.can.zone import Zone, adjacency_direction, is_negative_direction_of
from repro.can.geometry import ZoneStore
from repro.can.partition_tree import PartitionTree, TreeLeaf
from repro.can.node import OverlayNode
from repro.can.overlay import CANOverlay
from repro.can.routing import greedy_path, greedy_paths, RoutingError
from repro.can.inscan import (
    IndexPointerTable,
    build_index_table,
    inscan_path,
    inscan_paths,
)

__all__ = [
    "Zone",
    "ZoneStore",
    "adjacency_direction",
    "is_negative_direction_of",
    "PartitionTree",
    "TreeLeaf",
    "OverlayNode",
    "CANOverlay",
    "greedy_path",
    "greedy_paths",
    "RoutingError",
    "IndexPointerTable",
    "build_index_table",
    "inscan_path",
    "inscan_paths",
]
