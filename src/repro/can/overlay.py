"""The CAN overlay: membership, zone assignment and neighbor maintenance.

Joins follow CAN [14]: the joiner picks a random point P, the owner of P's
zone halves its zone along the canonical (depth-cycling) dimension and hands
the half containing P to the joiner.  Departures run the partition-tree
takeover (see :mod:`repro.can.partition_tree`).

Neighbor maintenance is *local*: when a zone changes, only nodes that were
adjacent to the affected zones can gain or lose adjacency, because
- a split half is contained in the split zone,
- a merged zone is exactly the union of its two halves, and
- a relocated owner takes over an existing zone verbatim.

So recomputing adjacency over the union of the old neighborhoods is
complete.  ``check_invariants`` cross-checks this against a brute-force
recomputation in the tests.

Geometry lives twice, on purpose: the partition tree keeps the
authoritative :class:`~repro.can.zone.Zone` objects (split history,
takeover), while :class:`~repro.can.geometry.ZoneStore` mirrors every
live zone's bounds in SoA matrices so routing and rebinding evaluate
whole candidate sets as array ops.  Every leaf-binding change syncs the
store row; rebinding classifies the candidate neighborhood with one
batched adjacency call and caches each edge's ``(dim, sign)`` on both
endpoints, so ``directional_neighbors`` — the hot inner step of the
INSCAN directional walks — is a dict filter.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.can.geometry import ZoneStore
from repro.can.node import OverlayNode
from repro.can.partition_tree import PartitionTree, TakeoverPlan
from repro.can.zone import adjacency_direction

__all__ = ["CANOverlay"]


class CANOverlay:
    """A complete, consistent CAN overlay over ``[0,1]^dims``."""

    #: Subclasses that recompute adjacency per call (the scalar reference
    #: oracle) set this False so invariants skip the direction cache.
    _caches_directions = True

    def __init__(
        self, dims: int, rng: np.random.Generator, compact: bool = False
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self._rng = rng
        self.nodes: dict[int, OverlayNode] = {}
        self.tree: Optional[PartitionTree] = None
        #: SoA mirror of all live zones, kept in sync by join/leave.
        #: ``compact`` stores bounds as float32 / ids as int32 — zone
        #: bounds are dyadic so the routing kernels stay bit-identical.
        self.geometry = ZoneStore(dims, compact=compact)
        #: Routing candidate pools (managed by :mod:`repro.can.routing`).
        self._route_pools: dict = {}

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node_ids(self) -> list[int]:
        return list(self.nodes)

    def owner_of(self, point: np.ndarray) -> int:
        """The node whose zone contains ``point``."""
        if self.tree is None:
            raise LookupError("overlay is empty")
        return self.tree.find_leaf(np.asarray(point, dtype=np.float64)).owner

    def directional_neighbors(
        self, node_id: int, dim: int, sign: int
    ) -> list[int]:
        """Adjacent neighbors across the ``(dim, sign)`` face, sorted for
        determinism — a filter over the cached edge directions."""
        key = (dim, sign)
        return sorted(
            m for m, d in self.nodes[node_id].directions.items() if d == key
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: Iterable[int]) -> None:
        """Build the overlay by sequential random joins — produces the
        realistically skewed zone-size distribution the paper's §I notes
        (records 'intensively stored in only a few small-zone nodes')."""
        for node_id in node_ids:
            self.join(node_id)

    def random_point(self) -> np.ndarray:
        return self._rng.uniform(0.0, 1.0, size=self.dims)

    def join(self, node_id: int, point: Optional[np.ndarray] = None) -> OverlayNode:
        """Add ``node_id``, splitting the zone containing ``point``."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already joined")
        if self.tree is None or not self.nodes:
            self.tree = PartitionTree(self.dims, node_id)
            node = OverlayNode(node_id, self.tree.leaf_of(node_id))
            self.nodes[node_id] = node
            self.geometry.add(node_id, node.zone)
            return node

        p = self.random_point() if point is None else np.asarray(point, np.float64)
        owner_leaf = self.tree.find_leaf(p)
        owner_id = owner_leaf.owner
        owner = self.nodes[owner_id]
        old_neighbors = set(owner.neighbors)

        kept_leaf, new_leaf = self.tree.split(owner_id, node_id, p)
        owner.leaf = kept_leaf
        new_node = OverlayNode(node_id, new_leaf)
        self.nodes[node_id] = new_node
        self.geometry.update(owner_id, kept_leaf.zone)
        self.geometry.add(node_id, new_leaf.zone)

        # Rebind adjacency among {owner, joiner} ∪ previous neighborhood.
        self._rebind_neighbors(owner_id, old_neighbors | {node_id})
        self._rebind_neighbors(node_id, old_neighbors | {owner_id})
        return new_node

    # ------------------------------------------------------------------
    # departure
    # ------------------------------------------------------------------
    def leave(self, node_id: int) -> Optional[TakeoverPlan]:
        """Remove ``node_id`` (graceful or crash — topology repair is the
        same; message loss for crashes is the transport's concern)."""
        node = self.nodes.pop(node_id)
        departed_neighbors = set(node.neighbors)
        for m in departed_neighbors:
            peer = self.nodes[m]
            peer.neighbors.discard(node_id)
            peer.directions.pop(node_id, None)
        self.geometry.remove(node_id)

        assert self.tree is not None
        plan = self.tree.remove(node_id)
        if plan is None:
            self.tree = None
            return None

        absorber = self.nodes[plan.absorber]
        absorber_old = set(absorber.neighbors)
        absorber.leaf = plan.absorber_leaf
        self.geometry.update(plan.absorber, plan.absorber_leaf.zone)

        if plan.mover is None:
            # Sibling merge: absorber's zone grew to cover the departed
            # zone; candidates are both old neighborhoods.
            self._rebind_neighbors(
                plan.absorber, absorber_old | departed_neighbors
            )
        else:
            mover = self.nodes[plan.mover]
            mover_old = set(mover.neighbors)
            assert plan.mover_leaf is not None
            mover.leaf = plan.mover_leaf
            self.geometry.update(plan.mover, plan.mover_leaf.zone)
            # The absorber swallowed the mover's old zone: candidates are
            # its own old neighbors plus the mover's.
            self._rebind_neighbors(plan.absorber, absorber_old | mover_old)
            # The mover relocated into the departed zone: candidates are
            # the departed node's neighbors (plus the absorber, which now
            # owns the zone the mover vacated, and its old neighbors for
            # the removal side of rebinding).
            self._rebind_neighbors(
                plan.mover, departed_neighbors | mover_old | {plan.absorber}
            )
        return plan

    # ------------------------------------------------------------------
    # adjacency maintenance
    # ------------------------------------------------------------------
    def _rebind_neighbors(self, node_id: int, candidates: set[int]) -> None:
        """Recompute ``node_id``'s adjacency against ``candidates`` in one
        batched geometry call and make the affected edges (and their
        cached directions) symmetric.  Candidates not actually adjacent
        are removed if previously linked."""
        node = self.nodes[node_id]
        cands = [c for c in candidates if c != node_id and c in self.nodes]
        if not cands:
            return
        adjacent, dims, signs = self.geometry.adjacency(node_id, cands)
        for cand_id, ok, dim, sign in zip(
            cands, adjacent.tolist(), dims.tolist(), signs.tolist()
        ):
            cand = self.nodes[cand_id]
            if ok:
                node.neighbors.add(cand_id)
                node.directions[cand_id] = (dim, sign)
                cand.neighbors.add(node_id)
                cand.directions[node_id] = (dim, -sign)
            else:
                node.neighbors.discard(cand_id)
                node.directions.pop(cand_id, None)
                cand.neighbors.discard(node_id)
                cand.directions.pop(node_id, None)

    # ------------------------------------------------------------------
    # invariants (test support; O(n^2))
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Full structural validation: tree consistency, leaf binding,
        zone-store mirroring, and brute-force adjacency equality
        (including the cached edge directions)."""
        if not self.nodes:
            assert self.tree is None or len(self.tree) == 0
            assert len(self.geometry) == 0
            return
        assert self.tree is not None
        self.tree.check_invariants()
        assert set(self.tree.owners()) == set(self.nodes)
        for node_id, node in self.nodes.items():
            assert self.tree.leaf_of(node_id) is node.leaf, (
                f"node {node_id} leaf binding stale"
            )
        self.geometry.check_invariants(
            {node_id: node.zone for node_id, node in self.nodes.items()}
        )
        ids = sorted(self.nodes)
        for i, a in enumerate(ids):
            za = self.nodes[a].zone
            for b in ids[i + 1 :]:
                zb = self.nodes[b].zone
                direction = adjacency_direction(za, zb)
                adjacent = direction is not None
                linked = b in self.nodes[a].neighbors
                linked_sym = a in self.nodes[b].neighbors
                assert linked == linked_sym, f"asymmetric edge {a}-{b}"
                assert linked == adjacent, (
                    f"edge {a}-{b}: linked={linked} adjacent={adjacent} "
                    f"zones {za} {zb}"
                )
                if self._caches_directions:
                    cached = self.nodes[a].directions.get(b)
                    cached_sym = self.nodes[b].directions.get(a)
                    assert cached == direction, (
                        f"direction cache {a}->{b}: {cached} != {direction}"
                    )
                    expected_sym = (
                        None if direction is None
                        else (direction[0], -direction[1])
                    )
                    assert cached_sym == expected_sym, (
                        f"direction cache {b}->{a}: {cached_sym} != "
                        f"{expected_sym}"
                    )
        if self._caches_directions:
            for node_id, node in self.nodes.items():
                assert set(node.directions) == node.neighbors, (
                    f"direction cache of {node_id} out of sync"
                )
