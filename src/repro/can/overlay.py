"""The CAN overlay: membership, zone assignment and neighbor maintenance.

Joins follow CAN [14]: the joiner picks a random point P, the owner of P's
zone halves its zone along the canonical (depth-cycling) dimension and hands
the half containing P to the joiner.  Departures run the partition-tree
takeover (see :mod:`repro.can.partition_tree`).

Neighbor maintenance is *local*: when a zone changes, only nodes that were
adjacent to the affected zones can gain or lose adjacency, because
- a split half is contained in the split zone,
- a merged zone is exactly the union of its two halves, and
- a relocated owner takes over an existing zone verbatim.

So recomputing adjacency over the union of the old neighborhoods is
complete.  ``check_invariants`` cross-checks this against a brute-force
recomputation in the tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.can.node import OverlayNode
from repro.can.partition_tree import PartitionTree, TakeoverPlan
from repro.can.zone import adjacency_direction

__all__ = ["CANOverlay"]


class CANOverlay:
    """A complete, consistent CAN overlay over ``[0,1]^dims``."""

    def __init__(self, dims: int, rng: np.random.Generator):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        self.dims = dims
        self._rng = rng
        self.nodes: dict[int, OverlayNode] = {}
        self.tree: Optional[PartitionTree] = None

    # ------------------------------------------------------------------
    # membership queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.nodes

    def node_ids(self) -> list[int]:
        return list(self.nodes)

    def owner_of(self, point: np.ndarray) -> int:
        """The node whose zone contains ``point``."""
        if self.tree is None:
            raise LookupError("overlay is empty")
        return self.tree.find_leaf(np.asarray(point, dtype=np.float64)).owner

    def directional_neighbors(
        self, node_id: int, dim: int, sign: int
    ) -> list[int]:
        """Adjacent neighbors across the ``(dim, sign)`` face, sorted for
        determinism."""
        node = self.nodes[node_id]
        out = []
        for m in node.neighbors:
            d = adjacency_direction(node.zone, self.nodes[m].zone)
            if d is not None and d == (dim, sign):
                out.append(m)
        out.sort()
        return out

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: Iterable[int]) -> None:
        """Build the overlay by sequential random joins — produces the
        realistically skewed zone-size distribution the paper's §I notes
        (records 'intensively stored in only a few small-zone nodes')."""
        for node_id in node_ids:
            self.join(node_id)

    def random_point(self) -> np.ndarray:
        return self._rng.uniform(0.0, 1.0, size=self.dims)

    def join(self, node_id: int, point: Optional[np.ndarray] = None) -> OverlayNode:
        """Add ``node_id``, splitting the zone containing ``point``."""
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already joined")
        if self.tree is None or not self.nodes:
            self.tree = PartitionTree(self.dims, node_id)
            node = OverlayNode(node_id, self.tree.leaf_of(node_id))
            self.nodes[node_id] = node
            return node

        p = self.random_point() if point is None else np.asarray(point, np.float64)
        owner_leaf = self.tree.find_leaf(p)
        owner_id = owner_leaf.owner
        owner = self.nodes[owner_id]
        old_neighbors = set(owner.neighbors)

        kept_leaf, new_leaf = self.tree.split(owner_id, node_id, p)
        owner.leaf = kept_leaf
        new_node = OverlayNode(node_id, new_leaf)
        self.nodes[node_id] = new_node

        # Rebind adjacency among {owner, joiner} ∪ previous neighborhood.
        self._rebind_neighbors(owner_id, old_neighbors | {node_id})
        self._rebind_neighbors(node_id, old_neighbors | {owner_id})
        return new_node

    # ------------------------------------------------------------------
    # departure
    # ------------------------------------------------------------------
    def leave(self, node_id: int) -> Optional[TakeoverPlan]:
        """Remove ``node_id`` (graceful or crash — topology repair is the
        same; message loss for crashes is the transport's concern)."""
        node = self.nodes.pop(node_id)
        departed_neighbors = set(node.neighbors)
        for m in departed_neighbors:
            self.nodes[m].neighbors.discard(node_id)

        assert self.tree is not None
        plan = self.tree.remove(node_id)
        if plan is None:
            self.tree = None
            return None

        absorber = self.nodes[plan.absorber]
        absorber_old = set(absorber.neighbors)
        absorber.leaf = plan.absorber_leaf

        if plan.mover is None:
            # Sibling merge: absorber's zone grew to cover the departed
            # zone; candidates are both old neighborhoods.
            self._rebind_neighbors(
                plan.absorber, absorber_old | departed_neighbors
            )
        else:
            mover = self.nodes[plan.mover]
            mover_old = set(mover.neighbors)
            assert plan.mover_leaf is not None
            mover.leaf = plan.mover_leaf
            # The absorber swallowed the mover's old zone: candidates are
            # its own old neighbors plus the mover's.
            self._rebind_neighbors(plan.absorber, absorber_old | mover_old)
            # The mover relocated into the departed zone: candidates are
            # the departed node's neighbors (plus the absorber, which now
            # owns the zone the mover vacated, and its old neighbors for
            # the removal side of rebinding).
            self._rebind_neighbors(
                plan.mover, departed_neighbors | mover_old | {plan.absorber}
            )
        return plan

    # ------------------------------------------------------------------
    # adjacency maintenance
    # ------------------------------------------------------------------
    def _rebind_neighbors(self, node_id: int, candidates: set[int]) -> None:
        """Recompute ``node_id``'s adjacency against ``candidates`` and make
        the affected edges symmetric.  Candidates not actually adjacent are
        removed if previously linked."""
        node = self.nodes[node_id]
        for cand_id in candidates:
            if cand_id == node_id:
                continue
            cand = self.nodes.get(cand_id)
            if cand is None:
                continue
            if adjacency_direction(node.zone, cand.zone) is not None:
                node.neighbors.add(cand_id)
                cand.neighbors.add(node_id)
            else:
                node.neighbors.discard(cand_id)
                cand.neighbors.discard(node_id)

    # ------------------------------------------------------------------
    # invariants (test support; O(n^2))
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Full structural validation: tree consistency, leaf binding, and
        brute-force adjacency equality."""
        if not self.nodes:
            assert self.tree is None or len(self.tree) == 0
            return
        assert self.tree is not None
        self.tree.check_invariants()
        assert set(self.tree.owners()) == set(self.nodes)
        for node_id, node in self.nodes.items():
            assert self.tree.leaf_of(node_id) is node.leaf, (
                f"node {node_id} leaf binding stale"
            )
        ids = sorted(self.nodes)
        for i, a in enumerate(ids):
            za = self.nodes[a].zone
            for b in ids[i + 1 :]:
                zb = self.nodes[b].zone
                adjacent = adjacency_direction(za, zb) is not None
                linked = b in self.nodes[a].neighbors
                linked_sym = a in self.nodes[b].neighbors
                assert linked == linked_sym, f"asymmetric edge {a}-{b}"
                assert linked == adjacent, (
                    f"edge {a}-{b}: linked={linked} adjacent={adjacent} "
                    f"zones {za} {zb}"
                )
