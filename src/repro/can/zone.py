"""d-dimensional zones of the CAN key space.

Zones are axis-aligned boxes ``[lo, hi)`` inside the unit cube.  All zone
boundaries arise from repeated halving, so coordinates are dyadic rationals
represented exactly in float64 — containment and adjacency tests are exact,
no epsilon needed.

The upper face of the unit cube is closed (a point with coordinate exactly
1.0 belongs to the zone whose ``hi`` is 1.0 on that dimension) so that every
point of ``[0,1]^d`` has an owner.

Terminology from §III-A of the paper:

- two zones are **adjacent neighbors** when they abut on exactly one
  dimension and their ranges overlap (openly) on every other dimension;
- the neighbor on the high side is the **positive neighbor**, the low side
  the **negative neighbor**;
- zone *b* is a **negative-direction node** of *a* when on every dimension
  b's range overlaps a's or lies entirely below it — equivalently
  ``b.lo < a.hi`` on all dimensions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "Zone",
    "adjacency_direction",
    "is_negative_direction_of",
]


class Zone:
    """An axis-aligned box ``[lo, hi)`` in the unit cube.

    ``lo``/``hi`` are exposed as read-only numpy arrays; the private tuple
    mirrors (``_lo``/``_hi``) serve the hot geometric predicates, where
    plain float arithmetic beats numpy dispatch on 2-5 element vectors by
    an order of magnitude (profiled: routing spends ~30% of a simulation
    in ``distance_to_point`` alone).
    """

    __slots__ = ("lo", "hi", "_lo", "_hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("lo/hi must be 1-D arrays of equal length")
        if bool(np.any(hi <= lo)):
            raise ValueError(f"degenerate zone lo={lo} hi={hi}")
        lo.setflags(write=False)
        hi.setflags(write=False)
        self.lo = lo
        self.hi = hi
        self._lo = tuple(lo.tolist())
        self._hi = tuple(hi.tolist())

    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, dims: int) -> "Zone":
        return cls(np.zeros(dims), np.ones(dims))

    @property
    def dims(self) -> int:
        return self.lo.shape[0]

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    @property
    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    def side(self, dim: int) -> float:
        return float(self.hi[dim] - self.lo[dim])

    # ------------------------------------------------------------------
    # point / box relations
    # ------------------------------------------------------------------
    def contains(self, point: np.ndarray) -> bool:
        """Half-open containment; the unit cube's top faces are closed."""
        lo, hi = self._lo, self._hi
        for k in range(len(lo)):
            v = point[k]
            if v < lo[k]:
                return False
            if v >= hi[k] and not (v == hi[k] == 1.0):
                return False
        return True

    def distance_to_point(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the closest point of the box
        (zero when contained) — the greedy-routing progress measure."""
        lo, hi = self._lo, self._hi
        acc = 0.0
        for k in range(len(lo)):
            v = point[k]
            if v < lo[k]:
                gap = lo[k] - v
            elif v > hi[k]:
                gap = v - hi[k]
            else:
                continue
            acc += gap * gap
        return acc ** 0.5

    def overlaps_box(self, lo: np.ndarray, hi: np.ndarray) -> bool:
        """Open-overlap with the box ``[lo, hi)`` on every dimension."""
        lo = np.asarray(lo, dtype=np.float64)
        hi = np.asarray(hi, dtype=np.float64)
        return bool(np.all(self.lo < hi) and np.all(lo < self.hi))

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------
    def split(self, dim: int) -> tuple["Zone", "Zone"]:
        """Halve along ``dim``; returns (low half, high half)."""
        mid = (self.lo[dim] + self.hi[dim]) / 2.0
        lo_hi = self.hi.copy()
        lo_hi[dim] = mid
        hi_lo = self.lo.copy()
        hi_lo[dim] = mid
        return Zone(self.lo, lo_hi), Zone(hi_lo, self.hi)

    def merged_with(self, other: "Zone") -> "Zone":
        """The union box; only valid for sibling halves of a split."""
        lo = np.minimum(self.lo, other.lo)
        hi = np.maximum(self.hi, other.hi)
        merged = Zone(lo, hi)
        if not np.isclose(merged.volume, self.volume + other.volume):
            raise ValueError("zones are not complementary halves")
        return merged

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def is_adjacent(self, other: "Zone") -> bool:
        """CAN neighborship: abut on exactly one dim, overlap on the rest."""
        return adjacency_direction(self, other) is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Zone):
            return NotImplemented
        return bool(
            np.array_equal(self.lo, other.lo) and np.array_equal(self.hi, other.hi)
        )

    def __hash__(self) -> int:
        return hash((self.lo.tobytes(), self.hi.tobytes()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{l:g},{h:g})" for l, h in zip(self.lo, self.hi)
        )
        return f"Zone({parts})"


def adjacency_direction(a: Zone, b: Zone) -> Optional[tuple[int, int]]:
    """If ``b`` is an adjacent neighbor of ``a``, return ``(dim, sign)``
    where ``sign`` is +1 when ``b`` lies on a's positive side of ``dim``
    (b is a's *positive neighbor*) and -1 when on the negative side.

    Returns ``None`` when the zones are not CAN neighbors (including the
    corner-touching case, which abuts on more than one dimension).
    """
    a_lo, a_hi = a._lo, a._hi
    b_lo, b_hi = b._lo, b._hi
    abut_dim: Optional[tuple[int, int]] = None
    for k in range(len(a_lo)):
        if a_hi[k] == b_lo[k]:
            sign = +1
        elif b_hi[k] == a_lo[k]:
            sign = -1
        else:
            # must openly overlap on this dimension
            if a_lo[k] < b_hi[k] and b_lo[k] < a_hi[k]:
                continue
            return None
        if abut_dim is not None:
            return None  # abuts on two dimensions: corner contact only
        abut_dim = (k, sign)
    return abut_dim


def is_negative_direction_of(b: Zone, a: Zone) -> bool:
    """§III-A: ``b`` is a negative-direction node of ``a`` iff on every
    dimension b's range overlaps a's or lies entirely below it."""
    b_lo, a_hi = b._lo, a._hi
    for k in range(len(b_lo)):
        if b_lo[k] >= a_hi[k]:
            return False
    return True
