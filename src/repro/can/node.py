"""Per-node overlay state: the owned zone and the adjacency set."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.can.zone import Zone, adjacency_direction

if TYPE_CHECKING:  # pragma: no cover
    from repro.can.partition_tree import TreeLeaf

__all__ = ["OverlayNode"]


class OverlayNode:
    """One CAN participant: a zone plus its face-adjacent neighbor ids.

    The zone is read through the partition-tree leaf so that tree repairs
    (merges, relocations) are immediately visible here.

    ``directions`` caches each edge's shared-face ``(dim, sign)`` — the
    direction from *this* node's perspective — maintained by the overlay
    at rebind time so that directional lookups (the hot inner step of the
    INSCAN table walks) are dict filters, not geometry recomputations.
    It mirrors ``neighbors`` exactly on the vectorized overlay;
    ``check_invariants`` cross-checks both against brute force.
    """

    __slots__ = ("node_id", "leaf", "neighbors", "directions")

    def __init__(self, node_id: int, leaf: "TreeLeaf"):
        self.node_id = node_id
        self.leaf = leaf
        self.neighbors: set[int] = set()
        self.directions: dict[int, tuple[int, int]] = {}

    @property
    def zone(self) -> Zone:
        return self.leaf.zone

    def neighbor_direction(self, other: "OverlayNode") -> Optional[tuple[int, int]]:
        """``(dim, sign)`` of the shared face, or None if not adjacent."""
        return adjacency_direction(self.zone, other.zone)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayNode({self.node_id}, {self.zone}, deg={len(self.neighbors)})"
