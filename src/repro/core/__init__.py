"""PID-CAN: the paper's contribution (§III).

- :mod:`repro.core.state` — duty-node state caches γ with TTL.
- :mod:`repro.core.pilist` — PIList (positive index list) of diffused indexes.
- :mod:`repro.core.diffusion` — Algorithms 1-2, SID and HID variants.
- :mod:`repro.core.query` — Algorithms 3-5 (duty-query / index-agent /
  index-jump) plus requester-side bookkeeping.
- :mod:`repro.core.sos` — Slack-on-Submission (Formula 3).
- :mod:`repro.core.vd` — virtual-dimension variant support.
- :mod:`repro.core.selection` — best-fit record selection (the paper title's
  "best-fit": among returned candidates pick the tightest qualifying one).
- :mod:`repro.core.protocol` — per-node protocol assembly and the factory
  for the six evaluated variants.
"""

from repro.core.context import ProtocolContext
from repro.core.state import StateRecord, StateCache
from repro.core.pilist import PIList
from repro.core.selection import select_record, SELECTION_POLICIES
from repro.core.sos import slack_expectation
from repro.core.diffusion import (
    diffusion_message_count,
    binary_hop_decomposition,
    DiffusionEngine,
)
from repro.core.protocol import (
    DiscoveryProtocol,
    PIDCANProtocol,
    PIDCANParams,
    make_protocol,
)

__all__ = [
    "ProtocolContext",
    "StateRecord",
    "StateCache",
    "PIList",
    "select_record",
    "SELECTION_POLICIES",
    "slack_expectation",
    "diffusion_message_count",
    "binary_hop_decomposition",
    "DiffusionEngine",
    "DiscoveryProtocol",
    "PIDCANProtocol",
    "PIDCANParams",
    "make_protocol",
]
