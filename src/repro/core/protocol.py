"""Per-node protocol assembly for PID-CAN and the variant factory.

``PIDCANProtocol`` owns the INSCAN overlay, per-node state caches γ,
PILists and index-pointer tables, and drives three periodic activities per
node (self-chaining timers that stop when the node churns out):

- **state update** (cycle 400 s, TTL 600 s — §IV-A): availability ``a_i``
  is measured and routed over INSCAN to its duty node;
- **index diffusion** (Algorithm 1): when the local cache γ is non-empty,
  diffuse the node's identifier backwards (SID or HID);
- **pointer-table refresh**: rebuild the 2^k directional pointers (also
  repairing churn damage), charged as maintenance traffic.

The factory :func:`make_protocol` builds every protocol evaluated in §IV:
``sid``, ``hid``, ``sid+sos``, ``hid+sos``, ``sid+vd``, plus the baselines
(``newscast``, ``khdn-can``, ``randomwalk-can``, ``mercury``,
``inscan-rq``) from :mod:`repro.baselines` — see ``docs/baselines.md``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.can.inscan import IndexPointerTable, build_index_table, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.context import ProtocolContext
from repro.core.diffusion import DiffusionEngine
from repro.core.lifecycle import LifecycleStats, QueryLifecycle, submit_batch
from repro.core.pilist import PIList
from repro.core.query import QueryEngine, QueryParams
from repro.core.state import StateCache, StateRecord

__all__ = [
    "DiscoveryProtocol",
    "PIDCANParams",
    "PIDCANProtocol",
    "make_protocol",
    "PROTOCOL_NAMES",
]


class DiscoveryProtocol(abc.ABC):
    """What the SOC runner needs from a resource-discovery protocol.

    Every concrete protocol owns a :class:`~repro.core.lifecycle.
    QueryLifecycle` (assigned to ``self.lifecycle`` in its constructor)
    and routes all ``submit_query`` / ``submit_many`` work through it, so
    queries resolve exactly once even when churn swallows a chain — the
    invariant batched submission and the churn campaigns rely on.
    """

    name: str = "abstract"
    #: The shared requester-side query machinery; concrete protocols
    #: assign it in their constructor.
    lifecycle: Optional[QueryLifecycle] = None

    @abc.abstractmethod
    def bootstrap(self, node_ids: list[int]) -> None:
        """Build initial protocol state for the starting population."""

    @abc.abstractmethod
    def on_join(self, node_id: int) -> None:
        """A node churned in."""

    @abc.abstractmethod
    def on_leave(self, node_id: int) -> None:
        """A node churned out (state it held is gone)."""

    @abc.abstractmethod
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        """Find up to δ nodes whose availability dominates ``demand``; call
        ``callback(records, n_messages)`` exactly once."""

    def submit_many(
        self,
        demands: Sequence[np.ndarray],
        requester: int,
        callback: Callable[[list[tuple[list[StateRecord], int]]], None],
    ) -> None:
        """Submit a burst of queries; ``callback(results)`` fires exactly
        once after all of them finalize, ``results[i] = (records,
        messages)`` in submission order.  Protocols may override with a
        natively batched path; this default fans out to
        :meth:`submit_query`."""
        submit_batch(
            lambda d, cb: self.submit_query(d, requester, cb), demands, callback
        )

    def query_stats(self) -> LifecycleStats:
        """Lifetime query counters (started / completed / timed out).

        An introspection snapshot for tests and tooling; the runner's
        live timeout-failure accounting hangs off
        ``lifecycle.on_expire`` instead (one ratio-tracker tick per
        expired query)."""
        if self.lifecycle is None:
            return LifecycleStats(0, 0, 0)
        return self.lifecycle.stats()


@dataclass(frozen=True, slots=True)
class PIDCANParams:
    """All PID-CAN knobs; defaults follow §IV-A and DESIGN.md §5."""

    diffusion_method: str = "hid"  # "hid" | "sid"
    sos: bool = False
    vd: bool = False
    resource_dims: int = 5
    L: int = 2
    delta: int = 3
    jump_list_size: int = 5
    check_duty_cache: bool = True
    state_ttl: float = 600.0
    state_period: float = 400.0
    diffusion_period: float = 400.0
    pilist_ttl: float = 1200.0
    pilist_max: int = 64
    table_refresh_period: float = 3600.0
    query_timeout: float = 60.0
    sos_bias: float = 1.0

    @property
    def overlay_dims(self) -> int:
        return self.resource_dims + (1 if self.vd else 0)

    def query_params(self) -> QueryParams:
        return QueryParams(
            delta=self.delta,
            jump_list_size=self.jump_list_size,
            check_duty_cache=self.check_duty_cache,
            sos=self.sos,
            sos_bias=self.sos_bias,
            vd=self.vd,
            timeout=self.query_timeout,
        )


class PIDCANProtocol(DiscoveryProtocol):
    """Proactive Index-Diffusion CAN (§III).

    ``overlay_cls`` swaps the CAN substrate: the default vectorized
    :class:`CANOverlay` or :class:`repro.testing.ReferenceCANOverlay`
    (the scalar oracle) for cross-checking whole experiments.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        overlay_cls: Optional[type] = None,
    ):
        self.ctx = ctx
        self.params = params
        self.name = _variant_name(params)
        self.overlay = (overlay_cls or CANOverlay)(params.overlay_dims, ctx.rng)
        self.caches: dict[int, StateCache] = {}
        self.pilists: dict[int, PIList] = {}
        self.tables: dict[int, IndexPointerTable] = {}
        self.diffusion = DiffusionEngine(
            ctx, self.tables, self.pilists, params.overlay_dims, params.L
        )
        self.queries = QueryEngine(
            ctx, self.overlay, self.tables, self.caches, self.pilists,
            params.query_params(),
        )
        self.lifecycle = self.queries.lifecycle

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        self.overlay.bootstrap(node_ids)
        for node_id in node_ids:
            self._init_node_state(node_id)
        # Tables are built after the full overlay exists, then kept fresh
        # by the periodic refresh.
        for node_id in node_ids:
            self._refresh_table(node_id, charge=False)
        for node_id in node_ids:
            self._arm_periodics(node_id)

    def on_join(self, node_id: int) -> None:
        self.overlay.join(node_id)
        self._init_node_state(node_id)
        self._refresh_table(node_id, charge=True)
        self._arm_periodics(node_id)

    def on_leave(self, node_id: int) -> None:
        if node_id in self.overlay:
            self.overlay.leave(node_id)
        self.caches.pop(node_id, None)
        self.pilists.pop(node_id, None)
        self.tables.pop(node_id, None)

    def _init_node_state(self, node_id: int) -> None:
        self.caches[node_id] = StateCache(self.params.state_ttl)
        self.pilists[node_id] = PIList(self.params.pilist_ttl, self.params.pilist_max)

    # ------------------------------------------------------------------
    # periodic activities (self-chaining so they die with the node)
    # ------------------------------------------------------------------
    def _arm_periodics(self, node_id: int) -> None:
        rng = self.ctx.rng
        self._chain(node_id, self.params.state_period, self._state_update,
                    first=rng.uniform(0, self.params.state_period))
        self._chain(node_id, self.params.diffusion_period, self._diffusion_tick,
                    first=rng.uniform(0, self.params.diffusion_period))
        self._chain(node_id, self.params.table_refresh_period, self._table_tick,
                    first=rng.uniform(0, self.params.table_refresh_period))

    def _chain(
        self, node_id: int, period: float, action: Callable[[int], None], first: float
    ) -> None:
        def tick() -> None:
            if not self.ctx.is_alive(node_id) or node_id not in self.overlay:
                return
            action(node_id)
            self.ctx.sim.schedule(period, tick)

        self.ctx.sim.schedule(first, tick)

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def _point_for(self, vector: np.ndarray) -> np.ndarray:
        point = self.ctx.normalize(vector)
        if self.params.vd:
            point = np.append(point, self.ctx.rng.uniform())
        return point

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        point = self._point_for(availability)
        try:
            path = inscan_path(self.overlay, self.tables, node_id, point)
        except (RoutingError, KeyError):
            return  # overlay mid-repair; next cycle retries
        self.ctx.send_path(
            "state-update", path, self._deliver_state, path[-1], record
        )

    def _deliver_state(self, duty: int, record: StateRecord) -> None:
        cache = self.caches.get(duty)
        if cache is not None:
            cache.put(record)

    # ------------------------------------------------------------------
    # diffusion + maintenance
    # ------------------------------------------------------------------
    def _diffusion_tick(self, node_id: int) -> None:
        cache = self.caches.get(node_id)
        if cache is not None and cache.non_empty(self.ctx.sim.now):
            self.diffusion.diffuse(node_id, self.params.diffusion_method)

    def _table_tick(self, node_id: int) -> None:
        self._refresh_table(node_id, charge=True)

    def _refresh_table(self, node_id: int, charge: bool) -> None:
        table = build_index_table(self.overlay, node_id, self.ctx.rng)
        self.tables[node_id] = table
        if charge:
            self.ctx.charge_local("maintenance", node_id, table.build_messages)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        self.queries.submit(demand, requester, callback)


def _variant_name(params: PIDCANParams) -> str:
    name = f"{params.diffusion_method}-can"
    if params.sos:
        name += "+sos"
    if params.vd:
        name += "+vd"
    return name


#: Every protocol name accepted by :func:`make_protocol` (the six §IV
#: variants plus extra baselines/ablations).
PROTOCOL_NAMES = (
    "hid-can",
    "sid-can",
    "hid-can+sos",
    "sid-can+sos",
    "sid-can+vd",
    "hid-can+vd",
    "newscast",
    "khdn-can",
    "randomwalk-can",
    "mercury",
    "inscan-rq",
)


def make_protocol(
    name: str,
    ctx: ProtocolContext,
    params: PIDCANParams | None = None,
    overlay_cls: Optional[type] = None,
    **baseline_kwargs,
) -> DiscoveryProtocol:
    """Build any evaluated protocol by its paper name.

    ``params`` seeds the PID-CAN knobs (variant flags are overridden by the
    name); baselines receive shared knobs (delta, timeout, periods) from
    ``params`` and accept protocol-specific overrides via kwargs.
    ``overlay_cls`` swaps the CAN substrate on every CAN-routing protocol
    (ignored by the overlay-less newscast/mercury) — tests inject the
    scalar :class:`repro.testing.ReferenceCANOverlay` to cross-check the
    vectorized geometry end to end.
    """
    base = params or PIDCANParams()
    key = name.lower()
    if key in ("hid-can", "sid-can", "hid-can+sos", "sid-can+sos",
               "sid-can+vd", "hid-can+vd"):
        method = "hid" if key.startswith("hid") else "sid"
        return PIDCANProtocol(
            ctx,
            replace(base, diffusion_method=method,
                    sos="+sos" in key, vd="+vd" in key),
            overlay_cls=overlay_cls,
        )
    if key == "newscast":
        from repro.baselines.newscast import NewscastProtocol

        return NewscastProtocol(ctx, base, **baseline_kwargs)
    if key == "khdn-can":
        from repro.baselines.khdn import KHDNProtocol

        return KHDNProtocol(ctx, base, overlay_cls=overlay_cls, **baseline_kwargs)
    if key == "randomwalk-can":
        from repro.baselines.randomwalk import RandomWalkProtocol

        return RandomWalkProtocol(ctx, base, overlay_cls=overlay_cls,
                                  **baseline_kwargs)
    if key == "mercury":
        from repro.baselines.mercury import MercuryProtocol

        return MercuryProtocol(ctx, base, **baseline_kwargs)
    if key == "inscan-rq":
        from repro.baselines.inscan_rq import InscanRQProtocol

        return InscanRQProtocol(ctx, base, overlay_cls=overlay_cls,
                                **baseline_kwargs)
    raise ValueError(f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}")
