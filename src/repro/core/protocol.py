"""Per-node protocol assembly for PID-CAN and the variant factory.

``PIDCANProtocol`` owns the INSCAN overlay, per-node state caches γ,
PILists and index-pointer tables, and drives three periodic activities per
node (self-chaining timers that stop when the node churns out):

- **state update** (cycle 400 s, TTL 600 s — §IV-A): availability ``a_i``
  is measured and routed over INSCAN to its duty node;
- **index diffusion** (Algorithm 1): when the local cache γ is non-empty,
  diffuse the node's identifier backwards (SID or HID);
- **pointer-table refresh**: rebuild the 2^k directional pointers (also
  repairing churn damage), charged as maintenance traffic.

The factory :func:`make_protocol` builds every protocol evaluated in §IV:
``sid``, ``hid``, ``sid+sos``, ``hid+sos``, ``sid+vd``, plus the baselines
(``newscast``, ``khdn-can``, ``randomwalk-can``, ``mercury``,
``inscan-rq``) from :mod:`repro.baselines` — see ``docs/baselines.md``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

import numpy as np

from repro.can.inscan import (
    IndexPointerTable, build_index_table, inscan_path, inscan_paths,
)
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.cache import CACHE_POLICIES, PathCacheIndex
from repro.core.context import ProtocolContext
from repro.core.diffusion import DiffusionEngine
from repro.core.lifecycle import LifecycleStats, QueryLifecycle, submit_batch
from repro.core.pilist import PIList
from repro.core.query import QueryEngine, QueryParams
from repro.core.state import StateCache, StateRecord
from repro.sim.engine import Simulator, next_grid_index

__all__ = [
    "DiscoveryProtocol",
    "PIDCANParams",
    "PIDCANProtocol",
    "make_protocol",
    "PROTOCOL_NAMES",
    "quantize_phase",
    "arm_grid_chain",
]

TICK_MODES = ("per-node", "cohort")


def quantize_phase(u: float, period: float, buckets: int) -> float:
    """Snap a uniform phase draw ``u ~ U(0, period)`` down onto the
    ``buckets``-point grid ``{0, period/buckets, ...}``.

    Quantization is what makes nodes share tick instants at all: with
    continuous phases every cohort would hold one node.  The draw itself
    is kept (and only then snapped) so the RNG stream position is
    identical across tick modes and bucket counts.
    """
    if buckets < 1:
        raise ValueError(f"buckets must be >= 1, got {buckets!r}")
    b = min(int(u / period * buckets), buckets - 1)
    return b * (period / buckets)


def arm_grid_chain(
    sim: Simulator,
    period: float,
    phase: float,
    alive: Callable[[], bool],
    action: Callable[[], None],
) -> None:
    """Self-chaining per-node tick pinned to the multiplicative grid
    ``phase + k * period`` — the reference twin of a cohort timer with
    ``epoch=phase``.

    Computing each fire time from ``k`` (never by repeated addition)
    means the chain hits *bit-for-bit* the same float instants as the
    cohort timer, which is what lets lockstep tests assert event-order
    identity between tick modes.  The chain dies when ``alive()`` turns
    false, exactly like the legacy continuous-phase chains.
    """
    def tick(k: int) -> None:
        if not alive():
            return
        action()
        sim.schedule_at(phase + (k + 1) * period, tick, k + 1)

    k0 = next_grid_index(phase, period, sim.now)
    sim.schedule_at(phase + k0 * period, tick, k0)


class DiscoveryProtocol(abc.ABC):
    """What the SOC runner needs from a resource-discovery protocol.

    Every concrete protocol owns a :class:`~repro.core.lifecycle.
    QueryLifecycle` (assigned to ``self.lifecycle`` in its constructor)
    and routes all ``submit_query`` / ``submit_many`` work through it, so
    queries resolve exactly once even when churn swallows a chain — the
    invariant batched submission and the churn campaigns rely on.
    """

    name: str = "abstract"
    #: The shared requester-side query machinery; concrete protocols
    #: assign it in their constructor.
    lifecycle: Optional[QueryLifecycle] = None

    @abc.abstractmethod
    def bootstrap(self, node_ids: list[int]) -> None:
        """Build initial protocol state for the starting population."""

    @abc.abstractmethod
    def on_join(self, node_id: int) -> None:
        """A node churned in."""

    @abc.abstractmethod
    def on_leave(self, node_id: int) -> None:
        """A node churned out (state it held is gone)."""

    @abc.abstractmethod
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        """Find up to δ nodes whose availability dominates ``demand``; call
        ``callback(records, n_messages)`` exactly once."""

    def submit_many(
        self,
        demands: Sequence[np.ndarray],
        requester: int,
        callback: Callable[[list[tuple[list[StateRecord], int]]], None],
    ) -> None:
        """Submit a burst of queries; ``callback(results)`` fires exactly
        once after all of them finalize, ``results[i] = (records,
        messages)`` in submission order.  Protocols may override with a
        natively batched path; this default fans out to
        :meth:`submit_query`."""
        submit_batch(
            lambda d, cb: self.submit_query(d, requester, cb), demands, callback
        )

    def submit_bulk(
        self,
        items: Sequence[
            tuple[np.ndarray, int, Callable[[list[StateRecord], int], None]]
        ],
    ) -> None:
        """Submit same-instant queries from possibly-different requesters
        (the runner's arrival coalescing).  Each item's callback fires
        exactly once, independently.  The default fans out to
        :meth:`submit_query` in arrival order — behaviourally identical to
        uncoalesced submission for every protocol; PID-CAN overrides this
        with a natively batched routing pass."""
        for demand, requester, callback in items:
            self.submit_query(demand, requester, callback)

    def query_stats(self) -> LifecycleStats:
        """Lifetime query counters (started / completed / timed out).

        An introspection snapshot for tests and tooling; the runner's
        live timeout-failure accounting hangs off
        ``lifecycle.on_expire`` instead (one ratio-tracker tick per
        expired query)."""
        if self.lifecycle is None:
            return LifecycleStats(0, 0, 0)
        return self.lifecycle.stats()


@dataclass(frozen=True, slots=True)
class PIDCANParams:
    """All PID-CAN knobs; defaults follow §IV-A and DESIGN.md §5."""

    diffusion_method: str = "hid"  # "hid" | "sid"
    sos: bool = False
    vd: bool = False
    resource_dims: int = 5
    L: int = 2
    delta: int = 3
    jump_list_size: int = 5
    check_duty_cache: bool = True
    state_ttl: float = 600.0
    state_period: float = 400.0
    diffusion_period: float = 400.0
    pilist_ttl: float = 1200.0
    pilist_max: int = 64
    table_refresh_period: float = 3600.0
    query_timeout: float = 60.0
    sos_bias: float = 1.0
    #: ``"per-node"`` = one self-chaining timer per node per activity
    #: (the reference path); ``"cohort"`` = one CohortTimer per
    #: (activity, phase) delivering whole member batches.
    tick_mode: str = "per-node"
    #: 0 = legacy continuous phases (per-node only, byte-identical to the
    #: seed); >= 1 quantizes phase draws onto a shared grid so nodes can
    #: share tick instants across both tick modes.
    phase_buckets: int = 0
    #: Store the overlay's ZoneStore and the duty-node StateCaches in
    #: compact dtypes (float32 + int32) — see ``ExperimentConfig``; the
    #: runner threads its flag through here.
    compact_dtypes: bool = False
    #: Hot-range path caching (docs/caching.md): None = off (bit-identical
    #: to the pre-cache protocol); else one of
    #: :data:`repro.core.cache.CACHE_POLICIES`.
    cache_policy: Optional[str] = None
    cache_size: int = 128
    cache_ttl: float = 1200.0
    #: Diffuse a hot duty node's γ to adjacent zones once its windowed
    #: service count crosses the threshold.
    cache_replication: bool = False
    replication_threshold: int = 8
    replication_window: float = 400.0

    def __post_init__(self) -> None:
        if self.tick_mode not in TICK_MODES:
            raise ValueError(
                f"tick_mode must be one of {TICK_MODES}, got {self.tick_mode!r}"
            )
        if self.phase_buckets < 0:
            raise ValueError(f"phase_buckets must be >= 0, got {self.phase_buckets!r}")
        if self.tick_mode == "cohort" and self.phase_buckets < 1:
            raise ValueError("cohort tick mode requires phase_buckets >= 1")
        if self.cache_policy is not None and self.cache_policy not in CACHE_POLICIES:
            raise ValueError(
                f"cache_policy must be None or one of {CACHE_POLICIES}, "
                f"got {self.cache_policy!r}"
            )
        if self.cache_ttl <= 0:
            raise ValueError(f"cache_ttl must be positive, got {self.cache_ttl!r}")
        if self.cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {self.cache_size!r}")
        if self.replication_threshold < 1:
            raise ValueError(
                f"replication_threshold must be >= 1, "
                f"got {self.replication_threshold!r}"
            )
        if self.replication_window <= 0:
            raise ValueError(
                f"replication_window must be positive, "
                f"got {self.replication_window!r}"
            )

    @property
    def overlay_dims(self) -> int:
        return self.resource_dims + (1 if self.vd else 0)

    def query_params(self) -> QueryParams:
        return QueryParams(
            delta=self.delta,
            jump_list_size=self.jump_list_size,
            check_duty_cache=self.check_duty_cache,
            sos=self.sos,
            sos_bias=self.sos_bias,
            vd=self.vd,
            timeout=self.query_timeout,
        )


class PIDCANProtocol(DiscoveryProtocol):
    """Proactive Index-Diffusion CAN (§III).

    ``overlay_cls`` swaps the CAN substrate: the default vectorized
    :class:`CANOverlay` or :class:`repro.testing.ReferenceCANOverlay`
    (the scalar oracle) for cross-checking whole experiments.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        params: PIDCANParams,
        overlay_cls: Optional[type] = None,
    ):
        self.ctx = ctx
        self.params = params
        self.name = _variant_name(params)
        if overlay_cls is not None:
            self.overlay = overlay_cls(params.overlay_dims, ctx.rng)
        else:
            self.overlay = CANOverlay(
                params.overlay_dims, ctx.rng, compact=params.compact_dtypes
            )
        self.caches: dict[int, StateCache] = {}
        self.pilists: dict[int, PIList] = {}
        self.tables: dict[int, IndexPointerTable] = {}
        self.diffusion = DiffusionEngine(
            ctx, self.tables, self.pilists, params.overlay_dims, params.L
        )
        #: Hot-range path cache (docs/caching.md); stays None — and every
        #: code path below a ``path_cache is None`` guard stays dead —
        #: unless a cache policy is selected.
        self.path_cache: Optional[PathCacheIndex] = None
        if params.cache_policy is not None:
            self.path_cache = PathCacheIndex(
                params.cache_policy,
                size=params.cache_size,
                ttl=params.cache_ttl,
                dims=params.overlay_dims,
                replication_threshold=params.replication_threshold,
                replication_window=params.replication_window,
            )
        self.queries = QueryEngine(
            ctx, self.overlay, self.tables, self.caches, self.pilists,
            params.query_params(), cache=self.path_cache,
        )
        self.lifecycle = self.queries.lifecycle
        #: (activity kind, phase) -> shared CohortTimer (cohort mode only).
        self._cohorts: dict[tuple[str, float], "object"] = {}
        #: node id -> the cohort timers it belongs to, for O(1) discard.
        self._memberships: dict[int, list] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bootstrap(self, node_ids: list[int]) -> None:
        self.overlay.bootstrap(node_ids)
        for node_id in node_ids:
            self._init_node_state(node_id)
        # Tables are built after the full overlay exists, then kept fresh
        # by the periodic refresh.
        for node_id in node_ids:
            self._refresh_table(node_id, charge=False)
        self._arm_all(node_ids)

    def on_join(self, node_id: int) -> None:
        self.overlay.join(node_id)
        self._init_node_state(node_id)
        self._refresh_table(node_id, charge=True)
        self._arm_all([node_id])

    def on_leave(self, node_id: int) -> None:
        if node_id in self.overlay:
            self.overlay.leave(node_id)
        self.caches.pop(node_id, None)
        self.pilists.pop(node_id, None)
        self.tables.pop(node_id, None)
        if self.path_cache is not None:
            self.path_cache.drop_node(node_id)
        for timer in self._memberships.pop(node_id, ()):
            timer.discard(node_id)

    def _init_node_state(self, node_id: int) -> None:
        self.caches[node_id] = StateCache(
            self.params.state_ttl, compact=self.params.compact_dtypes
        )
        self.pilists[node_id] = PIList(self.params.pilist_ttl, self.params.pilist_max)
        if self.path_cache is not None:
            self.path_cache.add_node(node_id)

    # ------------------------------------------------------------------
    # periodic activities (self-chaining so they die with the node)
    # ------------------------------------------------------------------
    def _arm_all(self, node_ids: Sequence[int]) -> None:
        """Arm the three periodic activities for a set of nodes.

        With ``phase_buckets == 0`` this is the seed's path, untouched:
        continuous per-node phases make every cohort a singleton, so
        nothing is gained by grouping.  With buckets, phase draws stay
        **node-major** (the legacy RNG stream order: one state, diffusion
        and table draw per node, node by node) while arming runs
        **kind-major** — all state ticks, then all diffusion ticks, then
        all table refreshes — so the per-node heap order at a shared
        instant matches cohort delivery order and the two tick modes stay
        event-for-event identical (see ``docs/coalescing.md``).
        """
        p = self.params
        if p.phase_buckets == 0:
            for node_id in node_ids:
                self._arm_periodics(node_id)
            return
        rng = self.ctx.rng
        kinds = self._periodic_kinds()
        phases = [
            tuple(
                quantize_phase(rng.uniform(0, period), period, p.phase_buckets)
                for _, period, _, _ in kinds
            )
            for _ in node_ids
        ]
        for i, (kind, period, round_fn, action) in enumerate(kinds):
            for node_id, node_phases in zip(node_ids, phases):
                self._arm_one(
                    kind, period, node_phases[i], node_id, round_fn, action
                )

    def _periodic_kinds(self):
        p = self.params
        return (
            ("state", p.state_period, self._state_round, self._state_update),
            ("diffusion", p.diffusion_period, self._diffusion_round,
             self._diffusion_tick),
            ("table", p.table_refresh_period, self._table_round,
             self._table_tick),
        )

    def _arm_one(
        self,
        kind: str,
        period: float,
        phase: float,
        node_id: int,
        round_fn: Callable[[Sequence[int]], None],
        action: Callable[[int], None],
    ) -> None:
        if self.params.tick_mode == "cohort":
            key = (kind, phase)
            timer = self._cohorts.get(key)
            if timer is None:
                timer = self.ctx.sim.periodic_cohort(period, round_fn, epoch=phase)
                self._cohorts[key] = timer
            timer.add(node_id)
            self._memberships.setdefault(node_id, []).append(timer)
        else:
            arm_grid_chain(
                self.ctx.sim, period, phase,
                lambda: self.ctx.is_alive(node_id) and node_id in self.overlay,
                lambda: action(node_id),
            )

    def _arm_periodics(self, node_id: int) -> None:
        rng = self.ctx.rng
        self._chain(node_id, self.params.state_period, self._state_update,
                    first=rng.uniform(0, self.params.state_period))
        self._chain(node_id, self.params.diffusion_period, self._diffusion_tick,
                    first=rng.uniform(0, self.params.diffusion_period))
        self._chain(node_id, self.params.table_refresh_period, self._table_tick,
                    first=rng.uniform(0, self.params.table_refresh_period))

    def _chain(
        self, node_id: int, period: float, action: Callable[[int], None], first: float
    ) -> None:
        def tick() -> None:
            if not self.ctx.is_alive(node_id) or node_id not in self.overlay:
                return
            action(node_id)
            self.ctx.sim.schedule(period, tick)

        self.ctx.sim.schedule(first, tick)

    def _live_members(self, members: Sequence[int]) -> list[int]:
        """A cohort batch filtered by the same per-node liveness predicate
        the self-chaining timers use; ``on_leave`` also discards members
        eagerly, so this is a belt-and-braces guard."""
        return [
            m for m in members
            if self.ctx.is_alive(m) and m in self.overlay
        ]

    # ------------------------------------------------------------------
    # cohort rounds (one call per (activity, phase) per period)
    # ------------------------------------------------------------------
    def _state_round(self, members: Sequence[int]) -> None:
        """One state-update cycle for a whole cohort: per-member records
        and query points are built in member order (VD draws included, so
        the protocol RNG stream matches per-node ticking), every route is
        computed in one batched :func:`inscan_paths` pass, and the sends
        go out in the same member order."""
        live = self._live_members(members)
        if not live:
            return
        now = self.ctx.sim.now
        # One SoA gather + one rowwise normalize; rows (and the VD draws,
        # batched in member order) are bitwise-equal to the per-member
        # ``availability_of`` / ``_point_for`` sequence.
        avail = self.ctx.availability_matrix(live)
        records = [
            StateRecord(node_id, avail[i].copy(), now)
            for i, node_id in enumerate(live)
        ]
        points = np.clip(avail / self.ctx.cmax, 0.0, 1.0)
        if self.params.vd:
            extra = self.ctx.rng.uniform(size=len(live))
            points = np.concatenate([points, extra[:, None]], axis=1)
        paths = inscan_paths(
            self.overlay, self.tables, live, points, on_error="none",
        )
        routed = [
            (record, path) for record, path in zip(records, paths)
            if path is not None  # overlay mid-repair; next round retries
        ]
        if routed:
            self.ctx.send_path_batch(
                "state-update",
                [path for _, path in routed],
                self._deliver_state,
                [(path[-1], record) for record, path in routed],
            )

    def _diffusion_round(self, members: Sequence[int]) -> None:
        now = self.ctx.sim.now
        live = self._live_members(members)
        origins = []
        for node_id in live:
            cache = self.caches.get(node_id)
            if cache is not None and cache.non_empty(now):
                origins.append(node_id)
        if origins:
            self.diffusion.diffuse_round(origins, self.params.diffusion_method)
        for node_id in live:
            self._maybe_replicate(node_id)

    def _table_round(self, members: Sequence[int]) -> None:
        for node_id in self._live_members(members):
            self._table_tick(node_id)

    # ------------------------------------------------------------------
    # state updates
    # ------------------------------------------------------------------
    def _point_for(self, vector: np.ndarray) -> np.ndarray:
        point = self.ctx.normalize(vector)
        if self.params.vd:
            point = np.append(point, self.ctx.rng.uniform())
        return point

    def _state_update(self, node_id: int) -> None:
        availability = self.ctx.availability_of(node_id)
        record = StateRecord(node_id, availability.copy(), self.ctx.sim.now)
        point = self._point_for(availability)
        try:
            path = inscan_path(self.overlay, self.tables, node_id, point)
        except (RoutingError, KeyError):
            return  # overlay mid-repair; next cycle retries
        self.ctx.send_path(
            "state-update", path, self._deliver_state, path[-1], record
        )

    def _deliver_state(self, duty: int, record: StateRecord) -> None:
        cache = self.caches.get(duty)
        if cache is not None:
            cache.put(record)

    # ------------------------------------------------------------------
    # diffusion + maintenance
    # ------------------------------------------------------------------
    def _diffusion_tick(self, node_id: int) -> None:
        cache = self.caches.get(node_id)
        if cache is not None and cache.non_empty(self.ctx.sim.now):
            self.diffusion.diffuse(node_id, self.params.diffusion_method)
        self._maybe_replicate(node_id)

    def _maybe_replicate(self, node_id: int) -> None:
        """Hot-partition replica diffusion (docs/caching.md), piggybacked
        on the diffusion tick: a duty node whose windowed service count
        crossed the threshold gathers the hot partition's records from
        its PIList pool and pushes the merged partition to its adjacent
        zones."""
        path_cache = self.path_cache
        if path_cache is None or not self.params.cache_replication:
            return
        if path_cache.take_hot(node_id, self.ctx.sim.now):
            node = self.overlay.nodes.get(node_id)
            neighbors = sorted(node.directions) if node is not None else ()
            sent = self.diffusion.replicate(
                node_id, self.caches, neighbors=neighbors
            )
            if sent:
                path_cache.stats.replications += 1
                path_cache.stats.replica_messages += sent

    def _table_tick(self, node_id: int) -> None:
        self._refresh_table(node_id, charge=True)

    def _refresh_table(self, node_id: int, charge: bool) -> None:
        table = build_index_table(self.overlay, node_id, self.ctx.rng)
        self.tables[node_id] = table
        if charge:
            self.ctx.charge_local("maintenance", node_id, table.build_messages)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def submit_query(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> None:
        self.queries.submit(demand, requester, callback)

    def submit_bulk(
        self,
        items: Sequence[
            tuple[np.ndarray, int, Callable[[list[StateRecord], int], None]]
        ],
    ) -> None:
        self.queries.submit_burst(items)


def _variant_name(params: PIDCANParams) -> str:
    name = f"{params.diffusion_method}-can"
    if params.sos:
        name += "+sos"
    if params.vd:
        name += "+vd"
    return name


#: Every protocol name accepted by :func:`make_protocol` (the six §IV
#: variants plus extra baselines/ablations).
PROTOCOL_NAMES = (
    "hid-can",
    "sid-can",
    "hid-can+sos",
    "sid-can+sos",
    "sid-can+vd",
    "hid-can+vd",
    "newscast",
    "khdn-can",
    "randomwalk-can",
    "mercury",
    "inscan-rq",
)


def make_protocol(
    name: str,
    ctx: ProtocolContext,
    params: PIDCANParams | None = None,
    overlay_cls: Optional[type] = None,
    **baseline_kwargs,
) -> DiscoveryProtocol:
    """Build any evaluated protocol by its paper name.

    ``params`` seeds the PID-CAN knobs (variant flags are overridden by the
    name); baselines receive shared knobs (delta, timeout, periods) from
    ``params`` and accept protocol-specific overrides via kwargs.
    ``overlay_cls`` swaps the CAN substrate on every CAN-routing protocol
    (ignored by the overlay-less newscast/mercury) — tests inject the
    scalar :class:`repro.testing.ReferenceCANOverlay` to cross-check the
    vectorized geometry end to end.
    """
    base = params or PIDCANParams()
    key = name.lower()
    if key in ("hid-can", "sid-can", "hid-can+sos", "sid-can+sos",
               "sid-can+vd", "hid-can+vd"):
        method = "hid" if key.startswith("hid") else "sid"
        return PIDCANProtocol(
            ctx,
            replace(base, diffusion_method=method,
                    sos="+sos" in key, vd="+vd" in key),
            overlay_cls=overlay_cls,
        )
    if key == "newscast":
        from repro.baselines.newscast import NewscastProtocol

        return NewscastProtocol(ctx, base, **baseline_kwargs)
    if key == "khdn-can":
        from repro.baselines.khdn import KHDNProtocol

        return KHDNProtocol(ctx, base, overlay_cls=overlay_cls, **baseline_kwargs)
    if key == "randomwalk-can":
        from repro.baselines.randomwalk import RandomWalkProtocol

        return RandomWalkProtocol(ctx, base, overlay_cls=overlay_cls,
                                  **baseline_kwargs)
    if key == "mercury":
        from repro.baselines.mercury import MercuryProtocol

        return MercuryProtocol(ctx, base, **baseline_kwargs)
    if key == "inscan-rq":
        from repro.baselines.inscan_rq import InscanRQProtocol

        return InscanRQProtocol(ctx, base, overlay_cls=overlay_cls,
                                **baseline_kwargs)
    raise ValueError(f"unknown protocol {name!r}; expected one of {PROTOCOL_NAMES}")
