"""The contention-minimized multi-dimensional range query (§III-C).

Three phases, each driven by its own message handler, mirroring
Algorithms 3-5:

1. **duty-query** — the expectation vector ``v`` is routed over INSCAN to
   the *duty node* whose zone encloses it;
2. **index-agent** — the duty node randomly picks one positive neighbor per
   dimension as *index agents* (the reservoir ι) and forwards to a random
   agent, which samples an *index-jump list* j from its PIList;
3. **index-jump** — the jump message hops index node to index node; each
   checks its cache γ for records dominating ``v`` (Inequality 2), sends
   found records to the requester (FoundList ϕ) and decrements the result
   budget δ; exhausted lists fall back to the next agent, and an exhausted
   agent reservoir ends the query.

The requester accumulates ϕ notifications and finalizes on the explicit
query-end message or a timeout (needed under churn, where a chain can die
with a relaying node); the runtime registry, failsafe scheduling and
exactly-once resolution live in the shared
:mod:`repro.core.lifecycle` layer.  With Slack-on-Submission the first attempt runs on
the slacked vector e′ and a failed attempt retries once with the original
``e`` — the paper's "twice resource query overhead".

Message accounting convention
-----------------------------
``QueryRuntime.messages`` (reported to the requester callback and feeding
the Fig. 6/7 per-query cost metrics) counts **every inter-node send of the
query chain exactly once**, mirroring the TrafficMeter charges for the
chain's message kinds:

- ``duty-query``   — one per forwarded hop of the INSCAN route
  (``len(path) - 1``; zero when the requester is its own duty node);
- ``index-agent``  — one per agent handoff (including the duty node's
  first pick);
- ``index-jump``   — one per jump-list hop;
- ``found-notify`` — one per ϕ notification back to the requester;
- ``query-end``    — one per explicit termination notice.

*Not* counted: the requester's local submission (no message is sent), the
duty node acting as its own index agent (a local call), and retransmission
does not exist in the model.  Messages dropped at a churned-out destination
are still counted — the send happened and the TrafficMeter charged it; a
SoS retry re-runs the chain and keeps accumulating into the same counter
(the paper's "twice resource query overhead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.can.inscan import IndexPointerTable, inscan_path, inscan_paths
from repro.can.overlay import CANOverlay
from repro.can.routing import RoutingError
from repro.core.cache import PathCacheIndex
from repro.core.context import ProtocolContext
from repro.core.lifecycle import QueryLifecycle, QueryRuntime, submit_batch
from repro.core.pilist import PIList
from repro.core.sos import slack_expectation, slack_expectations
from repro.core.state import StateCache, StateRecord

__all__ = ["QueryEngine", "QueryRuntime", "QueryParams", "submit_batch"]


@dataclass(frozen=True, slots=True)
class QueryParams:
    """Query-side knobs (defaults follow §III-C / DESIGN.md §5)."""

    delta: int = 3  # δ: expected number of qualified results
    jump_list_size: int = 5  # |j| sampled from the agent's PIList
    check_duty_cache: bool = True  # also search γ on the duty node itself
    sos: bool = False  # Slack-on-Submission (Formula 3)
    sos_bias: float = 1.0
    vd: bool = False  # extra virtual dimension [27]
    timeout: float = 60.0  # requester-side query timeout (churn safety)
    max_chain_hops: int = 64  # hard cap on one query's message chain


class QueryEngine:
    """Executes Algorithms 3-5 against the live protocol state."""

    def __init__(
        self,
        ctx: ProtocolContext,
        overlay: CANOverlay,
        tables: dict[int, IndexPointerTable],
        caches: dict[int, StateCache],
        pilists: dict[int, PIList],
        params: QueryParams,
        cache: PathCacheIndex | None = None,
    ):
        self.ctx = ctx
        self.overlay = overlay
        self.tables = tables
        self.caches = caches
        self.pilists = pilists
        self.params = params
        #: Hot-range path cache (docs/caching.md); None = cache-off, which
        #: keeps every routing call and RNG draw bit-identical to the
        #: pre-cache protocol.
        self.cache = cache
        # The shared requester-side machinery: runtime registry, failsafe
        # timeouts, exactly-once resolution.  The hook routes a firing
        # failsafe through the SoS retry decision instead of expiring
        # immediately.
        self.lifecycle = QueryLifecycle(
            ctx, params.timeout, on_timeout=self._on_timeout
        )

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def submit(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> int:
        """Start a query for ``demand`` issued by ``requester``.

        ``callback(records, messages)`` fires exactly once with the deduped
        qualified records (possibly empty = failed task).
        """
        rt = self._begin(demand, requester, callback)
        self._launch(rt)
        return rt.qid

    def _begin(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> QueryRuntime:
        rt = self.lifecycle.begin(demand, requester, callback)
        if self.params.sos:
            rt.v = slack_expectation(
                rt.demand, self.ctx.cmax, self.ctx.rng, self.params.sos_bias
            )
            rt.sos_attempted = True
        return rt

    def submit_many(
        self,
        demands: Sequence[np.ndarray],
        requester: int,
        callback: Callable[[list[tuple[list[StateRecord], int]]], None],
    ) -> list[int]:
        """Submit one query per demand vector as a single burst.

        ``callback(results)`` fires exactly once after every query in the
        batch has finalized, with ``results[i] = (records, messages)`` for
        ``demands[i]`` in submission order.  Returns the per-query qids.

        The whole burst launches at the same instant, so the duty-query
        routes are computed in one batched lockstep pass
        (:func:`~repro.can.inscan.inscan_paths`) — routing consumes no
        randomness and per-query RNG draws (SoS slack, VD coordinate)
        happen in submission order first, so every path, message charge
        and delivery event is identical to submitting the queries one by
        one.
        """
        rts: list[QueryRuntime] = []
        points_l: list[np.ndarray] = []

        def start(demand: np.ndarray, cb) -> int:
            # Per-query draws (SoS slack inside _begin, then the VD
            # coordinate) happen here, interleaved per query exactly as a
            # sequential submit loop would interleave them.
            rt = self._begin(demand, requester, cb)
            rts.append(rt)
            points_l.append(self._query_point(rt.v))
            return rt.qid

        qids = submit_batch(start, demands, callback)
        if not rts:
            return qids
        if not self.ctx.is_alive(requester):
            for rt in rts:
                self._resolve(rt, False)
            return qids
        paths = self._route_batch([requester] * len(rts), points_l)
        for rt, path in zip(rts, paths):
            if path is None:
                # Overlay under repair (churn); the query is lost.
                self._resolve(rt, False)
                continue
            rt.messages += max(0, len(path) - 1)
            self.ctx.send_path(
                "duty-query", path, self._on_duty, rt.qid, path[-1]
            )
        return qids

    def submit_burst(
        self,
        items: Sequence[
            tuple[np.ndarray, int, Callable[[list[StateRecord], int], None]]
        ],
    ) -> list[int]:
        """Submit same-instant queries from *different* requesters as one
        batch — the arrival-coalescing twin of :meth:`submit_many`.

        ``items`` holds ``(demand, requester, callback)`` triples in
        arrival order; every path, RNG draw, message charge and delivery
        event is bit-identical to submitting them one by one in that
        order.  Three draw regimes keep the stream exact:

        - **SoS only** — the sequential path draws each query's slack
          vector inside ``_begin`` *before* the requester-liveness check,
          so all items draw; one batched
          :func:`~repro.core.sos.slack_expectations` call consumes the
          identical doubles.
        - **VD only** — the sequential path checks liveness first and
          draws the virtual coordinate only for live requesters; one
          ``uniform(size=n_live)`` call over the live items matches.
        - **SoS + VD** — the draws interleave per item (slack, liveness,
          coordinate), so they stay per-item; routing is still batched.

        Routing itself (:func:`~repro.can.inscan.inscan_paths`) consumes
        no randomness, and a failed query's resolution invokes only the
        requester callback (no RNG, no sends), so deferring dead/unroutable
        resolutions behind the batch changes nothing observable.
        """
        if not items:
            return []
        p = self.params
        rts: list[QueryRuntime] = []
        live: list[QueryRuntime] = []
        dead: list[QueryRuntime] = []
        points: list[np.ndarray] = []
        if p.sos and not p.vd:
            for demand, requester, callback in items:
                rts.append(self.lifecycle.begin(demand, requester, callback))
            slacked = slack_expectations(
                np.asarray([rt.demand for rt in rts]),
                self.ctx.cmax, self.ctx.rng, p.sos_bias,
            )
            for rt, v in zip(rts, slacked):
                rt.v = v
                rt.sos_attempted = True
            for rt in rts:
                (live if self.ctx.is_alive(rt.requester) else dead).append(rt)
            points = [self.ctx.normalize(rt.v) for rt in live]
        elif p.vd and not p.sos:
            for demand, requester, callback in items:
                rt = self._begin(demand, requester, callback)
                rts.append(rt)
                (live if self.ctx.is_alive(requester) else dead).append(rt)
            extra = self.ctx.rng.uniform(size=len(live))
            points = [
                np.append(self.ctx.normalize(rt.v), x)
                for rt, x in zip(live, extra)
            ]
        else:
            for demand, requester, callback in items:
                rt = self._begin(demand, requester, callback)
                rts.append(rt)
                if self.ctx.is_alive(requester):
                    live.append(rt)
                    points.append(self._query_point(rt.v))
                else:
                    dead.append(rt)
        for rt in dead:
            self._resolve(rt, False)
        if live:
            paths = self._route_batch([rt.requester for rt in live], points)
            for rt, path in zip(live, paths):
                if path is None:
                    # Overlay under repair (churn); the query is lost.
                    self._resolve(rt, False)
                    continue
                rt.messages += max(0, len(path) - 1)
                self.ctx.send_path(
                    "duty-query", path, self._on_duty, rt.qid, path[-1]
                )
        return [rt.qid for rt in rts]

    def active_queries(self) -> int:
        return self.lifecycle.active_queries()

    # ------------------------------------------------------------------
    # phase 1: duty-query routing (Algorithm 3)
    # ------------------------------------------------------------------
    def _query_point(self, v: np.ndarray) -> np.ndarray:
        point = self.ctx.normalize(v)
        if self.params.vd:
            # The virtual dimension receives a fresh random coordinate per
            # query, dispersing analogous queries over many duty nodes [27].
            point = np.append(point, self.ctx.rng.uniform())
        return point

    # ------------------------------------------------------------------
    # hot-range path cache (docs/caching.md); all no-ops when cache is off
    # ------------------------------------------------------------------
    def _cache_usable(self, duty: int) -> bool:
        """A cached duty is only worth routing to while it is alive and
        still holds a zone (churn invalidates lazily, at consult time)."""
        return self.ctx.is_alive(duty) and duty in self.overlay.nodes

    def _cache_probe(self, requester: int, point: np.ndarray) -> int | None:
        """Consult the requester's cache; returns a live cached duty node
        for ``point`` or None.  Tracks hit/miss/staleness counters."""
        stats = self.cache.stats
        stats.lookups += 1
        duty = self.cache.lookup(requester, point, self.ctx.sim.now)
        if duty is None:
            stats.misses += 1
            return None
        if not self._cache_usable(duty):
            self.cache.invalidate(requester, duty)
            stats.misses += 1
            return None
        stats.hits += 1
        self._note_regret(duty, point)
        return duty

    def _note_regret(self, duty: int, point: np.ndarray) -> None:
        """Staleness-induced best-fit regret: the cached duty no longer
        matches the ground-truth owner of the query point (its zone split
        or moved since the entry was stored), so the query lands on a
        node whose γ holds looser-fitting records than the true duty's."""
        try:
            owner = self.overlay.owner_of(point)
        except LookupError:
            return
        if duty != owner:
            self.cache.stats.stale_hits += 1

    def _relay_shorten(self, path: list[int], point: np.ndarray) -> list[int]:
        """Let each relay hop of a greedy route consult its own cache and
        truncate the remaining walk when it knows a closer duty node."""
        now = self.ctx.sim.now
        for i in range(1, len(path) - 1):
            duty = self.cache.lookup(path[i], point, now)
            if duty is None:
                continue
            if not self._cache_usable(duty):
                self.cache.invalidate(path[i], duty)
                continue
            short = path[: i + 1] if duty == path[i] else [*path[: i + 1], duty]
            if len(short) < len(path):
                self.cache.stats.relay_hits += 1
                self._note_regret(duty, point)
                return short
        return path

    def _populate_route(self, path: list[int]) -> None:
        """Remember the routed duty node (with its zone box) at the
        requester and every relay hop — the query response travelling the
        return path carries exactly this binding."""
        duty = path[-1]
        try:
            lo, hi = self.overlay.geometry.bounds_of(duty)
        except KeyError:
            return
        now = self.ctx.sim.now
        for node in path[:-1]:
            self.cache.store(node, duty, lo, hi, now)

    def _finish_route(self, path: list[int], point: np.ndarray) -> list[int]:
        """Post-process a freshly greedy-routed path: relay caches may
        truncate it; a full (untruncated) route is authoritative ground
        truth and populates the caches along it."""
        short = self._relay_shorten(path, point)
        if short is path:
            self._populate_route(path)
        return short

    def _route_batch(
        self, requesters: list[int], points: list[np.ndarray]
    ) -> list[list[int] | None]:
        """Batched duty-query routing with the cache consulted first.

        Cache-off this is exactly the one lockstep
        :func:`~repro.can.inscan.inscan_paths` call of the pre-cache
        protocol.  Cache-on, requester hits short-circuit to their cached
        duty and only the misses go through greedy routing (still one
        batched pass); cache operations consume no RNG, so the miss
        sub-batch routes identically to routing it alone.
        """
        arr = np.asarray(points)
        if self.cache is None:
            return inscan_paths(
                self.overlay, self.tables, requesters, arr, on_error="none"
            )
        paths: list[list[int] | None] = [None] * len(requesters)
        miss: list[int] = []
        for i, requester in enumerate(requesters):
            duty = self._cache_probe(requester, points[i])
            if duty is None:
                miss.append(i)
            else:
                paths[i] = [requester, duty]
        if miss:
            routed = inscan_paths(
                self.overlay, self.tables,
                [requesters[i] for i in miss], arr[miss],
                on_error="none",
            )
            for i, path in zip(miss, routed):
                paths[i] = (
                    self._finish_route(path, points[i])
                    if path is not None
                    else None
                )
        return paths

    def _launch(self, rt: QueryRuntime, timed_out: bool = False) -> None:
        """Start (or re-start, for SoS) the query chain.

        ``timed_out`` records how we got here: a launch that fails
        synchronously during a failsafe-triggered retry resolves through
        :meth:`QueryLifecycle.expire`, keeping the ``query_timeouts``
        attribution honest for the ``+sos`` variants under churn.
        """
        if not self.ctx.is_alive(rt.requester):
            self._resolve(rt, timed_out)
            return
        point = self._query_point(rt.v)
        path: list[int] | None = None
        if self.cache is not None:
            duty = self._cache_probe(rt.requester, point)
            if duty is not None:
                path = [rt.requester, duty]
        if path is None:
            try:
                path = inscan_path(
                    self.overlay, self.tables, rt.requester, point
                )
            except (RoutingError, KeyError):
                # Overlay under repair (churn); the query is lost.
                self._resolve(rt, timed_out)
                return
            if self.cache is not None:
                path = self._finish_route(path, point)
        rt.messages += max(0, len(path) - 1)
        self.ctx.send_path("duty-query", path, self._on_duty, rt.qid, path[-1])

    def _duty_phi(
        self, cache: StateCache, v: np.ndarray, now: float, delta: int
    ) -> list[StateRecord]:
        """The duty node's own qualified records, at most ``delta``.

        Cache-off this is the first-δ scan of the seed (no RNG).  Cache-on
        the duty γ may hold a replicated hot partition far larger than δ;
        always serving its first rows would funnel every hot query onto
        the same few owners, so the pick is a uniform δ-subset instead —
        replication's load spreading, paid for with RNG draws that only
        ever happen cache-on.
        """
        if self.cache is None:
            return cache.qualified(v, now, limit=delta)
        pool = cache.qualified(v, now)
        if len(pool) <= delta:
            return pool
        picked = self.ctx.rng.choice(len(pool), size=delta, replace=False)
        return [pool[i] for i in sorted(picked.tolist())]

    def _on_duty(self, qid: int, duty: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        now = self.ctx.sim.now
        if self.cache is not None:
            # Feed the heat tracker driving hot-partition replication.
            self.cache.record_service(duty, now)
        delta = self.params.delta
        found_owners: set[int] = set()

        # Optional deviation knob (DESIGN.md §5): the duty node's own cache
        # holds the records tightest around v — natural best-fit candidates.
        if self.params.check_duty_cache:
            cache = self.caches.get(duty)
            if cache is not None:
                phi = self._duty_phi(cache, rt.v, now, delta)
                if phi:
                    self._notify_found(duty, rt, phi)
                    delta -= len(phi)
                    found_owners.update(r.owner for r in phi)
        if delta <= 0:
            self._send_end(duty, rt)
            return

        # Algorithm 3 lines 5-7: one random positive neighbor per dimension.
        agents: list[int] = []
        for dim in range(self.overlay.dims):
            if duty not in self.overlay.nodes:
                break
            pos = self.overlay.directional_neighbors(duty, dim, +1)
            pick = self.ctx.choice(pos, exclude=set(agents) | {duty})
            if pick is not None:
                agents.append(pick)
        if not agents:
            # Top-corner duty node with no positive neighbors: act as our
            # own index agent (the PIList here was populated by the same
            # backward diffusion).
            self._on_agent(qid, duty, delta, [], found_owners, 1)
            return
        alpha = agents.pop(int(self.ctx.rng.integers(len(agents))))
        rt.messages += 1
        self.ctx.send(
            "index-agent", duty, alpha,
            self._on_agent, qid, alpha, delta, agents, found_owners, 1,
        )

    # ------------------------------------------------------------------
    # phase 2: index-agent handler (Algorithm 4)
    # ------------------------------------------------------------------
    def _on_agent(
        self,
        qid: int,
        me: int,
        delta: int,
        agents: list[int],
        found_owners: set[int],
        hops: int,
    ) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        if hops > self.params.max_chain_hops:
            self._send_end(me, rt)
            return
        pilist = self.pilists.get(me)
        jumps = (
            pilist.sample(self.params.jump_list_size, self.ctx.sim.now, self.ctx.rng)
            if pilist is not None
            else []
        )
        jumps = [j for j in jumps if j != me and j not in found_owners]
        if jumps:
            beta = jumps.pop(int(self.ctx.rng.integers(len(jumps))))
            rt.messages += 1
            self.ctx.send(
                "index-jump", me, beta,
                self._on_jump, qid, beta, delta, jumps, agents, found_owners,
                hops + 1,
            )
        else:
            self._next_agent(qid, me, delta, agents, found_owners, hops, rt)

    def _next_agent(
        self,
        qid: int,
        me: int,
        delta: int,
        agents: list[int],
        found_owners: set[int],
        hops: int,
        rt: QueryRuntime,
    ) -> None:
        """Algorithm 4 lines 5-8 / Algorithm 5 lines 10-13."""
        if agents:
            alpha = agents.pop(int(self.ctx.rng.integers(len(agents))))
            rt.messages += 1
            self.ctx.send(
                "index-agent", me, alpha,
                self._on_agent, qid, alpha, delta, agents, found_owners, hops + 1,
            )
        else:
            self._send_end(me, rt)

    # ------------------------------------------------------------------
    # phase 3: index-jump handler (Algorithm 5)
    # ------------------------------------------------------------------
    def _on_jump(
        self,
        qid: int,
        me: int,
        delta: int,
        jumps: list[int],
        agents: list[int],
        found_owners: set[int],
        hops: int,
    ) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        if hops > self.params.max_chain_hops:
            self._send_end(me, rt)
            return
        now = self.ctx.sim.now
        cache = self.caches.get(me)
        if cache is not None:
            phi = cache.qualified(rt.v, now, limit=delta, exclude=found_owners)
            if phi:
                # Lines 2-5: notify the requester, decrement δ.
                self._notify_found(me, rt, phi)
                delta -= len(phi)
                found_owners = found_owners | {r.owner for r in phi}
        if delta <= 0:
            self._send_end(me, rt)
            return
        jumps = [j for j in jumps if j not in found_owners]
        if jumps:
            beta = jumps.pop(int(self.ctx.rng.integers(len(jumps))))
            rt.messages += 1
            self.ctx.send(
                "index-jump", me, beta,
                self._on_jump, qid, beta, delta, jumps, agents, found_owners,
                hops + 1,
            )
        else:
            self._next_agent(qid, me, delta, agents, found_owners, hops, rt)

    # ------------------------------------------------------------------
    # requester side
    # ------------------------------------------------------------------
    def _notify_found(self, src: int, rt: QueryRuntime, phi: list[StateRecord]) -> None:
        rt.messages += 1
        self.ctx.send(
            "found-notify", src, rt.requester, self._on_found, rt.qid, list(phi)
        )

    def _send_end(self, src: int, rt: QueryRuntime) -> None:
        """Explicit termination notice back to the requester (counted like
        every other inter-node send of the chain)."""
        rt.messages += 1
        self.ctx.send("query-end", src, rt.requester, self._on_end, rt.qid)

    def _on_found(self, qid: int, phi: list[StateRecord]) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        rt.found.extend(phi)

    def _on_end(self, qid: int) -> None:
        rt = self.lifecycle.get(qid)
        if rt is None:
            return
        self._maybe_retry_or_finalize(rt, timed_out=False)

    def _on_timeout(self, rt: QueryRuntime) -> None:
        """Lifecycle hook: the failsafe fired while the query is live."""
        self._maybe_retry_or_finalize(rt, timed_out=True)

    def _maybe_retry_or_finalize(self, rt: QueryRuntime, timed_out: bool) -> None:
        if rt.finalized:
            return
        if not rt.found and self.params.sos and rt.sos_attempted:
            # SoS failure path: restore the original expectation vector and
            # re-conduct the search once (§III-C last paragraph).
            rt.sos_attempted = False
            rt.v = rt.demand
            self.lifecycle.restart_timeout(rt)
            self._launch(rt, timed_out)
            return
        self._resolve(rt, timed_out)

    def _resolve(self, rt: QueryRuntime, timed_out: bool) -> None:
        if timed_out:
            self.lifecycle.expire(rt)
        else:
            self.lifecycle.finalize(rt)
