"""Slack-on-Submission (SoS), Formula (3) of the paper.

When a query is triggered, the original expectation vector ``e(t)`` is
immediately skewed to a random ``e'(t)`` with ``e ⪯ e' ⪯ cmax``.  The query
first runs with ``e'``; landing at a random duty node positive of ``e``
disperses analogous queries that would otherwise contend for the same
records.  If the slacked query returns nothing, the search is re-conducted
with the original ``e`` — which is why the paper reports SoS costs "twice
resource query overhead".
"""

from __future__ import annotations

import numpy as np

__all__ = ["slack_expectation", "slack_expectations"]


def slack_expectation(
    expectation: np.ndarray,
    cmax: np.ndarray,
    rng: np.random.Generator,
    bias: float = 1.0,
) -> np.ndarray:
    """A random vector in the box ``[e, cmax]`` (componentwise).

    ``bias`` > 1 skews draws toward the original expectation (u^bias for
    u ~ U(0,1)); the paper's formulation is the uniform case ``bias=1``.
    """
    if bias <= 0:
        raise ValueError("bias must be positive")
    e = np.asarray(expectation, dtype=np.float64)
    top = np.asarray(cmax, dtype=np.float64)
    if bool(np.any(e > top + 1e-9)):
        raise ValueError("expectation exceeds cmax; nothing to slack into")
    u = rng.uniform(0.0, 1.0, size=e.shape) ** bias
    return e + u * np.maximum(top - e, 0.0)


def slack_expectations(
    expectations: np.ndarray,
    cmax: np.ndarray,
    rng: np.random.Generator,
    bias: float = 1.0,
) -> np.ndarray:
    """Batched Formula (3): slack a ``(k, d)`` matrix of expectation
    vectors in one draw.

    Stream-identical to ``k`` sequential :func:`slack_expectation` calls:
    ``rng.uniform(size=(k, d))`` consumes exactly the doubles the scalar
    loop would, in the same (row-major) order, so coalesced query bursts
    produce bit-identical slack vectors to one-by-one submission.
    """
    if bias <= 0:
        raise ValueError("bias must be positive")
    e = np.asarray(expectations, dtype=np.float64)
    if e.ndim != 2:
        raise ValueError(f"expected a (k, d) matrix, got shape {e.shape}")
    top = np.asarray(cmax, dtype=np.float64)
    if bool(np.any(e > top + 1e-9)):
        raise ValueError("expectation exceeds cmax; nothing to slack into")
    u = rng.uniform(0.0, 1.0, size=e.shape) ** bias
    return e + u * np.maximum(top - e, 0.0)
