"""Duty-node state caches (the cache γ of §III-B).

Every node periodically routes its availability record to the duty node
whose zone encloses the normalized availability point; the duty node keeps
the record for the state TTL (600 s in the paper, message cycle 400 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

__all__ = ["StateRecord", "StateCache"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class StateRecord:
    """One availability report: ``a_i`` of ``owner`` at ``timestamp``."""

    owner: int
    availability: np.ndarray
    timestamp: float

    def qualifies(self, demand: np.ndarray) -> bool:
        """Inequality (2): the recorded availability dominates ``demand``."""
        return bool(np.all(self.availability >= demand - _EPS))


class StateCache:
    """TTL-bounded per-duty-node record store, keyed by reporting owner.

    A newer record from the same owner replaces the old one (the paper's
    periodic state-update semantics).
    """

    def __init__(self, ttl: float):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self._records: dict[int, StateRecord] = {}

    def put(self, record: StateRecord) -> None:
        existing = self._records.get(record.owner)
        if existing is None or existing.timestamp <= record.timestamp:
            self._records[record.owner] = record

    def evict_owner(self, owner: int) -> None:
        self._records.pop(owner, None)

    def purge(self, now: float) -> None:
        """Drop expired records."""
        cutoff = now - self.ttl
        stale = [o for o, r in self._records.items() if r.timestamp < cutoff]
        for o in stale:
            del self._records[o]

    def non_empty(self, now: float) -> bool:
        """The diffusion trigger of Algorithm 1: any fresh record present?"""
        self.purge(now)
        return bool(self._records)

    def records(self, now: float) -> list[StateRecord]:
        self.purge(now)
        return list(self._records.values())

    def qualified(
        self,
        demand: np.ndarray,
        now: float,
        limit: Optional[int] = None,
        exclude: Optional[Iterable[int]] = None,
    ) -> list[StateRecord]:
        """Fresh records dominating ``demand`` (Algorithm 5 line 1), at most
        ``limit``, skipping owners in ``exclude`` (already-found nodes)."""
        self.purge(now)
        skip = set(exclude) if exclude is not None else ()
        out: list[StateRecord] = []
        for rec in self._records.values():
            if rec.owner in skip:
                continue
            if rec.qualifies(demand):
                out.append(rec)
                if limit is not None and len(out) >= limit:
                    break
        return out

    def __len__(self) -> int:
        return len(self._records)
