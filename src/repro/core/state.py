"""Duty-node state caches (the cache γ of §III-B).

Every node periodically routes its availability record to the duty node
whose zone encloses the normalized availability point; the duty node keeps
the record for the state TTL (600 s in the paper, message cycle 400 s).

The cache is stored structure-of-arrays: availability vectors live in one
contiguous ``(capacity, d)`` float64 matrix with parallel owner/timestamp
arrays, so the dominance check of Inequality (2) — the hottest operation in
the whole reproduction, hit by every index jump, duty-cache probe and all
baselines — is a single vectorized comparison instead of a per-record
Python loop.  Row order is insertion order (a replacing update keeps its
row), eviction and TTL expiry only flip a liveness bit, and the arrays are
compacted lazily once enough dead rows accumulate, which preserves the
exact iteration semantics of the original dict-of-records implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = ["StateRecord", "StateCache"]

_EPS = 1e-9

#: Initial row capacity of the SoA arrays.
_MIN_CAPACITY = 8

#: Compact once dead rows outnumber both this floor and the live rows.
_COMPACT_FLOOR = 32


@dataclass(frozen=True, slots=True)
class StateRecord:
    """One availability report: ``a_i`` of ``owner`` at ``timestamp``."""

    owner: int
    availability: np.ndarray
    timestamp: float

    def qualifies(self, demand: np.ndarray) -> bool:
        """Inequality (2): the recorded availability dominates ``demand``."""
        return bool(np.all(self.availability >= demand - _EPS))


class StateCache:
    """TTL-bounded per-duty-node record store, keyed by reporting owner.

    A newer record from the same owner replaces the old one (the paper's
    periodic state-update semantics), in place: the owner keeps its
    original insertion position, exactly like a dict value update.
    """

    __slots__ = (
        "ttl", "compact", "_float", "_int", "_pos", "_recs", "_owners",
        "_ts", "_matrix", "_live", "_n", "_dead", "_oldest",
    )

    def __init__(self, ttl: float, compact: bool = False):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        #: ``compact`` stores the availability matrix in float32 and
        #: owners in int32, halving the dominant storage.  The dominance
        #: screen then runs in float32 precision (availabilities span a
        #: few hundred units — well within float32's 24-bit mantissa, and
        #: the records themselves keep their exact float64 vectors); the
        #: default float64 path is byte-for-byte the legacy one.
        self.compact = compact
        self._float = np.float32 if compact else np.float64
        self._int = np.int32 if compact else np.int64
        self._pos: dict[int, int] = {}  # owner -> row index
        self._recs: list[Optional[StateRecord]] = []  # row -> record (None = dead)
        self._owners = np.empty(0, dtype=self._int)
        self._ts = np.empty(0, dtype=np.float64)
        self._matrix: Optional[np.ndarray] = None  # (capacity, d) values
        self._live = np.empty(0, dtype=bool)
        self._n = 0  # rows in use (live + dead holes)
        self._dead = 0  # dead holes among the first _n rows
        #: Lower bound on the timestamps of live rows: lets ``purge`` skip
        #: the vectorized staleness scan entirely while nothing can have
        #: expired yet (the common case — purge runs on every query).
        self._oldest = np.inf

    # ------------------------------------------------------------------
    # storage management
    # ------------------------------------------------------------------
    def _grow(self, dims: int, extra: int = 1) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._n, self._n + extra)
        matrix = np.empty((capacity, dims), dtype=self._float)
        owners = np.empty(capacity, dtype=self._int)
        ts = np.empty(capacity, dtype=np.float64)
        live = np.zeros(capacity, dtype=bool)
        if self._n:
            matrix[: self._n] = self._matrix[: self._n]
            owners[: self._n] = self._owners[: self._n]
            ts[: self._n] = self._ts[: self._n]
            live[: self._n] = self._live[: self._n]
        self._matrix = matrix
        self._owners = owners
        self._ts = ts
        self._live = live

    def _compact(self) -> None:
        """Squeeze out dead rows, preserving insertion order."""
        keep = np.flatnonzero(self._live[: self._n])
        m = int(keep.size)
        if m:
            self._matrix[:m] = self._matrix[keep]
            self._owners[:m] = self._owners[keep]
            self._ts[:m] = self._ts[keep]
        self._live[:m] = True
        self._live[m : self._n] = False
        recs = [self._recs[i] for i in keep]
        self._recs[:] = recs
        self._pos = {rec.owner: row for row, rec in enumerate(recs)}
        self._n = m
        self._dead = 0

    def _maybe_compact(self) -> None:
        if self._dead > _COMPACT_FLOOR and self._dead > self._n - self._dead:
            self._compact()

    def _kill_row(self, row: int) -> None:
        self._live[row] = False
        self._recs[row] = None
        self._dead += 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def put(self, record: StateRecord) -> None:
        availability = np.asarray(record.availability, dtype=np.float64)
        row = self._pos.get(record.owner)
        if row is not None:
            if self._ts[row] <= record.timestamp:
                self._matrix[row] = availability
                self._ts[row] = record.timestamp
                self._recs[row] = record
            return
        if self._matrix is None or self._n >= self._matrix.shape[0]:
            self._grow(availability.shape[0])
        row = self._n
        self._matrix[row] = availability
        self._owners[row] = record.owner
        self._ts[row] = record.timestamp
        self._live[row] = True
        self._recs.append(record)
        self._pos[record.owner] = row
        self._n += 1
        if record.timestamp < self._oldest:
            self._oldest = record.timestamp

    def merge(self, records: Sequence[StateRecord]) -> int:
        """Reconcile a replica batch into this cache as one array merge.

        The hot-partition replication path (docs/caching.md): a hot duty
        node pushes its γ wholesale to adjacent zones, and the receiver
        folds the batch in with the same newest-timestamp-wins rule as
        :meth:`put` — existing owners update in place (fancy-indexed row
        assignment), unseen owners bulk-append in batch order.  Returns
        the number of records accepted.
        """
        upd_rows: list[int] = []
        upd_recs: list[StateRecord] = []
        new: list[StateRecord] = []
        seen: set[int] = set()
        for rec in records:
            row = self._pos.get(rec.owner)
            if row is None:
                # Replica batches come from an owner-keyed cache, so
                # duplicates are unexpected — but guard anyway (a dup
                # would leave an orphaned live row behind).
                if rec.owner not in seen:
                    seen.add(rec.owner)
                    new.append(rec)
            elif self._ts[row] <= rec.timestamp:
                upd_rows.append(row)
                upd_recs.append(rec)
        if upd_rows:
            rows = np.asarray(upd_rows)
            self._matrix[rows] = np.asarray(
                [rec.availability for rec in upd_recs], dtype=np.float64
            )
            self._ts[rows] = [rec.timestamp for rec in upd_recs]
            for row, rec in zip(upd_rows, upd_recs):
                self._recs[row] = rec
        if new:
            dims = np.asarray(new[0].availability).shape[0]
            if self._matrix is None or self._n + len(new) > self._matrix.shape[0]:
                self._grow(dims, extra=len(new))
            start, stop = self._n, self._n + len(new)
            self._matrix[start:stop] = np.asarray(
                [rec.availability for rec in new], dtype=np.float64
            )
            self._owners[start:stop] = [rec.owner for rec in new]
            self._ts[start:stop] = [rec.timestamp for rec in new]
            self._live[start:stop] = True
            for offset, rec in enumerate(new):
                self._recs.append(rec)
                self._pos[rec.owner] = start + offset
            self._n = stop
            oldest = min(rec.timestamp for rec in new)
            if oldest < self._oldest:
                self._oldest = oldest
        return len(upd_rows) + len(new)

    def evict_owner(self, owner: int) -> None:
        row = self._pos.pop(owner, None)
        if row is not None:
            self._kill_row(row)
            self._maybe_compact()

    def purge(self, now: float) -> None:
        """Drop expired records."""
        if not self._pos:
            return
        cutoff = now - self.ttl
        if cutoff <= self._oldest:
            return  # every live row is at least as fresh as the bound
        live = self._live[: self._n]
        stale = live & (self._ts[: self._n] < cutoff)
        if stale.any():
            for row in np.flatnonzero(stale).tolist():
                del self._pos[int(self._owners[row])]
                self._kill_row(row)
            live = self._live[: self._n]
        self._oldest = (
            float(self._ts[: self._n][live].min()) if self._pos else np.inf
        )
        self._maybe_compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def non_empty(self, now: float) -> bool:
        """The diffusion trigger of Algorithm 1: any fresh record present?"""
        self.purge(now)
        return bool(self._pos)

    def records(self, now: float) -> list[StateRecord]:
        self.purge(now)
        return [rec for rec in self._recs if rec is not None]

    def qualified(
        self,
        demand: np.ndarray,
        now: float,
        limit: Optional[int] = None,
        exclude: Optional[Iterable[int]] = None,
    ) -> list[StateRecord]:
        """Fresh records dominating ``demand`` (Algorithm 5 line 1), at most
        ``limit``, skipping owners in ``exclude`` (already-found nodes)."""
        self.purge(now)
        if not self._pos:
            return []
        demand = np.asarray(demand, dtype=np.float64)
        mask = (self._matrix[: self._n] >= demand - _EPS).all(axis=1)
        if self._dead:
            mask &= self._live[: self._n]
        rows = np.flatnonzero(mask)
        skip = set(exclude) if exclude is not None else ()
        out: list[StateRecord] = []
        for row in rows.tolist():
            rec = self._recs[row]
            if rec.owner in skip:
                continue
            out.append(rec)
            if limit is not None and len(out) >= limit:
                break
        return out

    def __len__(self) -> int:
        return len(self._pos)
