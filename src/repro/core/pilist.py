"""PIList — the Positive Index List of §III-B.

Nodes receiving a diffused index store the originator's identifier here.
Entries expire (diffusion is periodic, so liveness is re-established every
sender cycle) and the list is size-capped with oldest-first eviction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PIList"]


class PIList:
    """Expiring, capped set of positively-located index-node identifiers."""

    def __init__(self, ttl: float, max_size: int = 64):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        self.ttl = float(ttl)
        self.max_size = int(max_size)
        self._added_at: dict[int, float] = {}
        #: Latest simulation time this list has observed; ``__len__`` and
        #: ``__contains__`` expire against it so they agree with the most
        #: recent ``entries()``/``sample()`` view (sim time is monotonic).
        self._clock = 0.0

    def _observe(self, now: float) -> None:
        if now > self._clock:
            self._clock = now

    def add(self, node_id: int, now: float) -> None:
        """Insert or refresh an index; evict the stalest when full."""
        self._observe(now)
        self._added_at[node_id] = now
        if len(self._added_at) > self.max_size:
            oldest = min(self._added_at, key=lambda k: (self._added_at[k], k))
            del self._added_at[oldest]

    def discard(self, node_id: int) -> None:
        self._added_at.pop(node_id, None)

    def purge(self, now: float) -> None:
        self._observe(now)
        cutoff = now - self.ttl
        stale = [k for k, t in self._added_at.items() if t < cutoff]
        for k in stale:
            del self._added_at[k]

    def entries(self, now: float) -> list[int]:
        self.purge(now)
        return sorted(self._added_at)

    def sample(self, k: int, now: float, rng: np.random.Generator) -> list[int]:
        """Up to ``k`` distinct indexes, uniformly at random (Algorithm 4
        line 1)."""
        pool = self.entries(now)
        if len(pool) <= k:
            return pool
        picked = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in picked]

    def __len__(self) -> int:
        """Live entry count as of the latest observed time (stale entries
        are not reported, matching ``entries()``/``sample()``)."""
        self.purge(self._clock)
        return len(self._added_at)

    def __contains__(self, node_id: int) -> bool:
        added = self._added_at.get(node_id)
        return added is not None and added >= self._clock - self.ttl
