"""PIList — the Positive Index List of §III-B.

Nodes receiving a diffused index store the originator's identifier here.
Entries expire (diffusion is periodic, so liveness is re-established every
sender cycle) and the list is size-capped with oldest-first eviction.

Since the hot-range caching PR the implementation lives in
:class:`repro.core.cache.RangeCache`: a PIList is exactly the ``dims=0``
TTL-policy cache (keyed set, no range boxes).  The seed's scalar
implementation is preserved verbatim as
:class:`repro.testing.ReferencePIList` and pinned by a randomized
lockstep test, so these semantics are enforced, not merely documented.
"""

from __future__ import annotations

from repro.core.cache import RangeCache

__all__ = ["PIList"]


class PIList(RangeCache):
    """Expiring, capped set of positively-located index-node identifiers."""

    def __init__(self, ttl: float, max_size: int = 64):
        super().__init__(ttl, max_size, policy="ttl", dims=0)
