"""Requester-side query lifecycle shared by every discovery protocol.

Every protocol in the repository — PID-CAN's :class:`~repro.core.query.
QueryEngine` and all the baselines — answers a range query with a chain of
messages hopping node to node.  Under churn any hop can land on a node
that has already departed; the message is dropped (the crash model of
:meth:`repro.core.context.ProtocolContext.send`) and, without a failsafe,
the requester's callback never fires.  Batched submission then hangs
forever: the fan-in of :func:`submit_batch` waits on a query that can no
longer complete.

:class:`QueryLifecycle` centralizes the requester-side machinery that
used to be private to ``QueryEngine`` so every protocol shares identical
failure semantics:

- **per-query runtimes** (:class:`QueryRuntime`) holding the demand, the
  accumulated found-records, the message count and the exactly-once
  finalization flag;
- **failsafe timeouts** — every query schedules one at submission; a
  chain lost to churn resolves as an explicit *timeout failure* (empty or
  partial results) instead of a silent hang, and the expiry is counted so
  it can feed the success-ratio metrics;
- **callback fan-in** for batched submission (:func:`submit_batch`);
- **message accounting hooks** — chains increment ``rt.messages`` as they
  send, and the count reaches the requester callback even on timeout.

A dead chain's stragglers (messages still in flight when the timeout
fires) find no live runtime via :meth:`QueryLifecycle.get` and fall on
the floor, so a query resolves **exactly once** — by chain completion or
by timeout, never both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.context import ProtocolContext
from repro.core.state import StateRecord
from repro.sim.engine import EventHandle

__all__ = ["QueryLifecycle", "QueryRuntime", "LifecycleStats", "submit_batch"]


def submit_batch(
    submit: Callable[[np.ndarray, Callable[[list[StateRecord], int], None]], object],
    demands: Sequence[np.ndarray],
    callback: Callable[[list[tuple[list[StateRecord], int]]], None],
) -> list:
    """Shared fan-out/fan-in for batched query submission.

    Calls ``submit(demand, one_query_callback)`` once per demand;
    ``callback(results)`` fires exactly once after every query finalizes,
    with ``results[i] = (records, messages)`` in submission order.  Returns
    whatever each ``submit`` returned (qids for the engine, ``None`` for
    protocols).  Used by :meth:`repro.core.query.QueryEngine.submit_many`
    and the ``DiscoveryProtocol.submit_many`` default — keep the
    aggregation in one place.  The fan-in completes under churn because
    every lifecycle-backed query resolves (at the latest by its failsafe
    timeout)."""
    batch = [np.asarray(d, dtype=np.float64) for d in demands]
    if not batch:
        callback([])
        return []
    results: list[Optional[tuple[list[StateRecord], int]]] = [None] * len(batch)
    pending = {"n": len(batch)}

    def one_done(i: int, records: list[StateRecord], messages: int) -> None:
        results[i] = (records, messages)
        pending["n"] -= 1
        if pending["n"] == 0:
            callback(results)  # type: ignore[arg-type]

    return [
        submit(d, lambda r, m, _i=i: one_done(_i, r, m))
        for i, d in enumerate(batch)
    ]


@dataclass
class QueryRuntime:
    """Requester-side bookkeeping for one task's query."""

    qid: int
    requester: int
    demand: np.ndarray  # original e(t)
    callback: Callable[[list[StateRecord], int], None]
    v: np.ndarray = None  # type: ignore[assignment]  # current query vector
    found: list[StateRecord] = field(default_factory=list)
    messages: int = 0
    finalized: bool = False
    timed_out: bool = False  # resolved by the failsafe, not the chain
    sos_attempted: bool = False
    timeout_handle: Optional[EventHandle] = None


@dataclass(frozen=True, slots=True)
class LifecycleStats:
    """Counters of one protocol's query lifecycle (all monotone)."""

    started: int
    completed: int  # resolved by their own chain
    timed_out: int  # resolved by the failsafe timeout

    @property
    def resolved(self) -> int:
        return self.completed + self.timed_out


class QueryLifecycle:
    """Per-protocol registry of live queries with failsafe timeouts.

    ``on_timeout`` customizes what happens when a query's failsafe fires
    while it is still live: the default resolves it immediately via
    :meth:`expire`; ``QueryEngine`` installs a hook that may re-conduct
    the search once (Slack-on-Submission) before giving up.  ``on_expire``
    is an observer invoked once per expired query — the simulation runner
    uses it to feed timeout failures into the ratio metrics.
    """

    def __init__(
        self,
        ctx: ProtocolContext,
        timeout: float,
        on_timeout: Optional[Callable[[QueryRuntime], None]] = None,
    ):
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.ctx = ctx
        self.timeout = float(timeout)
        self._on_timeout = on_timeout
        self.on_expire: Optional[Callable[[QueryRuntime], None]] = None
        self._active: dict[int, QueryRuntime] = {}
        self._next_qid = 0
        self.started = 0
        self.completed = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # query lifetime
    # ------------------------------------------------------------------
    def begin(
        self,
        demand: np.ndarray,
        requester: int,
        callback: Callable[[list[StateRecord], int], None],
    ) -> QueryRuntime:
        """Register a query and arm its failsafe timeout.

        ``callback(records, messages)`` is guaranteed to fire exactly once
        — when the protocol finalizes the runtime, or when the failsafe
        expires it, whichever comes first.
        """
        rt = QueryRuntime(
            qid=self._next_qid,
            requester=requester,
            demand=np.asarray(demand, dtype=np.float64),
            callback=callback,
        )
        rt.v = rt.demand
        self._next_qid += 1
        self._active[rt.qid] = rt
        self.started += 1
        rt.timeout_handle = self.ctx.sim.schedule(
            self.timeout, self._fire_timeout, rt.qid
        )
        return rt

    def get(self, qid: int) -> Optional[QueryRuntime]:
        """The live runtime for ``qid``, or ``None`` once it resolved —
        chain handlers bail out on ``None`` so stragglers of a timed-out
        query cannot double-fire the callback."""
        rt = self._active.get(qid)
        if rt is None or rt.finalized:
            return None
        return rt

    def active_queries(self) -> int:
        return len(self._active)

    def restart_timeout(self, rt: QueryRuntime) -> None:
        """Re-arm the failsafe from now (retry paths, e.g. the SoS
        re-submission re-conducts the whole chain)."""
        if rt.timeout_handle is not None:
            rt.timeout_handle.cancel()
        rt.timeout_handle = self.ctx.sim.schedule(
            self.timeout, self._fire_timeout, rt.qid
        )

    # ------------------------------------------------------------------
    # resolution (exactly one of finalize/expire per query)
    # ------------------------------------------------------------------
    def finalize(self, rt: QueryRuntime) -> None:
        """Resolve a query through its own chain (normal completion)."""
        if rt.finalized:
            return
        self.completed += 1
        self._finish(rt)

    def expire(self, rt: QueryRuntime) -> None:
        """Resolve a query whose chain died (churn): the callback fires
        with whatever was found so far, and the expiry is counted exactly
        once toward the timeout-failure metrics."""
        if rt.finalized:
            return
        rt.timed_out = True
        self.timeouts += 1
        if self.on_expire is not None:
            self.on_expire(rt)
        self._finish(rt)

    def _finish(self, rt: QueryRuntime) -> None:
        rt.finalized = True
        if rt.timeout_handle is not None:
            rt.timeout_handle.cancel()
            rt.timeout_handle = None
        self._active.pop(rt.qid, None)
        rt.callback(rt.found, rt.messages)

    def _fire_timeout(self, qid: int) -> None:
        rt = self.get(qid)
        if rt is None:
            return
        if self._on_timeout is not None:
            self._on_timeout(rt)
        else:
            self.expire(rt)

    # ------------------------------------------------------------------
    def stats(self) -> LifecycleStats:
        return LifecycleStats(self.started, self.completed, self.timeouts)
