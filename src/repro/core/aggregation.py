"""Gossip-based aggregation (reference [23] of the paper).

§III-C notes that the system-wide upper-bound capacity ``cmax`` "can be
statistically aggregated using cached information" via the push-pull gossip
of Jelasity et al.  This module provides the round-based protocol for both
the MAX aggregate (cmax itself) and the MEAN aggregate (the average node
capacity used by the fairness index's expected-time estimate).

Push-pull semantics per round: every node contacts one uniformly random
peer; both replace their estimates with ``op(mine, theirs)``.  MAX
converges exactly in O(log n) rounds w.h.p.; MEAN (pairwise averaging)
converges to the true mean with variance halving per round.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = ["gossip_aggregate", "AggregationResult"]


class AggregationResult:
    """Estimates after gossip plus the message bill."""

    def __init__(
        self, estimates: dict[int, np.ndarray], messages: int, rounds: int
    ):
        self.estimates = estimates
        self.messages = messages
        self.rounds = rounds

    def consensus(self) -> np.ndarray:
        """The (component-wise) median estimate across nodes."""
        stacked = np.stack(list(self.estimates.values()))
        return np.median(stacked, axis=0)

    def max_relative_error(self, truth: np.ndarray) -> float:
        truth = np.asarray(truth, dtype=np.float64)
        worst = 0.0
        for est in self.estimates.values():
            err = float(np.max(np.abs(est - truth) / np.maximum(truth, 1e-12)))
            worst = max(worst, err)
        return worst


def gossip_aggregate(
    values: dict[int, np.ndarray],
    op: Literal["max", "mean"],
    rng: np.random.Generator,
    rounds: int | None = None,
) -> AggregationResult:
    """Run push-pull gossip over ``values`` (node id → local vector).

    ``rounds`` defaults to ``2·⌈log2 n⌉ + 2``, enough for MAX to converge
    exactly and MEAN to be within a few percent.
    """
    if not values:
        raise ValueError("no nodes to aggregate over")
    if op not in ("max", "mean"):
        raise ValueError(f"unknown aggregation op {op!r}")
    ids = sorted(values)
    n = len(ids)
    if rounds is None:
        rounds = 2 * int(np.ceil(np.log2(max(n, 2)))) + 2
    est = {i: np.asarray(values[i], dtype=np.float64).copy() for i in ids}

    messages = 0
    for _ in range(rounds):
        order = rng.permutation(n)
        for idx in order:
            a = ids[int(idx)]
            b = ids[int(rng.integers(n))]
            if a == b:
                continue
            messages += 2  # push + pull
            if op == "max":
                merged = np.maximum(est[a], est[b])
                est[a] = merged.copy()
                est[b] = merged
            else:
                merged = (est[a] + est[b]) / 2.0
                est[a] = merged.copy()
                est[b] = merged
    return AggregationResult(est, messages, rounds)
