"""The services a discovery protocol needs from the simulation harness.

Bundles the simulator, the physical network model, traffic accounting and
host-state lookups behind one object so protocol implementations read like
the paper's pseudo-code: ``ctx.send(...)`` is "send a message", with the
delay model, per-hop charging and dead-destination drops handled here.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.metrics.traffic import TrafficMeter
from repro.sim.delivery import DeliveryCalendar
from repro.sim.engine import Simulator
from repro.sim.network import CONTROL_MSG_BITS, NetworkModel

__all__ = ["ProtocolContext"]


class ProtocolContext:
    """Runtime services shared by every protocol instance.

    Parameters
    ----------
    availability_of:
        ``node_id -> availability vector a_i`` evaluated *now* (§II); the
        runner wires this to the PSM host engine.
    is_alive:
        membership test honoring churn.
    """

    def __init__(
        self,
        sim: Simulator,
        network: NetworkModel,
        traffic: TrafficMeter,
        rng: np.random.Generator,
        cmax: np.ndarray,
        availability_of: Callable[[int], np.ndarray],
        is_alive: Callable[[int], bool],
        alive_mask: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        availability_matrix_of: Optional[
            Callable[[Sequence[int]], np.ndarray]
        ] = None,
        delivery: Optional[DeliveryCalendar] = None,
    ):
        self.sim = sim
        self.network = network
        self.traffic = traffic
        self.rng = rng
        self.cmax = np.asarray(cmax, dtype=np.float64)
        self.availability_of = availability_of
        self.is_alive = is_alive
        self._alive_mask = alive_mask
        self._availability_matrix_of = availability_matrix_of
        #: Optional :class:`DeliveryCalendar`; when set, every message
        #: delivery goes through it (same-instant batching), otherwise
        #: each delivery is its own heap event (the reference path).
        self.delivery = delivery

    def alive_mask(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized membership test over an id array (the diffusion
        engine filters its array-backed NINode pools with it).  Harnesses
        may wire a natively-vectorized ``alive_mask``; the default maps
        :attr:`is_alive` over the ids."""
        if self._alive_mask is not None:
            return np.asarray(self._alive_mask(ids), dtype=bool)
        return np.fromiter(
            (self.is_alive(int(i)) for i in ids), dtype=bool, count=len(ids)
        )

    def availability_matrix(self, node_ids: Sequence[int]) -> np.ndarray:
        """``(k, d)`` availability rows for many nodes in one gather —
        row ``i`` is bitwise-equal to ``availability_of(node_ids[i])``.
        Harnesses may wire a natively-vectorized gather (the runner uses
        :meth:`repro.cloud.engine.HostEngine.availability_matrix`); the
        default stacks the scalar lookups."""
        if len(node_ids) == 0:
            return np.zeros((0, len(self.cmax)))
        if self._availability_matrix_of is not None:
            return np.asarray(self._availability_matrix_of(node_ids), dtype=np.float64)
        return np.stack([self.availability_of(i) for i in node_ids])

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def send(
        self,
        kind: str,
        src: int,
        dst: int,
        handler: Callable[..., None],
        *args,
        size_bits: float = CONTROL_MSG_BITS,
    ) -> None:
        """Deliver ``handler(*args)`` at ``dst`` after the transfer delay.

        One message is charged to ``src``.  If the destination has churned
        out by delivery time the message is silently dropped (the paper's
        crash model; requesters recover via query timeouts).
        """
        self.traffic.charge(kind, src)
        delay = self.network.delay(src, dst, size_bits)
        self._schedule_delivery(delay, dst, handler, args)

    def send_path(
        self,
        kind: str,
        path: Sequence[int],
        handler: Callable[..., None],
        *args,
        size_bits: float = CONTROL_MSG_BITS,
    ) -> None:
        """Deliver at ``path[-1]`` after the summed per-hop delay, charging
        one message to every forwarding node on the path.

        This is the in-process multi-hop shortcut: identical traffic and
        latency accounting to per-hop events, at one event per route.
        """
        if len(path) < 1:
            raise ValueError("empty path")
        for sender in path[:-1]:
            self.traffic.charge(kind, sender)
        delay = self.network.path_delay(list(path), size_bits)
        self._schedule_delivery(delay, path[-1], handler, args)

    def send_path_batch(
        self,
        kind: str,
        paths: Sequence[Sequence[int]],
        handler: Callable[..., None],
        args_list: Sequence[tuple],
        size_bits: float = CONTROL_MSG_BITS,
    ) -> None:
        """:meth:`send_path` for a whole batch of routes in path order —
        identical traffic charges, delays (vectorized but bit-equal, see
        :meth:`NetworkModel.path_delays`) and delivery event ordering to
        the sequential calls.  One delivery event per path."""
        if len(paths) != len(args_list):
            raise ValueError("paths and args_list must align")
        charge = self.traffic.by_node
        total_hops = 0
        for path in paths:
            if len(path) < 1:
                raise ValueError("empty path")
            total_hops += len(path) - 1
            for sender in path[:-1]:
                charge[sender] += 1
        if total_hops:
            # (guarded so an all-single-hop batch does not materialize a
            # zero-count kind the sequential path would never create)
            self.traffic.by_kind[kind] += total_hops
        delays = self.network.path_delays([list(p) for p in paths], size_bits)
        if self.delivery is not None:
            deliver = self.delivery.deliver
            for path, delay, args in zip(paths, delays, args_list):
                deliver(delay, self._deliver, path[-1], handler, args)
        else:
            schedule = self.sim.schedule
            for path, delay, args in zip(paths, delays, args_list):
                schedule(delay, self._deliver, path[-1], handler, args)

    def deliver_after(
        self, delay: float, dst: int, handler: Callable[..., None], *args
    ) -> None:
        """Deliver ``handler(*args)`` at ``dst`` after ``delay`` with the
        shared dead-destination drop semantics, but without charging any
        send-side traffic — for protocols that account hop charges
        themselves (e.g. Mercury's hub forwarding) yet must not bypass
        delivery accounting or coalescing."""
        self._schedule_delivery(delay, dst, handler, args)

    def charge_local(self, kind: str, node_id: int, n: int = 1) -> None:
        """Charge messages without scheduling delivery (in-process bursts
        such as the diffusion tree expansion or a query flood)."""
        self.traffic.charge(kind, node_id, n)

    def _schedule_delivery(
        self, delay: float, dst: int, handler: Callable[..., None], args: tuple
    ) -> None:
        if self.delivery is not None:
            self.delivery.deliver(delay, self._deliver, dst, handler, args)
        else:
            self.sim.schedule(delay, self._deliver, dst, handler, args)

    def _deliver(self, dst: int, handler: Callable[..., None], args: tuple) -> None:
        if not self.is_alive(dst):
            self.traffic.charge("dropped", dst)
            return
        handler(*args)

    # ------------------------------------------------------------------
    # periodic activities
    # ------------------------------------------------------------------
    def start_periodic(
        self,
        period: float,
        tick: Callable[[], None],
        *,
        alive: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Arm a self-chaining periodic ``tick`` with a randomized phase
        drawn uniformly from ``[0, period)`` — the shared form of the
        periodic-start boilerplate every baseline used to duplicate.

        The phase draw happens *at call time* on the ctx RNG stream
        (identical stream position to the inlined pattern it replaces).
        The chain dies when ``alive()`` turns false, so it needs no
        cancellation handle — exactly like the legacy per-node chains.
        """
        def chain() -> None:
            if alive is not None and not alive():
                return
            tick()
            self.sim.schedule(period, chain)

        self.sim.schedule(self.rng.uniform(0, period), chain)

    # ------------------------------------------------------------------
    # coordinate mapping
    # ------------------------------------------------------------------
    def normalize(self, vector: np.ndarray) -> np.ndarray:
        """Map a resource vector into the CAN key space ``[0,1]^d``."""
        return np.clip(np.asarray(vector, dtype=np.float64) / self.cmax, 0.0, 1.0)

    # ------------------------------------------------------------------
    def choice(self, items: Sequence, exclude: Optional[set] = None):
        """Uniform random pick (deterministic under the ctx stream), or
        ``None`` when nothing is eligible."""
        pool = [x for x in items if not exclude or x not in exclude]
        if not pool:
            return None
        return pool[int(self.rng.integers(len(pool)))]
