"""Proactive index diffusion — Algorithms 1 and 2 of the paper (§III-B).

A node whose state cache γ is non-empty periodically diffuses its identifier
*backwards*: an index message ``{ID, dim_NO, dim_TTL}`` travels to randomly
selected negative-index nodes (NINodes — pointer-table entries at distance
2^k, k ≥ 1, in the negative direction).  Receivers append the identifier to
their PIList and relay:

- along the same dimension while the dimension TTL ``q`` lasts, and
- a fresh chain with TTL ``L`` along the next dimension.

Two variants (Fig. 3):

``hid``  *Hopping* Index Diffusion — each relay re-selects the next NINode
         from **its own** pointer table, so distances compound
         (2^a + 2^b + ...) and coverage reaches deep into the negative
         region; Theorem 1 bounds the relay delay by O(log2 n).
``sid``  *Spreading* Index Diffusion — each dimension chain's recipients
         are all chosen by the **chain initiator** from its own table, so
         coverage stays on the initiator's axis tracks (fewer relay hops,
         narrower spread).

Both send exactly ``ω = L + L² + ... + L^d`` messages per trigger when every
hop finds a live NINode (fewer at the space edge).

The tree expansion runs in-process: relays complete within a few network
delays (≪ the diffusion period), so recipients' PILists are updated
immediately while every relay message is charged to its sender.  The
returned :class:`DiffusionResult` records the relay depth for the delay
analysis of Theorem 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.can.inscan import IndexPointerTable
from repro.core.context import ProtocolContext
from repro.core.pilist import PIList

__all__ = [
    "DiffusionEngine",
    "DiffusionResult",
    "diffusion_message_count",
    "binary_hop_decomposition",
    "line_diffusion_rounds",
]


def diffusion_message_count(L: int, d: int) -> int:
    """ω = L·(L^d − 1)/(L − 1) — total index messages per trigger (§III-B).

    The paper's worked example: L=2, d=3 → 14.
    """
    if L < 1 or d < 1:
        raise ValueError("L and d must be >= 1")
    if L == 1:
        return d
    return L * (L**d - 1) // (L - 1)


def binary_hop_decomposition(distance: int) -> list[int]:
    """Decompose a hop distance into powers of two (Theorem 1's proof
    device): the relay chain covers distance λ in h = popcount(λ) hops,
    with h ≤ ⌊log2 λ⌋ + 1.

    >>> binary_hop_decomposition(13)
    [8, 4, 1]
    """
    if distance < 1:
        raise ValueError("distance must be >= 1")
    return [1 << k for k in range(distance.bit_length() - 1, -1, -1) if distance >> k & 1]


def line_diffusion_rounds(r: int) -> list[int]:
    """Relay rounds at which each node of a line of ``r`` nodes receives the
    topmost node's index when every node links 2^k backwards (Fig. 2).

    Node ``i`` (0-based from the top) is reached after ``popcount(i)``
    relay hops; the maximum over the line is ≤ ⌈log2 r⌉, which is the
    claim of Theorem 1 restricted to one dimension.
    """
    if r < 1:
        raise ValueError("r must be >= 1")
    return [int(i).bit_count() for i in range(r)]


@dataclass
class DiffusionResult:
    """Outcome of one diffusion trigger."""

    origin: int
    messages: int = 0
    max_depth: int = 0
    recipients: set[int] = field(default_factory=set)


class DiffusionEngine:
    """Executes SID/HID triggers against the live pointer tables/PILists."""

    def __init__(
        self,
        ctx: ProtocolContext,
        tables: dict[int, IndexPointerTable],
        pilists: dict[int, PIList],
        dims: int,
        L: int = 2,
        kind: str = "index-diffusion",
    ):
        if L < 1:
            raise ValueError("L must be >= 1")
        self.ctx = ctx
        self.tables = tables
        self.pilists = pilists
        self.dims = dims
        self.L = L
        self.kind = kind

    # ------------------------------------------------------------------
    def diffuse(self, origin: int, method: str) -> DiffusionResult:
        """Run one Algorithm-1 trigger for ``origin``; returns statistics."""
        result = DiffusionResult(origin)
        if method == "hid":
            # Algorithm 1: one message {ID, dim 1, L} to a random NINode.
            # Nodes at the negative edge of dimension 1 have no NINode
            # there (the space is not a torus); the chain starts at the
            # first dimension that has one, otherwise dims 2..d would
            # never be reached and low-corner record holders — exactly
            # where availability records concentrate — could not diffuse.
            for dim in range(self.dims):
                target = self._pick_ninode(origin, dim, exclude=origin)
                if target is not None:
                    self._send(origin, target, result)
                    self._hid_receive(target, origin, dim, self.L, result, depth=1)
                    break
        elif method == "sid":
            self._sid_chain(origin, origin, 0, result, depth=1)
        else:
            raise ValueError(f"unknown diffusion method {method!r}")
        return result

    def diffuse_round(self, origins: Sequence[int], method: str) -> list[DiffusionResult]:
        """Run one trigger per origin, in order, as one cohort round.

        Deliberately a sequential loop: each trigger is a recursive relay
        chain whose NINode picks depend on the RNG state left by the
        previous chain, so the triggers cannot be fused without changing
        draws.  The round's win is upstream — one heap pop wakes the whole
        cohort instead of one event per origin — while the per-origin
        results stay bit-identical to per-node ticking.
        """
        return [self.diffuse(origin, method) for origin in origins]

    # ------------------------------------------------------------------
    # hot-partition replica diffusion (docs/caching.md)
    # ------------------------------------------------------------------
    def replicate(
        self,
        origin: int,
        caches: dict,
        neighbors: Sequence[int] = (),
        sources: int = 4,
        kind: str = "index-replica",
    ) -> int:
        """One hot-partition replica round for duty node ``origin``.

        Triggered when a duty node's windowed service count crosses the
        replication threshold (docs/caching.md); two legs, both riding
        the pools the index diffusion already maintains:

        1. **Gather** — ``origin`` samples up to ``sources`` index nodes
           from its own PIList (the pool Algorithm 1's backward diffusion
           filled with exactly the record holders its query chains would
           jump to) and each ships its γ partition back as one replica
           batch (request + response, two messages), reconciled via
           :meth:`repro.core.state.StateCache.merge`.  This is what
           collapses the hot node's index-agent/jump chains: the duty
           cache can now satisfy δ locally.
        2. **Push** — ``origin`` forwards its enriched partition to the
           adjacent zones (``neighbors``), which serve the jittered tail
           of the hot range, one replica message each.

        Returns the number of replica messages charged.  Merged records
        keep their original report timestamps, so replication never
        extends a record's lifetime — staleness stays TTL-bounded and
        shows up as best-fit regret, not as immortal state.  Consumes RNG
        from the shared protocol stream; replication only ever runs
        cache-on, so the cache-off stream stays untouched.
        """
        cache = caches.get(origin)
        if cache is None:
            return 0
        now = self.ctx.sim.now
        sent = 0
        pilist = self.pilists.get(origin)
        if pilist is not None:
            for src in pilist.sample(sources, now, self.ctx.rng):
                peer = caches.get(src)
                if peer is None or src == origin:
                    continue
                batch = peer.records(now)
                if not batch:
                    continue
                self.ctx.charge_local(kind, origin)  # the pull request
                self.ctx.charge_local(kind, src)  # the replica batch
                cache.merge(batch)
                sent += 2
        records = cache.records(now)
        if records:
            for target in neighbors:
                peer = caches.get(target)
                if peer is None or target == origin:
                    continue
                self.ctx.charge_local(kind, origin)
                peer.merge(records)
                sent += 1
        return sent

    # ------------------------------------------------------------------
    # HID: Algorithm 2 — every relay re-selects from its own table
    # ------------------------------------------------------------------
    def _hid_receive(
        self,
        node: int,
        origin: int,
        dim: int,
        q: int,
        result: DiffusionResult,
        depth: int,
    ) -> None:
        self._store(node, origin, result, depth)
        # Line 1-4: continue the chain along the same dimension; a relay
        # sitting at the space edge of that dimension reassigns the
        # residual TTL to the next dimension that has an NINode, so the
        # message budget ω is spent instead of silently discarded.
        if q - 1 > 0:
            nxt_dim, nxt = self._first_available(node, dim, exclude=origin)
            if nxt is not None:
                self._send(node, nxt, result)
                self._hid_receive(nxt, origin, nxt_dim, q - 1, result, depth + 1)
        # Line 5-9: open the next dimension with a fresh TTL (again
        # skipping over edge dimensions).
        nxt_dim, nxt = self._first_available(node, dim + 1, exclude=origin)
        if nxt is not None:
            self._send(node, nxt, result)
            self._hid_receive(nxt, origin, nxt_dim, self.L, result, depth + 1)

    def _first_available(
        self, node: int, start_dim: int, exclude: int
    ) -> tuple[int, int | None]:
        """First dimension ≥ ``start_dim`` with a live NINode, plus one
        random pick from it."""
        for dim in range(start_dim, self.dims):
            pick = self._pick_ninode(node, dim, exclude)
            if pick is not None:
                return dim, pick
        return self.dims, None

    # ------------------------------------------------------------------
    # SID: the chain initiator picks every recipient from its own table
    # ------------------------------------------------------------------
    def _sid_chain(
        self,
        initiator: int,
        origin: int,
        dim: int,
        result: DiffusionResult,
        depth: int,
    ) -> None:
        # Like HID, skip over dimensions where the initiator sits at the
        # space edge, otherwise the remaining dimensions are lost.
        targets: list[int] = []
        while dim < self.dims:
            targets = self._pick_ninodes(initiator, dim, self.L, exclude=origin)
            if targets:
                break
            dim += 1
        for target in targets:
            self._send(initiator, target, result)
            self._store(target, origin, result, depth)
            if dim + 1 < self.dims:
                self._sid_chain(target, origin, dim + 1, result, depth + 1)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------
    def _store(self, node: int, origin: int, result: DiffusionResult, depth: int) -> None:
        pilist = self.pilists.get(node)
        if pilist is not None and node != origin:
            pilist.add(origin, self.ctx.sim.now)
        result.recipients.add(node)
        result.max_depth = max(result.max_depth, depth)

    def _send(self, src: int, dst: int, result: DiffusionResult) -> None:
        self.ctx.charge_local(self.kind, src)
        result.messages += 1

    def _pick_ninode(self, node: int, dim: int, exclude: int) -> int | None:
        """One random negative-index node of ``node`` along ``dim``."""
        picks = self._pick_ninodes(node, dim, 1, exclude)
        return picks[0] if picks else None

    #: Below this pool size the scalar filter wins: numpy dispatch costs
    #: more than looping a handful of ints (NINode chains hold at most
    #: ``max_pointer_exponent + 1`` ≈ 3-5 entries at realistic n; the
    #: vectorized branch exists for deep tables at extreme scale).
    _VECTOR_POOL_MIN = 16

    def _pick_ninodes(self, node: int, dim: int, k: int, exclude: int) -> list[int]:
        """Up to ``k`` distinct random NINodes of ``node`` along ``dim``,
        drawn from the table's array-backed pointer pool.  Small pools
        (the common case) filter exclusion/liveness over the cached tuple
        mirror; large pools use one vectorized mask.  Both branches keep
        chain order and draw-for-draw RNG compatibility with the scalar
        reference (:class:`repro.testing.ReferenceDiffusionEngine`)."""
        table = self.tables.get(node)
        if table is None:
            return []
        members = table.negative_pool_tuple(dim)
        if not members:
            return []
        if len(members) < self._VECTOR_POOL_MIN:
            is_alive = self.ctx.is_alive
            pool = [
                t for t in members
                if t != exclude and t != node and is_alive(t)
            ]
            if not pool:
                return []
            if len(pool) <= k:
                return pool
            idx = self.ctx.rng.choice(len(pool), size=k, replace=False)
            return [pool[i] for i in idx]
        arr = table.negative_pool(dim)
        mask = (arr != exclude) & (arr != node)
        if mask.any():
            mask &= self.ctx.alive_mask(arr)
        arr = arr[mask]
        if arr.size == 0:
            return []
        if arr.size <= k:
            return arr.tolist()
        idx = self.ctx.rng.choice(arr.size, size=k, replace=False)
        return arr[idx].tolist()
