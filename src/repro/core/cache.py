"""Hot-range path caching (docs/caching.md).

Under Zipf-skewed demand most queries route to a small set of duty nodes —
the ones whose zones enclose the popular resource ranges.  Re-walking the
full INSCAN greedy route for every such query is pure protocol overhead,
so nodes remember ``(duty node, zone box)`` pairs learned from completed
routes and short-circuit later queries whose expectation point falls
inside a cached box.

Two classes implement the mechanism:

:class:`RangeCache`
    One node's expiring, capped entry store.  The TTL policy is *exactly*
    the PIList of §III-B (extracted here as the reference policy — PIList
    is now a ``dims=0`` subclass); LRU, LFU and an adaptive
    recency+frequency policy (utility-based eviction in the spirit of
    learning-based cache management, arXiv:1902.00795) generalize it.
    Storage is structure-of-arrays per the StateCache/ZoneStore
    discipline: keys, stamps and hit counters live in parallel arrays
    with an optional ``(capacity, d)`` lo/hi bounds pair, eviction and
    expiry flip a liveness bit, compaction is lazy, and the
    box-containment lookup is a single vectorized comparison.

:class:`PathCacheIndex`
    The per-node cache registry plus the shared hit/miss/staleness
    counters and the sliding-window heat tracker that drives hot-partition
    replica diffusion (``DiffusionEngine.replicate``).

Entries expire ``ttl`` after they were stored (not after their last hit):
a cached duty's zone can drift under churn regardless of how often the
entry is used, so staleness — measured as best-fit regret against the
ground-truth owner — stays TTL-bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["RangeCache", "CacheStats", "PathCacheIndex", "CACHE_POLICIES"]

#: Pluggable eviction policies (docs/caching.md):
#: ``ttl``       evict the stalest insertion (the PIList seed semantics);
#: ``lru``       evict the least recently *used* (hits refresh recency);
#: ``lfu``       evict the least frequently used (recency breaks ties);
#: ``adaptive``  evict the lowest utility = (1 + hits) · exp(-age/τ),
#:               τ = ttl/2 — frequency discounted by recency.
CACHE_POLICIES = ("ttl", "lru", "lfu", "adaptive")

#: Initial row capacity of the SoA arrays.
_MIN_CAPACITY = 8

#: Compact once dead rows outnumber both this floor and the live rows.
_COMPACT_FLOOR = 32


class RangeCache:
    """Expiring, capped SoA store of duty-node index entries.

    With ``dims == 0`` the cache is a pure keyed set — behaviourally the
    original PIList for ``policy="ttl"`` (same eviction order, same purge
    boundary, same ``sample`` RNG consumption).  With ``dims > 0`` every
    entry carries a ``[lo, hi)`` resource-range box and :meth:`lookup`
    answers vectorized box-containment queries.
    """

    __slots__ = (
        "ttl", "max_size", "policy", "dims", "_tau", "_row", "_keys",
        "_added", "_last", "_hits", "_live", "_lo", "_hi", "_n", "_dead",
        "_clock",
    )

    def __init__(
        self, ttl: float, max_size: int = 64, policy: str = "ttl", dims: int = 0
    ):
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"policy must be one of {CACHE_POLICIES}, got {policy!r}"
            )
        if max_size < 1:
            raise ValueError("max_size must be >= 1")
        self.ttl = float(ttl)
        self.max_size = int(max_size)
        self.policy = policy
        self.dims = int(dims)
        #: Recency decay constant of the adaptive utility.
        self._tau = self.ttl / 2.0
        self._row: dict[int, int] = {}  # key -> row index
        self._keys = np.empty(0, dtype=np.int64)
        self._added = np.empty(0, dtype=np.float64)
        self._last = np.empty(0, dtype=np.float64)
        self._hits = np.empty(0, dtype=np.int64)
        self._live = np.empty(0, dtype=bool)
        self._lo: Optional[np.ndarray] = None
        self._hi: Optional[np.ndarray] = None
        self._n = 0  # rows in use (live + dead holes)
        self._dead = 0  # dead holes among the first _n rows
        #: Latest simulation time observed; ``__len__`` and
        #: ``__contains__`` expire against it so they agree with the most
        #: recent ``entries()``/``sample()`` view (sim time is monotonic).
        self._clock = 0.0

    # ------------------------------------------------------------------
    # storage management
    # ------------------------------------------------------------------
    def _observe(self, now: float) -> None:
        if now > self._clock:
            self._clock = now

    def _grow(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self._n)
        keys = np.empty(capacity, dtype=np.int64)
        added = np.empty(capacity, dtype=np.float64)
        last = np.empty(capacity, dtype=np.float64)
        hits = np.zeros(capacity, dtype=np.int64)
        live = np.zeros(capacity, dtype=bool)
        if self._n:
            keys[: self._n] = self._keys[: self._n]
            added[: self._n] = self._added[: self._n]
            last[: self._n] = self._last[: self._n]
            hits[: self._n] = self._hits[: self._n]
            live[: self._n] = self._live[: self._n]
        self._keys, self._added, self._last = keys, added, last
        self._hits, self._live = hits, live
        if self.dims:
            lo = np.empty((capacity, self.dims), dtype=np.float64)
            hi = np.empty((capacity, self.dims), dtype=np.float64)
            if self._n:
                lo[: self._n] = self._lo[: self._n]
                hi[: self._n] = self._hi[: self._n]
            self._lo, self._hi = lo, hi

    def _compact(self) -> None:
        """Squeeze out dead rows, preserving insertion order."""
        keep = np.flatnonzero(self._live[: self._n])
        m = int(keep.size)
        if m:
            self._keys[:m] = self._keys[keep]
            self._added[:m] = self._added[keep]
            self._last[:m] = self._last[keep]
            self._hits[:m] = self._hits[keep]
            if self.dims:
                self._lo[:m] = self._lo[keep]
                self._hi[:m] = self._hi[keep]
        self._live[:m] = True
        self._live[m : self._n] = False
        self._row = {int(self._keys[row]): row for row in range(m)}
        self._n = m
        self._dead = 0

    def _maybe_compact(self) -> None:
        if self._dead > _COMPACT_FLOOR and self._dead > self._n - self._dead:
            self._compact()

    def _kill_row(self, row: int) -> None:
        self._live[row] = False
        self._dead += 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(
        self,
        key: int,
        now: float,
        lo: Optional[np.ndarray] = None,
        hi: Optional[np.ndarray] = None,
    ) -> None:
        """Insert or refresh an entry; evict per policy when over capacity.

        A refresh renews the insertion stamp and (when given) the bounds
        but keeps the hit history — re-learning a route confirms the
        entry, it does not make it a stranger.
        """
        self._observe(now)
        row = self._row.get(key)
        if row is None:
            if self._n >= self._keys.shape[0]:
                self._grow()
            row = self._n
            self._keys[row] = key
            self._hits[row] = 0
            self._live[row] = True
            self._row[key] = row
            self._n += 1
        self._added[row] = now
        self._last[row] = now
        if self.dims and lo is not None:
            self._lo[row] = lo
            self._hi[row] = hi
        if len(self._row) > self.max_size:
            self._evict(now)

    def _evict(self, now: float) -> None:
        """Drop the policy's worst live entry (see :data:`CACHE_POLICIES`).

        Stale-but-unpurged entries compete like live ones — the seed
        PIList evicts by raw insertion stamp without purging first, and
        the other policies keep that discipline.  Ties fall to the
        smallest key, matching ``min()`` over ``(score, key)`` pairs.
        """
        n = self._n
        live = self._live[:n]
        if self.policy == "ttl":
            order = (self._added[:n],)
        elif self.policy == "lru":
            order = (self._last[:n],)
        elif self.policy == "lfu":
            order = (self._hits[:n], self._last[:n])
        else:  # adaptive
            utility = (1.0 + self._hits[:n]) * np.exp(
                -(now - self._last[:n]) / self._tau
            )
            order = (utility,)
        rows = np.flatnonzero(live)
        for score in (*order, self._keys[:n]):
            vals = score[rows]
            rows = rows[vals == vals.min()]
            if rows.size == 1:
                break
        victim = int(rows[0])
        del self._row[int(self._keys[victim])]
        self._kill_row(victim)
        self._maybe_compact()

    def discard(self, key: int) -> None:
        row = self._row.pop(key, None)
        if row is not None:
            self._kill_row(row)
            self._maybe_compact()

    def purge(self, now: float) -> None:
        """Drop entries stored strictly longer than ``ttl`` ago."""
        self._observe(now)
        if not self._row:
            return
        cutoff = now - self.ttl
        n = self._n
        stale = self._live[:n] & (self._added[:n] < cutoff)
        if stale.any():
            for row in np.flatnonzero(stale).tolist():
                del self._row[int(self._keys[row])]
                self._kill_row(row)
            self._maybe_compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def entries(self, now: float) -> list[int]:
        self.purge(now)
        return sorted(self._row)

    def sample(self, k: int, now: float, rng: np.random.Generator) -> list[int]:
        """Up to ``k`` distinct keys, uniformly at random (Algorithm 4
        line 1) — draw-for-draw identical to the seed PIList."""
        pool = self.entries(now)
        if len(pool) <= k:
            return pool
        picked = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in picked]

    def lookup(self, point: np.ndarray, now: float) -> Optional[int]:
        """The cached duty whose range box contains ``point``, or None.

        One vectorized containment pass over the live boxes (half-open
        per zone convention, closed at the top face of the unit cube).
        Among multiple matches the freshest insertion wins (largest key
        breaks exact-stamp ties).  A hit bumps the entry's frequency and
        recency — the signal LRU/LFU/adaptive eviction ranks by.
        """
        if not self.dims:
            raise ValueError("lookup requires a dims > 0 cache")
        self.purge(now)
        if not self._row:
            return None
        n = self._n
        point = np.asarray(point, dtype=np.float64)
        inside = (
            (self._lo[:n] <= point)
            & ((point < self._hi[:n]) | (self._hi[:n] >= 1.0))
        ).all(axis=1)
        rows = np.flatnonzero(inside & self._live[:n])
        if rows.size == 0:
            return None
        stamps = self._added[rows]
        rows = rows[stamps == stamps.max()]
        row = int(rows[np.argmax(self._keys[rows])]) if rows.size > 1 else int(rows[0])
        self._hits[row] += 1
        self._last[row] = now
        return int(self._keys[row])

    def __len__(self) -> int:
        """Live entry count as of the latest observed time (stale entries
        are not reported, matching ``entries()``/``sample()``)."""
        self.purge(self._clock)
        return len(self._row)

    def __contains__(self, key: int) -> bool:
        row = self._row.get(key)
        return row is not None and self._added[row] >= self._clock - self.ttl


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`PathCacheIndex` (docs/caching.md).

    ``lookups`` counts requester-side consults (one per cache-on query
    submission); a consult ends as a ``hit`` or a ``miss``; missed
    queries may still truncate mid-route (``relay_hits``).  ``stale_hits``
    counts served lookups whose cached duty disagreed with the
    ground-truth owner of the query point — the best-fit regret
    numerator.  ``replications`` / ``replica_messages`` count
    hot-partition replica rounds and the index-replica sends they cost.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stale_hits: int = 0
    relay_hits: int = 0
    replications: int = 0
    replica_messages: int = 0


class PathCacheIndex:
    """Per-node :class:`RangeCache` registry + heat tracking.

    The protocol registers caches through ``add_node``/``drop_node``
    alongside the node's other discovery state; the query engine consults
    and populates them; the diffusion layer asks :meth:`take_hot` whether
    a duty node's service rate crossed the replication threshold.

    Heat is a two-bucket sliding window per duty node: counts accumulate
    into the current ``window``-wide bucket and the previous bucket ages
    out wholesale, so the tracked rate spans between one and two windows
    at O(1) state per node.
    """

    def __init__(
        self,
        policy: str,
        size: int = 128,
        ttl: float = 1200.0,
        dims: int = 5,
        replication_threshold: int = 8,
        replication_window: float = 400.0,
    ):
        if dims < 1:
            raise ValueError("dims must be >= 1")
        if replication_threshold < 1:
            raise ValueError("replication_threshold must be >= 1")
        if replication_window <= 0:
            raise ValueError("replication_window must be positive")
        self.policy = policy
        self.size = int(size)
        self.ttl = float(ttl)
        self.dims = int(dims)
        self.replication_threshold = int(replication_threshold)
        self.replication_window = float(replication_window)
        self.stats = CacheStats()
        self._caches: dict[int, RangeCache] = {}
        #: duty node -> [window start, previous count, current count]
        self._heat: dict[int, list[float]] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, node_id: int) -> None:
        self._caches[node_id] = RangeCache(
            self.ttl, self.size, policy=self.policy, dims=self.dims
        )

    def drop_node(self, node_id: int) -> None:
        self._caches.pop(node_id, None)
        self._heat.pop(node_id, None)

    def cache_of(self, node_id: int) -> Optional[RangeCache]:
        return self._caches.get(node_id)

    def __len__(self) -> int:
        return len(self._caches)

    # ------------------------------------------------------------------
    # query-path interface
    # ------------------------------------------------------------------
    def lookup(self, node_id: int, point: np.ndarray, now: float) -> Optional[int]:
        cache = self._caches.get(node_id)
        if cache is None:
            return None
        return cache.lookup(point, now)

    def store(
        self, node_id: int, duty: int, lo: np.ndarray, hi: np.ndarray, now: float
    ) -> None:
        """Remember that ``duty`` owns the box ``[lo, hi)``; a node never
        caches itself (its own zone is authoritative)."""
        cache = self._caches.get(node_id)
        if cache is not None and node_id != duty:
            cache.add(duty, now, lo=lo, hi=hi)

    def invalidate(self, node_id: int, duty: int) -> None:
        """Lazy invalidation: the consulting node observed ``duty`` dead."""
        cache = self._caches.get(node_id)
        if cache is not None:
            cache.discard(duty)

    # ------------------------------------------------------------------
    # heat tracking (replica-diffusion trigger)
    # ------------------------------------------------------------------
    def _roll(self, heat: list[float], now: float) -> None:
        elapsed = now - heat[0]
        if elapsed < self.replication_window:
            return
        windows = int(elapsed // self.replication_window)
        heat[0] += windows * self.replication_window
        heat[1] = heat[2] if windows == 1 else 0.0
        heat[2] = 0.0

    def record_service(self, node_id: int, now: float) -> None:
        """A duty-query chain was serviced at ``node_id``."""
        heat = self._heat.get(node_id)
        if heat is None:
            self._heat[node_id] = [now, 0.0, 1.0]
            return
        self._roll(heat, now)
        heat[2] += 1.0

    def take_hot(self, node_id: int, now: float) -> bool:
        """True when the node's windowed service count crossed the
        threshold; consumes the accumulated heat so one hot burst triggers
        exactly one replication round."""
        heat = self._heat.get(node_id)
        if heat is None:
            return False
        self._roll(heat, now)
        if heat[1] + heat[2] >= self.replication_threshold:
            heat[1] = 0.0
            heat[2] = 0.0
            return True
        return False
