"""Requester-side record selection — the "best-fit" of the paper's title.

A query returns up to δ qualified records; the requester picks one node to
host the task.  *Best-fit* minimizes the normalized slack between the
recorded availability and the demand, i.e. it picks the tightest qualifying
node and leaves large-capacity nodes free for large requests — the packing
rationale behind maximizing "best-fit resource shares" (§I).  First-fit,
worst-fit and random policies are provided for the ablation benches.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.state import StateRecord

__all__ = ["select_record", "SELECTION_POLICIES", "normalized_slack"]


def normalized_slack(
    record: StateRecord, demand: np.ndarray, cmax: np.ndarray
) -> float:
    """Mean per-dimension slack ``(a_k − e_k)/cmax_k``; ≥ 0 for qualified
    records, smaller = tighter fit."""
    return float(np.mean((record.availability - demand) / cmax))


def _best_fit(records, demand, cmax, rng):
    return min(
        records, key=lambda r: (normalized_slack(r, demand, cmax), r.owner)
    )


def _worst_fit(records, demand, cmax, rng):
    return max(
        records, key=lambda r: (normalized_slack(r, demand, cmax), -r.owner)
    )


def _first_fit(records, demand, cmax, rng):
    # Records accumulate in discovery order; first found = first fit.
    return records[0]


def _random_fit(records, demand, cmax, rng):
    return records[int(rng.integers(len(records)))]


SELECTION_POLICIES = {
    "best-fit": _best_fit,
    "worst-fit": _worst_fit,
    "first-fit": _first_fit,
    "random": _random_fit,
}


def select_record(
    records: Sequence[StateRecord],
    demand: np.ndarray,
    cmax: np.ndarray,
    rng: np.random.Generator,
    policy: str = "best-fit",
) -> Optional[StateRecord]:
    """Pick the record to place the task on, or ``None`` if none is given.

    Duplicate owners are collapsed to their freshest record before the
    policy is applied (an owner can be reported by several index nodes).
    """
    if not records:
        return None
    freshest: dict[int, StateRecord] = {}
    for rec in records:
        old = freshest.get(rec.owner)
        if old is None or old.timestamp < rec.timestamp:
            freshest[rec.owner] = rec
    unique = sorted(freshest.values(), key=lambda r: r.owner)
    try:
        chooser = SELECTION_POLICIES[policy]
    except KeyError:
        raise ValueError(
            f"unknown selection policy {policy!r}; "
            f"expected one of {sorted(SELECTION_POLICIES)}"
        ) from None
    if policy == "first-fit":
        # preserve discovery order, not owner order
        order = []
        seen: set[int] = set()
        for rec in records:
            if rec.owner not in seen:
                seen.add(rec.owner)
                order.append(freshest[rec.owner])
        unique = order
    return chooser(unique, np.asarray(demand), np.asarray(cmax), rng)
