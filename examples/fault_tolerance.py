#!/usr/bin/env python
"""Checkpoint/restart fault tolerance — the paper's §VI future work.

The ICPP'11 paper closes with: "we plan to study the PSM based execution
fault-tolerance issues using check-pointing technologies on top of the
HID-CAN protocol."  This example runs that study: under *killing* churn
(crashed hosts take their resident tasks down), it compares

1. no fault tolerance — killed tasks are simply lost;
2. checkpoint/restart — tasks snapshot their remaining work to their
   origin every checkpoint period; killed tasks roll back to the last
   snapshot and re-run the HID-CAN discovery query for a new host.

Run:  python examples/fault_tolerance.py
"""

from repro import ExperimentConfig, SOCSimulation


def run(checkpoint: bool, period: float = 600.0):
    config = ExperimentConfig(
        n_nodes=120,
        duration=7200.0,
        demand_ratio=0.4,
        seed=42,
        protocol="hid-can",
        churn_degree=0.5,          # half the population replaced per 3000 s
        churn_kills_tasks=True,    # crashes take resident tasks down
        checkpoint_enabled=checkpoint,
        checkpoint_period=period,
    )
    return SOCSimulation(config).run()


def main() -> None:
    plain = run(checkpoint=False)
    ckpt = run(checkpoint=True)

    print(f"{'':24s} {'no checkpoints':>15s} {'checkpoint/restart':>19s}")
    rows = [
        ("tasks generated", plain.generated, ckpt.generated),
        ("tasks finished", plain.finished, ckpt.finished),
        ("tasks evicted (killed)", plain.evicted, ckpt.evicted),
        ("tasks recovered", plain.recovered, ckpt.recovered),
        ("T-Ratio", f"{plain.t_ratio:.3f}", f"{ckpt.t_ratio:.3f}"),
        ("checkpoint messages", 0, ckpt.traffic_by_kind.get("checkpoint", 0)),
    ]
    for label, a, b in rows:
        print(f"{label:24s} {a!s:>15s} {b!s:>19s}")

    saved = ckpt.finished - plain.finished
    print(
        f"\ncheckpointing recovered {ckpt.recovered} task executions and "
        f"finished {saved:+d} more tasks,\npaying "
        f"{ckpt.traffic_by_kind.get('checkpoint', 0)} checkpoint transfers "
        f"(one per running task per {600:.0f} s)."
    )


if __name__ == "__main__":
    main()
