#!/usr/bin/env python
"""Protocol comparison across demand regimes (condensed Figs. 4-7).

Runs PID-CAN variants and the baselines at three demand ratios and prints
an end-of-run summary per regime.  The paper's qualitative story should be
visible directly:

- wide demands (λ=1): HID/SID-CAN beat Newscast on throughput AND failures;
- narrow demands (λ=0.25): Newscast's raw throughput catches up (the
  Fig. 4(b) crossover) but its failed-task ratio stays far worse.

Run:  python examples/protocol_comparison.py [--scale small]
"""

import argparse

from repro import run_protocol
from repro.experiments.reporting import summary_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    protocols = ["hid-can", "sid-can", "hid-can+sos", "newscast", "khdn-can"]
    for demand_ratio in (1.0, 0.5, 0.25):
        results = {
            p: run_protocol(
                p, scale=args.scale, demand_ratio=demand_ratio, seed=args.seed
            )
            for p in protocols
        }
        print()
        print(summary_table(results, title=f"=== demand ratio λ={demand_ratio} ==="))

    print(
        "\nReading guide: T-Ratio = finished/generated, F-Ratio = failed/"
        "generated.\nAt λ=1 the diffusion protocols find the scarce qualified "
        "nodes that Newscast's\nrandom views miss; at λ=0.25 Newscast "
        "disperses better (higher T-Ratio) but\nstill fails many times more "
        "tasks than HID-CAN."
    )


if __name__ == "__main__":
    main()
