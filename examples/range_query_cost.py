#!/usr/bin/env python
"""Why single-message queries? INSCAN-RQ flooding vs PID-CAN (§III-A).

The flooding range query returns *complete* results with delay ≤ 2·log2 n,
but its traffic is log2(n) + N − 1 where N is every node responsible for
part of the query box — §I's example: a query for CPU ≥ half the space
makes about half the network respond.  PID-CAN's randomized single-message
chain keeps per-query traffic flat regardless of range width, trading
completeness for the first-δ matches.

Run:  python examples/range_query_cost.py
"""

import numpy as np

from repro.baselines.inscan_rq import INSCANRangeQuery
from repro.core.query import QueryEngine, QueryParams
from repro.testing import ProtocolSandbox as Harness


def main() -> None:
    # long TTLs: this synthetic comparison plants records once up front
    # and queries several times, so nothing should age out in between
    h = Harness(n=256, dims=2, seed=3, state_ttl=1e9, pilist_ttl=1e9)
    rng = np.random.default_rng(4)

    # one availability record per node, stored at its duty node
    for owner in h.overlay.node_ids():
        avail = rng.uniform(0, 1, 2)
        h.plant_record(h.duty_of(avail), 1000 + owner, avail)
    # PILists populated as the protocol's diffusion would
    from repro.core.diffusion import DiffusionEngine

    engine = DiffusionEngine(h.ctx, h.tables, h.pilists, dims=2, L=2)
    for node, cache in h.caches.items():
        if cache.non_empty(0.0):
            for _ in range(3):
                engine.diffuse(node, "hid")

    flood = INSCANRangeQuery(h.overlay, h.tables, h.caches)
    qe = QueryEngine(h.ctx, h.overlay, h.tables, h.caches, h.pilists, QueryParams())

    print(f"{'corner':>7s} {'flood msgs':>11s} {'flood found':>12s} "
          f"{'PID msgs':>9s} {'PID found':>10s}")
    for corner in (0.8, 0.6, 0.4, 0.2):
        demand = np.array([corner, corner])
        flood_res = flood.query(0, demand, demand, now=0.0)

        out = {}
        qe.submit(demand, 0, lambda r, m: out.update(r=r, m=m))
        h.sim.run(until=h.sim.now + 300.0)
        print(
            f"{corner:7.1f} {flood_res.messages:11d} "
            f"{len(flood_res.records):12d} {out['m']:9d} "
            f"{len({rec.owner for rec in out['r']}):10d}"
        )

    print(
        "\nFlood traffic explodes as the query box widens (N−1 edges), "
        "while the\nsingle-message chain stays bounded by δ and the agent/"
        "jump-list sizes —\nfinding its first-k matches rather than all of "
        "them."
    )


if __name__ == "__main__":
    main()
