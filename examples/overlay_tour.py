#!/usr/bin/env python
"""A guided tour of the INSCAN overlay mechanics (§III-A/B).

Builds a 2-D CAN the way Fig. 1 draws it, then demonstrates each moving
part in isolation:

1. zone partitioning (random joins → skewed zones),
2. greedy CAN routing vs INSCAN's 2^k index pointers,
3. backward index diffusion (HID vs SID coverage),
4. a full three-phase range query against planted availability records.

Run:  python examples/overlay_tour.py
"""

import numpy as np

from repro.can.inscan import build_index_table, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import greedy_path
from repro.core.diffusion import DiffusionEngine, diffusion_message_count
from repro.core.query import QueryEngine, QueryParams
from repro.testing import ProtocolSandbox as Harness


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    rng = np.random.default_rng(7)

    section("1. zone partitioning")
    overlay = CANOverlay(dims=2, rng=rng)
    overlay.bootstrap(range(64))
    volumes = sorted(n.zone.volume for n in overlay.nodes.values())
    print(f"64 nodes partition the unit square into zones with volumes")
    print(f"min={volumes[0]:.4f} median={volumes[32]:.4f} max={volumes[-1]:.4f}")
    print("(random joins skew zone sizes — where records concentrate, §I)")

    section("2. routing: CAN vs INSCAN")
    tables = {i: build_index_table(overlay, i, rng) for i in overlay.node_ids()}
    plain, indexed = [], []
    for _ in range(300):
        start = int(rng.integers(64))
        p = rng.uniform(0, 1, 2)
        plain.append(len(greedy_path(overlay, start, p)) - 1)
        indexed.append(len(inscan_path(overlay, tables, start, p)) - 1)
    print(f"mean hops, greedy CAN    : {np.mean(plain):.2f}  (O(n^(1/d)))")
    print(f"mean hops, INSCAN links  : {np.mean(indexed):.2f}  (O(log2 n))")

    section("3. proactive index diffusion")
    h = Harness(n=256, dims=2, seed=11)
    engine = DiffusionEngine(h.ctx, h.tables, h.pilists, dims=2, L=2)
    origin = next(
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.5)
    )
    print(f"message budget ω = L(L^d−1)/(L−1) = {diffusion_message_count(2, 2)}")
    hid_cover, sid_cover = set(), set()
    for _ in range(20):
        hid_cover |= engine.diffuse(origin, "hid").recipients
        sid_cover |= engine.diffuse(origin, "sid").recipients
    print(f"distinct recipients after 20 triggers: HID={len(hid_cover)} "
          f"SID={len(sid_cover)}")
    print("(hopping re-randomizes at every relay → wider backward coverage)")

    section("4. a three-phase range query")
    q = Harness(n=64, dims=2, seed=13)
    qe = QueryEngine(q.ctx, q.overlay, q.tables, q.caches, q.pilists, QueryParams())
    demand = np.array([0.3, 0.3])
    duty = q.duty_of(demand)
    # plant a qualified record positive of the duty zone + index pointers
    holder = next(
        n.node_id
        for n in q.overlay.nodes.values()
        if np.all(n.zone.lo >= q.overlay.nodes[duty].zone.hi - 1e-12)
    )
    q.plant_record(holder, owner=999, availability=[0.8, 0.9])
    for dim in range(2):
        for agent in q.overlay.directional_neighbors(duty, dim, +1):
            q.pilists[agent].add(holder, now=0.0)
    out = {}
    qe.submit(demand, requester=0, callback=lambda r, m: out.update(r=r, m=m))
    q.sim.run(until=120.0)
    found = [(rec.owner, rec.availability.tolist()) for rec in out["r"]]
    print(f"demand {demand.tolist()} → duty node {duty} → found {found}")
    print(f"query used {out['m']} protocol messages "
          f"(duty-query + index-agent + index-jump + notify)")


if __name__ == "__main__":
    main()
