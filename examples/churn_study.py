#!/usr/bin/env python
"""Node-churn study (Fig. 8): HID-CAN under dynamic membership.

Sweeps the dynamic degree — the fraction of nodes replaced per mean task
lifetime (3000 s) — and reports how discovery quality degrades.  Following
the paper's model, churned-out nodes leave the overlay (their caches,
PILists and pointer tables vanish; in-flight messages to them are dropped)
while their resident tasks run to completion.

Run:  python examples/churn_study.py [--kill-tasks]
"""

import argparse

from repro import run_protocol


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "paper"])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--kill-tasks",
        action="store_true",
        help="ablation: churned nodes also kill their resident tasks",
    )
    args = parser.parse_args()

    print(f"{'dynamic degree':>15s} {'T-Ratio':>9s} {'F-Ratio':>9s} "
          f"{'fairness':>9s} {'evicted':>8s}")
    for degree in (0.0, 0.25, 0.50, 0.75, 0.95):
        result = run_protocol(
            "hid-can",
            scale=args.scale,
            demand_ratio=0.5,
            seed=args.seed,
            churn_degree=degree,
            churn_kills_tasks=args.kill_tasks,
        )
        label = "static" if degree == 0 else f"{degree:.0%}"
        print(
            f"{label:>15s} {result.t_ratio:9.3f} {result.f_ratio:9.3f} "
            f"{result.fairness:9.3f} {result.evicted:8d}"
        )

    print(
        "\nThe overlay self-repairs through the binary-partition-tree "
        "takeover, so\nmoderate churn mostly costs stale records and lost "
        "query chains; only\nextreme churn visibly hurts throughput."
    )


if __name__ == "__main__":
    main()
