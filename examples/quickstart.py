#!/usr/bin/env python
"""Quickstart: one Self-Organizing Cloud simulation with PID-CAN (HID).

Builds a 120-node SOC, runs two simulated hours of Poisson task arrivals
at demand ratio 0.5, and prints the §IV metrics: throughput ratio, failed
task ratio, Jain fairness and per-node message cost.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, SOCSimulation


def main() -> None:
    config = ExperimentConfig.at_scale(
        "tiny",                  # 120 nodes, 2 simulated hours
        protocol="hid-can",      # Hopping Index Diffusion over CAN
        demand_ratio=0.5,        # Table-II λ: demands up to half of cmax
        seed=42,
    )
    print(f"running: {config.describe()}")
    result = SOCSimulation(config).run()

    print(f"\ntasks generated : {result.generated}")
    print(f"tasks finished  : {result.finished}")
    print(f"tasks failed    : {result.failed}  (no qualified node found)")
    print(f"T-Ratio         : {result.t_ratio:.3f}")
    print(f"F-Ratio         : {result.f_ratio:.3f}")
    print(f"fairness (Jain) : {result.fairness:.3f}")
    print(f"msg cost / node : {result.per_node_msg_cost:.1f}")

    print("\ntraffic by message kind:")
    for kind, count in result.traffic_by_kind.items():
        print(f"  {kind:18s} {count:8d}")

    print("\nhourly T-Ratio series:")
    for t, v in result.series["t_ratio"]:
        print(f"  {t / 3600:4.1f} h  {v:.3f}")


if __name__ == "__main__":
    main()
