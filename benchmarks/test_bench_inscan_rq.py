"""§III-A claims for INSCAN-RQ and INSCAN routing.

- INSCAN lookup delay is O(log2 n) hops (vs O(n^(1/d)) plain CAN);
- the flooding range query returns complete results with traffic
  log2(n) + N − 1, which blows up as the query range widens — the paper's
  motivation for PID-CAN's single-message constraint.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.baselines.inscan_rq import INSCANRangeQuery
from repro.can.inscan import inscan_path
from repro.can.routing import greedy_path
from tests.core.helpers import Harness


@pytest.mark.benchmark(group="inscan-rq")
def test_inscan_routing_log_bound(benchmark):
    """Lookup hop counts across population sizes: 8× nodes must cost only
    additive extra hops (logarithmic), not multiplicative (polynomial)."""

    def sweep():
        rng = np.random.default_rng(0)
        means = {}
        for n in (64, 512):
            h = Harness(n=n, dims=2, seed=5)
            hops = []
            for _ in range(200):
                start = int(rng.integers(n))
                p = rng.uniform(0, 1, 2)
                hops.append(len(inscan_path(h.overlay, h.tables, start, p)) - 1)
            means[n] = float(np.mean(hops))
        return means

    means = run_once(benchmark, sweep)
    benchmark.extra_info["mean_hops"] = means
    assert means[512] - means[64] < 4.0  # additive growth ⇒ logarithmic
    # delay bound: mean stays under 2·log2(n)
    for n, mean in means.items():
        assert mean <= 2 * np.log2(n)


@pytest.mark.benchmark(group="inscan-rq")
def test_flooding_traffic_grows_with_range(benchmark):
    """Fig.-1-style motivation: a query for CPU ≥ half the space makes
    ~half the network respond; PID-CAN's per-query traffic stays flat."""

    def sweep():
        h = Harness(n=256, dims=2, seed=6)
        rng = np.random.default_rng(7)
        # one record per node so the flood has something to collect
        for owner in h.overlay.node_ids():
            avail = rng.uniform(0, 1, 2)
            h.plant_record(h.duty_of(avail), 1000 + owner, avail)
        rq = INSCANRangeQuery(h.overlay, h.tables, h.caches)
        out = {}
        for corner in (0.9, 0.7, 0.5, 0.3, 0.1):
            demand = np.array([corner, corner])
            res = rq.query(0, demand, demand, now=0.0)
            out[corner] = (res.messages, res.responsible_nodes, len(res.records))
        return out

    out = run_once(benchmark, sweep)
    benchmark.extra_info["range_sweep"] = {
        str(k): {"messages": v[0], "responsible": v[1], "records": v[2]}
        for k, v in out.items()
    }
    messages = [out[c][0] for c in (0.9, 0.7, 0.5, 0.3, 0.1)]
    assert messages == sorted(messages)  # wider range ⇒ more traffic
    # the widest query floods the better part of the network
    assert out[0.1][1] > 256 * 0.5
    # completeness at every width: responsible region ⊇ records found
    for c, (msgs, responsible, found) in out.items():
        assert msgs >= responsible - 1


@pytest.mark.benchmark(group="inscan-rq")
def test_flood_delay_bound(benchmark):
    """§III-A: query delay upper bound 2·log2 n (route + flood depth)."""

    def depths():
        h = Harness(n=256, dims=2, seed=8)
        rq = INSCANRangeQuery(h.overlay, h.tables, h.caches)
        out = []
        rng = np.random.default_rng(9)
        for _ in range(25):
            corner = rng.uniform(0.2, 0.9)
            demand = np.array([corner, corner])
            res = rq.query(0, demand, demand, now=0.0)
            out.append(res.route_hops + res.flood_depth)
        return out

    delays = run_once(benchmark, depths)
    benchmark.extra_info["max_delay_hops"] = max(delays)
    # soft form of the 2·log2(n) claim (constants differ off the torus)
    assert max(delays) <= 4 * np.log2(256)
