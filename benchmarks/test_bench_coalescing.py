"""Cohort event-coalescing throughput benches.

Three floors guard the coalescing machinery:

1. **Ticking machinery** — a raw :class:`Simulator` with 10^4 periodic
   members must process rounds at >= 5x the per-node chain rate when the
   members share 16 cohort timers (measured ~100x: the heap shrinks from
   one event per member to one per cohort).
2. **End-to-end rounds** — a full SOC run (state updates + index
   diffusion, no queries) in cohort mode must beat per-node ticking by a
   conservative noise-safe floor.  The end-to-end win is Amdahl-limited:
   both modes share the same vectorized protocol kernels (routing fronts,
   diffusion tree walks), so the measured ratio (~1.7-2x, recorded in
   ``extra_info``) is far below the machinery ratio — see
   ``docs/coalescing.md`` for the decomposition.  The run summaries must
   also be identical, re-asserting tick-mode equivalence at bench scale.
3. **Mega throughput** — the ``mega`` scenario (10^5 nodes at paper
   scale) must sustain a queries-per-wall-second floor, keeping the mega
   tier affordable.
"""

import time
from dataclasses import replace

import pytest

from repro.core.protocol import PIDCANParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import mega_configs
from repro.sim.engine import Simulator

from benchmarks.conftest import run_once

#: Members / cohorts for the raw machinery bench.
TICK_MEMBERS = 10_000
TICK_BUCKETS = 16
TICK_PERIOD = 400.0
TICK_HORIZON = 4_000.0

#: End-to-end round-throughput cells per REPRO_SCALE.
ROUNDS_POPULATION = {"tiny": 1_000, "small": 10_000, "paper": 10_000}

#: Mega-tier overrides and queries-per-second floors per REPRO_SCALE
#: (``None`` = run the scenario's own population).  Floors are ~8x under
#: the measured rates so shared-machine noise cannot flake the bench.
MEGA_CELLS = {
    "tiny": ({"n_nodes": 2_000, "duration": 900.0}, 25.0),
    "small": ({"n_nodes": 20_000, "duration": 1200.0}, 15.0),
    "paper": ({}, 25.0),
}


def _tick_per_node() -> int:
    """10^4 self-rescheduling chains — one heap event per member."""
    sim = Simulator()
    count = [0]

    def arm(phase: float) -> None:
        def tick() -> None:
            count[0] += 1
            sim.schedule(TICK_PERIOD, tick)

        sim.schedule(phase, tick)

    for i in range(TICK_MEMBERS):
        arm((i % TICK_BUCKETS) * TICK_PERIOD / TICK_BUCKETS)
    sim.run(until=TICK_HORIZON)
    return count[0]


def _tick_cohort() -> int:
    """The same members and fire instants via 16 shared cohort timers."""
    sim = Simulator()
    count = [0]

    def round_(members) -> None:
        count[0] += len(members)

    timers = {}
    for i in range(TICK_MEMBERS):
        phase = (i % TICK_BUCKETS) * TICK_PERIOD / TICK_BUCKETS
        timer = timers.get(phase)
        if timer is None:
            timer = timers[phase] = sim.periodic_cohort(
                TICK_PERIOD, round_, epoch=phase
            )
        timer.add(i)
    sim.run(until=TICK_HORIZON)
    return count[0]


@pytest.mark.benchmark(group="coalescing-machinery")
def test_cohort_ticking_machinery_5x(benchmark):
    """Pure scheduling throughput: cohort timers >= 5x per-node chains."""
    t0 = time.perf_counter()
    per_node_ticks = _tick_per_node()
    per_node_s = time.perf_counter() - t0

    cohort_ticks = run_once(benchmark, _tick_cohort)
    cohort_s = benchmark.stats.stats.mean

    assert cohort_ticks == per_node_ticks  # same members, same instants
    ratio = per_node_s / cohort_s
    benchmark.extra_info["per_node_s"] = round(per_node_s, 4)
    benchmark.extra_info["speedup"] = round(ratio, 1)
    benchmark.extra_info["ticks"] = cohort_ticks
    assert ratio >= 5.0, f"cohort ticking only {ratio:.1f}x per-node"


@pytest.mark.benchmark(group="coalescing-rounds")
def test_cohort_round_throughput(benchmark, scale):
    """End-to-end state+diffusion rounds: cohort mode must beat per-node
    ticking (noise-safe 1.3x floor; measured ratio in ``extra_info``)
    and produce the identical run."""
    base = ExperimentConfig(
        n_nodes=ROUNDS_POPULATION[scale],
        duration=2_000.0,
        protocol="hid-can",
        demand_ratio=0.5,
        mean_interarrival=1e9,  # no queries: isolate the periodic rounds
        sample_period=1_000.0,
        seed=3,
        pidcan=PIDCANParams(phase_buckets=16),
    )

    def run(mode: str):
        cfg = replace(base, pidcan=replace(base.pidcan, tick_mode=mode))
        return SOCSimulation(cfg).run()

    t0 = time.perf_counter()
    per_node = run("per-node")
    per_node_s = time.perf_counter() - t0

    cohort = run_once(benchmark, run, "cohort")
    cohort_s = benchmark.stats.stats.mean

    # Free identity check: same rounds, same records, same traffic.
    assert cohort.traffic_by_kind == per_node.traffic_by_kind
    assert cohort.traffic_total == per_node.traffic_total
    assert cohort.generated == per_node.generated

    ratio = per_node_s / cohort_s
    benchmark.extra_info["per_node_s"] = round(per_node_s, 3)
    benchmark.extra_info["speedup"] = round(ratio, 2)
    benchmark.extra_info["traffic_total"] = cohort.traffic_total
    assert ratio >= 1.3, f"cohort rounds only {ratio:.2f}x per-node"


@pytest.mark.benchmark(group="coalescing-mega")
def test_mega_queries_per_second(benchmark, scale):
    """The mega tier must stay affordable: a floor on generated queries
    per wall-clock second (10^5 nodes at paper scale)."""
    overrides, floor = MEGA_CELLS[scale]
    cfg = mega_configs("paper", seed=42, **overrides)["hid-can"]

    res = run_once(benchmark, lambda: SOCSimulation(cfg).run())

    qps = res.generated / res.wall_clock_s
    benchmark.extra_info["n_nodes"] = cfg.n_nodes
    benchmark.extra_info["generated"] = res.generated
    benchmark.extra_info["wall_clock_s"] = round(res.wall_clock_s, 2)
    benchmark.extra_info["queries_per_s"] = round(qps, 1)
    assert res.generated > 0
    assert qps >= floor, f"mega tier at {qps:.1f} q/s, floor {floor}"
