"""Figure 5 — six protocols at demand ratio λ=1.

Paper reading: SID/HID-CAN (and their SoS versions) prominently outperform
Newscast on throughput; Newscast is worst because locating the *scarce*
qualified resources dominates, which pure random partial views cannot do.
"""

import pytest

from benchmarks.conftest import attach_results, run_once
from repro.experiments.reporting import render_scenario
from repro.experiments.scenarios import fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_lambda_1(benchmark, scale):
    results = run_once(benchmark, fig5, scale=scale)
    attach_results(benchmark, results)
    print()
    print(render_scenario("fig5", results))

    hid = results["hid-can"]
    sid = results["sid-can"]
    newscast = results["newscast"]

    # Diffusion beats unstructured gossip on both headline metrics.
    assert hid.t_ratio > newscast.t_ratio
    assert sid.t_ratio > newscast.t_ratio
    assert hid.f_ratio < newscast.f_ratio
    assert sid.f_ratio < newscast.f_ratio
    # "HID-CAN performs as well as SID-CAN" at λ=1 (±50% band).
    assert hid.t_ratio == pytest.approx(sid.t_ratio, rel=0.5)
    # SoS is redundant here (§IV-B): no large gain over plain variants.
    for variant, base in (("hid-can+sos", hid), ("sid-can+sos", sid)):
        assert results[variant].t_ratio < base.t_ratio * 1.6 + 0.05
