"""Figure 4 — contrary results under different query ranges.

(a) demand ratio 0.84: the diffusion protocols beat Newscast's random
    partial views (wide demands need *directed* search for the scarce
    qualified nodes);
(b) demand ratio 0.25: the crossover — Newscast's uniform randomness
    disperses light demands better than SID-CAN, whose queries pile onto
    the few duty nodes of the small corner region.

Shape assertions target the paper's orderings, not its absolute values.
"""

import pytest

from benchmarks.conftest import attach_results, run_once
from repro.experiments.reporting import render_scenario
from repro.experiments.scenarios import fig4a, fig4b


@pytest.mark.benchmark(group="fig4")
def test_fig4a_wide_demands(benchmark, scale):
    results = run_once(benchmark, fig4a, scale=scale)
    attach_results(benchmark, results)
    print()
    print(render_scenario("fig4a", results))

    sid = results["sid-can"]
    newscast = results["newscast"]
    # Paper Fig. 4(a): SID-CAN clearly above Newscast on throughput ratio.
    assert sid.t_ratio > newscast.t_ratio
    # ...and it fails fewer tasks while doing so.
    assert sid.f_ratio < newscast.f_ratio


@pytest.mark.benchmark(group="fig4")
def test_fig4b_narrow_demands_crossover(benchmark, scale):
    results = run_once(benchmark, fig4b, scale=scale)
    attach_results(benchmark, results)
    print()
    print(render_scenario("fig4b", results))

    sid = results["sid-can"]
    newscast = results["newscast"]
    # Paper Fig. 4(b): the ordering flips — Newscast's throughput ratio is
    # at least on par with SID-CAN when all demands are small.
    assert newscast.t_ratio >= sid.t_ratio * 0.95
    # The matching rate still favours the structured protocol (Fig. 7(b)).
    assert sid.f_ratio < newscast.f_ratio
