"""Microbenchmarks of the hot substrate operations.

These are conventional pytest-benchmark timings (many rounds) that guard
the simulator's scalability: routing, overlay churn, PSM re-sharing and
cache matching dominate the per-event cost of full SOC runs.
"""

import numpy as np
import pytest

from repro.can.inscan import build_index_table, inscan_path
from repro.can.overlay import CANOverlay
from repro.can.routing import greedy_path
from repro.cloud.engine import HostEngine
from repro.cloud.tasks import TaskFactory
from repro.core.state import StateCache, StateRecord
from tests.conftest import make_overlay


@pytest.mark.benchmark(group="micro-routing")
def test_greedy_route_256(benchmark):
    overlay = make_overlay(256, 2, seed=1)
    rng = np.random.default_rng(2)
    points = rng.uniform(0, 1, size=(64, 2))
    starts = rng.integers(0, 256, size=64)
    idx = {"i": 0}

    def route():
        i = idx["i"] = (idx["i"] + 1) % 64
        return greedy_path(overlay, int(starts[i]), points[i])

    benchmark(route)


@pytest.mark.benchmark(group="micro-routing")
def test_inscan_route_256(benchmark):
    overlay = make_overlay(256, 2, seed=1)
    rng = np.random.default_rng(3)
    tables = {
        i: build_index_table(overlay, i, rng) for i in overlay.node_ids()
    }
    points = rng.uniform(0, 1, size=(64, 2))
    starts = rng.integers(0, 256, size=64)
    idx = {"i": 0}

    def route():
        i = idx["i"] = (idx["i"] + 1) % 64
        return inscan_path(overlay, tables, int(starts[i]), points[i])

    benchmark(route)


@pytest.mark.benchmark(group="micro-overlay")
def test_join_leave_cycle(benchmark):
    overlay = make_overlay(128, 3, seed=4)
    counter = {"next": 10_000}

    def cycle():
        nid = counter["next"]
        counter["next"] += 1
        overlay.join(nid)
        overlay.leave(nid)

    benchmark(cycle)


@pytest.mark.benchmark(group="micro-executor")
def test_psm_reshare_under_load(benchmark):
    fac = TaskFactory(0.5, np.random.default_rng(5))
    eng = HostEngine()
    eng.add_host(0, np.array([25.6, 80.0, 10.0, 240.0, 4096.0]))
    for _ in range(16):
        eng.place(0, fac.create(0, 0.0), 0.0)
    clock = {"t": 0.0}

    def churn_one_task():
        clock["t"] += 1.0
        task = fac.create(0, clock["t"])
        eng.place(0, task, clock["t"])
        eng.remove(0, task.task_id, clock["t"])
        eng.next_completion(0)

    benchmark(churn_one_task)


@pytest.mark.benchmark(group="micro-cache")
def test_cache_qualified_scan(benchmark):
    cache = StateCache(ttl=1e9)
    rng = np.random.default_rng(6)
    for owner in range(256):
        cache.put(StateRecord(owner, rng.uniform(0, 1, 5), 0.0))
    demand = np.full(5, 0.4)

    benchmark(cache.qualified, demand, 1.0, 3)


@pytest.mark.benchmark(group="micro-overlay")
def test_bootstrap_400_nodes(benchmark):
    def build():
        overlay = CANOverlay(5, np.random.default_rng(7))
        overlay.bootstrap(range(400))
        return overlay

    benchmark.pedantic(build, rounds=3, iterations=1)
