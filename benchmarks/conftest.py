"""Shared benchmark utilities.

Every bench honours the ``REPRO_SCALE`` environment variable
(``tiny`` default — the whole suite in minutes; ``small`` for a
closer-to-paper regime; ``paper`` for the full §IV-A configuration).

The SOC benches run each scenario once (``benchmark.pedantic`` with a
single round — a simulated day is the unit of work) and attach the
paper-facing metrics as ``extra_info`` so the benchmark JSON doubles as
the reproduction record.
"""

from __future__ import annotations

import os

import pytest

DEFAULT_SCALE = "tiny"


@pytest.fixture(scope="session")
def scale() -> str:
    from repro.experiments.config import SCALES

    value = os.environ.get("REPRO_SCALE", DEFAULT_SCALE)
    if value not in SCALES:
        raise ValueError(f"REPRO_SCALE={value!r}; expected one of {sorted(SCALES)}")
    return value


def attach_results(benchmark, results) -> None:
    """Record each curve's end-of-run metrics in the benchmark report."""
    for label, res in results.items():
        benchmark.extra_info[label] = {
            "t_ratio": round(res.t_ratio, 4),
            "f_ratio": round(res.f_ratio, 4),
            "fairness": round(res.fairness, 4) if res.fairness == res.fairness else None,
            "msg_per_node": round(res.per_node_msg_cost, 1),
            "generated": res.generated,
        }


def run_once(benchmark, fn, *args, **kwargs):
    """One-round pedantic run (a simulated day is one unit of work)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
