"""Figure 7 — six protocols at demand ratio λ=0.25.

The paper's sharpest contrast: HID-CAN suffers only 2 failed tasks out of
14362 in the day, versus 1793 for Newscast — an order of magnitude in
F-Ratio — while Newscast posts the best raw throughput ratio (~0.74) with
HID close behind.
"""

import pytest

from benchmarks.conftest import attach_results, run_once
from repro.experiments.reporting import render_scenario
from repro.experiments.scenarios import fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_lambda_025(benchmark, scale):
    results = run_once(benchmark, fig7, scale=scale)
    attach_results(benchmark, results)
    print()
    print(render_scenario("fig7", results))

    hid = results["hid-can"]
    newscast = results["newscast"]

    # The headline: HID's failed-task ratio is several times lower.
    assert hid.f_ratio < newscast.f_ratio / 2.0
    assert hid.f_ratio < 0.1  # near-zero failures at light demands
    # Newscast tops raw throughput, with HID in the same band (§IV-B).
    assert newscast.t_ratio >= hid.t_ratio * 0.9
    assert hid.t_ratio > newscast.t_ratio * 0.55
