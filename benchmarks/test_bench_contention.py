"""Contention-dispersal bench — measuring the paper's central design goal
directly.

§I: uncoordinated analogous queries must not funnel tasks onto the same
hosts.  The placement-balance metrics (Jain index over per-host placement
counts, hotspot share, peak concurrency) quantify how well each protocol
disperses load — the *cause* behind the T-Ratio differences of Figs. 4-7.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation


def run_proto(protocol, demand_ratio, seed=31):
    cfg = ExperimentConfig(
        n_nodes=150, duration=7200.0, demand_ratio=demand_ratio,
        protocol=protocol, seed=seed,
    )
    return SOCSimulation(cfg).run()


@pytest.mark.benchmark(group="contention")
def test_placement_dispersal_narrow_demands(benchmark):
    """Narrow demands (λ=0.25) are the contention stress test: every query
    lands in the same corner region of the key space (§IV-B's explanation
    of Fig. 4(b))."""

    def sweep():
        return {
            p: run_proto(p, demand_ratio=0.25)
            for p in ("hid-can", "sid-can", "newscast")
        }

    out = run_once(benchmark, sweep)
    for label, res in out.items():
        benchmark.extra_info[label] = res.balance.as_dict()

    for res in out.values():
        bal = res.balance
        assert bal.placements > 0
        # no protocol may collapse onto a handful of hosts
        assert bal.hosts_used > 10
        # the top-5% hotspot share stays well below total collapse
        assert bal.hotspot_share < 0.9


@pytest.mark.benchmark(group="contention")
def test_randomized_jumps_disperse_better_than_single_duty(benchmark):
    """Ablation for the randomized query phases: disabling the index-jump
    randomness (jump_list_size=1, delta=1, duty-cache-first) concentrates
    placements measurably more than the full protocol."""
    from repro.core.protocol import PIDCANParams

    def sweep():
        full = SOCSimulation(ExperimentConfig(
            n_nodes=150, duration=7200.0, demand_ratio=0.25, seed=32,
            protocol="hid-can",
        )).run()
        narrow = SOCSimulation(ExperimentConfig(
            n_nodes=150, duration=7200.0, demand_ratio=0.25, seed=32,
            protocol="hid-can",
            pidcan=PIDCANParams(jump_list_size=1, delta=1),
        )).run()
        return full, narrow

    full, narrow = run_once(benchmark, sweep)
    benchmark.extra_info["full"] = full.balance.as_dict()
    benchmark.extra_info["deterministic"] = narrow.balance.as_dict()
    # more randomness ⇒ at least as many distinct hosts carry the load
    assert full.balance.hosts_used >= narrow.balance.hosts_used * 0.9
