"""Related-work comparison (§V): PID-CAN vs a Mercury-style hub scheme.

The paper's critique of order-preserving-hub solutions: they "rely on some
additional order-preserving hash function to reorganize the DHT nodes,
significantly complicating the system", and replicate every state update
into d attribute hubs.  The measurable consequences this bench checks:

- Mercury's state-update traffic is a multiple of PID-CAN's (d hub
  insertions vs one duty route), and
- PID-CAN's matching rate is at least competitive despite spending a
  single query message chain.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation


def run_proto(protocol, seed=41, **kw):
    cfg = ExperimentConfig(
        n_nodes=150, duration=7200.0, demand_ratio=0.5, seed=seed,
        protocol=protocol, **kw,
    )
    return SOCSimulation(cfg).run()


@pytest.mark.benchmark(group="related-work")
def test_mercury_vs_pidcan(benchmark):
    def sweep():
        return {
            "hid-can": run_proto("hid-can"),
            "mercury": run_proto("mercury"),
        }

    out = run_once(benchmark, sweep)
    for label, res in out.items():
        benchmark.extra_info[label] = {
            "t_ratio": round(res.t_ratio, 4),
            "f_ratio": round(res.f_ratio, 4),
            "state_update_msgs": res.traffic_by_kind.get("state-update", 0),
            "msg_per_node": round(res.per_node_msg_cost, 1),
            "query_p95_s": round(res.query_latency.p95_s, 3),
        }

    hid = out["hid-can"]
    mercury = out["mercury"]
    # Mercury pays d-fold hub replication on the state-update side: its
    # state traffic is a large multiple of PID-CAN's single duty route
    # (measured ~9× at d=5), and its total per-node cost is several-fold.
    assert (
        mercury.traffic_by_kind["state-update"]
        > hid.traffic_by_kind["state-update"] * 3.0
    )
    assert mercury.per_node_msg_cost > hid.per_node_msg_cost * 1.5
    # The ordered hubs buy Mercury a strong matching rate; PID-CAN stays
    # within a band of it while spending a fraction of the traffic — the
    # §V trade-off in numbers.
    assert hid.f_ratio <= mercury.f_ratio + 0.25


@pytest.mark.benchmark(group="related-work")
def test_query_latency_stays_low(benchmark):
    """Abstract claim: 'low query delay' — the p95 query delay stays within
    a few WAN round trips for PID-CAN."""

    def sweep():
        return run_proto("hid-can", seed=43)

    res = run_once(benchmark, sweep)
    benchmark.extra_info["latency"] = res.query_latency.as_dict()
    assert res.query_latency.queries > 0
    # one WAN hop ≈ 0.2-0.25 s and a full three-phase chain spends a few
    # dozen sequential hops worst-case; p95 stays well under the 60 s
    # query timeout (measured ≈6.5 s) and the mean under ~5 s.
    assert res.query_latency.p95_s < 10.0
    assert res.query_latency.mean_s < 5.0
