"""§III-B analysis benches — Fig. 2 (Theorem 1), Fig. 3 (SID vs HID) and
the ω message-count formula, measured on live overlays."""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.diffusion import (
    DiffusionEngine,
    diffusion_message_count,
    line_diffusion_rounds,
)
from tests.core.helpers import Harness


@pytest.mark.benchmark(group="diffusion-analysis")
def test_theorem1_hops(benchmark):
    """Fig. 2: on a line of r nodes with 2^k backward links, the topmost
    node's index reaches everyone within ⌈log2 r⌉ relay hops."""

    def worst_hops():
        out = {}
        for r in (19, 64, 500, 4096):
            out[r] = max(line_diffusion_rounds(r))
        return out

    worst = run_once(benchmark, worst_hops)
    benchmark.extra_info["worst_hops"] = worst
    for r, hops in worst.items():
        assert hops <= int(np.ceil(np.log2(r)))
    # the paper's example: r=19 → "less than O(log(19))=4"
    assert worst[19] <= 4


@pytest.mark.benchmark(group="diffusion-analysis")
def test_omega_message_bound_live(benchmark):
    """Live triggers never exceed ω = L·(L^d−1)/(L−1), and interior nodes
    get close to it."""
    h = Harness(n=256, dims=2, seed=1)
    engine = DiffusionEngine(h.ctx, h.tables, h.pilists, 2, L=2)
    omega = diffusion_message_count(2, 2)

    def run_all():
        counts = []
        for origin in h.overlay.node_ids():
            counts.append(engine.diffuse(origin, "hid").messages)
        return counts

    counts = run_once(benchmark, run_all)
    benchmark.extra_info["omega"] = omega
    benchmark.extra_info["mean_messages"] = float(np.mean(counts))
    assert max(counts) <= omega
    assert float(np.mean(counts)) > 0.5  # edge nodes drag the mean down


@pytest.mark.benchmark(group="diffusion-analysis")
def test_sid_vs_hid_coverage(benchmark):
    """Fig. 3: hopping diffusion (HID) reaches more distinct nodes than
    spreading (SID) for the same message budget, because every relay
    re-randomizes from its own pointer table."""
    h = Harness(n=512, dims=2, seed=2)
    engine = DiffusionEngine(h.ctx, h.tables, h.pilists, 2, L=2)
    interior = [
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.5)
    ]

    def coverage():
        hid, sid = set(), set()
        hid_msgs = sid_msgs = 0
        for origin in interior:
            for _ in range(8):
                r = engine.diffuse(origin, "hid")
                hid |= r.recipients
                hid_msgs += r.messages
                r = engine.diffuse(origin, "sid")
                sid |= r.recipients
                sid_msgs += r.messages
        return len(hid), len(sid), hid_msgs, sid_msgs

    hid_cover, sid_cover, hid_msgs, sid_msgs = run_once(benchmark, coverage)
    benchmark.extra_info["hid_distinct_recipients"] = hid_cover
    benchmark.extra_info["sid_distinct_recipients"] = sid_cover
    assert hid_cover > sid_cover
    # same budget: message counts within 25% of each other
    assert hid_msgs == pytest.approx(sid_msgs, rel=0.25)


@pytest.mark.benchmark(group="diffusion-micro")
def test_diffuse_throughput(benchmark):
    """Microbenchmark: cost of one HID trigger on a 256-node overlay."""
    h = Harness(n=256, dims=5, seed=3)
    engine = DiffusionEngine(h.ctx, h.tables, h.pilists, 5, L=2)
    interior = next(
        n.node_id for n in h.overlay.nodes.values() if np.all(n.zone.lo > 0.2)
    )
    benchmark(engine.diffuse, interior, "hid")
