"""Hot-range cache + replica-diffusion benches (docs/caching.md).

The tentpole claim: under Zipf-skewed demand (s=1.0), per-node path
caching plus hot-partition replica diffusion cut **messages/query by at
least 2x** versus the cache-off protocol at a 10^4-node HID-CAN cell
(``REPRO_SCALE=paper``).  Smaller presets shrink the population and
assert a proportionally lower floor — short routes leave less duty-query
path to cache away, so the chain-collapse share dominates.

Every cell reports hit ratio, staleness regret, replica rounds and the
replica message bill in ``extra_info``, so the committed artifact
(``artifacts/BENCH_cache.json``) records the cost of the win, not just
the win.
"""

import pytest

from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import hotrange_configs

from benchmarks.conftest import run_once

#: Population / horizon per REPRO_SCALE (``paper`` is the 10^4-node
#: acceptance cell; ``tiny`` keeps the tier-1 run affordable).
POPULATIONS = {"tiny": 600, "small": 2_000, "paper": 10_000}
DURATIONS = {"tiny": 1_500.0, "small": 1_800.0, "paper": 1_800.0}
SAMPLE_PERIODS = {"tiny": 500.0, "small": 600.0, "paper": 600.0}

#: messages/query reduction floor vs cache-off.  The 2x tentpole holds
#: from 2x10^3 nodes up; the tiny cell's routes are too short to clear
#: it, so it asserts the same ordering at a reduced floor.
FLOORS = {"tiny": 1.3, "small": 2.0, "paper": 2.0}

#: The cells that must clear the floor (replication is what collapses
#: the agent/jump chain; ``ttl+repl`` and the cache-only cells ride
#: along in ``extra_info`` for the policy comparison).
ASSERTED = ("lru+repl", "lfu+repl", "adaptive+repl")
REPORTED = ("off", "ttl+repl") + ASSERTED


def _cells(scale: str):
    grid = hotrange_configs(
        "small",
        seed=42,
        n_nodes=POPULATIONS[scale],
        duration=DURATIONS[scale],
        sample_period=SAMPLE_PERIODS[scale],
    )
    return {label: grid[label] for label in REPORTED}


def _run_cells(cells):
    return {label: SOCSimulation(cfg).run() for label, cfg in cells.items()}


@pytest.mark.benchmark(group="cache-hotrange")
def test_cache_cuts_messages_per_query(benchmark, scale):
    """LRU/LFU/adaptive caching with replication must cut messages/query
    by the scale's floor (2x at small/paper) under Zipf s=1.0 demand."""
    cells = _cells(scale)
    results = run_once(benchmark, _run_cells, cells)

    off = results["off"]
    assert off.generated > 0
    assert off.cache_lookups == 0  # the control really ran cache-off

    benchmark.extra_info["n_nodes"] = cells["off"].n_nodes
    for label, res in results.items():
        hit = res.cache_hit_ratio
        regret = res.cache_regret
        benchmark.extra_info[label] = {
            "messages_per_query": round(res.messages_per_query, 3),
            "ratio_vs_off": round(
                off.messages_per_query / res.messages_per_query, 3
            ),
            "cache_hit_ratio": round(hit, 4) if hit == hit else None,
            "cache_regret": round(regret, 4) if regret == regret else None,
            "replications": res.replications,
            "replica_messages": res.traffic_by_kind.get("index-replica", 0),
            "t_ratio": round(res.t_ratio, 4),
        }

    floor = FLOORS[scale]
    for label in ASSERTED:
        res = results[label]
        assert res.cache_lookups > 0, label
        ratio = off.messages_per_query / res.messages_per_query
        assert ratio >= floor, (
            f"{label}: only {ratio:.2f}x messages/query reduction "
            f"({res.messages_per_query:.2f} vs off "
            f"{off.messages_per_query:.2f}); floor {floor}"
        )
