"""Figure 6 — six protocols at demand ratio λ=0.5.

The intermediate regime: all metrics improve over λ=1 (easier matching),
with the PID-CAN variants keeping a clear failed-task-ratio advantage.
"""

import pytest

from benchmarks.conftest import attach_results, run_once
from repro.experiments.reporting import render_scenario
from repro.experiments.scenarios import fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_lambda_05(benchmark, scale):
    results = run_once(benchmark, fig6, scale=scale)
    attach_results(benchmark, results)
    print()
    print(render_scenario("fig6", results))

    hid = results["hid-can"]
    sid = results["sid-can"]
    newscast = results["newscast"]

    # Matching rate: diffusion below gossip on failures.
    assert hid.f_ratio < newscast.f_ratio
    assert sid.f_ratio < newscast.f_ratio
    # Everyone finishes a sane share of tasks in this easier regime.
    for res in results.values():
        assert res.t_ratio > 0.1
        assert res.fairness > 0.3
