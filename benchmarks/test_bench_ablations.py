"""Ablation benches for the design choices DESIGN.md §5 calls out.

These sweep the knobs the paper fixes (L=2, single-message queries,
best-fit selection, lenient admission) to show each choice's effect —
the evidence behind the defaults.
"""

from dataclasses import replace

import pytest

from benchmarks.conftest import run_once
from repro.core.protocol import PIDCANParams
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import SOCSimulation

#: A micro population keeps the whole ablation suite fast; the effects
#: tested here are local to the protocol mechanics, not the scale.
BASE = dict(n_nodes=120, duration=7200.0, demand_ratio=0.5, seed=21)


def run_cfg(**overrides):
    merged = {**BASE, **overrides}
    pidcan = merged.pop("pidcan", PIDCANParams())
    return SOCSimulation(ExperimentConfig(pidcan=pidcan, **merged)).run()


@pytest.mark.benchmark(group="ablations")
def test_ablation_L_sweep(benchmark):
    """Diffusion fan-out L: bigger L buys matching rate with ω-growth in
    traffic; L=2 (the paper's choice) already captures most of the gain."""

    def sweep():
        out = {}
        for L in (1, 2, 3):
            res = run_cfg(pidcan=PIDCANParams(L=L), protocol="hid-can")
            out[L] = (res.f_ratio, res.traffic_by_kind.get("index-diffusion", 0))
        return out

    out = run_once(benchmark, sweep)
    benchmark.extra_info["by_L"] = {
        str(L): {"f_ratio": round(f, 4), "diffusion_msgs": m}
        for L, (f, m) in out.items()
    }
    # traffic strictly grows with L...
    assert out[1][1] < out[2][1] < out[3][1]
    # ...and L=2 does not fail dramatically more tasks than L=3.
    assert out[2][0] <= out[3][0] + 0.12


@pytest.mark.benchmark(group="ablations")
def test_ablation_delta_sweep(benchmark):
    """δ (result budget): larger δ means more candidates for best-fit but
    longer chains; δ must not change the matching rate much."""

    def sweep():
        return {
            delta: run_cfg(
                pidcan=PIDCANParams(delta=delta), protocol="hid-can"
            ).f_ratio
            for delta in (1, 3, 6)
        }

    out = run_once(benchmark, sweep)
    benchmark.extra_info["f_ratio_by_delta"] = {str(k): round(v, 4) for k, v in out.items()}
    assert abs(out[1] - out[6]) < 0.25


@pytest.mark.benchmark(group="ablations")
def test_ablation_selection_policy(benchmark):
    """Best-fit vs worst-fit: packing tight preserves big nodes for big
    demands, so best-fit must not lose on failures."""

    def sweep():
        return {
            policy: run_cfg(protocol="hid-can", selection_policy=policy)
            for policy in ("best-fit", "worst-fit", "random")
        }

    out = run_once(benchmark, sweep)
    benchmark.extra_info["by_policy"] = {
        k: {"t_ratio": round(v.t_ratio, 4), "f_ratio": round(v.f_ratio, 4)}
        for k, v in out.items()
    }
    assert out["best-fit"].f_ratio <= out["worst-fit"].f_ratio + 0.10


@pytest.mark.benchmark(group="ablations")
def test_ablation_sos_overhead(benchmark):
    """§IV-B: 'SoS … suffers twice resource query overhead than those
    without SoS' — visible in per-query message counts when first attempts
    fail often (high demand ratio)."""

    def sweep():
        plain = run_cfg(protocol="hid-can", demand_ratio=0.9)
        sos = run_cfg(protocol="hid-can+sos", demand_ratio=0.9)
        def per_query(res):
            q = res.generated or 1
            kinds = res.traffic_by_kind
            msgs = sum(
                kinds.get(k, 0)
                for k in ("duty-query", "index-agent", "index-jump", "query-end")
            )
            return msgs / q
        return per_query(plain), per_query(sos)

    plain_q, sos_q = run_once(benchmark, sweep)
    benchmark.extra_info["per_query_msgs"] = {
        "plain": round(plain_q, 2), "sos": round(sos_q, 2)
    }
    assert sos_q > plain_q * 1.3  # roughly-doubled query overhead


@pytest.mark.benchmark(group="ablations")
def test_ablation_admission_policy(benchmark):
    """Strict admission converts contention slowdowns into placement
    rejections: fairness improves, failures rise."""

    def sweep():
        return {
            mode: run_cfg(protocol="hid-can", admission=mode, demand_ratio=0.8)
            for mode in ("none", "strict")
        }

    out = run_once(benchmark, sweep)
    benchmark.extra_info["by_admission"] = {
        k: {"t_ratio": round(v.t_ratio, 4), "f_ratio": round(v.f_ratio, 4),
            "fairness": round(v.fairness, 4)}
        for k, v in out.items()
    }
    assert out["strict"].f_ratio >= out["none"].f_ratio - 0.02


@pytest.mark.benchmark(group="ablations")
def test_ablation_duty_cache_check(benchmark):
    """The deviation knob of DESIGN.md §5: consulting the duty node's own
    cache γ is a free matching-rate improvement."""

    def sweep():
        on = run_cfg(pidcan=PIDCANParams(check_duty_cache=True), protocol="hid-can")
        off = run_cfg(pidcan=PIDCANParams(check_duty_cache=False), protocol="hid-can")
        return on.f_ratio, off.f_ratio

    on_f, off_f = run_once(benchmark, sweep)
    benchmark.extra_info["f_ratio"] = {"on": round(on_f, 4), "off": round(off_f, 4)}
    assert on_f <= off_f + 0.05


@pytest.mark.benchmark(group="ablations")
def test_ablation_randomwalk_strawman(benchmark):
    """§III-A: without proactive diffusion, random-walk probing 'may hardly
    find qualified resources' — the matching-rate gap to HID-CAN."""

    def sweep():
        rw = run_cfg(protocol="randomwalk-can")
        hid = run_cfg(protocol="hid-can")
        return rw.f_ratio, hid.f_ratio

    rw_f, hid_f = run_once(benchmark, sweep)
    benchmark.extra_info["f_ratio"] = {"randomwalk": round(rw_f, 4), "hid": round(hid_f, 4)}
    assert hid_f < rw_f
