"""Old-vs-new benchmark of the host-execution substrate.

Compares the vectorized SoA :class:`repro.cloud.engine.HostEngine`
against the seed's scalar per-host executor fleet (kept verbatim behind
:class:`repro.testing.ReferenceHostEngine`) on the three operations that
dominate §IV-A execution at paper scale:

- **availability probes** — every query hop and every state-update cycle
  reads ``a_i``; the engine serves a cached matrix row, the scalar path
  recomputes effective capacity and re-sums the resident expectations;
- **scheduling points** — place/remove with Eq. 1 re-sharing and
  next-completion prediction over the dirty host;
- **checkpoint integration** — ``advance_all`` over the whole population
  versus one Python loop per host per task.

``test_substrate_speedup_at_10k`` pins the acceptance criterion: ≥ 5×
over the scalar path for the availability sweep at 10⁴ hosts.

``test_table3_cell_scalar_vs_vectorized`` runs a full Table III cell
(`table3` config: hid-can, λ=0.5) on both substrates at the scale chosen
by ``REPRO_SCALE`` (`paper` = the 2000-node simulated day) and records
both wall clocks plus their ratio in the benchmark JSON; end-to-end the
win is bounded by the protocol/routing share of the run, so the assertion
is only that results stay identical and the vectorized engine is not
slower.
"""

import time

import numpy as np
import pytest

pytest.importorskip("pytest_benchmark")

from repro.cloud.engine import HostEngine
from repro.cloud.machine import capacity_matrix, sample_machines
from repro.cloud.tasks import TaskFactory
from repro.experiments.config import SCALES
from repro.experiments.runner import SOCSimulation
from repro.experiments.scenarios import scenario_configs
from repro.testing import ReferenceHostEngine

#: Resident tasks per host in the substrate benches (a mid-run backlog).
TASKS_PER_HOST = 8

#: Populated engines are expensive to build at 10⁴ hosts (8·10⁴ scalar
#: placements on the reference), and the measured operations leave them
#: (nearly) unchanged — share one instance per (class, size).
_BUILT: dict = {}


def build(engine_cls, n_hosts: int, tasks_per_host: int = TASKS_PER_HOST):
    key = (engine_cls, n_hosts, tasks_per_host)
    if key in _BUILT:
        return _BUILT[key]
    eng = engine_cls()
    rng = np.random.default_rng(11)
    machines = sample_machines(rng, rng.uniform(5.0, 10.0, n_hosts).tolist())
    ids = list(range(n_hosts))
    eng.add_hosts(ids, capacity_matrix(machines))
    fac = TaskFactory(0.5, np.random.default_rng(12))
    for host_id in ids:
        for _ in range(tasks_per_host):
            eng.place(host_id, fac.create(host_id, 0.0), 0.0)
    # One monotonic clock per engine: timestamps may never go backwards,
    # and the instance is shared across tests in any order.
    _BUILT[key] = (eng, ids, fac, {"t": 0.0})
    return _BUILT[key]


def sweep_availability(eng, ids):
    for host_id in ids:
        eng.availability(host_id)


def churn_one_scheduling_point(eng, fac, host_id, clock):
    clock["t"] += 1.0
    task = fac.create(host_id, clock["t"])
    eng.place(host_id, task, clock["t"])
    eng.remove(host_id, task.task_id, clock["t"])


def _bench(benchmark, fn, *args, rounds=5, iterations=3):
    """Bounded-round timing: a full sweep over 10⁴ hosts is the unit of
    work, so auto-calibrated round counts would dominate the tier-1
    suite's wall clock."""
    benchmark.pedantic(fn, args=args, rounds=rounds, iterations=iterations)


@pytest.mark.benchmark(group="host-engine-availability")
@pytest.mark.parametrize("n", [1000, 10000])
def test_vectorized_availability_sweep(benchmark, n):
    eng, ids, _, _ = build(HostEngine, n)
    _bench(benchmark, sweep_availability, eng, ids)


@pytest.mark.benchmark(group="host-engine-availability")
@pytest.mark.parametrize("n", [1000, 10000])
def test_reference_availability_sweep(benchmark, n):
    eng, ids, _, _ = build(ReferenceHostEngine, n)
    _bench(benchmark, sweep_availability, eng, ids, iterations=1)


@pytest.mark.benchmark(group="host-engine-scheduling")
@pytest.mark.parametrize("n", [1000, 10000])
def test_vectorized_scheduling_point(benchmark, n):
    eng, ids, fac, clock = build(HostEngine, n)
    _bench(benchmark, churn_one_scheduling_point, eng, fac, ids[n // 2], clock,
           iterations=20)


@pytest.mark.benchmark(group="host-engine-scheduling")
@pytest.mark.parametrize("n", [1000, 10000])
def test_reference_scheduling_point(benchmark, n):
    eng, ids, fac, clock = build(ReferenceHostEngine, n)
    _bench(benchmark, churn_one_scheduling_point, eng, fac, ids[n // 2], clock,
           iterations=20)


@pytest.mark.benchmark(group="host-engine-advance")
@pytest.mark.parametrize("n", [1000, 10000])
def test_vectorized_advance_all(benchmark, n):
    eng, _, _, clock = build(HostEngine, n)

    def tick():
        clock["t"] += 1e-3
        eng.advance_all(clock["t"])

    _bench(benchmark, tick)


@pytest.mark.benchmark(group="host-engine-advance")
@pytest.mark.parametrize("n", [1000])
def test_reference_advance_all(benchmark, n):
    eng, _, _, clock = build(ReferenceHostEngine, n)

    def tick():
        clock["t"] += 1e-3
        eng.advance_all(clock["t"])

    _bench(benchmark, tick, iterations=1)


def _best_of(fn, repeats=5, inner=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def test_substrate_speedup_at_10k():
    """Acceptance criterion: the availability probe — the §IV-A substrate
    operation the protocols hammer hardest — is ≥ 5× faster than the seed
    scalar path at 10⁴ hosts (measured headroom is well above)."""
    n = 10_000
    vec, ids, _, _ = build(HostEngine, n)
    ref, _, _, _ = build(ReferenceHostEngine, n)
    sample = ids[:: max(1, n // 256)]
    for host_id in sample:
        assert np.allclose(
            vec.availability(host_id), ref.availability(host_id),
            atol=1e-9, rtol=0.0,
        )
    t_vec = _best_of(lambda: sweep_availability(vec, ids))
    t_ref = _best_of(lambda: sweep_availability(ref, ids), inner=1)
    speedup = t_ref / t_vec
    assert speedup >= 5.0, f"only {speedup:.1f}x over the scalar reference"


def test_table3_cell_scalar_vs_vectorized(benchmark, scale):
    """One Table III cell end-to-end on both substrates.  At
    ``REPRO_SCALE=paper`` this is the 2000-node simulated day of the
    acceptance criterion; smaller scales shrink the cell but keep the
    comparison shape.  Results must be identical; wall clocks and their
    ratio land in the benchmark JSON."""
    n_nodes, _ = SCALES[scale]
    cfg = scenario_configs("table3", scale=scale)[str(n_nodes)]
    # Two alternating rounds per substrate; the first pair soaks up the
    # one-time numpy/protocol warmup, best-of wins.
    rounds = 2 if scale != "paper" else 1
    t_vec = t_ref = float("inf")
    vec = ref = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        vec = SOCSimulation(cfg).run()
        t_vec = min(t_vec, time.perf_counter() - t0)
        t0 = time.perf_counter()
        ref = SOCSimulation(cfg, engine=ReferenceHostEngine()).run()
        t_ref = min(t_ref, time.perf_counter() - t0)

    assert vec.summary() == pytest.approx(ref.summary(), abs=1e-9, nan_ok=True)
    benchmark.extra_info["cell"] = cfg.describe()
    benchmark.extra_info["wall_vectorized_s"] = round(t_vec, 3)
    benchmark.extra_info["wall_scalar_s"] = round(t_ref, 3)
    benchmark.extra_info["speedup"] = round(t_ref / t_vec, 3)
    # End-to-end the protocol layer bounds the win; the engine must at
    # least never regress the cell (generous noise margin).
    assert t_vec <= t_ref * 1.25
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
