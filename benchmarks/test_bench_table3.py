"""Table III — system scalability of HID-CAN (λ=0.5).

The paper sweeps 2000→12000 nodes over one day and reports four metrics:
throughput ratio, failed task ratio, fairness index and per-node message
delivery cost.  The claims: the first three "do not notably change with the
increasing system scale", while message cost "increases very slowly,
probably under logarithmic speed".

The sweep multiplies the scale preset's base population by 1..6 (the paper's
own 2000×{1..6}); REPRO_SCALE=paper reproduces the exact populations.
"""

import pytest

from benchmarks.conftest import attach_results, run_once
from repro.experiments.reporting import scalability_table
from repro.experiments.scenarios import table3


@pytest.mark.benchmark(group="table3")
def test_table3_scalability(benchmark, scale):
    results = run_once(benchmark, table3, scale=scale)
    attach_results(benchmark, results)
    print()
    print(scalability_table(results))

    ns = sorted(results, key=int)
    t_ratios = [results[n].t_ratio for n in ns]
    f_ratios = [results[n].f_ratio for n in ns]
    costs = [results[n].per_node_msg_cost for n in ns]

    # Stability: T-Ratio and F-Ratio stay within a band across a 6× sweep
    # (the paper's columns vary by ~0.05 absolute; we allow more at
    # reduced scale where small populations are noisier).
    assert max(t_ratios) - min(t_ratios) < 0.30
    assert max(f_ratios) - min(f_ratios) < 0.35
    # Matching *improves or holds* with scale (denser records per region);
    # it must not degrade the way a non-scalable protocol would.
    assert f_ratios[-1] <= f_ratios[0] + 0.05

    # Message cost grows far sublinearly: 6× nodes ≤ ~2× per-node cost.
    assert costs[-1] < costs[0] * 2.5
    for n in ns:
        assert results[n].generated > 0
